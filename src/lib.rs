//! # bristle
//!
//! Facade crate for the Bristle mobile structured peer-to-peer
//! architecture (reproduction of Hsiao & King, IPDPS 2003). Re-exports
//! the full stack:
//!
//! * [`core`] — the Bristle protocol (two layers, LDTs, clustered naming).
//! * [`overlay`] — the HS-P2P substrate (ring DHT, replication).
//! * [`netsim`] — the physical network simulator (transit-stub, Dijkstra).
//! * [`proto`] — sans-I/O wire protocol, state machines, fault-injecting
//!   transport.
//! * [`store`] — pluggable durable state: WAL + snapshot backends and
//!   the crash-restart replay path.
//! * [`sim`] — experiment harness, baselines, per-figure drivers,
//!   message-passing driver.
//! * [`net`] — std-only UDP runtime: the same sans-I/O machines over
//!   real nonblocking sockets, with a wall-clock adapter.
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction notes.

pub use bristle_core as core;
pub use bristle_net as net;
pub use bristle_netsim as netsim;
pub use bristle_overlay as overlay;
pub use bristle_proto as proto;
pub use bristle_sim as sim;
pub use bristle_store as store;

pub use bristle_core::prelude;
