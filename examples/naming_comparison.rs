//! Scrambled vs clustered naming, head to head (paper §3 / Fig. 7).
//!
//! Builds two otherwise-identical Bristle systems at 40% mobile nodes —
//! one assigning keys at random, one clustering stationary keys into a
//! contiguous band — and routes the same number of messages between
//! random stationary pairs in each. Clustered naming keeps the routes on
//! stationary nodes, eliminating nearly all mid-route address
//! resolutions.
//!
//! ```text
//! cargo run --release --example naming_comparison
//! ```

use bristle::prelude::*;
use bristle::sim::workload::{measure_routes, sample_stationary_pairs};
use bristle_netsim::transit_stub::TransitStubConfig;

const STATIONARY: usize = 150;
const MOBILE: usize = 100; // M/N = 40%
const ROUTES: usize = 400;

fn measure(naming: NamingPolicy) -> Result<(f64, f64, f64)> {
    let cfg = match naming {
        NamingPolicy::Scrambled => BristleConfig::paper_scrambled(),
        NamingPolicy::Clustered => BristleConfig::paper_clustered(),
    };
    let mut sys = BristleBuilder::new(1234)
        .stationary_nodes(STATIONARY)
        .mobile_nodes(MOBILE)
        .topology(TransitStubConfig::small())
        .config(cfg)
        .build()?;
    // All mobile nodes move once so their cached addresses are stale.
    for m in sys.mobile_keys().to_vec() {
        sys.move_node(m, None)?;
    }
    let pairs = sample_stationary_pairs(&mut sys, ROUTES);
    let agg = measure_routes(&mut sys, &pairs);
    Ok((agg.mean_hops(), agg.mean_cost(), agg.mean_discoveries()))
}

fn main() -> Result<()> {
    println!(
        "{} stationary + {} mobile nodes (M/N = {:.0}%), {} sampled routes each\n",
        STATIONARY,
        MOBILE,
        100.0 * MOBILE as f64 / (STATIONARY + MOBILE) as f64,
        ROUTES
    );

    let (s_hops, s_cost, s_disc) = measure(NamingPolicy::Scrambled)?;
    let (c_hops, c_cost, c_disc) = measure(NamingPolicy::Clustered)?;

    println!("                     scrambled   clustered");
    println!("hops / route         {s_hops:>9.2}   {c_hops:>9.2}");
    println!("path cost / route    {s_cost:>9.2}   {c_cost:>9.2}");
    println!("discoveries / route  {s_disc:>9.2}   {c_disc:>9.2}");
    println!();
    println!(
        "relative delay penalty: {:.2}x hops, {:.2}x path cost",
        s_hops / c_hops,
        s_cost / c_cost
    );
    println!(
        "the clustered scheme resolves {:.0}% fewer mobile addresses per route",
        100.0 * (1.0 - c_disc / s_disc.max(1e-9))
    );
    Ok(())
}
