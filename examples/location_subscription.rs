//! Proactive location subscription through LDTs — a buddy tracker.
//!
//! Peers `register` interest in a mobile friend (paper §2.3.1). Whenever
//! the friend moves, its new address is pushed to every subscriber
//! through its capacity-aware location dissemination tree, in
//! O(log log N) hops, with the heavy lifting done by the most capable
//! subscribers. Subscribers then hold fresh leases and can contact the
//! friend directly — no reactive discovery needed.
//!
//! ```text
//! cargo run --release --example location_subscription
//! ```

use bristle::prelude::*;

fn main() -> Result<()> {
    let mut sys = BristleBuilder::new(99).stationary_nodes(70).mobile_nodes(30).build()?;
    let friend = sys.mobile_keys()[0];

    // Ten peers subscribe to the friend's movements (on top of whatever
    // routing-state registrations already exist).
    let subscribers: Vec<Key> = sys.stationary_keys().iter().copied().take(6).collect();
    for &s in &subscribers {
        sys.register_interest(s, friend)?;
    }
    println!("{} peers subscribed to {friend}", subscribers.len());

    // Inspect the friend's LDT before any movement.
    let tree = sys.build_ldt(friend)?;
    println!(
        "LDT: {} members, depth {} (O(log log N) — registrants: {})",
        tree.len(),
        tree.depth(),
        sys.registry.registrants_of(friend).len()
    );
    let hist = tree.level_histogram();
    for (level, count) in hist.iter().enumerate() {
        println!("  level {}: {} member(s)", level + 1, count);
    }

    // The friend roams three times; each move pushes updates down the tree.
    for hop in 1..=3 {
        let report = sys.move_node(friend, None)?;
        println!(
            "move {hop}: new router {}, {} update messages, total physical cost {}",
            report.new_router, report.updates_sent, report.update_cost
        );
        // Every subscriber now holds a fresh lease with the new address.
        let now = sys.clock.now();
        let fresh = subscribers.iter().filter(|&&s| sys.leases.is_fresh(s, friend, now)).count();
        println!("  {fresh}/{} subscribers hold fresh leases", subscribers.len());

        // Contacting the friend from a subscriber needs no discovery:
        let rep = sys.route_mobile(subscribers[0], friend)?;
        println!(
            "  subscriber -> friend: {} hops, {} discoveries (early binding at work)",
            rep.total_hops(),
            rep.discoveries
        );
    }

    // Let the leases expire and watch late binding take over.
    let ttl = sys.config().lease_ttl;
    sys.tick(ttl + 1);
    sys.move_node(friend, None)?;
    // Suppress what advertisement just refreshed: expire again.
    sys.tick(ttl + 1);
    let rep = sys.route_mobile(subscribers[0], friend)?;
    println!(
        "after lease expiry: {} hops including {} reactive discoveries (late binding)",
        rep.total_hops(),
        rep.discoveries
    );
    Ok(())
}
