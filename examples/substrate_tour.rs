//! A tour of the HS-P2P substrate families the paper names as candidate
//! stationary layers (§2.2): the ring DHT with digit fingers
//! (Tornado/Chord family), the prefix-routing DHT (Pastry/Tapestry
//! family), and CAN's d-dimensional torus — all storing and finding the
//! same records under the same keys.
//!
//! ```text
//! cargo run --release --example substrate_tour
//! ```

use std::sync::Arc;

use bristle::netsim::attach::{AttachmentMap, HostId};
use bristle::netsim::dijkstra::DistanceCache;
use bristle::netsim::rng::Pcg64;
use bristle::netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
use bristle::overlay::can::CanOverlay;
use bristle::overlay::config::RingConfig;
use bristle::overlay::key::Key;
use bristle::overlay::meter::Meter;
use bristle::overlay::prefix::PrefixDht;
use bristle::overlay::ring::RingDht;

const NODES: usize = 400;
const LOOKUPS: usize = 500;

fn main() {
    let mut rng = Pcg64::seed_from_u64(2003);
    let topo = TransitStubTopology::generate(&TransitStubConfig::small(), &mut rng);
    let stubs = topo.stub_routers().to_vec();
    let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 2048);
    let mut attachments = AttachmentMap::new();
    let keys: Vec<Key> = (0..NODES).map(|_| Key::random(&mut rng)).collect();
    for _ in 0..NODES {
        attachments.attach_new(*rng.choose(&stubs));
    }

    // --- Ring DHT (Tornado-like, base-4 fingers, proximity selection) ---
    let mut ring: RingDht<u64> = RingDht::new(RingConfig::tornado());
    for (i, &k) in keys.iter().enumerate() {
        ring.insert(k, HostId(i as u32), 1).expect("insert");
    }
    ring.build_all_tables(&attachments, &dcache, &mut rng);
    let mut meter = Meter::new();
    let mut ring_hops = 0usize;
    for i in 0..LOOKUPS {
        let src = keys[i % NODES];
        let target = Key::hash_of(format!("item-{i}").as_bytes());
        let route = ring.route(src, target, &attachments, &dcache, &mut meter).expect("route");
        ring_hops += route.hop_count();
    }
    println!(
        "ring DHT    : {} nodes, {:.1} rows/node, {:.2} hops/lookup (clockwise successor ownership)",
        ring.len(),
        ring.total_state() as f64 / ring.len() as f64,
        ring_hops as f64 / LOOKUPS as f64
    );

    // --- Prefix DHT (Pastry-like, digit-correcting) ---
    let mut prefix: PrefixDht<u64> = PrefixDht::new(RingConfig::tornado());
    for (i, &k) in keys.iter().enumerate() {
        prefix.insert(k, HostId(i as u32), 1).expect("insert");
    }
    prefix.build_all_tables(&attachments, &dcache, &mut rng);
    let mut prefix_hops = 0usize;
    for i in 0..LOOKUPS {
        let src = keys[i % NODES];
        let target = Key::hash_of(format!("item-{i}").as_bytes());
        prefix_hops += prefix.route(src, target).expect("route").len();
    }
    println!(
        "prefix DHT  : {} nodes, {:.1} rows/node, {:.2} hops/lookup (numerically-closest ownership)",
        prefix.len(),
        prefix.total_state() as f64 / prefix.len() as f64,
        prefix_hops as f64 / LOOKUPS as f64
    );

    // --- CAN (2-d torus) ---
    let mut can: CanOverlay<u64> = CanOverlay::new(2);
    for (i, &k) in keys.iter().enumerate() {
        can.join(k, HostId(i as u32), &mut rng).expect("join");
    }
    let mut can_hops = 0usize;
    for i in 0..LOOKUPS {
        let src = keys[i % NODES];
        let target = Key::hash_of(format!("item-{i}").as_bytes());
        can_hops += can.route(src, target).expect("route").len();
    }
    println!(
        "CAN d=2     : {} nodes, {:.1} neighbors/node, {:.2} hops/lookup (zone ownership)",
        can.len(),
        can.avg_state(),
        can_hops as f64 / LOOKUPS as f64
    );

    // All three agree on the abstraction: put/get roundtrip.
    let item = Key::hash_of(b"the-demo-item");
    let src = keys[0];
    let mut m = Meter::new();
    ring.publish(src, item, 7, 3, &attachments, &dcache, &mut m).expect("publish");
    let out = ring.lookup(src, item, 3, &attachments, &dcache, &mut m).expect("lookup");
    assert_eq!(out.value, Some(7));
    can.put(item, 7);
    assert_eq!(can.get(item).map(|(_, v)| *v), Some(7));
    println!("\nput/get of the same key works across substrates; Bristle's layers can sit on any of them.");
}
