//! Quickstart: build a Bristle system, move a node, watch the overlay
//! keep working.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bristle::overlay::meter::ALL_KINDS;
use bristle::prelude::*;

fn main() -> Result<()> {
    // A Bristle system: 60 stationary nodes form the location repository,
    // 20 mobile nodes roam. Keys are assigned under the clustered naming
    // scheme; the physical network is a generated transit-stub topology.
    let mut sys = BristleBuilder::new(2026).stationary_nodes(60).mobile_nodes(20).build()?;
    println!(
        "built a Bristle system: {} stationary + {} mobile nodes, nabla = {:.2}",
        sys.stationary_keys().len(),
        sys.mobile_keys().len(),
        sys.naming().nabla()
    );

    let laptop = sys.mobile_keys()[0];
    let server = sys.stationary_keys()[0];

    // Store a document in the mobile-layer HS-P2P under some key.
    let doc_key = Key::hash_of(b"docs/meeting-notes.md");
    sys.store_data(server, doc_key, b"bring snacks".to_vec())?;
    println!("stored a document under key {doc_key}");

    // The laptop roams to a new attachment point. Bristle republishes its
    // location to the stationary layer and pushes the update through its
    // location dissemination tree.
    let report = sys.move_node(laptop, None)?;
    println!(
        "laptop {laptop} moved to router {} — location republished in {} hops, \
         {} registrants updated through a depth-{} LDT",
        report.new_router,
        report.publish_hops,
        report.updates_sent,
        report.ldt.depth()
    );

    // Anyone can still reach the laptop: the route resolves its fresh
    // address through the stationary layer when needed (paper Fig. 2).
    let route = sys.route_mobile(server, laptop)?;
    println!(
        "routed server -> laptop: {} forwarding hops, {} discoveries, path cost {}",
        route.forward_hops, route.discoveries, route.path_cost
    );
    assert_eq!(route.terminus, laptop, "the mover kept its overlay identity");

    // And the document is still where the hash says it is.
    let (payload, _) = sys.fetch_data(laptop, doc_key)?;
    println!(
        "fetched the document from the laptop's new location: {:?}",
        String::from_utf8(payload.expect("document present")).expect("utf8")
    );

    // Total protocol traffic so far, by kind:
    for kind in ALL_KINDS {
        let n = sys.meter.count(kind);
        if n > 0 {
            println!("  {kind:?}: {n} messages");
        }
    }
    Ok(())
}
