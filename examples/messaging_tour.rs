//! Messaging-mode tour: the same Bristle system, driven by messages.
//!
//! The function-call path computes a route in one synchronous call; the
//! message-passing driver replays it as envelopes over a deterministic
//! transport, with acks, timeouts and bounded retries. This tour stages
//! the paper's signature failure: a message is forwarded to a mobile
//! node's last known address just as the node moves away. The bytes
//! black-hole at the old router, the sender's retransmissions time out,
//! and the hop falls back to a `_discovery` through the stationary layer
//! — which resolves the fresh address and completes the route. Every
//! timeout and retry lands in the same [`Meter`] the experiments read.
//!
//! Run with: `cargo run --release --example messaging_tour`

use bristle::core::config::BristleConfig;
use bristle::core::system::{BristleBuilder, BristleSystem};
use bristle::core::time::SimTime;
use bristle::netsim::transit_stub::TransitStubConfig;
use bristle::overlay::addr::{NetAddr, StatePair};
use bristle::overlay::key::Key;
use bristle::overlay::meter::MessageKind;
use bristle::proto::transport::FaultConfig;
use bristle::sim::messaging::MessagingBristleSystem;

/// Finds a pair whose mobile-layer route is a single direct hop, so the
/// staged move provably races the in-flight forward.
fn direct_pair(sys: &BristleSystem) -> (Key, Key) {
    for &target in sys.mobile_keys() {
        for src in sys.mobile.keys() {
            if src != target && sys.mobile.next_hop(src, target).ok().flatten() == Some(target) {
                return (src, target);
            }
        }
    }
    panic!("no direct mobile pair in this population");
}

fn main() {
    let sys = BristleBuilder::new(42)
        .stationary_nodes(40)
        .mobile_nodes(12)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds");

    let (src, target) = direct_pair(&sys);
    println!("population: {} stationary + {} mobile nodes", 40, 12);
    println!("route under test: {src} -> {target} (direct mobile hop)\n");

    let mut mbs = MessagingBristleSystem::new(sys, FaultConfig::perfect(), 7);

    // --- Act 1: a clean route, establishing a resolved state-pair. -----
    let before = snapshot(&mbs.sys.meter);
    let rep = mbs.route(src, target).expect("clean route delivers");
    mbs.settle();
    println!("act 1 — clean route: delivered at micro-time {}", rep.delivered_at);
    print_delta("  ", &before, &mbs.sys.meter);

    // Model an established session: src holds a fresh lease on target's
    // current address (a discovery either just did this, or we assert it).
    let info = *mbs.sys.node_info(target).expect("known");
    let addr = NetAddr::current(info.host, &mbs.sys.attachments);
    let (now, ttl) = (mbs.sys.clock.now(), mbs.sys.config().lease_ttl);
    mbs.sys.leases.grant(src, target, now, ttl);
    mbs.sys.mobile.node_mut(src).expect("known").upsert_entry(StatePair::resolved(target, addr));

    // --- Act 2: the target moves while the next message is in flight. --
    let old_router = mbs.sys.router_of(target).expect("known");
    let new_router = mbs
        .sys
        .stub_routers()
        .iter()
        .copied()
        .find(|&r| r != old_router)
        .expect("another stub router exists");
    let t0 = mbs.micro_now();
    mbs.schedule_move(SimTime(t0.0 + 1), target, Some(new_router));
    println!(
        "\nact 2 — {target} moves {old_router} -> {new_router} one tick after the forward is sent"
    );

    let before = snapshot(&mbs.sys.meter);
    let rep = mbs.route(src, target).expect("route recovers through the stationary layer");
    println!("  delivered anyway at micro-time {}", rep.delivered_at);
    print_delta("  ", &before, &mbs.sys.meter);

    let timeouts =
        mbs.sys.meter.count(MessageKind::Timeout) - before_count(&before, MessageKind::Timeout);
    let rediscoveries = mbs.sys.meter.count(MessageKind::DiscoveryRetry)
        - before_count(&before, MessageKind::DiscoveryRetry);
    assert!(timeouts >= 1, "the black-holed hop must time out");
    assert!(rediscoveries >= 1, "recovery must go through _discovery");
    println!(
        "\nthe stale hop timed out {timeouts}x, fell back to {rediscoveries} rediscovery, and the \
         transport trace recorded {} sends",
        mbs.transport().trace().len()
    );
}

fn snapshot(meter: &bristle::overlay::meter::Meter) -> Vec<(MessageKind, u64, u64)> {
    bristle::overlay::meter::ALL_KINDS.iter().map(|&k| (k, meter.count(k), meter.cost(k))).collect()
}

fn before_count(snap: &[(MessageKind, u64, u64)], kind: MessageKind) -> u64 {
    snap.iter().find(|(k, _, _)| *k == kind).map(|(_, c, _)| *c).unwrap_or(0)
}

fn print_delta(
    indent: &str,
    before: &[(MessageKind, u64, u64)],
    after: &bristle::overlay::meter::Meter,
) {
    for &(k, c0, cost0) in before {
        let (c1, cost1) = (after.count(k), after.cost(k));
        if c1 > c0 {
            println!("{indent}{k:?}: {} messages, {} cost", c1 - c0, cost1 - cost0);
        }
    }
}
