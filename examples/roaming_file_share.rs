//! A roaming file-sharing swarm — the workload class the paper's
//! introduction motivates.
//!
//! A mix of desktop peers (stationary) and laptop/phone peers (mobile)
//! share a file split into chunks, each chunk stored in the mobile-layer
//! HS-P2P at its hash key. The mobile peers keep moving between networks
//! while downloads are in flight. With Bristle, chunk ownership follows
//! the node's overlay identity, so every chunk stays retrievable; a
//! Type A system (leave + rejoin) run side by side on the same workload
//! loses the chunks owned by movers.
//!
//! ```text
//! cargo run --release --example roaming_file_share
//! ```

use bristle::prelude::*;
use bristle::sim::baseline_type_a::TypeASystem;
use bristle_netsim::transit_stub::TransitStubConfig;

const CHUNKS: usize = 64;
const ROUNDS: usize = 3;

fn chunk_key(i: usize) -> Key {
    Key::hash_of(format!("big-file.iso/chunk/{i}").as_bytes())
}

fn main() -> Result<()> {
    println!("--- Bristle swarm ---");
    let mut sys = BristleBuilder::new(7)
        .stationary_nodes(80)
        .mobile_nodes(40)
        .topology(TransitStubConfig::small())
        .build()?;

    // The seeder (a stationary peer) publishes all chunks.
    let seeder = sys.stationary_keys()[0];
    for i in 0..CHUNKS {
        sys.store_data(seeder, chunk_key(i), format!("chunk-{i}-data").into_bytes())?;
    }
    println!("seeded {CHUNKS} chunks from {seeder}");

    // Several rounds of: everyone moves, then a mobile peer downloads.
    let mut fetched = 0usize;
    let mut discoveries = 0usize;
    for round in 0..ROUNDS {
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None)?;
        }
        let downloader = sys.mobile_keys()[round % sys.mobile_keys().len()];
        for i in 0..CHUNKS {
            let (payload, rep) = sys.fetch_data(downloader, chunk_key(i))?;
            assert!(payload.is_some(), "chunk {i} must survive movement");
            fetched += 1;
            discoveries += rep.discoveries;
        }
        println!(
            "round {}: all {} mobile peers moved, downloader {} fetched {}/{} chunks",
            round + 1,
            sys.mobile_keys().len(),
            downloader,
            CHUNKS,
            CHUNKS
        );
    }
    println!(
        "Bristle: {fetched} chunk fetches, 100% availability, {discoveries} address \
         resolutions performed transparently\n"
    );

    // The same workload on a Type A overlay: movers lose their identity,
    // and every chunk they owned dies with it.
    println!("--- Type A swarm (leave + rejoin on move) ---");
    let mut type_a = TypeASystem::build(7, 80, 40, &TransitStubConfig::small(), 1);
    let seeder_body = type_a.stationary_bodies()[0];
    for i in 0..CHUNKS {
        type_a
            .publish(seeder_body, chunk_key(i), format!("chunk-{i}-data").into_bytes())
            .expect("publish");
    }
    let mut survived = 0usize;
    for _ in 0..ROUNDS {
        for body in type_a.mobile_bodies() {
            type_a.move_body(body).expect("move");
        }
    }
    let reader = type_a.stationary_bodies()[1];
    for i in 0..CHUNKS {
        let (found, _) = type_a.lookup(reader, chunk_key(i)).expect("lookup");
        if found {
            survived += 1;
        }
    }
    println!(
        "Type A: {survived}/{CHUNKS} chunks still retrievable after the same movement \
         ({} were owned by movers and died with their old identities)",
        CHUNKS - survived
    );
    Ok(())
}
