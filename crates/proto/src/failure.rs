//! Lease-based crash-failure detection.
//!
//! A [`FailureDetector`] tracks the liveness of a set of monitored peers
//! through heartbeat probes. Like everything in this crate it is
//! sans-I/O: the detector only hands out probe sequence numbers and
//! digests acks and timeouts; [`crate::machine::ProtoMachine`] turns its
//! decisions into [`crate::wire::WireMessage::Heartbeat`] traffic and
//! the driver supplies time.
//!
//! The suspicion state machine follows the classic lease shape: a peer
//! is [`Liveness::Fresh`] while its heartbeats come back, becomes
//! [`Liveness::Suspect`] after `suspect_after` consecutive missed
//! probe rounds, and [`Liveness::Dead`] after `dead_after`. A round is
//! only *missed* once `probe_attempts` retransmissions of the same
//! probe all went unanswered, which keeps false confirmations
//! vanishingly rare on a lossy-but-alive link (at 10% independent loss
//! per direction, one round misses with probability `0.19^3 ≈ 0.7%`,
//! and a false *confirmation* needs `dead_after` such rounds in a row).
//! Any ack restores a suspect to fresh.
//!
//! Suspicion and death are charged against a SWIM-style **incarnation
//! number** per peer. Within one incarnation death is final — but a
//! network partition makes live nodes indistinguishable from dead ones,
//! so verdicts must be revocable by stronger evidence: observing a peer
//! alive at a *fresher* incarnation ([`FailureDetector::observe_alive`])
//! drops any standing suspicion or death verdict, because only the peer
//! itself can bump its incarnation (it does so exactly when it learns it
//! was declared dead, then broadcasts an `Alive` refutation).

use std::collections::HashMap;

use bristle_overlay::key::Key;

/// Heartbeat probing and suspicion thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailurePolicy {
    /// Ticks to wait for a HeartbeatAck before retransmitting.
    pub ack_wait: u64,
    /// Sends of one probe (first try included) before the round counts
    /// as missed.
    pub probe_attempts: u32,
    /// Consecutive missed rounds before a peer becomes suspect.
    pub suspect_after: u32,
    /// Consecutive missed rounds before a peer is confirmed dead.
    pub dead_after: u32,
    /// Extra missed rounds granted before condemnation while the peer's
    /// health score is still high (it has been acking recently, so the
    /// misses look like gray failure, not death). `0` disables the
    /// grace entirely and restores the binary alive/dead behaviour.
    pub grace_misses: u32,
}

impl Default for FailurePolicy {
    fn default() -> Self {
        // ack_wait matches RetryPolicy::ack_timeout so heartbeat probes
        // tolerate the same link latencies as data traffic.
        FailurePolicy {
            ack_wait: 20_000,
            probe_attempts: 3,
            suspect_after: 2,
            dead_after: 3,
            grace_misses: 0,
        }
    }
}

/// A peer's health score starts (and is capped) here.
pub const FULL_HEALTH: u32 = 100;

/// Peers whose score has fallen below this are *degraded*: alive, but
/// answering late or only after retransmissions. Drivers use this to
/// prefer healthier replicas (latency-aware failover).
pub const DEGRADED_HEALTH: u32 = 80;

/// What the detector currently believes about a monitored peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Answering heartbeats.
    Fresh,
    /// Missed enough rounds to be suspected, not yet condemned.
    Suspect,
    /// Confirmed crashed at its current incarnation. Acks from a dead
    /// peer are ignored unless they carry a fresher incarnation.
    Dead,
}

/// A liveness state change caused by a missed probe round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessTransition {
    /// Fresh → Suspect.
    Suspected,
    /// Suspect (or Fresh, with `dead_after <= suspect_after`) → Dead.
    ConfirmedDead,
}

/// What to do when a probe's ack window expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutVerdict {
    /// Stale timer (probe already acked, peer unmonitored or dead).
    Ignore,
    /// Retransmit the same probe; this is send number `attempt + 1`.
    Resend {
        /// Zero-based retransmission counter.
        attempt: u32,
    },
    /// The round is missed; `transition` is the resulting state change,
    /// if any.
    Missed {
        /// State change triggered by the miss.
        transition: Option<LivenessTransition>,
    },
}

#[derive(Debug, Clone, Copy)]
struct PeerHealth {
    liveness: Liveness,
    /// Consecutive missed rounds.
    missed: u32,
    /// Next probe sequence number to hand out.
    next_seq: u64,
    /// The probe in flight: (sequence, zero-based attempt).
    awaiting: Option<(u64, u32)>,
    /// Highest incarnation the peer has been observed at; suspicion and
    /// death are charged against this number.
    incarnation: u64,
    /// Health score in `[0, FULL_HEALTH]`: acks raise it, retransmissions
    /// and missed rounds bleed it. Low-but-alive peers are *degraded*
    /// and drivers steer load away from them.
    score: u32,
    /// Gray-failure evidence: rounds answered only after a
    /// retransmission. Each earns one extra missed round before
    /// condemnation, capped at [`FailurePolicy::grace_misses`]. A peer
    /// that was acking promptly and then crashes earned none, so its
    /// funeral schedule is untouched.
    grace_credit: u32,
}

impl PeerHealth {
    fn fresh() -> Self {
        PeerHealth {
            liveness: Liveness::Fresh,
            missed: 0,
            next_seq: 0,
            awaiting: None,
            incarnation: 0,
            score: FULL_HEALTH,
            grace_credit: 0,
        }
    }
}

/// Per-node suspicion state over a set of monitored peers.
#[derive(Debug)]
pub struct FailureDetector {
    policy: FailurePolicy,
    peers: HashMap<Key, PeerHealth>,
}

impl FailureDetector {
    /// A detector with the given thresholds, monitoring nobody.
    pub fn new(policy: FailurePolicy) -> Self {
        FailureDetector { policy, peers: HashMap::new() }
    }

    /// The configured thresholds.
    pub fn policy(&self) -> FailurePolicy {
        self.policy
    }

    /// Starts monitoring `peer` (no-op if already monitored; existing
    /// suspicion state is kept).
    pub fn monitor(&mut self, peer: Key) {
        self.peers.entry(peer).or_insert_with(PeerHealth::fresh);
    }

    /// Stops monitoring `peer`. Returns whether it was monitored.
    pub fn unmonitor(&mut self, peer: Key) -> bool {
        self.peers.remove(&peer).is_some()
    }

    /// Drops every monitored peer for which `keep` returns false.
    pub fn retain_monitored(&mut self, mut keep: impl FnMut(Key) -> bool) {
        self.peers.retain(|&k, _| keep(k));
    }

    /// All monitored peers, sorted (deterministic iteration order).
    pub fn monitored(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.peers.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// Current belief about `peer`, or `None` if unmonitored.
    pub fn liveness(&self, peer: Key) -> Option<Liveness> {
        self.peers.get(&peer).map(|p| p.liveness)
    }

    /// Whether `peer` is monitored and confirmed dead.
    pub fn is_dead(&self, peer: Key) -> bool {
        self.liveness(peer) == Some(Liveness::Dead)
    }

    /// Highest incarnation `peer` has been observed at, or `None` if
    /// unmonitored.
    pub fn incarnation_of(&self, peer: Key) -> Option<u64> {
        self.peers.get(&peer).map(|p| p.incarnation)
    }

    /// `peer`'s health score in `[0, FULL_HEALTH]`, or `None` if
    /// unmonitored. Acks raise it, retransmissions and misses bleed it.
    pub fn health(&self, peer: Key) -> Option<u32> {
        self.peers.get(&peer).map(|p| p.score)
    }

    /// Whether `peer` is monitored, believed alive, and scoring below
    /// [`DEGRADED_HEALTH`] — answering, but late or only after
    /// retransmissions.
    pub fn is_degraded(&self, peer: Key) -> bool {
        self.peers
            .get(&peer)
            .is_some_and(|p| p.liveness != Liveness::Dead && p.score < DEGRADED_HEALTH)
    }

    /// Digests evidence that `peer` is alive at `incarnation` (from a
    /// heartbeat, an ack, or an `Alive` refutation). A strictly fresher
    /// incarnation overrides any standing suspicion or death verdict and
    /// resets the peer to [`Liveness::Fresh`]; stale or equal
    /// incarnations change nothing. Returns the liveness the refutation
    /// overturned (`Suspect` or `Dead`), or `None` if nothing changed.
    pub fn observe_alive(&mut self, peer: Key, incarnation: u64) -> Option<Liveness> {
        let p = self.peers.get_mut(&peer)?;
        if incarnation <= p.incarnation {
            return None;
        }
        p.incarnation = incarnation;
        if p.liveness == Liveness::Fresh {
            return None;
        }
        let overturned = p.liveness;
        p.liveness = Liveness::Fresh;
        p.missed = 0;
        p.awaiting = None;
        Some(overturned)
    }

    /// Opens a probe round for `peer`: returns the sequence number to
    /// send, or `None` when no probe should go out (unmonitored, dead,
    /// or a probe is already in flight).
    pub fn begin_probe(&mut self, peer: Key) -> Option<u64> {
        let p = self.peers.get_mut(&peer)?;
        if p.liveness == Liveness::Dead || p.awaiting.is_some() {
            return None;
        }
        let seq = p.next_seq;
        p.next_seq += 1;
        p.awaiting = Some((seq, 0));
        Some(seq)
    }

    /// Digests a HeartbeatAck carrying the responder's `incarnation`.
    /// Returns whether it closed the in-flight probe (acks for stale
    /// sequences change nothing; acks from a dead peer are ignored
    /// unless the incarnation is fresh enough to resurrect it first —
    /// see [`FailureDetector::observe_alive`]).
    pub fn ack(&mut self, peer: Key, seq: u64, incarnation: u64) -> bool {
        self.observe_alive(peer, incarnation);
        let Some(p) = self.peers.get_mut(&peer) else { return false };
        if p.liveness == Liveness::Dead {
            return false;
        }
        match p.awaiting {
            Some((s, attempt)) if s == seq => {
                p.awaiting = None;
                p.missed = 0;
                p.liveness = Liveness::Fresh;
                p.score = (p.score + 15).min(FULL_HEALTH);
                if attempt > 0 {
                    // Answered, but only after a retransmission: the
                    // signature of a slow-not-dead peer. Earn one round
                    // of condemnation grace (bounded by policy).
                    p.grace_credit = (p.grace_credit + 1).min(self.policy.grace_misses);
                }
                true
            }
            _ => false,
        }
    }

    /// Digests the expiry of the ack window for probe `seq` to `peer`.
    pub fn on_timeout(&mut self, peer: Key, seq: u64) -> TimeoutVerdict {
        let Some(p) = self.peers.get_mut(&peer) else { return TimeoutVerdict::Ignore };
        if p.liveness == Liveness::Dead {
            return TimeoutVerdict::Ignore;
        }
        match p.awaiting {
            Some((s, attempt)) if s == seq => {
                if attempt + 1 < self.policy.probe_attempts {
                    p.awaiting = Some((seq, attempt + 1));
                    p.score = p.score.saturating_sub(10);
                    return TimeoutVerdict::Resend { attempt: attempt + 1 };
                }
                p.awaiting = None;
                p.missed += 1;
                p.score = p.score.saturating_sub(25);
                // Earned grace: every round this peer answered late (the
                // gray-failure signature) buys one extra missed round
                // before the funeral. A peer that acked promptly until it
                // crashed earned nothing — its schedule is unchanged.
                let dead_after = self.policy.dead_after + p.grace_credit;
                let transition = if p.missed >= dead_after {
                    p.liveness = Liveness::Dead;
                    Some(LivenessTransition::ConfirmedDead)
                } else if p.missed >= self.policy.suspect_after && p.liveness == Liveness::Fresh {
                    p.liveness = Liveness::Suspect;
                    Some(LivenessTransition::Suspected)
                } else {
                    None
                };
                TimeoutVerdict::Missed { transition }
            }
            _ => TimeoutVerdict::Ignore,
        }
    }

    /// Marks `peer` dead outright (e.g. on a third-party SuspectNotify
    /// charging `incarnation`), monitoring it first if necessary. A
    /// verdict against an incarnation older than the one already
    /// observed is stale evidence and is ignored. Returns whether this
    /// is news.
    pub fn mark_dead(&mut self, peer: Key, incarnation: u64) -> bool {
        let p = self.peers.entry(peer).or_insert_with(PeerHealth::fresh);
        if incarnation < p.incarnation {
            return false;
        }
        p.incarnation = incarnation;
        if p.liveness == Liveness::Dead {
            return false;
        }
        p.liveness = Liveness::Dead;
        p.awaiting = None;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Key = Key(5);

    fn det() -> FailureDetector {
        FailureDetector::new(FailurePolicy {
            ack_wait: 100,
            probe_attempts: 2,
            suspect_after: 2,
            dead_after: 3,
            grace_misses: 0,
        })
    }

    /// Runs one fully-missed round: every retransmission times out.
    fn miss_round(d: &mut FailureDetector) -> Option<LivenessTransition> {
        let seq = d.begin_probe(P).expect("probe opens");
        loop {
            match d.on_timeout(P, seq) {
                TimeoutVerdict::Resend { .. } => continue,
                TimeoutVerdict::Missed { transition } => return transition,
                TimeoutVerdict::Ignore => panic!("round still open"),
            }
        }
    }

    #[test]
    fn acked_probe_stays_fresh() {
        let mut d = det();
        d.monitor(P);
        let seq = d.begin_probe(P).unwrap();
        assert!(d.ack(P, seq, 0));
        assert_eq!(d.liveness(P), Some(Liveness::Fresh));
        assert_eq!(d.on_timeout(P, seq), TimeoutVerdict::Ignore, "stale timer");
    }

    #[test]
    fn retransmits_before_counting_a_miss() {
        let mut d = det();
        d.monitor(P);
        let seq = d.begin_probe(P).unwrap();
        assert_eq!(d.on_timeout(P, seq), TimeoutVerdict::Resend { attempt: 1 });
        // A late ack of the retransmitted probe still counts.
        assert!(d.ack(P, seq, 0));
        assert_eq!(d.liveness(P), Some(Liveness::Fresh));
    }

    #[test]
    fn consecutive_misses_suspect_then_condemn() {
        let mut d = det();
        d.monitor(P);
        assert_eq!(miss_round(&mut d), None, "one miss is tolerated");
        assert_eq!(miss_round(&mut d), Some(LivenessTransition::Suspected));
        assert_eq!(d.liveness(P), Some(Liveness::Suspect));
        assert_eq!(miss_round(&mut d), Some(LivenessTransition::ConfirmedDead));
        assert_eq!(d.liveness(P), Some(Liveness::Dead));
        assert_eq!(d.begin_probe(P), None, "dead peers are not probed");
        assert!(!d.ack(P, 99, 0), "death is final within an incarnation");
        assert_eq!(d.liveness(P), Some(Liveness::Dead));
    }

    #[test]
    fn ack_recovers_a_suspect() {
        let mut d = det();
        d.monitor(P);
        miss_round(&mut d);
        miss_round(&mut d);
        assert_eq!(d.liveness(P), Some(Liveness::Suspect));
        let seq = d.begin_probe(P).unwrap();
        assert!(d.ack(P, seq, 0));
        assert_eq!(d.liveness(P), Some(Liveness::Fresh));
        // The miss counter reset too: condemnation needs 3 fresh misses.
        assert_eq!(miss_round(&mut d), None);
        assert_eq!(miss_round(&mut d), Some(LivenessTransition::Suspected));
    }

    #[test]
    fn stale_sequence_ack_is_ignored() {
        let mut d = det();
        d.monitor(P);
        let s0 = d.begin_probe(P).unwrap();
        // Round misses; a later round opens with a fresh sequence.
        while !matches!(d.on_timeout(P, s0), TimeoutVerdict::Missed { .. }) {}
        let s1 = d.begin_probe(P).unwrap();
        assert_ne!(s0, s1);
        assert!(!d.ack(P, s0, 0), "old sequence does not close the new probe");
        assert!(d.ack(P, s1, 0));
    }

    #[test]
    fn mark_dead_is_news_once_and_implies_monitoring() {
        let mut d = det();
        assert!(d.mark_dead(P, 0), "first report is news");
        assert!(!d.mark_dead(P, 0), "repeat is not");
        assert!(d.is_dead(P));
        assert_eq!(d.monitored(), vec![P]);
    }

    #[test]
    fn only_one_probe_in_flight_per_peer() {
        let mut d = det();
        d.monitor(P);
        let seq = d.begin_probe(P).unwrap();
        assert_eq!(d.begin_probe(P), None, "round already open");
        assert!(d.ack(P, seq, 0));
        assert!(d.begin_probe(P).is_some(), "next round opens after the ack");
    }

    #[test]
    fn fresher_incarnation_refutes_death() {
        let mut d = det();
        d.monitor(P);
        miss_round(&mut d);
        miss_round(&mut d);
        miss_round(&mut d);
        assert!(d.is_dead(P));
        // Evidence at the condemned incarnation changes nothing...
        assert_eq!(d.observe_alive(P, 0), None);
        assert!(d.is_dead(P));
        // ...but a fresher incarnation overturns the verdict.
        assert_eq!(d.observe_alive(P, 1), Some(Liveness::Dead));
        assert_eq!(d.liveness(P), Some(Liveness::Fresh));
        assert_eq!(d.incarnation_of(P), Some(1));
        assert!(d.begin_probe(P).is_some(), "resurrected peers are probed again");
    }

    #[test]
    fn fresher_incarnation_drops_suspicion() {
        let mut d = det();
        d.monitor(P);
        miss_round(&mut d);
        miss_round(&mut d);
        assert_eq!(d.liveness(P), Some(Liveness::Suspect));
        assert_eq!(d.observe_alive(P, 1), Some(Liveness::Suspect));
        assert_eq!(d.liveness(P), Some(Liveness::Fresh));
        // The miss counter reset: condemnation needs 3 fresh misses.
        assert_eq!(miss_round(&mut d), None);
    }

    #[test]
    fn ack_with_fresh_incarnation_resurrects() {
        let mut d = det();
        d.monitor(P);
        miss_round(&mut d);
        miss_round(&mut d);
        miss_round(&mut d);
        assert!(d.is_dead(P));
        let seq = d.begin_probe(P);
        assert_eq!(seq, None, "dead peers are not probed");
        // A zombie's ack at incarnation 1 resurrects it, though no probe
        // is in flight to close.
        assert!(!d.ack(P, 99, 1));
        assert_eq!(d.liveness(P), Some(Liveness::Fresh));
    }

    #[test]
    fn stale_death_verdict_is_ignored() {
        let mut d = det();
        d.monitor(P);
        assert_eq!(d.observe_alive(P, 2), None, "fresh peer stays fresh");
        assert_eq!(d.incarnation_of(P), Some(2));
        assert!(!d.mark_dead(P, 1), "verdict against an older incarnation is stale");
        assert_eq!(d.liveness(P), Some(Liveness::Fresh));
        assert!(d.mark_dead(P, 2), "verdict at the current incarnation sticks");
        assert!(d.is_dead(P));
    }

    #[test]
    fn health_bleeds_on_misses_and_recovers_on_acks() {
        let mut d = det();
        d.monitor(P);
        assert_eq!(d.health(P), Some(FULL_HEALTH));
        assert!(!d.is_degraded(P));
        // One resend then a late ack: the peer looks slow, not dead.
        let seq = d.begin_probe(P).unwrap();
        assert_eq!(d.on_timeout(P, seq), TimeoutVerdict::Resend { attempt: 1 });
        assert_eq!(d.health(P), Some(FULL_HEALTH - 10));
        assert!(d.ack(P, seq, 0));
        assert_eq!(d.health(P), Some(FULL_HEALTH), "ack restores the score (capped)");
        // A fully missed round bleeds resend + miss penalties.
        miss_round(&mut d);
        assert_eq!(d.health(P), Some(FULL_HEALTH - 10 - 25));
        assert!(d.is_degraded(P));
    }

    #[test]
    fn grace_spares_a_recently_acking_peer_but_not_a_corpse() {
        let policy = FailurePolicy {
            ack_wait: 100,
            probe_attempts: 2,
            suspect_after: 2,
            dead_after: 3,
            grace_misses: 2,
        };
        // A gray-failing peer: acks every round, but only after a
        // resend. Each late ack earns one round of grace (capped at
        // `grace_misses`), so when it then goes quiet it survives
        // `dead_after + 2` rounds instead of `dead_after`.
        let mut slow = FailureDetector::new(policy);
        slow.monitor(P);
        for _ in 0..4 {
            let seq = slow.begin_probe(P).unwrap();
            assert!(matches!(slow.on_timeout(P, seq), TimeoutVerdict::Resend { .. }));
            assert!(slow.ack(P, seq, 0));
        }
        assert_eq!(miss_round(&mut slow), None);
        assert_eq!(miss_round(&mut slow), Some(LivenessTransition::Suspected));
        assert_eq!(miss_round(&mut slow), None, "round 3: earned grace holds");
        assert_eq!(miss_round(&mut slow), None, "round 4: earned grace holds");
        assert!(slow.liveness(P) != Some(Liveness::Dead));
        assert_eq!(miss_round(&mut slow), Some(LivenessTransition::ConfirmedDead));

        // A peer that acked promptly until it crashed earned no grace:
        // its condemnation schedule is exactly the no-grace one.
        let mut dead = FailureDetector::new(policy);
        dead.monitor(P);
        for _ in 0..4 {
            let seq = dead.begin_probe(P).unwrap();
            assert!(dead.ack(P, seq, 0), "prompt acks earn no grace");
        }
        assert_eq!(miss_round(&mut dead), None);
        assert_eq!(miss_round(&mut dead), Some(LivenessTransition::Suspected));
        assert_eq!(miss_round(&mut dead), Some(LivenessTransition::ConfirmedDead));
    }

    #[test]
    fn monitored_is_sorted_and_unmonitor_forgets() {
        let mut d = det();
        d.monitor(Key(9));
        d.monitor(Key(1));
        d.monitor(Key(4));
        assert_eq!(d.monitored(), vec![Key(1), Key(4), Key(9)]);
        assert!(d.unmonitor(Key(4)));
        assert!(!d.unmonitor(Key(4)));
        d.retain_monitored(|k| k != Key(9));
        assert_eq!(d.monitored(), vec![Key(1)]);
    }
}
