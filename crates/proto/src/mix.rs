//! Shared seeded-hash helper.
//!
//! Several determinism-sensitive corners of the crate need to turn a
//! counter or seed into well-mixed bits without carrying RNG state: the
//! transport's degradation side-stream and the RTO estimator's timer
//! jitter both hash `(salt, draw counter)` pairs. They must keep using
//! the *same* finalizer forever — committed golden traces and BENCH
//! reports pin its outputs — so the function lives here once instead of
//! drifting as per-module copies.

/// SplitMix64 finalizer: the standard avalanche step of Steele et al.'s
/// SplitMix64 generator. Bijective on `u64`, so distinct inputs can
/// never collide.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the finalizer's outputs byte-for-byte. Both the transport's
    /// degradation loss stream and the RTO jitter draw from this
    /// function; a change here silently re-seeds every committed golden
    /// trace and BENCH report, so the constants are load-bearing.
    #[test]
    fn outputs_are_pinned() {
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(2), 0x9758_35DE_1C97_56CE);
        assert_eq!(splitmix64(0xDEAD_BEEF), 0x4ADF_B90F_68C9_EB9B);
        assert_eq!(splitmix64(u64::MAX), 0xE4D9_7177_1B65_2C20);
    }

    /// Sequential inputs avalanche: no two nearby counters share high
    /// bits (a smoke check that the constants were not fat-fingered).
    #[test]
    fn nearby_inputs_diverge() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1024u64 {
            assert!(seen.insert(splitmix64(i) >> 32), "high bits collide at {i}");
        }
    }
}
