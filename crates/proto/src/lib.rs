//! `bristle-proto` — sans-I/O message-passing protocol core.
//!
//! This crate turns the function-call semantics of `bristle-core` into an
//! explicit wire protocol: typed messages with a binary codec
//! ([`wire`]), per-node protocol state machines driven by
//! `poll(now, event)` ([`machine`]), and a transport abstraction with a
//! deterministic, fault-injecting in-memory implementation
//! ([`transport`]), and a lease-based crash-failure detector
//! ([`failure`]). Nothing in this crate performs I/O or reads a clock;
//! all effects are returned as values so the same state machines can be
//! driven by a simulator today and real sockets later.

pub mod failure;
pub mod machine;
pub mod mix;
pub mod rto;
pub mod transport;
pub mod wire;

pub use failure::{FailureDetector, FailurePolicy, Liveness, LivenessTransition, TimeoutVerdict};
pub use machine::{
    Completion, Event, NodeEnv, Outgoing, Output, ProtoMachine, RetryPolicy, Timer, TimerKind,
};
pub use mix::splitmix64;
pub use rto::{RtoConfig, RtoEstimator};
pub use transport::{
    Degradation, Delivery, Fate, FaultConfig, LinkFilter, SimTransport, TraceRecord, Transport,
};
pub use wire::{Envelope, WireAddr, WireError, WireMessage};
