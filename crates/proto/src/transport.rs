//! Transport abstraction and the deterministic in-memory simulator.
//!
//! [`Transport`] is the machine-facing contract: given a send at some
//! time between two routers, produce zero or more timestamped
//! deliveries. [`SimTransport`] implements it over the physical
//! topology's [`DistanceCache`] — per-link latency is the shortest-path
//! weight plus a configured base and seeded jitter — and injects faults
//! (drops, duplication, reordering via jitter, link and partition
//! outages) from a seeded [`Pcg64`], so every run with the same seed and
//! fault schedule produces a byte-identical delivery trace.

use std::collections::BTreeSet;
use std::sync::Arc;

use bristle_core::time::SimTime;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::RouterId;
use bristle_netsim::rng::Pcg64;

use crate::wire::Envelope;

/// A scheduled delivery: when, at which router, carrying what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival time.
    pub at: SimTime,
    /// Router the bytes arrive at (the destination the *sender* chose;
    /// if the host has moved away since, the driver discards it).
    pub to_router: RouterId,
    /// The message.
    pub env: Envelope,
}

/// The machine-facing transport contract.
pub trait Transport {
    /// Submits `env` from `from` toward `to` at time `now`; returns the
    /// deliveries this causes (empty = dropped, two = duplicated).
    fn send(&mut self, now: SimTime, from: RouterId, to: RouterId, env: Envelope) -> Vec<Delivery>;
}

/// Fault-injection knobs, all off by default.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a send is silently dropped.
    pub drop_probability: f64,
    /// Probability a delivered send also arrives a second time.
    pub duplicate_probability: f64,
    /// Base latency added to every link's path weight.
    pub min_latency: u64,
    /// Maximum extra seeded jitter per delivery (inclusive); non-zero
    /// jitter reorders messages that race on different links.
    pub jitter: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { drop_probability: 0.0, duplicate_probability: 0.0, min_latency: 1, jitter: 0 }
    }
}

impl FaultConfig {
    /// A perfect network: every send arrives exactly once.
    pub fn perfect() -> Self {
        Self::default()
    }

    /// A lossy network dropping the given fraction of sends.
    pub fn lossy(drop_probability: f64) -> Self {
        FaultConfig { drop_probability, ..Self::default() }.normalized()
    }

    /// The same configuration with both probabilities clamped into
    /// `[0, 1]` (NaN counts as 0). An out-of-range probability would
    /// otherwise silently skew the fixed per-send draw order; the
    /// transport normalizes every configuration it is handed.
    pub fn normalized(mut self) -> Self {
        self.drop_probability = clamp_probability(self.drop_probability);
        self.duplicate_probability = clamp_probability(self.duplicate_probability);
        self
    }
}

fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// Deterministic link/partition outages consulted before every send.
///
/// All lookups are `O(log n)` sorted-set membership tests — `blocks`
/// runs on the hot path of every send. Four independent rules compose:
/// symmetric link blocks, asymmetric (one-way) blocks, fully isolated
/// routers, and a group partition that cuts all traffic between routers
/// assigned to different groups.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFilter {
    /// Router pairs whose link is down both ways, stored normalized
    /// (smaller id first).
    blocked_links: BTreeSet<(RouterId, RouterId)>,
    /// Directed `(from, to)` pairs blocked in that direction only.
    oneway: BTreeSet<(RouterId, RouterId)>,
    /// Routers partitioned off entirely (no traffic in or out).
    partitioned: BTreeSet<RouterId>,
    /// Disjoint router groups; traffic between different groups is cut.
    /// Routers in no group talk to everyone (subject to the other rules).
    groups: Vec<BTreeSet<RouterId>>,
}

impl LinkFilter {
    /// Blocks the `a`–`b` link in both directions.
    pub fn block_link(mut self, a: RouterId, b: RouterId) -> Self {
        self.blocked_links.insert(normalize_pair(a, b));
        self
    }

    /// Blocks traffic from `from` to `to` only; the reverse direction
    /// stays up (a unidirectional outage).
    pub fn block_oneway(mut self, from: RouterId, to: RouterId) -> Self {
        self.oneway.insert((from, to));
        self
    }

    /// Cuts `router` off entirely: nothing in, nothing out.
    pub fn isolate(mut self, router: RouterId) -> Self {
        self.partitioned.insert(router);
        self
    }

    /// Partitions the network into the given disjoint groups; all
    /// traffic between routers of different groups is cut. Replaces any
    /// previous group assignment.
    pub fn partition_groups(mut self, groups: &[Vec<RouterId>]) -> Self {
        self.groups = groups.iter().map(|g| g.iter().copied().collect()).collect();
        self
    }

    /// Whether the filter blocks nothing at all.
    pub fn is_empty(&self) -> bool {
        self.blocked_links.is_empty()
            && self.oneway.is_empty()
            && self.partitioned.is_empty()
            && self.groups.is_empty()
    }

    /// Whether traffic from `a` to `b` is blocked.
    pub fn blocks(&self, a: RouterId, b: RouterId) -> bool {
        self.partitioned.contains(&a)
            || self.partitioned.contains(&b)
            || self.blocked_links.contains(&normalize_pair(a, b))
            || self.oneway.contains(&(a, b))
            || self.cut_by_groups(a, b)
    }

    fn cut_by_groups(&self, a: RouterId, b: RouterId) -> bool {
        let group_of = |r| self.groups.iter().position(|g| g.contains(&r));
        match (group_of(a), group_of(b)) {
            (Some(ga), Some(gb)) => ga != gb,
            _ => false,
        }
    }
}

fn normalize_pair(a: RouterId, b: RouterId) -> (RouterId, RouterId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// What happened to one send, for the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Arrived exactly once.
    Delivered,
    /// Silently lost (random drop).
    Dropped,
    /// Arrived twice.
    Duplicated,
    /// Blocked by an outage or partition.
    Blocked,
}

impl Fate {
    fn code(self) -> u8 {
        match self {
            Fate::Delivered => 0,
            Fate::Dropped => 1,
            Fate::Duplicated => 2,
            Fate::Blocked => 3,
        }
    }
}

/// One row of the transport's append-only trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Send order (0-based).
    pub seq: u64,
    /// Submission time.
    pub sent_at: SimTime,
    /// Source router.
    pub from: RouterId,
    /// Destination router.
    pub to: RouterId,
    /// Message tag (see [`crate::wire::WireMessage::tag`]).
    pub tag: u8,
    /// Sender-scoped message id.
    pub msg_id: u64,
    /// Outcome.
    pub fate: Fate,
    /// Every arrival this send caused, in the order the copies were
    /// scheduled: empty when dropped or blocked, one entry when
    /// delivered, two (primary then duplicate) when duplicated.
    pub arrivals: Vec<SimTime>,
}

/// The deterministic in-memory transport.
pub struct SimTransport {
    dcache: Arc<DistanceCache>,
    faults: FaultConfig,
    filter: LinkFilter,
    rng: Pcg64,
    trace: Vec<TraceRecord>,
}

impl SimTransport {
    /// A transport over `dcache`'s topology with the given faults,
    /// drawing all randomness from `seed`.
    pub fn new(dcache: Arc<DistanceCache>, faults: FaultConfig, seed: u64) -> Self {
        SimTransport {
            dcache,
            faults: faults.normalized(),
            filter: LinkFilter::default(),
            rng: Pcg64::seed_from_u64(seed),
            trace: Vec::new(),
        }
    }

    /// Replaces the outage schedule.
    pub fn set_filter(&mut self, filter: LinkFilter) {
        self.filter = filter;
    }

    /// Current fault configuration.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// The append-only send trace.
    pub fn trace(&self) -> &[TraceRecord] {
        &self.trace
    }

    /// Serializes the trace into a canonical byte string; two runs are
    /// behaviourally identical iff their trace bytes are equal.
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.trace.len() * 48);
        for r in &self.trace {
            out.extend_from_slice(&r.seq.to_le_bytes());
            out.extend_from_slice(&r.sent_at.0.to_le_bytes());
            out.extend_from_slice(&r.from.0.to_le_bytes());
            out.extend_from_slice(&r.to.0.to_le_bytes());
            out.push(r.tag);
            out.extend_from_slice(&r.msg_id.to_le_bytes());
            out.push(r.fate.code());
            out.push(r.arrivals.len() as u8);
            for a in &r.arrivals {
                out.extend_from_slice(&a.0.to_le_bytes());
            }
        }
        out
    }
}

impl Transport for SimTransport {
    fn send(&mut self, now: SimTime, from: RouterId, to: RouterId, env: Envelope) -> Vec<Delivery> {
        let seq = self.trace.len() as u64;
        let tag = env.msg.tag();
        let msg_id = env.msg_id;
        let mut record = TraceRecord {
            seq,
            sent_at: now,
            from,
            to,
            tag,
            msg_id,
            fate: Fate::Delivered,
            arrivals: Vec::new(),
        };

        if self.filter.blocks(from, to) {
            record.fate = Fate::Blocked;
            self.trace.push(record);
            return Vec::new();
        }

        // Fixed draw order per send — drop, duplicate, jitter, dup-jitter —
        // so the random stream (and thus the trace) is reproducible even
        // as probabilities vary.
        let dropped = self.rng.chance(self.faults.drop_probability);
        let duplicated = self.rng.chance(self.faults.duplicate_probability);
        let jitter = if self.faults.jitter > 0 {
            self.rng.range_inclusive(0, self.faults.jitter)
        } else {
            0
        };
        let dup_jitter = if self.faults.jitter > 0 {
            self.rng.range_inclusive(0, self.faults.jitter)
        } else {
            0
        };

        if dropped {
            record.fate = Fate::Dropped;
            self.trace.push(record);
            return Vec::new();
        }

        let base = self.dcache.distance(from, to) + self.faults.min_latency;
        let arrival = now.plus(base + jitter);
        record.arrivals.push(arrival);
        // N arrivals cost N−1 clones: the last delivery takes `env` by
        // move, so the common single-arrival case never clones at all.
        let mut deliveries = Vec::with_capacity(1 + duplicated as usize);
        if duplicated {
            record.fate = Fate::Duplicated;
            let dup_arrival = now.plus(base + dup_jitter);
            record.arrivals.push(dup_arrival);
            deliveries.push(Delivery { at: arrival, to_router: to, env: env.clone() });
            deliveries.push(Delivery { at: dup_arrival, to_router: to, env });
        } else {
            deliveries.push(Delivery { at: arrival, to_router: to, env });
        }
        self.trace.push(record);
        deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireMessage;
    use bristle_netsim::graph::Graph;
    use bristle_overlay::key::Key;

    fn line_cache(n: usize) -> Arc<DistanceCache> {
        let mut g = Graph::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(RouterId(i as u32), RouterId(i as u32 + 1), 3);
        }
        Arc::new(DistanceCache::new(Arc::new(g), n))
    }

    fn envelope(id: u64) -> Envelope {
        Envelope {
            src: Key(1),
            dst: Key(2),
            msg_id: id,
            trace_id: 0,
            msg: WireMessage::Refresh { key: Key(1) },
            auth: None,
        }
    }

    #[test]
    fn perfect_transport_delivers_once_with_link_latency() {
        let mut t = SimTransport::new(line_cache(4), FaultConfig::perfect(), 7);
        let d = t.send(SimTime(10), RouterId(0), RouterId(3), envelope(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, SimTime(10 + 9 + 1), "3 hops x weight 3 + min latency");
        assert_eq!(d[0].to_router, RouterId(3));
        assert_eq!(t.trace().len(), 1);
        assert_eq!(t.trace()[0].fate, Fate::Delivered);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::lossy(1.0), 7);
        for i in 0..50 {
            assert!(t.send(SimTime(i), RouterId(0), RouterId(2), envelope(i)).is_empty());
        }
        assert!(t.trace().iter().all(|r| r.fate == Fate::Dropped));
    }

    #[test]
    fn same_seed_same_trace_bytes() {
        let faults = FaultConfig {
            drop_probability: 0.3,
            duplicate_probability: 0.2,
            min_latency: 2,
            jitter: 9,
        };
        let runs: Vec<Vec<u8>> = (0..2)
            .map(|_| {
                let mut t = SimTransport::new(line_cache(5), faults.clone(), 99);
                for i in 0..200 {
                    t.send(
                        SimTime(i),
                        RouterId((i % 5) as u32),
                        RouterId(((i + 2) % 5) as u32),
                        envelope(i),
                    );
                }
                t.trace_bytes()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "byte-identical replay");
        assert!(!runs[0].is_empty());
    }

    #[test]
    fn different_seed_different_trace() {
        let faults = FaultConfig { drop_probability: 0.5, ..FaultConfig::default() };
        let mut a = SimTransport::new(line_cache(3), faults.clone(), 1);
        let mut b = SimTransport::new(line_cache(3), faults, 2);
        for i in 0..100 {
            a.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
            b.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
        }
        assert_ne!(a.trace_bytes(), b.trace_bytes());
    }

    #[test]
    fn duplication_delivers_twice() {
        let faults = FaultConfig { duplicate_probability: 1.0, ..FaultConfig::default() };
        let mut t = SimTransport::new(line_cache(3), faults, 3);
        let d = t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].env, d[1].env);
        assert_eq!(t.trace()[0].fate, Fate::Duplicated);
    }

    #[test]
    fn single_delivery_carries_the_sent_envelope_unchanged() {
        // The single-arrival path moves the envelope instead of cloning;
        // the delivered bytes must still be exactly what was sent.
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 3);
        let sent = envelope(77);
        let d = t.send(SimTime(0), RouterId(0), RouterId(1), sent.clone());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].env, sent);
    }

    #[test]
    fn duplicated_send_records_both_arrivals() {
        let faults =
            FaultConfig { duplicate_probability: 1.0, jitter: 30, ..FaultConfig::default() };
        let mut t = SimTransport::new(line_cache(3), faults, 3);
        for i in 0..20 {
            let d = t.send(SimTime(i * 100), RouterId(0), RouterId(1), envelope(i));
            let rec = &t.trace()[i as usize];
            assert_eq!(rec.arrivals.len(), 2, "both copies' arrivals are recorded");
            assert_eq!(rec.arrivals, vec![d[0].at, d[1].at]);
        }
        // The trace bytes must distinguish the two copies' timings: a
        // run whose duplicates arrive at recorded times differs from one
        // where the second arrival were lost to the trace.
        assert!(t.trace().iter().any(|r| r.arrivals[0] != r.arrivals[1]));
    }

    #[test]
    fn out_of_range_probabilities_are_clamped() {
        let wild = FaultConfig {
            drop_probability: 7.5,
            duplicate_probability: -2.0,
            ..FaultConfig::default()
        };
        let norm = wild.clone().normalized();
        assert_eq!(norm.drop_probability, 1.0);
        assert_eq!(norm.duplicate_probability, 0.0);
        assert_eq!(FaultConfig::lossy(f64::NAN).drop_probability, 0.0);

        // The transport normalizes on construction: a >1.0 drop rate
        // behaves exactly like 1.0 (same seed, same draws, same trace).
        let mut a = SimTransport::new(line_cache(3), wild, 9);
        let mut b = SimTransport::new(line_cache(3), FaultConfig::lossy(1.0), 9);
        for i in 0..50 {
            a.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
            b.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
        }
        assert_eq!(a.trace_bytes(), b.trace_bytes());
        assert!(a.trace().iter().all(|r| r.fate == Fate::Dropped));
    }

    #[test]
    fn jitter_reorders_racing_sends() {
        let faults = FaultConfig { jitter: 50, ..FaultConfig::default() };
        let mut t = SimTransport::new(line_cache(3), faults, 11);
        // Submit many racing pairs; with jitter up to 50 on a 3-weight
        // link some later send must overtake an earlier one.
        let mut arrivals = Vec::new();
        for i in 0..40 {
            let d = t.send(SimTime(i), RouterId(0), RouterId(1), envelope(i));
            arrivals.push(d[0].at);
        }
        assert!(
            arrivals.windows(2).any(|w| w[1] < w[0]),
            "some pair must arrive out of submission order: {arrivals:?}"
        );
    }

    #[test]
    fn blocked_links_and_partitions_stop_traffic() {
        let mut t = SimTransport::new(line_cache(4), FaultConfig::perfect(), 5);
        t.set_filter(
            LinkFilter::default().block_link(RouterId(3), RouterId(0)).isolate(RouterId(2)),
        );
        assert!(t.send(SimTime(0), RouterId(0), RouterId(3), envelope(0)).is_empty());
        assert!(
            t.send(SimTime(0), RouterId(3), RouterId(0), envelope(1)).is_empty(),
            "blocks both ways"
        );
        assert!(
            t.send(SimTime(0), RouterId(1), RouterId(2), envelope(2)).is_empty(),
            "partitioned in"
        );
        assert!(
            t.send(SimTime(0), RouterId(2), RouterId(1), envelope(3)).is_empty(),
            "partitioned out"
        );
        assert_eq!(
            t.send(SimTime(0), RouterId(0), RouterId(1), envelope(4)).len(),
            1,
            "others flow"
        );
        assert!(t.trace()[..4].iter().all(|r| r.fate == Fate::Blocked));
    }

    #[test]
    fn outage_lift_restores_traffic_deterministically() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 5);
        t.set_filter(LinkFilter::default().isolate(RouterId(1)));
        assert!(t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0)).is_empty());
        t.set_filter(LinkFilter::default());
        assert_eq!(t.send(SimTime(1), RouterId(0), RouterId(1), envelope(1)).len(), 1);
    }

    #[test]
    fn oneway_block_is_unidirectional() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 5);
        t.set_filter(LinkFilter::default().block_oneway(RouterId(0), RouterId(2)));
        assert!(t.send(SimTime(0), RouterId(0), RouterId(2), envelope(0)).is_empty());
        assert_eq!(
            t.send(SimTime(0), RouterId(2), RouterId(0), envelope(1)).len(),
            1,
            "the reverse direction stays up"
        );
        assert_eq!(t.trace()[0].fate, Fate::Blocked);
        assert_eq!(t.trace()[1].fate, Fate::Delivered);
    }

    #[test]
    fn group_partition_cuts_cross_group_traffic_only() {
        let mut t = SimTransport::new(line_cache(4), FaultConfig::perfect(), 5);
        let filter = LinkFilter::default()
            .partition_groups(&[vec![RouterId(0), RouterId(1)], vec![RouterId(2), RouterId(3)]]);
        assert!(!filter.is_empty());
        t.set_filter(filter);
        assert!(t.send(SimTime(0), RouterId(1), RouterId(2), envelope(0)).is_empty());
        assert!(t.send(SimTime(0), RouterId(3), RouterId(0), envelope(1)).is_empty());
        assert_eq!(t.send(SimTime(0), RouterId(0), RouterId(1), envelope(2)).len(), 1);
        assert_eq!(t.send(SimTime(0), RouterId(2), RouterId(3), envelope(3)).len(), 1);
    }
}
