//! Transport abstraction and the deterministic in-memory simulator.
//!
//! [`Transport`] is the machine-facing contract: given a send at some
//! time between two routers, produce zero or more timestamped
//! deliveries. [`SimTransport`] implements it over the physical
//! topology's [`DistanceCache`] — per-link latency is the shortest-path
//! weight plus a configured base and seeded jitter — and injects faults
//! (drops, duplication, reordering via jitter, link and partition
//! outages) from a seeded [`Pcg64`], so every run with the same seed and
//! fault schedule produces a byte-identical delivery trace.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bristle_core::time::SimTime;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::RouterId;
use bristle_netsim::rng::Pcg64;

use crate::wire::Envelope;

/// A scheduled delivery: when, at which router, carrying what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival time.
    pub at: SimTime,
    /// Router the bytes arrive at (the destination the *sender* chose;
    /// if the host has moved away since, the driver discards it).
    pub to_router: RouterId,
    /// The message.
    pub env: Envelope,
}

/// The machine-facing transport contract.
pub trait Transport {
    /// Submits `env` from `from` toward `to` at time `now`; returns the
    /// deliveries this causes (empty = dropped, two = duplicated).
    fn send(&mut self, now: SimTime, from: RouterId, to: RouterId, env: Envelope) -> Vec<Delivery>;
}

/// Fault-injection knobs, all off by default.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a send is silently dropped.
    pub drop_probability: f64,
    /// Probability a delivered send also arrives a second time.
    pub duplicate_probability: f64,
    /// Base latency added to every link's path weight.
    pub min_latency: u64,
    /// Maximum extra seeded jitter per delivery (inclusive); non-zero
    /// jitter reorders messages that race on different links.
    pub jitter: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { drop_probability: 0.0, duplicate_probability: 0.0, min_latency: 1, jitter: 0 }
    }
}

impl FaultConfig {
    /// A perfect network: every send arrives exactly once.
    pub fn perfect() -> Self {
        Self::default()
    }

    /// A lossy network dropping the given fraction of sends.
    pub fn lossy(drop_probability: f64) -> Self {
        FaultConfig { drop_probability, ..Self::default() }.normalized()
    }

    /// The same configuration with both probabilities clamped into
    /// `[0, 1]` (NaN counts as 0). An out-of-range probability would
    /// otherwise silently skew the fixed per-send draw order; the
    /// transport normalizes every configuration it is handed.
    pub fn normalized(mut self) -> Self {
        self.drop_probability = clamp_probability(self.drop_probability);
        self.duplicate_probability = clamp_probability(self.duplicate_probability);
        self
    }
}

fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// A fail-slow degradation script: the gray-failure counterpart to the
/// binary outages in [`LinkFilter`]. A degraded node or link stays up —
/// traffic still flows — but slower and lossier, which is exactly the
/// regime binary failure detectors handle worst.
///
/// Attached to a node (all its traffic, both directions) or to a
/// directed link (that direction only, for asymmetric degradation) via
/// [`SimTransport::degrade_node`] / [`SimTransport::degrade_link`], and
/// lifted with the matching `heal_*` calls. Extra-loss decisions draw
/// from a side hash stream, never from the transport's main RNG, so the
/// default (undegraded) delivery trace stays byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degradation {
    /// Latency multiplier in percent: 100 = unchanged, 300 = 3×.
    pub slowdown_pct: u32,
    /// Extra drop probability applied on top of the configured
    /// [`FaultConfig::drop_probability`].
    pub extra_loss: f64,
    /// Peak extra latency the ramp climbs to (0 = no ramp).
    pub ramp_peak: u64,
    /// Ticks the ramp takes to climb linearly from 0 to `ramp_peak`
    /// after the degradation is applied; 0 jumps straight to the peak.
    pub ramp_len: u64,
}

impl Default for Degradation {
    fn default() -> Self {
        Degradation { slowdown_pct: 100, extra_loss: 0.0, ramp_peak: 0, ramp_len: 0 }
    }
}

impl Degradation {
    /// No degradation at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// A pure multiplicative slowdown (`pct` = 100 leaves latency
    /// unchanged; values below 100 are treated as 100 — degradations
    /// never speed a link up).
    pub fn slowdown(pct: u32) -> Self {
        Degradation { slowdown_pct: pct.max(100), ..Self::default() }
    }

    /// Pure extra loss on top of the configured drop probability.
    pub fn lossy(extra_loss: f64) -> Self {
        Degradation { extra_loss: clamp_probability(extra_loss), ..Self::default() }
    }

    /// A latency ramp climbing linearly to `peak` extra ticks over
    /// `len` ticks (a node slowly drowning rather than stepping down).
    pub fn ramp(peak: u64, len: u64) -> Self {
        Degradation { ramp_peak: peak, ramp_len: len, ..Self::default() }
    }

    /// The same script with `extra_loss` added (builder-style).
    pub fn with_loss(mut self, extra_loss: f64) -> Self {
        self.extra_loss = clamp_probability(extra_loss);
        self
    }

    /// Whether the script degrades nothing.
    pub fn is_none(&self) -> bool {
        self.slowdown_pct <= 100 && self.extra_loss == 0.0 && self.ramp_peak == 0
    }

    /// The pointwise-worst combination of two scripts (a send crossing
    /// a degraded link between two degraded nodes suffers the worst of
    /// each effect, not their product — gray failures overlap, they
    /// don't compound multiplicatively in this model).
    fn combine(a: Degradation, b: Degradation) -> Degradation {
        Degradation {
            slowdown_pct: a.slowdown_pct.max(b.slowdown_pct),
            extra_loss: if a.extra_loss >= b.extra_loss { a.extra_loss } else { b.extra_loss },
            ramp_peak: a.ramp_peak.max(b.ramp_peak),
            ramp_len: a.ramp_len.max(b.ramp_len),
        }
    }

    /// Extra latency the script adds to `base` at `elapsed` ticks after
    /// it was applied.
    fn added_latency(&self, base: u64, elapsed: u64) -> u64 {
        let slow = base * u64::from(self.slowdown_pct.max(100)) / 100 - base;
        let ramp = if self.ramp_peak == 0 {
            0
        } else if self.ramp_len == 0 || elapsed >= self.ramp_len {
            self.ramp_peak
        } else {
            self.ramp_peak * elapsed / self.ramp_len
        };
        slow + ramp
    }
}

/// The side hash stream degradation loss draws from ([`splitmix64`]),
/// so the main RNG's fixed per-send draw order is untouched.
use crate::mix::splitmix64 as stir;

/// Deterministic link/partition outages consulted before every send.
///
/// All lookups are `O(log n)` sorted-set membership tests — `blocks`
/// runs on the hot path of every send. Four independent rules compose:
/// symmetric link blocks, asymmetric (one-way) blocks, fully isolated
/// routers, and a group partition that cuts all traffic between routers
/// assigned to different groups.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFilter {
    /// Router pairs whose link is down both ways, stored normalized
    /// (smaller id first).
    blocked_links: BTreeSet<(RouterId, RouterId)>,
    /// Directed `(from, to)` pairs blocked in that direction only.
    oneway: BTreeSet<(RouterId, RouterId)>,
    /// Routers partitioned off entirely (no traffic in or out).
    partitioned: BTreeSet<RouterId>,
    /// Disjoint router groups; traffic between different groups is cut.
    /// Routers in no group talk to everyone (subject to the other rules).
    groups: Vec<BTreeSet<RouterId>>,
}

impl LinkFilter {
    /// Blocks the `a`–`b` link in both directions.
    pub fn block_link(mut self, a: RouterId, b: RouterId) -> Self {
        self.blocked_links.insert(normalize_pair(a, b));
        self
    }

    /// Blocks traffic from `from` to `to` only; the reverse direction
    /// stays up (a unidirectional outage).
    pub fn block_oneway(mut self, from: RouterId, to: RouterId) -> Self {
        self.oneway.insert((from, to));
        self
    }

    /// Cuts `router` off entirely: nothing in, nothing out.
    pub fn isolate(mut self, router: RouterId) -> Self {
        self.partitioned.insert(router);
        self
    }

    /// Partitions the network into the given disjoint groups; all
    /// traffic between routers of different groups is cut. Replaces any
    /// previous group assignment.
    pub fn partition_groups(mut self, groups: &[Vec<RouterId>]) -> Self {
        self.groups = groups.iter().map(|g| g.iter().copied().collect()).collect();
        self
    }

    /// Whether the filter blocks nothing at all.
    pub fn is_empty(&self) -> bool {
        self.blocked_links.is_empty()
            && self.oneway.is_empty()
            && self.partitioned.is_empty()
            && self.groups.is_empty()
    }

    /// Whether traffic from `a` to `b` is blocked.
    pub fn blocks(&self, a: RouterId, b: RouterId) -> bool {
        self.partitioned.contains(&a)
            || self.partitioned.contains(&b)
            || self.blocked_links.contains(&normalize_pair(a, b))
            || self.oneway.contains(&(a, b))
            || self.cut_by_groups(a, b)
    }

    fn cut_by_groups(&self, a: RouterId, b: RouterId) -> bool {
        let group_of = |r| self.groups.iter().position(|g| g.contains(&r));
        match (group_of(a), group_of(b)) {
            (Some(ga), Some(gb)) => ga != gb,
            _ => false,
        }
    }
}

fn normalize_pair(a: RouterId, b: RouterId) -> (RouterId, RouterId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// What happened to one send, for the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Arrived exactly once.
    Delivered,
    /// Silently lost (random drop).
    Dropped,
    /// Arrived twice.
    Duplicated,
    /// Blocked by an outage or partition.
    Blocked,
}

impl Fate {
    fn code(self) -> u8 {
        match self {
            Fate::Delivered => 0,
            Fate::Dropped => 1,
            Fate::Duplicated => 2,
            Fate::Blocked => 3,
        }
    }
}

/// One row of the transport's append-only trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Send order (0-based).
    pub seq: u64,
    /// Submission time.
    pub sent_at: SimTime,
    /// Source router.
    pub from: RouterId,
    /// Destination router.
    pub to: RouterId,
    /// Message tag (see [`crate::wire::WireMessage::tag`]).
    pub tag: u8,
    /// Sender-scoped message id.
    pub msg_id: u64,
    /// Outcome.
    pub fate: Fate,
    /// Every arrival this send caused, in the order the copies were
    /// scheduled: empty when dropped or blocked, one entry when
    /// delivered, two (primary then duplicate) when duplicated.
    pub arrivals: Vec<SimTime>,
}

/// The deterministic in-memory transport.
pub struct SimTransport {
    dcache: Arc<DistanceCache>,
    faults: FaultConfig,
    filter: LinkFilter,
    rng: Pcg64,
    trace: Vec<TraceRecord>,
    /// Per-node fail-slow scripts with their application time (for
    /// ramps); a degraded node affects every send it originates or
    /// receives.
    node_degrade: BTreeMap<RouterId, (Degradation, SimTime)>,
    /// Per-directed-link scripts — `(from, to)` only, so loss and
    /// slowdown can be asymmetric.
    link_degrade: BTreeMap<(RouterId, RouterId), (Degradation, SimTime)>,
    /// Seed of the side hash stream for extra-loss decisions.
    degrade_salt: u64,
    /// Draws taken from the side stream so far.
    degrade_draws: u64,
}

impl SimTransport {
    /// A transport over `dcache`'s topology with the given faults,
    /// drawing all randomness from `seed`.
    pub fn new(dcache: Arc<DistanceCache>, faults: FaultConfig, seed: u64) -> Self {
        SimTransport {
            dcache,
            faults: faults.normalized(),
            filter: LinkFilter::default(),
            rng: Pcg64::seed_from_u64(seed),
            trace: Vec::new(),
            node_degrade: BTreeMap::new(),
            link_degrade: BTreeMap::new(),
            degrade_salt: stir(seed ^ 0xD09E),
            degrade_draws: 0,
        }
    }

    /// Replaces the outage schedule.
    pub fn set_filter(&mut self, filter: LinkFilter) {
        self.filter = filter;
    }

    /// Applies (or replaces) a fail-slow script on `router` from `at`
    /// on; both directions of all its traffic are affected.
    pub fn degrade_node(&mut self, router: RouterId, d: Degradation, at: SimTime) {
        if d.is_none() {
            self.node_degrade.remove(&router);
        } else {
            self.node_degrade.insert(router, (d, at));
        }
    }

    /// Applies (or replaces) a fail-slow script on the directed
    /// `from → to` link from `at` on; the reverse direction is
    /// untouched (asymmetric degradation).
    pub fn degrade_link(&mut self, from: RouterId, to: RouterId, d: Degradation, at: SimTime) {
        if d.is_none() {
            self.link_degrade.remove(&(from, to));
        } else {
            self.link_degrade.insert((from, to), (d, at));
        }
    }

    /// Lifts `router`'s fail-slow script.
    pub fn heal_node(&mut self, router: RouterId) {
        self.node_degrade.remove(&router);
    }

    /// Lifts the directed `from → to` link's fail-slow script.
    pub fn heal_link(&mut self, from: RouterId, to: RouterId) {
        self.link_degrade.remove(&(from, to));
    }

    /// Lifts every fail-slow script at once.
    pub fn clear_degradations(&mut self) {
        self.node_degrade.clear();
        self.link_degrade.clear();
    }

    /// The worst-of combination of the scripts touching a `from → to`
    /// send, with the earliest application time (for ramps).
    fn active_degradation(&self, from: RouterId, to: RouterId) -> Option<(Degradation, SimTime)> {
        let mut acc: Option<(Degradation, SimTime)> = None;
        let sources = [
            self.node_degrade.get(&from),
            self.node_degrade.get(&to),
            self.link_degrade.get(&(from, to)),
        ];
        for &(d, at) in sources.into_iter().flatten() {
            acc = Some(match acc {
                None => (d, at),
                Some((worst, since)) => {
                    (Degradation::combine(worst, d), if at.0 < since.0 { at } else { since })
                }
            });
        }
        acc
    }

    /// Current fault configuration.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// The append-only send trace.
    pub fn trace(&self) -> &[TraceRecord] {
        &self.trace
    }

    /// Serializes the trace into a canonical byte string; two runs are
    /// behaviourally identical iff their trace bytes are equal.
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.trace.len() * 48);
        for r in &self.trace {
            out.extend_from_slice(&r.seq.to_le_bytes());
            out.extend_from_slice(&r.sent_at.0.to_le_bytes());
            out.extend_from_slice(&r.from.0.to_le_bytes());
            out.extend_from_slice(&r.to.0.to_le_bytes());
            out.push(r.tag);
            out.extend_from_slice(&r.msg_id.to_le_bytes());
            out.push(r.fate.code());
            out.push(r.arrivals.len() as u8);
            for a in &r.arrivals {
                out.extend_from_slice(&a.0.to_le_bytes());
            }
        }
        out
    }
}

impl Transport for SimTransport {
    fn send(&mut self, now: SimTime, from: RouterId, to: RouterId, env: Envelope) -> Vec<Delivery> {
        let seq = self.trace.len() as u64;
        let tag = env.msg.tag();
        let msg_id = env.msg_id;
        let mut record = TraceRecord {
            seq,
            sent_at: now,
            from,
            to,
            tag,
            msg_id,
            fate: Fate::Delivered,
            arrivals: Vec::new(),
        };

        if self.filter.blocks(from, to) {
            record.fate = Fate::Blocked;
            self.trace.push(record);
            return Vec::new();
        }

        // Fixed draw order per send — drop, duplicate, jitter, dup-jitter —
        // so the random stream (and thus the trace) is reproducible even
        // as probabilities vary.
        let dropped = self.rng.chance(self.faults.drop_probability);
        let duplicated = self.rng.chance(self.faults.duplicate_probability);
        let jitter = if self.faults.jitter > 0 {
            self.rng.range_inclusive(0, self.faults.jitter)
        } else {
            0
        };
        let dup_jitter = if self.faults.jitter > 0 {
            self.rng.range_inclusive(0, self.faults.jitter)
        } else {
            0
        };

        if dropped {
            record.fate = Fate::Dropped;
            self.trace.push(record);
            return Vec::new();
        }

        // Fail-slow scripts apply after the fixed draws above, and their
        // loss decision comes from the side hash stream: a run with no
        // degradations consumes exactly the same main-RNG draws as
        // before the feature existed, keeping default traces
        // byte-identical.
        let mut extra_latency = 0;
        if let Some((degrade, since)) = self.active_degradation(from, to) {
            if degrade.extra_loss > 0.0 {
                self.degrade_draws += 1;
                let roll = stir(self.degrade_salt ^ self.degrade_draws);
                let unit = (roll >> 11) as f64 / (1u64 << 53) as f64;
                if unit < degrade.extra_loss {
                    record.fate = Fate::Dropped;
                    self.trace.push(record);
                    return Vec::new();
                }
            }
            let base = self.dcache.distance(from, to) + self.faults.min_latency;
            // A script scheduled for the future ramps from its start,
            // not from the first send that sees it.
            let elapsed = now.0.saturating_sub(since.0);
            extra_latency = degrade.added_latency(base, elapsed);
        }

        let base = self.dcache.distance(from, to) + self.faults.min_latency + extra_latency;
        let arrival = now.plus(base + jitter);
        record.arrivals.push(arrival);
        // N arrivals cost N−1 clones: the last delivery takes `env` by
        // move, so the common single-arrival case never clones at all.
        let mut deliveries = Vec::with_capacity(1 + duplicated as usize);
        if duplicated {
            record.fate = Fate::Duplicated;
            let dup_arrival = now.plus(base + dup_jitter);
            record.arrivals.push(dup_arrival);
            deliveries.push(Delivery { at: arrival, to_router: to, env: env.clone() });
            deliveries.push(Delivery { at: dup_arrival, to_router: to, env });
        } else {
            deliveries.push(Delivery { at: arrival, to_router: to, env });
        }
        self.trace.push(record);
        deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireMessage;
    use bristle_netsim::graph::Graph;
    use bristle_overlay::key::Key;

    fn line_cache(n: usize) -> Arc<DistanceCache> {
        let mut g = Graph::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(RouterId(i as u32), RouterId(i as u32 + 1), 3);
        }
        Arc::new(DistanceCache::new(Arc::new(g), n))
    }

    fn envelope(id: u64) -> Envelope {
        Envelope {
            src: Key(1),
            dst: Key(2),
            msg_id: id,
            trace_id: 0,
            msg: WireMessage::Refresh { key: Key(1) },
            auth: None,
        }
    }

    #[test]
    fn perfect_transport_delivers_once_with_link_latency() {
        let mut t = SimTransport::new(line_cache(4), FaultConfig::perfect(), 7);
        let d = t.send(SimTime(10), RouterId(0), RouterId(3), envelope(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, SimTime(10 + 9 + 1), "3 hops x weight 3 + min latency");
        assert_eq!(d[0].to_router, RouterId(3));
        assert_eq!(t.trace().len(), 1);
        assert_eq!(t.trace()[0].fate, Fate::Delivered);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::lossy(1.0), 7);
        for i in 0..50 {
            assert!(t.send(SimTime(i), RouterId(0), RouterId(2), envelope(i)).is_empty());
        }
        assert!(t.trace().iter().all(|r| r.fate == Fate::Dropped));
    }

    #[test]
    fn same_seed_same_trace_bytes() {
        let faults = FaultConfig {
            drop_probability: 0.3,
            duplicate_probability: 0.2,
            min_latency: 2,
            jitter: 9,
        };
        let runs: Vec<Vec<u8>> = (0..2)
            .map(|_| {
                let mut t = SimTransport::new(line_cache(5), faults.clone(), 99);
                for i in 0..200 {
                    t.send(
                        SimTime(i),
                        RouterId((i % 5) as u32),
                        RouterId(((i + 2) % 5) as u32),
                        envelope(i),
                    );
                }
                t.trace_bytes()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "byte-identical replay");
        assert!(!runs[0].is_empty());
    }

    #[test]
    fn different_seed_different_trace() {
        let faults = FaultConfig { drop_probability: 0.5, ..FaultConfig::default() };
        let mut a = SimTransport::new(line_cache(3), faults.clone(), 1);
        let mut b = SimTransport::new(line_cache(3), faults, 2);
        for i in 0..100 {
            a.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
            b.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
        }
        assert_ne!(a.trace_bytes(), b.trace_bytes());
    }

    #[test]
    fn duplication_delivers_twice() {
        let faults = FaultConfig { duplicate_probability: 1.0, ..FaultConfig::default() };
        let mut t = SimTransport::new(line_cache(3), faults, 3);
        let d = t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].env, d[1].env);
        assert_eq!(t.trace()[0].fate, Fate::Duplicated);
    }

    #[test]
    fn single_delivery_carries_the_sent_envelope_unchanged() {
        // The single-arrival path moves the envelope instead of cloning;
        // the delivered bytes must still be exactly what was sent.
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 3);
        let sent = envelope(77);
        let d = t.send(SimTime(0), RouterId(0), RouterId(1), sent.clone());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].env, sent);
    }

    #[test]
    fn duplicated_send_records_both_arrivals() {
        let faults =
            FaultConfig { duplicate_probability: 1.0, jitter: 30, ..FaultConfig::default() };
        let mut t = SimTransport::new(line_cache(3), faults, 3);
        for i in 0..20 {
            let d = t.send(SimTime(i * 100), RouterId(0), RouterId(1), envelope(i));
            let rec = &t.trace()[i as usize];
            assert_eq!(rec.arrivals.len(), 2, "both copies' arrivals are recorded");
            assert_eq!(rec.arrivals, vec![d[0].at, d[1].at]);
        }
        // The trace bytes must distinguish the two copies' timings: a
        // run whose duplicates arrive at recorded times differs from one
        // where the second arrival were lost to the trace.
        assert!(t.trace().iter().any(|r| r.arrivals[0] != r.arrivals[1]));
    }

    #[test]
    fn out_of_range_probabilities_are_clamped() {
        let wild = FaultConfig {
            drop_probability: 7.5,
            duplicate_probability: -2.0,
            ..FaultConfig::default()
        };
        let norm = wild.clone().normalized();
        assert_eq!(norm.drop_probability, 1.0);
        assert_eq!(norm.duplicate_probability, 0.0);
        assert_eq!(FaultConfig::lossy(f64::NAN).drop_probability, 0.0);

        // The transport normalizes on construction: a >1.0 drop rate
        // behaves exactly like 1.0 (same seed, same draws, same trace).
        let mut a = SimTransport::new(line_cache(3), wild, 9);
        let mut b = SimTransport::new(line_cache(3), FaultConfig::lossy(1.0), 9);
        for i in 0..50 {
            a.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
            b.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
        }
        assert_eq!(a.trace_bytes(), b.trace_bytes());
        assert!(a.trace().iter().all(|r| r.fate == Fate::Dropped));
    }

    #[test]
    fn jitter_reorders_racing_sends() {
        let faults = FaultConfig { jitter: 50, ..FaultConfig::default() };
        let mut t = SimTransport::new(line_cache(3), faults, 11);
        // Submit many racing pairs; with jitter up to 50 on a 3-weight
        // link some later send must overtake an earlier one.
        let mut arrivals = Vec::new();
        for i in 0..40 {
            let d = t.send(SimTime(i), RouterId(0), RouterId(1), envelope(i));
            arrivals.push(d[0].at);
        }
        assert!(
            arrivals.windows(2).any(|w| w[1] < w[0]),
            "some pair must arrive out of submission order: {arrivals:?}"
        );
    }

    #[test]
    fn blocked_links_and_partitions_stop_traffic() {
        let mut t = SimTransport::new(line_cache(4), FaultConfig::perfect(), 5);
        t.set_filter(
            LinkFilter::default().block_link(RouterId(3), RouterId(0)).isolate(RouterId(2)),
        );
        assert!(t.send(SimTime(0), RouterId(0), RouterId(3), envelope(0)).is_empty());
        assert!(
            t.send(SimTime(0), RouterId(3), RouterId(0), envelope(1)).is_empty(),
            "blocks both ways"
        );
        assert!(
            t.send(SimTime(0), RouterId(1), RouterId(2), envelope(2)).is_empty(),
            "partitioned in"
        );
        assert!(
            t.send(SimTime(0), RouterId(2), RouterId(1), envelope(3)).is_empty(),
            "partitioned out"
        );
        assert_eq!(
            t.send(SimTime(0), RouterId(0), RouterId(1), envelope(4)).len(),
            1,
            "others flow"
        );
        assert!(t.trace()[..4].iter().all(|r| r.fate == Fate::Blocked));
    }

    #[test]
    fn outage_lift_restores_traffic_deterministically() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 5);
        t.set_filter(LinkFilter::default().isolate(RouterId(1)));
        assert!(t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0)).is_empty());
        t.set_filter(LinkFilter::default());
        assert_eq!(t.send(SimTime(1), RouterId(0), RouterId(1), envelope(1)).len(), 1);
    }

    #[test]
    fn oneway_block_is_unidirectional() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 5);
        t.set_filter(LinkFilter::default().block_oneway(RouterId(0), RouterId(2)));
        assert!(t.send(SimTime(0), RouterId(0), RouterId(2), envelope(0)).is_empty());
        assert_eq!(
            t.send(SimTime(0), RouterId(2), RouterId(0), envelope(1)).len(),
            1,
            "the reverse direction stays up"
        );
        assert_eq!(t.trace()[0].fate, Fate::Blocked);
        assert_eq!(t.trace()[1].fate, Fate::Delivered);
    }

    #[test]
    fn degraded_node_slows_its_traffic_only() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 5);
        t.degrade_node(RouterId(1), Degradation::slowdown(300), SimTime(0));
        // 0 → 1: base 3 + 1, tripled by the slowdown.
        let d = t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0));
        assert_eq!(d[0].at, SimTime(12), "3× the base 4-tick latency");
        // 0 → 2 transits router 1 physically, but degradation models the
        // *endpoint* failing slow, so pass-through traffic is untouched.
        let d = t.send(SimTime(0), RouterId(0), RouterId(2), envelope(1));
        assert_eq!(d[0].at, SimTime(7), "6 + min latency, undegraded");
        t.heal_node(RouterId(1));
        let d = t.send(SimTime(10), RouterId(0), RouterId(1), envelope(2));
        assert_eq!(d[0].at, SimTime(14), "healed back to base latency");
    }

    #[test]
    fn asymmetric_link_loss_drops_one_direction_only() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 5);
        t.degrade_link(RouterId(0), RouterId(1), Degradation::lossy(1.0), SimTime(0));
        assert!(t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0)).is_empty());
        assert_eq!(t.trace()[0].fate, Fate::Dropped);
        assert_eq!(
            t.send(SimTime(0), RouterId(1), RouterId(0), envelope(1)).len(),
            1,
            "the reverse direction stays healthy"
        );
    }

    #[test]
    fn latency_ramp_climbs_from_the_application_time() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 5);
        t.degrade_node(RouterId(1), Degradation::ramp(100, 100), SimTime(0));
        let d = t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0));
        assert_eq!(d[0].at, SimTime(4), "ramp starts at zero extra");
        let d = t.send(SimTime(50), RouterId(0), RouterId(1), envelope(1));
        assert_eq!(d[0].at, SimTime(50 + 4 + 50), "halfway up the ramp");
        let d = t.send(SimTime(500), RouterId(0), RouterId(1), envelope(2));
        assert_eq!(d[0].at, SimTime(500 + 4 + 100), "saturated at the peak");
    }

    #[test]
    fn degradation_loss_never_disturbs_the_main_rng() {
        // Two identically seeded lossy transports; one also has a
        // degraded (extra-lossy) node. Sends not touching that node
        // must have byte-identical outcomes, because degradation loss
        // draws from a side hash stream, not the main RNG.
        let faults = FaultConfig {
            drop_probability: 0.3,
            duplicate_probability: 0.1,
            jitter: 9,
            ..FaultConfig::default()
        };
        let mut clean = SimTransport::new(line_cache(3), faults.clone(), 99);
        let mut degraded = SimTransport::new(line_cache(3), faults, 99);
        degraded.degrade_node(RouterId(1), Degradation::lossy(0.5), SimTime(0));
        for i in 0..100 {
            clean.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
            degraded.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
            clean.send(SimTime(i), RouterId(0), RouterId(1), envelope(1000 + i));
            degraded.send(SimTime(i), RouterId(0), RouterId(1), envelope(1000 + i));
        }
        let bystanders = |t: &SimTransport| {
            t.trace().iter().filter(|r| r.to == RouterId(2)).cloned().collect::<Vec<_>>()
        };
        let (a, b) = (bystanders(&clean), bystanders(&degraded));
        assert_eq!(a.len(), 100);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.fate, &x.arrivals), (y.fate, &y.arrivals), "bystander send diverged");
        }
        // And the degraded node really did lose extra traffic.
        let losses = |t: &SimTransport| {
            t.trace().iter().filter(|r| r.to == RouterId(1) && r.fate == Fate::Dropped).count()
        };
        assert!(losses(&degraded) > losses(&clean), "extra loss applied");
    }

    #[test]
    fn group_partition_cuts_cross_group_traffic_only() {
        let mut t = SimTransport::new(line_cache(4), FaultConfig::perfect(), 5);
        let filter = LinkFilter::default()
            .partition_groups(&[vec![RouterId(0), RouterId(1)], vec![RouterId(2), RouterId(3)]]);
        assert!(!filter.is_empty());
        t.set_filter(filter);
        assert!(t.send(SimTime(0), RouterId(1), RouterId(2), envelope(0)).is_empty());
        assert!(t.send(SimTime(0), RouterId(3), RouterId(0), envelope(1)).is_empty());
        assert_eq!(t.send(SimTime(0), RouterId(0), RouterId(1), envelope(2)).len(), 1);
        assert_eq!(t.send(SimTime(0), RouterId(2), RouterId(3), envelope(3)).len(), 1);
    }
}
