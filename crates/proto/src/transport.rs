//! Transport abstraction and the deterministic in-memory simulator.
//!
//! [`Transport`] is the machine-facing contract: given a send at some
//! time between two routers, produce zero or more timestamped
//! deliveries. [`SimTransport`] implements it over the physical
//! topology's [`DistanceCache`] — per-link latency is the shortest-path
//! weight plus a configured base and seeded jitter — and injects faults
//! (drops, duplication, reordering via jitter, link and partition
//! outages) from a seeded [`Pcg64`], so every run with the same seed and
//! fault schedule produces a byte-identical delivery trace.

use std::sync::Arc;

use bristle_core::time::SimTime;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::RouterId;
use bristle_netsim::rng::Pcg64;

use crate::wire::Envelope;

/// A scheduled delivery: when, at which router, carrying what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Arrival time.
    pub at: SimTime,
    /// Router the bytes arrive at (the destination the *sender* chose;
    /// if the host has moved away since, the driver discards it).
    pub to_router: RouterId,
    /// The message.
    pub env: Envelope,
}

/// The machine-facing transport contract.
pub trait Transport {
    /// Submits `env` from `from` toward `to` at time `now`; returns the
    /// deliveries this causes (empty = dropped, two = duplicated).
    fn send(&mut self, now: SimTime, from: RouterId, to: RouterId, env: Envelope) -> Vec<Delivery>;
}

/// Fault-injection knobs, all off by default.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a send is silently dropped.
    pub drop_probability: f64,
    /// Probability a delivered send also arrives a second time.
    pub duplicate_probability: f64,
    /// Base latency added to every link's path weight.
    pub min_latency: u64,
    /// Maximum extra seeded jitter per delivery (inclusive); non-zero
    /// jitter reorders messages that race on different links.
    pub jitter: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { drop_probability: 0.0, duplicate_probability: 0.0, min_latency: 1, jitter: 0 }
    }
}

impl FaultConfig {
    /// A perfect network: every send arrives exactly once.
    pub fn perfect() -> Self {
        Self::default()
    }

    /// A lossy network dropping the given fraction of sends.
    pub fn lossy(drop_probability: f64) -> Self {
        FaultConfig { drop_probability, ..Self::default() }
    }
}

/// Deterministic link/partition outages consulted before every send.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkFilter {
    /// Unordered router pairs whose link is down.
    pub blocked_links: Vec<(RouterId, RouterId)>,
    /// Routers partitioned off entirely (no traffic in or out).
    pub partitioned: Vec<RouterId>,
}

impl LinkFilter {
    /// Whether traffic from `a` to `b` is blocked.
    pub fn blocks(&self, a: RouterId, b: RouterId) -> bool {
        self.partitioned.contains(&a)
            || self.partitioned.contains(&b)
            || self.blocked_links.iter().any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }
}

/// What happened to one send, for the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Arrived exactly once.
    Delivered,
    /// Silently lost (random drop).
    Dropped,
    /// Arrived twice.
    Duplicated,
    /// Blocked by an outage or partition.
    Blocked,
}

impl Fate {
    fn code(self) -> u8 {
        match self {
            Fate::Delivered => 0,
            Fate::Dropped => 1,
            Fate::Duplicated => 2,
            Fate::Blocked => 3,
        }
    }
}

/// One row of the transport's append-only trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Send order (0-based).
    pub seq: u64,
    /// Submission time.
    pub sent_at: SimTime,
    /// Source router.
    pub from: RouterId,
    /// Destination router.
    pub to: RouterId,
    /// Message tag (see [`crate::wire::WireMessage::tag`]).
    pub tag: u8,
    /// Sender-scoped message id.
    pub msg_id: u64,
    /// Outcome.
    pub fate: Fate,
    /// First arrival time, when delivered.
    pub arrival: Option<SimTime>,
}

/// The deterministic in-memory transport.
pub struct SimTransport {
    dcache: Arc<DistanceCache>,
    faults: FaultConfig,
    filter: LinkFilter,
    rng: Pcg64,
    trace: Vec<TraceRecord>,
}

impl SimTransport {
    /// A transport over `dcache`'s topology with the given faults,
    /// drawing all randomness from `seed`.
    pub fn new(dcache: Arc<DistanceCache>, faults: FaultConfig, seed: u64) -> Self {
        SimTransport {
            dcache,
            faults,
            filter: LinkFilter::default(),
            rng: Pcg64::seed_from_u64(seed),
            trace: Vec::new(),
        }
    }

    /// Replaces the outage schedule.
    pub fn set_filter(&mut self, filter: LinkFilter) {
        self.filter = filter;
    }

    /// Current fault configuration.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// The append-only send trace.
    pub fn trace(&self) -> &[TraceRecord] {
        &self.trace
    }

    /// Serializes the trace into a canonical byte string; two runs are
    /// behaviourally identical iff their trace bytes are equal.
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.trace.len() * 48);
        for r in &self.trace {
            out.extend_from_slice(&r.seq.to_le_bytes());
            out.extend_from_slice(&r.sent_at.0.to_le_bytes());
            out.extend_from_slice(&r.from.0.to_le_bytes());
            out.extend_from_slice(&r.to.0.to_le_bytes());
            out.push(r.tag);
            out.extend_from_slice(&r.msg_id.to_le_bytes());
            out.push(r.fate.code());
            out.extend_from_slice(&r.arrival.map(|t| t.0).unwrap_or(u64::MAX).to_le_bytes());
        }
        out
    }
}

impl Transport for SimTransport {
    fn send(&mut self, now: SimTime, from: RouterId, to: RouterId, env: Envelope) -> Vec<Delivery> {
        let seq = self.trace.len() as u64;
        let tag = env.msg.tag();
        let msg_id = env.msg_id;
        let mut record = TraceRecord {
            seq,
            sent_at: now,
            from,
            to,
            tag,
            msg_id,
            fate: Fate::Delivered,
            arrival: None,
        };

        if self.filter.blocks(from, to) {
            record.fate = Fate::Blocked;
            self.trace.push(record);
            return Vec::new();
        }

        // Fixed draw order per send — drop, duplicate, jitter, dup-jitter —
        // so the random stream (and thus the trace) is reproducible even
        // as probabilities vary.
        let dropped = self.rng.chance(self.faults.drop_probability);
        let duplicated = self.rng.chance(self.faults.duplicate_probability);
        let jitter = if self.faults.jitter > 0 {
            self.rng.range_inclusive(0, self.faults.jitter)
        } else {
            0
        };
        let dup_jitter = if self.faults.jitter > 0 {
            self.rng.range_inclusive(0, self.faults.jitter)
        } else {
            0
        };

        if dropped {
            record.fate = Fate::Dropped;
            self.trace.push(record);
            return Vec::new();
        }

        let base = self.dcache.distance(from, to) + self.faults.min_latency;
        let arrival = now.plus(base + jitter);
        record.arrival = Some(arrival);
        let mut deliveries = vec![Delivery { at: arrival, to_router: to, env: env.clone() }];
        if duplicated {
            record.fate = Fate::Duplicated;
            deliveries.push(Delivery { at: now.plus(base + dup_jitter), to_router: to, env });
        }
        self.trace.push(record);
        deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireMessage;
    use bristle_netsim::graph::Graph;
    use bristle_overlay::key::Key;

    fn line_cache(n: usize) -> Arc<DistanceCache> {
        let mut g = Graph::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(RouterId(i as u32), RouterId(i as u32 + 1), 3);
        }
        Arc::new(DistanceCache::new(Arc::new(g), n))
    }

    fn envelope(id: u64) -> Envelope {
        Envelope { src: Key(1), dst: Key(2), msg_id: id, msg: WireMessage::Refresh { key: Key(1) } }
    }

    #[test]
    fn perfect_transport_delivers_once_with_link_latency() {
        let mut t = SimTransport::new(line_cache(4), FaultConfig::perfect(), 7);
        let d = t.send(SimTime(10), RouterId(0), RouterId(3), envelope(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, SimTime(10 + 9 + 1), "3 hops x weight 3 + min latency");
        assert_eq!(d[0].to_router, RouterId(3));
        assert_eq!(t.trace().len(), 1);
        assert_eq!(t.trace()[0].fate, Fate::Delivered);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::lossy(1.0), 7);
        for i in 0..50 {
            assert!(t.send(SimTime(i), RouterId(0), RouterId(2), envelope(i)).is_empty());
        }
        assert!(t.trace().iter().all(|r| r.fate == Fate::Dropped));
    }

    #[test]
    fn same_seed_same_trace_bytes() {
        let faults = FaultConfig {
            drop_probability: 0.3,
            duplicate_probability: 0.2,
            min_latency: 2,
            jitter: 9,
        };
        let runs: Vec<Vec<u8>> = (0..2)
            .map(|_| {
                let mut t = SimTransport::new(line_cache(5), faults.clone(), 99);
                for i in 0..200 {
                    t.send(
                        SimTime(i),
                        RouterId((i % 5) as u32),
                        RouterId(((i + 2) % 5) as u32),
                        envelope(i),
                    );
                }
                t.trace_bytes()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "byte-identical replay");
        assert!(!runs[0].is_empty());
    }

    #[test]
    fn different_seed_different_trace() {
        let faults = FaultConfig { drop_probability: 0.5, ..FaultConfig::default() };
        let mut a = SimTransport::new(line_cache(3), faults.clone(), 1);
        let mut b = SimTransport::new(line_cache(3), faults, 2);
        for i in 0..100 {
            a.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
            b.send(SimTime(i), RouterId(0), RouterId(2), envelope(i));
        }
        assert_ne!(a.trace_bytes(), b.trace_bytes());
    }

    #[test]
    fn duplication_delivers_twice() {
        let faults = FaultConfig { duplicate_probability: 1.0, ..FaultConfig::default() };
        let mut t = SimTransport::new(line_cache(3), faults, 3);
        let d = t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].env, d[1].env);
        assert_eq!(t.trace()[0].fate, Fate::Duplicated);
    }

    #[test]
    fn jitter_reorders_racing_sends() {
        let faults = FaultConfig { jitter: 50, ..FaultConfig::default() };
        let mut t = SimTransport::new(line_cache(3), faults, 11);
        // Submit many racing pairs; with jitter up to 50 on a 3-weight
        // link some later send must overtake an earlier one.
        let mut arrivals = Vec::new();
        for i in 0..40 {
            let d = t.send(SimTime(i), RouterId(0), RouterId(1), envelope(i));
            arrivals.push(d[0].at);
        }
        assert!(
            arrivals.windows(2).any(|w| w[1] < w[0]),
            "some pair must arrive out of submission order: {arrivals:?}"
        );
    }

    #[test]
    fn blocked_links_and_partitions_stop_traffic() {
        let mut t = SimTransport::new(line_cache(4), FaultConfig::perfect(), 5);
        t.set_filter(LinkFilter {
            blocked_links: vec![(RouterId(0), RouterId(3))],
            partitioned: vec![RouterId(2)],
        });
        assert!(t.send(SimTime(0), RouterId(0), RouterId(3), envelope(0)).is_empty());
        assert!(
            t.send(SimTime(0), RouterId(3), RouterId(0), envelope(1)).is_empty(),
            "blocks both ways"
        );
        assert!(
            t.send(SimTime(0), RouterId(1), RouterId(2), envelope(2)).is_empty(),
            "partitioned in"
        );
        assert!(
            t.send(SimTime(0), RouterId(2), RouterId(1), envelope(3)).is_empty(),
            "partitioned out"
        );
        assert_eq!(
            t.send(SimTime(0), RouterId(0), RouterId(1), envelope(4)).len(),
            1,
            "others flow"
        );
        assert!(t.trace()[..4].iter().all(|r| r.fate == Fate::Blocked));
    }

    #[test]
    fn outage_lift_restores_traffic_deterministically() {
        let mut t = SimTransport::new(line_cache(3), FaultConfig::perfect(), 5);
        t.set_filter(LinkFilter { partitioned: vec![RouterId(1)], ..LinkFilter::default() });
        assert!(t.send(SimTime(0), RouterId(0), RouterId(1), envelope(0)).is_empty());
        t.set_filter(LinkFilter::default());
        assert_eq!(t.send(SimTime(1), RouterId(0), RouterId(1), envelope(1)).len(), 1);
    }
}
