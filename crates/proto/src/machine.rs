//! Sans-I/O per-node protocol state machines.
//!
//! A [`ProtoMachine`] holds one node's protocol state and is driven
//! entirely from outside: `poll(now, event, env)` consumes a delivered
//! envelope or an expired timer and returns an [`Output`] — messages to
//! send, timers to arm, operations that completed. The machine never
//! reads a clock, never touches a socket, and never sleeps; timeouts,
//! bounded retries and exponential backoff are expressed as data, so the
//! same machine runs under the deterministic simulator today and could
//! run on real sockets unchanged.
//!
//! Shared-system knowledge (routing tables, addresses, leases, the
//! meter) is reached through the [`NodeEnv`] trait, which the driver
//! implements over `BristleSystem`. Metering happens at *send* time so
//! that with a perfect transport the message tallies match the
//! function-call path in `bristle-core` exactly; acks and the probe-miss
//! notice are unmetered control traffic that only exists because a
//! message, unlike a function call, can fail to return.

use std::collections::{HashMap, HashSet};

use bristle_core::auth::{AuthDomain, AuthError, VerifyPolicy};
use bristle_core::time::SimTime;
use bristle_netsim::graph::RouterId;
use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;
use bristle_overlay::obs::{ObsEvent, ObsEventKind};

use crate::failure::{
    FailureDetector, FailurePolicy, Liveness, LivenessTransition, TimeoutVerdict,
};
use crate::rto::{RtoConfig, RtoEstimator};
use crate::wire::{Envelope, WireAddr, WireMessage};

/// Largest wait any backed-off timer may reach. Far above every sane
/// schedule (2³² ticks), yet small enough that `base << attempt` can
/// never overflow into a zero or absurd wait.
const MAX_BACKOFF: u64 = 1 << 32;

/// Exponential backoff `base << attempt`, saturating and clamped to
/// [`MAX_BACKOFF`] so deep retry chains and adversarial attempt counts
/// cannot shift the wait past any sane bound (or overflow `u64`).
fn backoff(base: u64, attempt: u32) -> u64 {
    match 1u64.checked_shl(attempt) {
        Some(factor) => base.saturating_mul(factor).min(MAX_BACKOFF),
        None => MAX_BACKOFF,
    }
}

/// How a node retries unacknowledged sends.
///
/// Hop forwards, updates and registrations await an ack for
/// `ack_timeout` ticks; discoveries are retried end-to-end after
/// `discovery_timeout`. Both back off exponentially: attempt `k` waits
/// `timeout << k`. After `max_attempts` sends the operation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Ticks to wait for a HopAck / UpdateAck / RegisterAck.
    pub ack_timeout: u64,
    /// Ticks to wait for a DiscoveryReply before re-issuing.
    pub discovery_timeout: u64,
    /// Total send attempts (first try included) before giving up.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Generous relative to simulated link latencies so a loss-free
        // transport never triggers a spurious (parity-breaking) retry.
        RetryPolicy { ack_timeout: 20_000, discovery_timeout: 100_000, max_attempts: 4 }
    }
}

/// Timer payloads. Stale timers (whose session has already completed)
/// are ignored on expiry, so timers never need cancelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Retransmit an unacked mobile-layer hop.
    HopRetry {
        /// `msg_id` of the awaited HopAck.
        msg_id: u64,
    },
    /// Re-issue an unanswered discovery.
    DiscoveryRetry {
        /// The discovery session to retry.
        session: u64,
    },
    /// Retransmit an unacked LDT update edge.
    UpdateRetry {
        /// `msg_id` of the awaited UpdateAck.
        msg_id: u64,
    },
    /// Retransmit an unacked registration.
    RegisterRetry {
        /// `msg_id` of the awaited RegisterAck.
        msg_id: u64,
    },
    /// A heartbeat probe's ack window elapsed.
    HeartbeatTimeout {
        /// The monitored peer being probed.
        peer: Key,
        /// The probe sequence number awaited.
        seq: u64,
    },
}

/// A timer the driver must arm for this machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timer {
    /// Absolute expiry time.
    pub at: SimTime,
    /// What to do when it fires.
    pub kind: TimerKind,
}

/// An input to [`ProtoMachine::poll`].
#[derive(Debug, Clone)]
pub enum Event {
    /// A message arrived from the transport.
    Deliver(Envelope),
    /// A previously armed timer expired.
    Timer(TimerKind),
}

/// One message to hand to the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Where the sender believes the destination is attached.
    pub to_addr: WireAddr,
    /// The addressed message.
    pub env: Envelope,
}

/// A protocol operation that finished (well or badly) at this node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// A route reached the node owning its target key (emitted by the
    /// terminus).
    Delivered {
        /// The route's originator.
        origin: Key,
        /// Originator-scoped route id.
        route_id: u64,
    },
    /// A hop exhausted its retries with no fallback left.
    RouteFailed {
        /// The route's originator.
        origin: Key,
        /// Originator-scoped route id.
        route_id: u64,
        /// The node at which forwarding gave up.
        at: Key,
    },
    /// A discovery resolved its subject's address.
    Resolved {
        /// The subject that was resolved.
        subject: Key,
    },
    /// A discovery gave up (no replica had a record, or every attempt
    /// timed out).
    ResolutionFailed {
        /// The subject that could not be resolved.
        subject: Key,
    },
    /// An LDT update edge was acknowledged.
    UpdateAcked {
        /// The tree member that acked.
        child: Key,
    },
    /// An LDT update edge exhausted its retries.
    UpdateFailed {
        /// The unreachable tree member.
        child: Key,
    },
    /// A registration was acknowledged (lease granted).
    Registered {
        /// The mobile node registered with.
        target: Key,
    },
    /// A registration exhausted its retries.
    RegisterFailed {
        /// The unreachable target.
        target: Key,
    },
    /// A monitored peer missed enough heartbeat rounds to be suspected.
    PeerSuspected {
        /// The suspect.
        peer: Key,
    },
    /// A monitored peer was confirmed crashed, either by this node's
    /// own detector or via a third-party SuspectNotify.
    PeerDead {
        /// The confirmed-dead peer.
        peer: Key,
    },
    /// A standing suspicion or death verdict against `peer` was
    /// overturned by evidence of a fresher incarnation.
    PeerRefuted {
        /// The peer whose verdict was overturned.
        peer: Key,
        /// The fresher incarnation that overturned it.
        incarnation: u64,
        /// Whether the overturned verdict was a death (a wrongful death)
        /// rather than mere suspicion.
        was_dead: bool,
    },
    /// This node learned it was suspected or declared dead, bumped its
    /// own incarnation past the verdict, and answered with an `Alive`
    /// refutation.
    SelfRefuted {
        /// The node that delivered the accusation.
        accuser: Key,
        /// This node's incarnation after the bump.
        incarnation: u64,
    },
    /// A wrongfully-buried peer asked this node to reverse its funeral.
    RejoinRequested {
        /// The peer asking to rejoin.
        peer: Key,
        /// The incarnation it rejoins at.
        incarnation: u64,
    },
    /// A sponsor acknowledged this node's rejoin request.
    RejoinCompleted {
        /// The sponsor that honored the rejoin.
        sponsor: Key,
    },
}

/// Everything a `poll` call asked the outside world to do.
#[derive(Debug, Default)]
pub struct Output {
    /// Messages to hand to the transport, in send order.
    pub outgoing: Vec<Outgoing>,
    /// Timers to arm.
    pub timers: Vec<Timer>,
    /// Operations that completed during this poll.
    pub completions: Vec<Completion>,
}

impl Output {
    /// An output that does nothing.
    pub fn none() -> Output {
        Output::default()
    }
}

/// The machine's window onto shared system state.
///
/// Every method is a *query* or a *commit* the paper's protocols would
/// perform against local state plus configuration knowledge (routing
/// tables, the replica rule, the distance oracle used for metering).
pub trait NodeEnv {
    /// Mobile-layer next hop from `cur` toward `target` (`None` = owner).
    fn next_hop_mobile(&self, cur: Key, target: Key) -> Option<Key>;
    /// Stationary-layer next hop from `cur` toward `target`.
    fn next_hop_stationary(&self, cur: Key, target: Key) -> Option<Key>;
    /// Whether `key` names a mobile node.
    fn is_mobile(&self, key: Key) -> bool;
    /// The stationary entry point `from` injects discoveries through.
    fn entry_stationary(&self, from: Key) -> Key;
    /// Location replica set for `subject`, owner first.
    fn replicas(&self, subject: Key) -> Vec<Key>;
    /// `key`'s true current address (stationary nodes never move; for
    /// mobile nodes this models out-of-band convergence after a failed
    /// resolution, mirroring the function-call path).
    fn current_addr(&self, key: Key) -> WireAddr;
    /// Whether `addr` still reaches its host.
    fn addr_current(&self, addr: WireAddr) -> bool;
    /// `holder`'s cached **and lease-fresh** address for `subject`.
    fn believed_addr(&self, holder: Key, subject: Key) -> Option<WireAddr>;
    /// The location record `holder` (stationary) stores for `subject`.
    fn location_record(&self, holder: Key, subject: Key) -> Option<WireAddr>;
    /// Shortest-path distance between two routers (the metered cost).
    fn distance(&self, a: RouterId, b: RouterId) -> u64;
    /// Records one sent message of `kind` with physical cost `cost`.
    fn meter(&mut self, kind: MessageKind, cost: u64);
    /// Counts one event of `kind` with no cost (timeouts, retries).
    fn bump(&mut self, kind: MessageKind);
    /// Commits a successful resolution at the asker: grant the lease and
    /// patch the cached state-pair.
    fn commit_resolution(&mut self, asker: Key, subject: Key, addr: WireAddr);
    /// Applies a received LDT update at `receiver`: grant the lease on
    /// `subject` and patch the cached state-pair.
    fn apply_update(&mut self, receiver: Key, subject: Key, addr: WireAddr, seq: u64);
    /// Applies a received registration at `target`.
    fn apply_register(&mut self, target: Key, who: Key, capacity: u32);
    /// Commits an acknowledged registration at the registrant (the lease
    /// the function-call path grants synchronously).
    fn commit_register(&mut self, who: Key, target: Key);
    /// Applies a received location publication at `holder`.
    fn apply_publish(&mut self, holder: Key, subject: Key, addr: WireAddr, seq: u64) {
        let _ = (holder, subject, addr, seq);
    }
    /// Accepts a structured observability event (default: discard).
    ///
    /// Emission is unmetered and must never influence protocol
    /// decisions; drivers override this to feed a flight recorder and
    /// per-operation latency histograms.
    fn emit(&mut self, event: ObsEvent) {
        let _ = event;
    }
    /// The deployment's shared authentication oracle (default `None`:
    /// the seed deployment — frames travel unsealed, nothing verifies,
    /// traces stay byte-identical to pre-auth runs).
    fn auth_domain(&self) -> Option<AuthDomain> {
        None
    }
    /// How strictly this node authenticates received frames.
    fn verify_policy(&self) -> VerifyPolicy {
        VerifyPolicy::Off
    }
    /// Whether a location publication for `subject` reflects live state
    /// rather than a replay of withdrawn records (default: always
    /// fresh). Drivers override this to consult the graveyard: a
    /// replayed record carries the subject's *valid* signature, so
    /// staleness — not the MAC — is what rejects it.
    fn publish_fresh(&self, subject: Key) -> bool {
        let _ = subject;
        true
    }
}

/// A parked forward waiting on an address resolution.
#[derive(Debug, Clone, Copy)]
struct ParkedForward {
    origin: Key,
    route_id: u64,
    target: Key,
    /// Whether this forward already failed once and was re-resolved;
    /// a second failure is final.
    after_failure: bool,
    /// The causal trace the forward belongs to.
    trace: u64,
}

#[derive(Debug)]
struct HopSession {
    out: Outgoing,
    attempt: u32,
    next: Key,
    origin: Key,
    route_id: u64,
    target: Key,
    after_failure: bool,
    /// When the first copy was sent, for RTT sampling (Karn: only
    /// acks of attempt-0 frames are sampled).
    sent_at: SimTime,
}

#[derive(Debug)]
struct DiscSession {
    subject: Key,
    attempt: u32,
    pending: Vec<ParkedForward>,
    /// Trace of the forward that opened the session (joiners keep their
    /// own traces on the parked forwards).
    trace: u64,
    /// When the session was opened, for resolution-latency events.
    started: SimTime,
}

#[derive(Debug)]
struct AckSession {
    out: Outgoing,
    attempt: u32,
    peer: Key,
    /// When the first copy was sent, for RTT sampling (Karn rule).
    sent_at: SimTime,
}

/// One node's protocol state machine.
#[derive(Debug)]
pub struct ProtoMachine {
    key: Key,
    policy: RetryPolicy,
    next_msg_id: u64,
    next_session: u64,
    next_trace: u64,
    /// Receiver-side dedup: (src, msg_id) pairs already processed.
    seen: HashSet<(Key, u64)>,
    hops: HashMap<u64, HopSession>,
    discs: HashMap<u64, DiscSession>,
    updates: HashMap<u64, AckSession>,
    registers: HashMap<u64, AckSession>,
    detector: FailureDetector,
    /// This node's own SWIM-style incarnation number; bumped exactly
    /// when the node learns it was suspected or declared dead.
    incarnation: u64,
    /// `Some` switches every retry timer from the fixed [`RetryPolicy`]
    /// waits to adaptive per-peer Jacobson/Karn RTO estimation.
    rto: Option<RtoConfig>,
    /// Per-peer RTT estimators (adaptive mode only).
    estimators: HashMap<Key, RtoEstimator>,
    /// One estimator for discovery round-trips, which span several
    /// hops and have no single peer to attribute the latency to.
    disc_est: Option<RtoEstimator>,
    /// Send time of the in-flight attempt-0 heartbeat probe per peer;
    /// cleared on retransmit so late acks are never sampled (Karn).
    hb_sent: HashMap<Key, SimTime>,
}

impl ProtoMachine {
    /// A fresh machine for the node named `key`.
    pub fn new(key: Key, policy: RetryPolicy) -> Self {
        ProtoMachine {
            key,
            policy,
            next_msg_id: 0,
            next_session: 0,
            next_trace: 0,
            seen: HashSet::new(),
            hops: HashMap::new(),
            discs: HashMap::new(),
            updates: HashMap::new(),
            registers: HashMap::new(),
            detector: FailureDetector::new(FailurePolicy::default()),
            incarnation: 0,
            rto: None,
            estimators: HashMap::new(),
            disc_est: None,
            hb_sent: HashMap::new(),
        }
    }

    /// Switches retry timers to adaptive per-peer RTO estimation
    /// (`Some`) or back to the fixed [`RetryPolicy`] waits (`None`).
    /// Discovery gets its own estimator seeded from the fixed
    /// discovery timeout, since its round-trips span several hops.
    pub fn set_adaptive_rto(&mut self, cfg: Option<RtoConfig>) {
        self.rto = cfg;
        self.estimators.clear();
        self.hb_sent.clear();
        self.disc_est =
            cfg.map(|_| RtoEstimator::new(RtoConfig::for_discovery(self.policy.discovery_timeout)));
    }

    /// The adaptive-RTO configuration, if enabled.
    pub fn adaptive_rto(&self) -> Option<RtoConfig> {
        self.rto
    }

    /// The current (unjittered, un-backed-off base) RTO estimate for
    /// `peer`, if adaptive mode has collected at least one sample.
    pub fn rto_estimate(&self, peer: Key) -> Option<u64> {
        self.estimators.get(&peer).filter(|e| e.samples() > 0).map(|e| e.rto())
    }

    /// The detector's health score for `peer` (100 = perfect, `None` =
    /// unmonitored).
    pub fn peer_health(&self, peer: Key) -> Option<u32> {
        self.detector.health(peer)
    }

    /// Whether `peer` is monitored, not dead, and currently bleeding
    /// health — a gray-failure signal the driver uses for latency-aware
    /// replica failover.
    pub fn is_peer_degraded(&self, peer: Key) -> bool {
        self.detector.is_degraded(peer)
    }

    /// Every monitored peer currently held degraded (see
    /// [`Self::is_peer_degraded`]).
    pub fn degraded_peers(&self) -> Vec<Key> {
        self.detector.monitored().into_iter().filter(|&p| self.detector.is_degraded(p)).collect()
    }

    /// The ack-retry wait for `peer`: the fixed policy timeout, or the
    /// peer's jittered adaptive RTO.
    fn ack_timeout_for(&mut self, peer: Key) -> u64 {
        match self.rto {
            None => self.policy.ack_timeout,
            Some(cfg) => {
                let salt = self.key.0 ^ peer.0.rotate_left(32);
                self.estimators
                    .entry(peer)
                    .or_insert_with(|| RtoEstimator::new(cfg))
                    .jittered_rto(salt)
            }
        }
    }

    /// The heartbeat-probe wait for `peer` (fixed mode uses the
    /// detector's `ack_wait`; adaptive mode shares the peer's RTO
    /// estimator with the ack path).
    fn hb_timeout_for(&mut self, peer: Key) -> u64 {
        match self.rto {
            None => self.detector.policy().ack_wait,
            Some(cfg) => {
                let salt = self.key.0 ^ peer.0.rotate_left(32) ^ 0xB5;
                self.estimators
                    .entry(peer)
                    .or_insert_with(|| RtoEstimator::new(cfg))
                    .jittered_rto(salt)
            }
        }
    }

    /// The discovery-session wait: fixed, or the jittered discovery
    /// estimator.
    fn discovery_timeout_for(&mut self) -> u64 {
        match self.disc_est.as_mut() {
            None => self.policy.discovery_timeout,
            Some(est) => est.jittered_rto(self.key.0),
        }
    }

    /// The rearm delay for an ack-retry against `peer` at (post-bump)
    /// attempt `next_attempt`: fixed exponential backoff, or the
    /// peer's adaptive RTO (whose Karn backoff replaces the shift).
    fn retry_wait(&mut self, peer: Key, next_attempt: u32) -> u64 {
        match self.rto {
            None => backoff(self.policy.ack_timeout, next_attempt),
            Some(_) => {
                self.note_rto_timeout(peer);
                self.ack_timeout_for(peer)
            }
        }
    }

    /// Feeds a measured round-trip into `peer`'s estimator (adaptive
    /// mode only; Karn's rule drops samples from retransmitted frames).
    fn rtt_sample(&mut self, peer: Key, attempt: u32, rtt: u64) {
        if let Some(cfg) = self.rto {
            self.estimators
                .entry(peer)
                .or_insert_with(|| RtoEstimator::new(cfg))
                .karn_sample(attempt, rtt);
        }
    }

    /// Records a retry timeout against `peer`'s estimator, doubling its
    /// backed-off RTO (Karn backoff; collapses on the next clean
    /// sample).
    fn note_rto_timeout(&mut self, peer: Key) {
        if let Some(cfg) = self.rto {
            self.estimators.entry(peer).or_insert_with(|| RtoEstimator::new(cfg)).on_timeout();
        }
    }

    /// The node this machine speaks for.
    pub fn key(&self) -> Key {
        self.key
    }

    /// This node's own incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The highest incarnation this node has observed `peer` at
    /// (`None` = unmonitored).
    pub fn peer_incarnation(&self, peer: Key) -> Option<u64> {
        self.detector.incarnation_of(peer)
    }

    /// Raises this node's own incarnation to `incarnation` (never
    /// lowers it). A process restarted from its durable store resumes
    /// at the persisted-and-bumped incarnation rather than 0, so its
    /// post-restart messages out-rank its pre-crash life.
    pub fn restore_incarnation(&mut self, incarnation: u64) {
        self.incarnation = self.incarnation.max(incarnation);
    }

    /// Replaces the failure-detection thresholds (existing suspicion
    /// state, incarnations included, is kept).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        let monitored = self.detector.monitored();
        let mut fresh = FailureDetector::new(policy);
        for peer in monitored {
            fresh.monitor(peer);
            let incarnation = self.detector.incarnation_of(peer).unwrap_or(0);
            fresh.observe_alive(peer, incarnation);
            if self.detector.is_dead(peer) {
                fresh.mark_dead(peer, incarnation);
            }
        }
        self.detector = fresh;
    }

    /// Starts monitoring `peer`'s liveness via heartbeats.
    pub fn monitor(&mut self, peer: Key) {
        if peer != self.key {
            self.detector.monitor(peer);
        }
    }

    /// Stops monitoring every peer for which `keep` returns false.
    pub fn retain_monitored(&mut self, keep: impl FnMut(Key) -> bool) {
        self.detector.retain_monitored(keep);
    }

    /// This node's current belief about `peer` (`None` = unmonitored).
    pub fn liveness(&self, peer: Key) -> Option<Liveness> {
        self.detector.liveness(peer)
    }

    /// Peers this node monitors, sorted.
    pub fn monitored(&self) -> Vec<Key> {
        self.detector.monitored()
    }

    /// Number of in-flight sessions awaiting acks or replies.
    pub fn inflight(&self) -> usize {
        self.hops.len() + self.discs.len() + self.updates.len() + self.registers.len()
    }

    fn fresh_msg_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    /// Allocates a causal trace id for an operation this node originates.
    ///
    /// Deterministic (a per-node counter mixed with the node key so two
    /// nodes never mint the same id in practice) and never 0 — trace 0 is
    /// reserved for background traffic such as heartbeats.
    fn fresh_trace(&mut self) -> u64 {
        self.next_trace += 1;
        (self.key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.next_trace) | 1
    }

    /// Emits one [`ObsEventKind::Send`] per outgoing frame in `out`.
    /// Called exactly once per public entry point so every frame — first
    /// sends, retransmits, acks, replies — is observed.
    fn observe_sends(&self, now: SimTime, env: &mut dyn NodeEnv, out: &Output) {
        for o in &out.outgoing {
            env.emit(ObsEvent {
                at: now.0,
                trace: o.env.trace_id,
                node: self.key,
                kind: ObsEventKind::Send {
                    to: o.env.dst,
                    tag: o.env.msg.tag_name(),
                    msg_id: o.env.msg_id,
                },
            });
        }
    }

    fn my_router(&self, env: &dyn NodeEnv) -> RouterId {
        env.current_addr(self.key).router_id()
    }

    // -----------------------------------------------------------------
    // Frame authentication
    // -----------------------------------------------------------------

    /// The identity whose authority `msg` carries, if its kind is
    /// authenticated: location records speak for their *subject*
    /// (relays re-seal on the subject's behalf, modelling a forwarded
    /// signature), `Alive` refutations for the refuted node, and
    /// registrations, their acks and death verdicts for their sender.
    /// `None` marks an unauthenticated kind (hops, acks, discovery,
    /// heartbeats) that never carries a trailer.
    fn signer_of(src: Key, msg: &WireMessage) -> Option<Key> {
        match msg {
            WireMessage::Publish { subject, .. } | WireMessage::Update { subject, .. } => {
                Some(*subject)
            }
            WireMessage::Alive { node, .. } => Some(*node),
            WireMessage::Register { .. }
            | WireMessage::RegisterAck { .. }
            | WireMessage::SuspectNotify { .. } => Some(src),
            _ => None,
        }
    }

    /// Seals `envelope` with its signer's trailer when the deployment
    /// authenticates (no-op otherwise, and on unauthenticated kinds).
    /// Must run *before* the envelope is cloned into a retry session so
    /// retransmits carry the tag too.
    fn seal(env: &dyn NodeEnv, envelope: &mut Envelope) {
        let Some(domain) = env.auth_domain() else { return };
        if let Some(signer) = Self::signer_of(envelope.src, &envelope.msg) {
            envelope.auth = Some(domain.sign(signer, envelope.msg.auth_digest()));
        }
    }

    /// Verifies a received frame's trailer: self-certification and the
    /// MAC for authenticated kinds, plus the replay check on location
    /// publications (a withdrawn record's signature is still valid —
    /// only freshness rejects it).
    fn check_frame(env: &dyn NodeEnv, envelope: &Envelope) -> Result<(), AuthError> {
        let Some(signer) = Self::signer_of(envelope.src, &envelope.msg) else {
            return Ok(());
        };
        let Some(domain) = env.auth_domain() else { return Ok(()) };
        let Some(auth) = envelope.auth else { return Err(AuthError::MissingTag) };
        domain.verify(signer, envelope.msg.auth_digest(), auth)?;
        if let WireMessage::Publish { subject, .. } = envelope.msg {
            if !env.publish_fresh(subject) {
                return Err(AuthError::StaleRecord);
            }
        }
        Ok(())
    }

    /// The receive-side authentication gate. Returns `false` when the
    /// frame must be dropped before touching any state (enforcing
    /// policy only); failures are metered as [`MessageKind::ForgedFrame`]
    /// (plus [`MessageKind::AuthReject`] when dropped) and emitted to
    /// the flight recorder either way.
    fn admit_frame(&self, now: SimTime, env: &mut dyn NodeEnv, envelope: &Envelope) -> bool {
        let policy = env.verify_policy();
        if policy == VerifyPolicy::Off {
            return true;
        }
        let Err(reason) = Self::check_frame(env, envelope) else { return true };
        env.bump(MessageKind::ForgedFrame);
        let dropped = policy == VerifyPolicy::Enforce;
        env.emit(ObsEvent {
            at: now.0,
            trace: envelope.trace_id,
            node: self.key,
            kind: ObsEventKind::AuthReject {
                from: envelope.src,
                tag: envelope.msg.tag_name(),
                reason: reason.name(),
                dropped,
            },
        });
        if dropped {
            env.bump(MessageKind::AuthReject);
            return false;
        }
        true
    }

    // -----------------------------------------------------------------
    // Operation entry points
    // -----------------------------------------------------------------

    /// Starts routing a message from this node toward `target`.
    /// Returns the route id (for matching the eventual completion) and
    /// the first batch of effects.
    pub fn start_route(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        target: Key,
    ) -> (u64, Output) {
        let route_id = self.fresh_msg_id();
        let trace = self.fresh_trace();
        let mut out = Output::none();
        let parked =
            ParkedForward { origin: self.key, route_id, target, after_failure: false, trace };
        self.forward_route(now, env, parked, &mut out);
        self.observe_sends(now, env, &out);
        (route_id, out)
    }

    /// Disseminates `subject`'s fresh address to this node's LDT
    /// children: one reliable Update per edge.
    pub fn start_update(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        subject: Key,
        addr: WireAddr,
        seq: u64,
        children: &[Key],
    ) -> Output {
        let mut out = Output::none();
        let trace = self.fresh_trace();
        for &child in children {
            let msg_id = self.fresh_msg_id();
            let wait = self.ack_timeout_for(child);
            let to_addr = env.current_addr(child);
            let cost = env.distance(self.my_router(env), to_addr.router_id());
            env.meter(MessageKind::Update, cost);
            let mut envelope = Envelope {
                src: self.key,
                dst: child,
                msg_id,
                trace_id: trace,
                msg: WireMessage::Update { subject, addr, seq },
                auth: None,
            };
            Self::seal(env, &mut envelope);
            let outgoing = Outgoing { to_addr, env: envelope };
            out.outgoing.push(outgoing.clone());
            self.updates.insert(
                msg_id,
                AckSession { out: outgoing, attempt: 0, peer: child, sent_at: now },
            );
            out.timers.push(Timer { at: now.plus(wait), kind: TimerKind::UpdateRetry { msg_id } });
        }
        self.observe_sends(now, env, &out);
        out
    }

    /// Registers this node's interest in mobile node `target`.
    pub fn start_register(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        target: Key,
        capacity: u32,
    ) -> Output {
        let mut out = Output::none();
        let msg_id = self.fresh_msg_id();
        let trace = self.fresh_trace();
        let to_addr = env.current_addr(target);
        let cost = env.distance(self.my_router(env), to_addr.router_id());
        env.meter(MessageKind::Register, cost);
        let mut envelope = Envelope {
            src: self.key,
            dst: target,
            msg_id,
            trace_id: trace,
            msg: WireMessage::Register { target, capacity },
            auth: None,
        };
        Self::seal(env, &mut envelope);
        let outgoing = Outgoing { to_addr, env: envelope };
        out.outgoing.push(outgoing.clone());
        self.registers
            .insert(msg_id, AckSession { out: outgoing, attempt: 0, peer: target, sent_at: now });
        let wait = self.ack_timeout_for(target);
        out.timers.push(Timer { at: now.plus(wait), kind: TimerKind::RegisterRetry { msg_id } });
        self.observe_sends(now, env, &out);
        out
    }

    /// Sends a one-shot (unacknowledged) message — Publish, JoinProbe,
    /// Leave, Refresh — metered as `kind`.
    pub fn send_oneshot(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        to: Key,
        msg: WireMessage,
        kind: MessageKind,
    ) -> Output {
        let mut out = Output::none();
        let msg_id = self.fresh_msg_id();
        let trace = self.fresh_trace();
        let to_addr = env.current_addr(to);
        let cost = env.distance(self.my_router(env), to_addr.router_id());
        env.meter(kind, cost);
        let mut envelope =
            Envelope { src: self.key, dst: to, msg_id, trace_id: trace, msg, auth: None };
        Self::seal(env, &mut envelope);
        out.outgoing.push(Outgoing { to_addr, env: envelope });
        self.observe_sends(now, env, &out);
        out
    }

    /// Opens one heartbeat round: probes every monitored, not-yet-dead
    /// peer (one probe each, metered as HeartbeatSent) and arms the ack
    /// windows. Rounds are driver-paced — a round's probes never re-arm
    /// themselves, so an idle machine stays idle.
    pub fn start_heartbeats(&mut self, now: SimTime, env: &mut dyn NodeEnv) -> Output {
        let mut out = Output::none();
        for peer in self.detector.monitored() {
            let Some(seq) = self.detector.begin_probe(peer) else { continue };
            self.push_heartbeat(env, peer, seq, &mut out);
            self.hb_sent.insert(peer, now);
            let wait = self.hb_timeout_for(peer);
            out.timers.push(Timer {
                at: now.plus(wait),
                kind: TimerKind::HeartbeatTimeout { peer, seq },
            });
        }
        self.observe_sends(now, env, &out);
        out
    }

    fn push_heartbeat(&mut self, env: &mut dyn NodeEnv, peer: Key, seq: u64, out: &mut Output) {
        let to_addr = env.current_addr(peer);
        let cost = env.distance(self.my_router(env), to_addr.router_id());
        env.meter(MessageKind::HeartbeatSent, cost);
        let msg_id = self.fresh_msg_id();
        out.outgoing.push(Outgoing {
            to_addr,
            env: Envelope {
                src: self.key,
                dst: peer,
                msg_id,
                trace_id: 0,
                msg: WireMessage::Heartbeat { seq, incarnation: self.incarnation },
                auth: None,
            },
        });
    }

    /// Tells `to` that `suspect` has been confirmed dead at the highest
    /// incarnation this node observed it at (unmetered control traffic,
    /// like acks: it spreads a verdict, not state). Also the obituary a
    /// wrongfully-buried node itself must eventually receive — learning
    /// of its own funeral is what triggers the incarnation bump and the
    /// `Alive` refutation.
    pub fn notify_suspect(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        to: Key,
        suspect: Key,
    ) -> Output {
        let mut out = Output::none();
        let to_addr = env.current_addr(to);
        let msg_id = self.fresh_msg_id();
        let incarnation = self.detector.incarnation_of(suspect).unwrap_or(0);
        let mut envelope = Envelope {
            src: self.key,
            dst: to,
            msg_id,
            trace_id: 0,
            msg: WireMessage::SuspectNotify { suspect, incarnation },
            auth: None,
        };
        Self::seal(env, &mut envelope);
        out.outgoing.push(Outgoing { to_addr, env: envelope });
        self.observe_sends(now, env, &out);
        out
    }

    /// Asserts this node's own liveness at its current incarnation to
    /// `to` (metered as [`MessageKind::Refutation`]).
    pub fn send_alive(&mut self, now: SimTime, env: &mut dyn NodeEnv, to: Key) -> Output {
        let msg = WireMessage::Alive { node: self.key, incarnation: self.incarnation };
        self.send_oneshot(now, env, to, msg, MessageKind::Refutation)
    }

    /// Asks `sponsor` to reverse this node's funeral — re-admit it to
    /// the overlay at its current incarnation (metered as
    /// [`MessageKind::Rejoin`]).
    pub fn start_rejoin(&mut self, now: SimTime, env: &mut dyn NodeEnv, sponsor: Key) -> Output {
        let msg = WireMessage::Rejoin { incarnation: self.incarnation };
        self.send_oneshot(now, env, sponsor, msg, MessageKind::Rejoin)
    }

    /// Digests third-party or first-hand evidence that `peer` is alive
    /// at `incarnation`, emitting a [`Completion::PeerRefuted`] when it
    /// overturns a standing verdict.
    fn digest_alive(
        &mut self,
        env: &mut dyn NodeEnv,
        peer: Key,
        incarnation: u64,
        out: &mut Output,
    ) {
        if let Some(overturned) = self.detector.observe_alive(peer, incarnation) {
            let was_dead = overturned == Liveness::Dead;
            if was_dead {
                env.bump(MessageKind::WrongfulDeath);
            }
            out.completions.push(Completion::PeerRefuted { peer, incarnation, was_dead });
        }
    }

    /// Feeds one event (delivery or timer) through the machine.
    pub fn poll(&mut self, now: SimTime, event: Event, env: &mut dyn NodeEnv) -> Output {
        let out = match event {
            Event::Deliver(envelope) => {
                if self.admit_frame(now, env, &envelope) {
                    self.on_deliver(now, env, envelope)
                } else {
                    // Rejected frame: no ack, no dedup entry, no state.
                    Output::none()
                }
            }
            Event::Timer(kind) => self.on_timer(now, env, kind),
        };
        self.observe_sends(now, env, &out);
        out
    }

    // -----------------------------------------------------------------
    // Mobile-layer forwarding (paper Fig. 2)
    // -----------------------------------------------------------------

    fn forward_route(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        parked: ParkedForward,
        out: &mut Output,
    ) {
        let ParkedForward { origin, route_id, target, .. } = parked;
        let Some(next) = env.next_hop_mobile(self.key, target) else {
            env.emit(ObsEvent {
                at: now.0,
                trace: parked.trace,
                node: self.key,
                kind: ObsEventKind::RouteDelivered { route_id },
            });
            out.completions.push(Completion::Delivered { origin, route_id });
            return;
        };
        if env.is_mobile(next) {
            let believed = env.believed_addr(self.key, next);
            match believed {
                Some(addr) if env.addr_current(addr) => {
                    self.send_hop(now, env, next, addr, parked, out);
                }
                other => {
                    if let Some(stale) = other {
                        // Confidently wrong: one wasted delivery attempt to
                        // the old attachment point. The attempt is metered
                        // but not emitted — the moved host can no longer
                        // receive at that address, so the bytes black-hole
                        // either way, and keeping it implicit preserves
                        // exact meter parity with the function-call path.
                        let cost = env.distance(self.my_router(env), stale.router_id());
                        env.meter(MessageKind::RouteHop, cost);
                    }
                    self.start_discovery(now, env, next, parked, out);
                }
            }
        } else {
            let addr = env.current_addr(next);
            self.send_hop(now, env, next, addr, parked, out);
        }
    }

    fn send_hop(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        next: Key,
        to_addr: WireAddr,
        parked: ParkedForward,
        out: &mut Output,
    ) {
        let msg_id = self.fresh_msg_id();
        let cost = env.distance(self.my_router(env), to_addr.router_id());
        env.meter(MessageKind::RouteHop, cost);
        let outgoing = Outgoing {
            to_addr,
            env: Envelope {
                src: self.key,
                dst: next,
                msg_id,
                trace_id: parked.trace,
                msg: WireMessage::RouteHop {
                    origin: parked.origin,
                    route_id: parked.route_id,
                    target: parked.target,
                },
                auth: None,
            },
        };
        out.outgoing.push(outgoing.clone());
        self.hops.insert(
            msg_id,
            HopSession {
                out: outgoing,
                attempt: 0,
                next,
                origin: parked.origin,
                route_id: parked.route_id,
                target: parked.target,
                after_failure: parked.after_failure,
                sent_at: now,
            },
        );
        let wait = self.ack_timeout_for(next);
        out.timers.push(Timer { at: now.plus(wait), kind: TimerKind::HopRetry { msg_id } });
    }

    // -----------------------------------------------------------------
    // `_discovery` (paper §2.3.2)
    // -----------------------------------------------------------------

    fn start_discovery(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        subject: Key,
        parked: ParkedForward,
        out: &mut Output,
    ) {
        // Join an in-flight session for the same subject if one exists.
        if let Some(session) = self.discs.values_mut().find(|s| s.subject == subject) {
            session.pending.push(parked);
            return;
        }
        let sid = self.next_session;
        self.next_session += 1;
        let trace = parked.trace;
        self.discs.insert(
            sid,
            DiscSession { subject, attempt: 0, pending: vec![parked], trace, started: now },
        );
        env.emit(ObsEvent {
            at: now.0,
            trace,
            node: self.key,
            kind: ObsEventKind::DiscoveryStart { subject },
        });
        self.emit_discovery(now, env, sid, subject, trace, out);
        let wait = self.discovery_timeout_for();
        out.timers
            .push(Timer { at: now.plus(wait), kind: TimerKind::DiscoveryRetry { session: sid } });
    }

    fn emit_discovery(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        sid: u64,
        subject: Key,
        trace: u64,
        out: &mut Output,
    ) {
        let entry = env.entry_stationary(self.key);
        if entry == self.key {
            // We are our own entry point: run the first stationary step
            // locally, exactly as the function path skips the injection
            // hop when `entry == from`.
            self.handle_discovery(now, env, subject, self.key, sid, None, trace, out);
        } else {
            let to_addr = env.current_addr(entry);
            let cost = env.distance(self.my_router(env), to_addr.router_id());
            env.meter(MessageKind::DiscoveryHop, cost);
            let msg_id = self.fresh_msg_id();
            out.outgoing.push(Outgoing {
                to_addr,
                env: Envelope {
                    src: self.key,
                    dst: entry,
                    msg_id,
                    trace_id: trace,
                    msg: WireMessage::Discovery {
                        subject,
                        asker: self.key,
                        session: sid,
                        probe: None,
                    },
                    auth: None,
                },
            });
        }
    }

    /// One stationary node's handling of a Discovery hop: route toward
    /// the owner, then walk the replica chain on a miss, then reply.
    #[allow(clippy::too_many_arguments)]
    fn handle_discovery(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        subject: Key,
        asker: Key,
        sid: u64,
        probe: Option<Key>,
        trace: u64,
        out: &mut Output,
    ) {
        let _ = now;
        match probe {
            None => {
                if let Some(nh) = env.next_hop_stationary(self.key, subject) {
                    let to_addr = env.current_addr(nh);
                    let cost = env.distance(self.my_router(env), to_addr.router_id());
                    env.meter(MessageKind::DiscoveryHop, cost);
                    let msg_id = self.fresh_msg_id();
                    out.outgoing.push(Outgoing {
                        to_addr,
                        env: Envelope {
                            src: self.key,
                            dst: nh,
                            msg_id,
                            trace_id: trace,
                            msg: WireMessage::Discovery {
                                subject,
                                asker,
                                session: sid,
                                probe: None,
                            },
                            auth: None,
                        },
                    });
                    return;
                }
                // We own the subject's record space: the route terminus.
                if let Some(addr) = env.location_record(self.key, subject) {
                    self.send_reply(env, subject, sid, asker, Some(addr), trace, out);
                    return;
                }
                // Miss at the owner: probe successor replicas.
                let replicas = env.replicas(subject);
                match replicas.iter().copied().find(|&r| r != self.key) {
                    Some(next_rep) => {
                        let to_addr = env.current_addr(next_rep);
                        let cost = env.distance(self.my_router(env), to_addr.router_id());
                        env.meter(MessageKind::DiscoveryHop, cost);
                        let msg_id = self.fresh_msg_id();
                        out.outgoing.push(Outgoing {
                            to_addr,
                            env: Envelope {
                                src: self.key,
                                dst: next_rep,
                                msg_id,
                                trace_id: trace,
                                msg: WireMessage::Discovery {
                                    subject,
                                    asker,
                                    session: sid,
                                    probe: Some(self.key),
                                },
                                auth: None,
                            },
                        });
                    }
                    None => self.send_reply(env, subject, sid, asker, None, trace, out),
                }
            }
            Some(terminus) => {
                if let Some(addr) = env.location_record(self.key, subject) {
                    // Serving from a probed replica rather than the route
                    // terminus: the chain absorbed the primary's miss.
                    env.bump(MessageKind::ReplicaFailover);
                    self.send_reply(env, subject, sid, asker, Some(addr), trace, out);
                    return;
                }
                let replicas = env.replicas(subject);
                let next = replicas
                    .iter()
                    .position(|&r| r == self.key)
                    .and_then(|i| replicas.get(i + 1))
                    .copied();
                match next {
                    Some(r) => {
                        let to_addr = env.current_addr(r);
                        let cost = env.distance(self.my_router(env), to_addr.router_id());
                        env.meter(MessageKind::DiscoveryHop, cost);
                        let msg_id = self.fresh_msg_id();
                        out.outgoing.push(Outgoing {
                            to_addr,
                            env: Envelope {
                                src: self.key,
                                dst: r,
                                msg_id,
                                trace_id: trace,
                                msg: WireMessage::Discovery {
                                    subject,
                                    asker,
                                    session: sid,
                                    probe: Some(terminus),
                                },
                                auth: None,
                            },
                        });
                    }
                    None => {
                        // Chain exhausted: tell the terminus, which answers
                        // the asker itself (unmetered control notice — the
                        // function path replies from the terminus on a
                        // total miss).
                        let to_addr = env.current_addr(terminus);
                        let msg_id = self.fresh_msg_id();
                        out.outgoing.push(Outgoing {
                            to_addr,
                            env: Envelope {
                                src: self.key,
                                dst: terminus,
                                msg_id,
                                trace_id: trace,
                                msg: WireMessage::ProbeMiss { subject, asker, session: sid },
                                auth: None,
                            },
                        });
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn send_reply(
        &mut self,
        env: &mut dyn NodeEnv,
        subject: Key,
        sid: u64,
        asker: Key,
        addr: Option<WireAddr>,
        trace: u64,
        out: &mut Output,
    ) {
        let to_addr = env.current_addr(asker);
        let cost = env.distance(self.my_router(env), to_addr.router_id());
        env.meter(MessageKind::DiscoveryHop, cost);
        let msg_id = self.fresh_msg_id();
        out.outgoing.push(Outgoing {
            to_addr,
            env: Envelope {
                src: self.key,
                dst: asker,
                msg_id,
                trace_id: trace,
                msg: WireMessage::DiscoveryReply { subject, session: sid, addr },
                auth: None,
            },
        });
    }

    fn finish_discovery(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        session: DiscSession,
        addr: Option<WireAddr>,
        out: &mut Output,
    ) {
        let subject = session.subject;
        let elapsed = now.since(session.started);
        match addr {
            Some(a) => {
                env.emit(ObsEvent {
                    at: now.0,
                    trace: session.trace,
                    node: self.key,
                    kind: ObsEventKind::DiscoveryResolved { subject, elapsed },
                });
                env.commit_resolution(self.key, subject, a);
                out.completions.push(Completion::Resolved { subject });
            }
            None => {
                env.emit(ObsEvent {
                    at: now.0,
                    trace: session.trace,
                    node: self.key,
                    kind: ObsEventKind::DiscoveryFailed { subject, elapsed },
                });
                out.completions.push(Completion::ResolutionFailed { subject });
            }
        }
        for parked in session.pending {
            // On success the resolved address is also the cached one; on
            // failure forward to the subject's true attachment, modelling
            // the function path's out-of-band convergence.
            let to_addr = addr.unwrap_or_else(|| env.current_addr(subject));
            self.send_hop(now, env, subject, to_addr, parked, out);
        }
    }

    // -----------------------------------------------------------------
    // Deliveries
    // -----------------------------------------------------------------

    fn on_deliver(&mut self, now: SimTime, env: &mut dyn NodeEnv, envelope: Envelope) -> Output {
        let mut out = Output::none();
        let src = envelope.src;
        let msg_id = envelope.msg_id;
        // Replies and forwards stay on the causal trace of the frame that
        // provoked them, so a route and the discovery retries, replica
        // failovers and refutations it triggers share one trace id.
        let trace = envelope.trace_id;
        match envelope.msg {
            WireMessage::RouteHop { origin, route_id, target } => {
                let dup = !self.seen.insert((src, msg_id));
                // Always (re-)ack, even duplicates: the original ack may
                // have been lost. Acks are unmetered control traffic.
                let ack_to = env.current_addr(src);
                let ack_id = self.fresh_msg_id();
                out.outgoing.push(Outgoing {
                    to_addr: ack_to,
                    env: Envelope {
                        src: self.key,
                        dst: src,
                        msg_id: ack_id,
                        trace_id: trace,
                        msg: WireMessage::HopAck { acked: msg_id },
                        auth: None,
                    },
                });
                if !dup {
                    let parked =
                        ParkedForward { origin, route_id, target, after_failure: false, trace };
                    self.forward_route(now, env, parked, &mut out);
                }
            }
            WireMessage::HopAck { acked } => {
                if let Some(s) = self.hops.remove(&acked) {
                    self.rtt_sample(s.next, s.attempt, now.since(s.sent_at));
                    env.emit(ObsEvent {
                        at: now.0,
                        trace,
                        node: self.key,
                        kind: ObsEventKind::Ack { from: src, msg_id: acked },
                    });
                }
            }
            WireMessage::Discovery { subject, asker, session, probe } => {
                if self.seen.insert((src, msg_id)) {
                    self.handle_discovery(
                        now, env, subject, asker, session, probe, trace, &mut out,
                    );
                }
            }
            WireMessage::DiscoveryReply { subject: _, session, addr } => {
                if let Some(s) = self.discs.remove(&session) {
                    // Karn: only first-attempt sessions feed the
                    // discovery estimator.
                    if s.attempt == 0 {
                        if let Some(est) = self.disc_est.as_mut() {
                            est.sample(now.since(s.started));
                        }
                    }
                    self.finish_discovery(now, env, s, addr, &mut out);
                }
            }
            WireMessage::ProbeMiss { subject, asker, session } => {
                if self.seen.insert((src, msg_id)) {
                    self.send_reply(env, subject, session, asker, None, trace, &mut out);
                }
            }
            WireMessage::Register { target, capacity } => {
                if self.seen.insert((src, msg_id)) {
                    env.apply_register(target, src, capacity);
                }
                let ack_to = env.current_addr(src);
                let ack_id = self.fresh_msg_id();
                let mut ack = Envelope {
                    src: self.key,
                    dst: src,
                    msg_id: ack_id,
                    trace_id: trace,
                    msg: WireMessage::RegisterAck { acked: msg_id },
                    auth: None,
                };
                Self::seal(env, &mut ack);
                out.outgoing.push(Outgoing { to_addr: ack_to, env: ack });
            }
            WireMessage::RegisterAck { acked } => {
                if let Some(s) = self.registers.remove(&acked) {
                    self.rtt_sample(s.peer, s.attempt, now.since(s.sent_at));
                    env.emit(ObsEvent {
                        at: now.0,
                        trace,
                        node: self.key,
                        kind: ObsEventKind::Ack { from: src, msg_id: acked },
                    });
                    env.commit_register(self.key, s.peer);
                    out.completions.push(Completion::Registered { target: s.peer });
                }
            }
            WireMessage::Update { subject, addr, seq } => {
                if self.seen.insert((src, msg_id)) {
                    env.apply_update(self.key, subject, addr, seq);
                }
                let ack_to = env.current_addr(src);
                let ack_id = self.fresh_msg_id();
                out.outgoing.push(Outgoing {
                    to_addr: ack_to,
                    env: Envelope {
                        src: self.key,
                        dst: src,
                        msg_id: ack_id,
                        trace_id: trace,
                        msg: WireMessage::UpdateAck { acked: msg_id },
                        auth: None,
                    },
                });
            }
            WireMessage::UpdateAck { acked } => {
                if let Some(s) = self.updates.remove(&acked) {
                    self.rtt_sample(s.peer, s.attempt, now.since(s.sent_at));
                    env.emit(ObsEvent {
                        at: now.0,
                        trace,
                        node: self.key,
                        kind: ObsEventKind::Ack { from: src, msg_id: acked },
                    });
                    out.completions.push(Completion::UpdateAcked { child: s.peer });
                }
            }
            WireMessage::Publish { subject, addr, seq } => {
                if self.seen.insert((src, msg_id)) {
                    env.apply_publish(self.key, subject, addr, seq);
                }
            }
            WireMessage::JoinProbe { .. }
            | WireMessage::Leave { .. }
            | WireMessage::Refresh { .. } => {
                // Vocabulary completeness: observed, deduplicated, no
                // protocol reaction yet.
                self.seen.insert((src, msg_id));
            }
            WireMessage::Heartbeat { seq, incarnation } => {
                // The probe itself is evidence of life at `incarnation`.
                self.digest_alive(env, src, incarnation, &mut out);
                let ack_to = env.current_addr(src);
                let ack_id = self.fresh_msg_id();
                let reply = if self.detector.is_dead(src) {
                    // A peer we hold dead is probing us: a zombie on the
                    // far side of a healed partition. Instead of acking,
                    // tell it about its own funeral so it can bump its
                    // incarnation and refute.
                    WireMessage::SuspectNotify {
                        suspect: src,
                        incarnation: self.detector.incarnation_of(src).unwrap_or(0),
                    }
                } else {
                    // Always answer, even duplicates: the previous ack
                    // may have been lost. Acks are unmetered control
                    // traffic.
                    WireMessage::HeartbeatAck { seq, incarnation: self.incarnation }
                };
                let mut reply = Envelope {
                    src: self.key,
                    dst: src,
                    msg_id: ack_id,
                    trace_id: trace,
                    msg: reply,
                    auth: None,
                };
                // The zombie-path obituary is a verdict and must verify.
                Self::seal(env, &mut reply);
                out.outgoing.push(Outgoing { to_addr: ack_to, env: reply });
            }
            WireMessage::HeartbeatAck { seq, incarnation } => {
                self.digest_alive(env, src, incarnation, &mut out);
                let closed = self.detector.ack(src, seq, incarnation);
                if let Some(sent) = self.hb_sent.remove(&src) {
                    // The entry survives only while the attempt-0 probe
                    // is the one in flight (Karn: retransmits clear it).
                    if closed {
                        self.rtt_sample(src, 0, now.since(sent));
                    }
                }
            }
            WireMessage::SuspectNotify { suspect, incarnation } => {
                if suspect == self.key {
                    // Our own obituary. Bump past the verdict's
                    // incarnation and refute — every time, because the
                    // previous refutation may have been lost.
                    if incarnation >= self.incarnation {
                        self.incarnation = incarnation + 1;
                    }
                    let cost = env.distance(self.my_router(env), env.current_addr(src).router_id());
                    env.meter(MessageKind::Refutation, cost);
                    env.emit(ObsEvent {
                        at: now.0,
                        trace,
                        node: self.key,
                        kind: ObsEventKind::Refute { incarnation: self.incarnation },
                    });
                    let reply_id = self.fresh_msg_id();
                    let mut refutation = Envelope {
                        src: self.key,
                        dst: src,
                        msg_id: reply_id,
                        trace_id: trace,
                        msg: WireMessage::Alive { node: self.key, incarnation: self.incarnation },
                        auth: None,
                    };
                    Self::seal(env, &mut refutation);
                    out.outgoing.push(Outgoing { to_addr: env.current_addr(src), env: refutation });
                    out.completions.push(Completion::SelfRefuted {
                        accuser: src,
                        incarnation: self.incarnation,
                    });
                } else if self.seen.insert((src, msg_id))
                    && self.detector.mark_dead(suspect, incarnation)
                {
                    out.completions.push(Completion::PeerDead { peer: suspect });
                }
            }
            WireMessage::Alive { node, incarnation } => {
                if node == self.key {
                    // A relayed assertion about ourselves: never regress.
                    self.incarnation = self.incarnation.max(incarnation);
                } else {
                    self.digest_alive(env, node, incarnation, &mut out);
                }
            }
            WireMessage::Rejoin { incarnation } => {
                // The rejoiner is alive by definition of having sent this.
                self.digest_alive(env, src, incarnation, &mut out);
                if self.seen.insert((src, msg_id)) {
                    out.completions.push(Completion::RejoinRequested { peer: src, incarnation });
                }
                // Always ack, even duplicates: the previous ack may have
                // been lost and the rejoiner keeps asking until it hears
                // one. Acks are unmetered control traffic.
                let ack_to = env.current_addr(src);
                let ack_id = self.fresh_msg_id();
                out.outgoing.push(Outgoing {
                    to_addr: ack_to,
                    env: Envelope {
                        src: self.key,
                        dst: src,
                        msg_id: ack_id,
                        trace_id: trace,
                        msg: WireMessage::RejoinAck { incarnation },
                        auth: None,
                    },
                });
            }
            WireMessage::RejoinAck { incarnation } => {
                if incarnation == self.incarnation {
                    out.completions.push(Completion::RejoinCompleted { sponsor: src });
                }
            }
        }
        out
    }

    // -----------------------------------------------------------------
    // Timers
    // -----------------------------------------------------------------

    fn on_timer(&mut self, now: SimTime, env: &mut dyn NodeEnv, kind: TimerKind) -> Output {
        let mut out = Output::none();
        match kind {
            TimerKind::HopRetry { msg_id } => self.hop_retry(now, env, msg_id, &mut out),
            TimerKind::DiscoveryRetry { session } => {
                self.discovery_retry(now, env, session, &mut out)
            }
            TimerKind::UpdateRetry { msg_id } => {
                if let Some((peer, next_attempt)) =
                    self.updates.get(&msg_id).map(|s| (s.peer, s.attempt + 1))
                {
                    let wait = self.retry_wait(peer, next_attempt);
                    Self::ack_retry(
                        &mut self.updates,
                        msg_id,
                        now,
                        env,
                        self.policy.max_attempts,
                        wait,
                        MessageKind::Update,
                        TimerKind::UpdateRetry { msg_id },
                        self.key,
                        "update",
                        &mut out,
                        |peer| Completion::UpdateFailed { child: peer },
                    );
                }
            }
            TimerKind::RegisterRetry { msg_id } => {
                if let Some((peer, next_attempt)) =
                    self.registers.get(&msg_id).map(|s| (s.peer, s.attempt + 1))
                {
                    let wait = self.retry_wait(peer, next_attempt);
                    Self::ack_retry(
                        &mut self.registers,
                        msg_id,
                        now,
                        env,
                        self.policy.max_attempts,
                        wait,
                        MessageKind::Register,
                        TimerKind::RegisterRetry { msg_id },
                        self.key,
                        "register",
                        &mut out,
                        |peer| Completion::RegisterFailed { target: peer },
                    );
                }
            }
            TimerKind::HeartbeatTimeout { peer, seq } => {
                self.heartbeat_timeout(now, env, peer, seq, &mut out)
            }
        }
        out
    }

    fn heartbeat_timeout(
        &mut self,
        now: SimTime,
        env: &mut dyn NodeEnv,
        peer: Key,
        seq: u64,
        out: &mut Output,
    ) {
        match self.detector.on_timeout(peer, seq) {
            TimeoutVerdict::Ignore => {}
            TimeoutVerdict::Resend { attempt } => {
                env.bump(MessageKind::Timeout);
                env.emit(ObsEvent {
                    at: now.0,
                    trace: 0,
                    node: self.key,
                    kind: ObsEventKind::Timeout { what: "heartbeat", attempt },
                });
                self.push_heartbeat(env, peer, seq, out);
                // Karn: the probe in flight is no longer attempt 0, so a
                // late ack must not be sampled.
                self.hb_sent.remove(&peer);
                let wait = match self.rto {
                    None => backoff(self.detector.policy().ack_wait, attempt),
                    Some(_) => {
                        self.note_rto_timeout(peer);
                        self.hb_timeout_for(peer)
                    }
                };
                out.timers.push(Timer {
                    at: now.plus(wait),
                    kind: TimerKind::HeartbeatTimeout { peer, seq },
                });
            }
            TimeoutVerdict::Missed { transition } => {
                env.bump(MessageKind::Timeout);
                env.emit(ObsEvent {
                    at: now.0,
                    trace: 0,
                    node: self.key,
                    kind: ObsEventKind::Timeout {
                        what: "heartbeat",
                        attempt: self.detector.policy().probe_attempts,
                    },
                });
                match transition {
                    Some(LivenessTransition::Suspected) => {
                        env.bump(MessageKind::SuspectRaised);
                        env.emit(ObsEvent {
                            at: now.0,
                            trace: 0,
                            node: self.key,
                            kind: ObsEventKind::Suspect {
                                peer,
                                incarnation: self.detector.incarnation_of(peer).unwrap_or(0),
                            },
                        });
                        out.completions.push(Completion::PeerSuspected { peer });
                    }
                    Some(LivenessTransition::ConfirmedDead) => {
                        out.completions.push(Completion::PeerDead { peer });
                    }
                    None => {}
                }
            }
        }
    }

    fn hop_retry(&mut self, now: SimTime, env: &mut dyn NodeEnv, msg_id: u64, out: &mut Output) {
        let Some(session) = self.hops.get_mut(&msg_id) else { return };
        session.attempt += 1;
        if session.attempt < self.policy.max_attempts {
            let attempt = session.attempt;
            let trace = session.out.env.trace_id;
            env.bump(MessageKind::Timeout);
            env.emit(ObsEvent {
                at: now.0,
                trace,
                node: self.key,
                kind: ObsEventKind::Timeout { what: "hop", attempt },
            });
            let session = self.hops.get(&msg_id).expect("session present");
            let cost = env.distance(
                env.current_addr(session.out.env.src).router_id(),
                session.out.to_addr.router_id(),
            );
            env.meter(MessageKind::RouteHop, cost);
            out.outgoing.push(session.out.clone());
            let next = session.next;
            let wait = match self.rto {
                None => backoff(self.policy.ack_timeout, attempt),
                Some(_) => {
                    self.note_rto_timeout(next);
                    self.ack_timeout_for(next)
                }
            };
            out.timers.push(Timer { at: now.plus(wait), kind: TimerKind::HopRetry { msg_id } });
            return;
        }
        // Retries exhausted.
        let session = self.hops.remove(&msg_id).expect("session present");
        let trace = session.out.env.trace_id;
        env.bump(MessageKind::Timeout);
        env.emit(ObsEvent {
            at: now.0,
            trace,
            node: self.key,
            kind: ObsEventKind::Timeout { what: "hop", attempt: session.attempt },
        });
        if env.is_mobile(session.next) && !session.after_failure {
            // The peer may have moved out from under us: retry through the
            // stationary layer (the paper's recovery path), once.
            env.bump(MessageKind::DiscoveryRetry);
            let parked = ParkedForward {
                origin: session.origin,
                route_id: session.route_id,
                target: session.target,
                after_failure: true,
                trace,
            };
            self.start_discovery(now, env, session.next, parked, out);
        } else {
            env.emit(ObsEvent {
                at: now.0,
                trace,
                node: self.key,
                kind: ObsEventKind::RouteFailed { route_id: session.route_id },
            });
            out.completions.push(Completion::RouteFailed {
                origin: session.origin,
                route_id: session.route_id,
                at: self.key,
            });
        }
    }

    fn discovery_retry(&mut self, now: SimTime, env: &mut dyn NodeEnv, sid: u64, out: &mut Output) {
        let Some(session) = self.discs.get_mut(&sid) else { return };
        session.attempt += 1;
        let subject = session.subject;
        let trace = session.trace;
        if session.attempt < self.policy.max_attempts {
            let attempt = session.attempt;
            env.bump(MessageKind::Timeout);
            env.bump(MessageKind::DiscoveryRetry);
            env.emit(ObsEvent {
                at: now.0,
                trace,
                node: self.key,
                kind: ObsEventKind::Timeout { what: "discovery", attempt },
            });
            self.emit_discovery(now, env, sid, subject, trace, out);
            let fixed = self.policy.discovery_timeout;
            let key0 = self.key.0;
            let wait = match self.disc_est.as_mut() {
                None => backoff(fixed, attempt),
                Some(est) => {
                    est.on_timeout();
                    est.jittered_rto(key0)
                }
            };
            out.timers.push(Timer {
                at: now.plus(wait),
                kind: TimerKind::DiscoveryRetry { session: sid },
            });
            return;
        }
        env.bump(MessageKind::Timeout);
        let session = self.discs.remove(&sid).expect("session present");
        env.emit(ObsEvent {
            at: now.0,
            trace,
            node: self.key,
            kind: ObsEventKind::Timeout { what: "discovery", attempt: session.attempt },
        });
        self.finish_discovery(now, env, session, None, out);
    }

    /// Shared Update/Register retry step. `wait` is the pre-computed
    /// rearm delay (fixed backoff or the peer's adaptive RTO), handed
    /// in by the caller because computing it needs `&mut self` while
    /// this helper holds the session table.
    #[allow(clippy::too_many_arguments)]
    fn ack_retry(
        sessions: &mut HashMap<u64, AckSession>,
        msg_id: u64,
        now: SimTime,
        env: &mut dyn NodeEnv,
        max_attempts: u32,
        wait: u64,
        kind: MessageKind,
        timer_kind: TimerKind,
        node: Key,
        what: &'static str,
        out: &mut Output,
        fail: impl Fn(Key) -> Completion,
    ) {
        let Some(session) = sessions.get_mut(&msg_id) else { return };
        session.attempt += 1;
        env.bump(MessageKind::Timeout);
        env.emit(ObsEvent {
            at: now.0,
            trace: session.out.env.trace_id,
            node,
            kind: ObsEventKind::Timeout { what, attempt: session.attempt },
        });
        if session.attempt < max_attempts {
            let cost = env.distance(
                env.current_addr(session.out.env.src).router_id(),
                session.out.to_addr.router_id(),
            );
            env.meter(kind, cost);
            out.outgoing.push(session.out.clone());
            out.timers.push(Timer { at: now.plus(wait), kind: timer_kind });
        } else {
            let session = sessions.remove(&msg_id).expect("session present");
            out.completions.push(fail(session.peer));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_overlay::meter::Meter;

    /// A fixed little world for machine tests.
    #[derive(Default)]
    struct MockEnv {
        mobile_hops: HashMap<(Key, Key), Key>,
        stat_hops: HashMap<(Key, Key), Key>,
        mobile: HashSet<Key>,
        addrs: HashMap<Key, WireAddr>,
        valid: HashSet<(u32, u64)>,
        believed: HashMap<(Key, Key), WireAddr>,
        records: HashMap<(Key, Key), WireAddr>,
        replica_sets: HashMap<Key, Vec<Key>>,
        entries: HashMap<Key, Key>,
        meter: Meter,
        resolutions: Vec<(Key, Key, WireAddr)>,
        updates: Vec<(Key, Key, u64)>,
        registered: Vec<(Key, Key, u32)>,
        committed: Vec<(Key, Key)>,
        // Auth knobs; the defaults (None / Off / no staleness) are the
        // seed deployment.
        domain: Option<AuthDomain>,
        vpolicy: VerifyPolicy,
        stale_subjects: HashSet<Key>,
    }

    impl MockEnv {
        fn with_node(mut self, key: Key, host: u32, router: u32) -> Self {
            self.addrs.insert(key, WireAddr { host, router, epoch: 0 });
            self.valid.insert((host, 0));
            self.entries.insert(key, key);
            self
        }
        fn mobile(mut self, key: Key) -> Self {
            self.mobile.insert(key);
            self
        }
    }

    impl NodeEnv for MockEnv {
        fn next_hop_mobile(&self, cur: Key, target: Key) -> Option<Key> {
            self.mobile_hops.get(&(cur, target)).copied()
        }
        fn next_hop_stationary(&self, cur: Key, target: Key) -> Option<Key> {
            self.stat_hops.get(&(cur, target)).copied()
        }
        fn is_mobile(&self, key: Key) -> bool {
            self.mobile.contains(&key)
        }
        fn entry_stationary(&self, from: Key) -> Key {
            self.entries[&from]
        }
        fn replicas(&self, subject: Key) -> Vec<Key> {
            self.replica_sets.get(&subject).cloned().unwrap_or_default()
        }
        fn current_addr(&self, key: Key) -> WireAddr {
            self.addrs[&key]
        }
        fn addr_current(&self, addr: WireAddr) -> bool {
            self.valid.contains(&(addr.host, addr.epoch))
        }
        fn believed_addr(&self, holder: Key, subject: Key) -> Option<WireAddr> {
            self.believed.get(&(holder, subject)).copied()
        }
        fn location_record(&self, holder: Key, subject: Key) -> Option<WireAddr> {
            self.records.get(&(holder, subject)).copied()
        }
        fn distance(&self, a: RouterId, b: RouterId) -> u64 {
            (a.0 as i64 - b.0 as i64).unsigned_abs()
        }
        fn meter(&mut self, kind: MessageKind, cost: u64) {
            self.meter.record(kind, cost);
        }
        fn bump(&mut self, kind: MessageKind) {
            self.meter.bump(kind, 1);
        }
        fn commit_resolution(&mut self, asker: Key, subject: Key, addr: WireAddr) {
            self.resolutions.push((asker, subject, addr));
            self.believed.insert((asker, subject), addr);
        }
        fn apply_update(&mut self, receiver: Key, subject: Key, _addr: WireAddr, seq: u64) {
            self.updates.push((receiver, subject, seq));
        }
        fn apply_register(&mut self, target: Key, who: Key, capacity: u32) {
            self.registered.push((target, who, capacity));
        }
        fn commit_register(&mut self, who: Key, target: Key) {
            self.committed.push((who, target));
        }
        fn auth_domain(&self) -> Option<AuthDomain> {
            self.domain
        }
        fn verify_policy(&self) -> VerifyPolicy {
            self.vpolicy
        }
        fn publish_fresh(&self, subject: Key) -> bool {
            !self.stale_subjects.contains(&subject)
        }
    }

    const A: Key = Key(10);
    const B: Key = Key(20);
    const M: Key = Key(30);

    fn policy() -> RetryPolicy {
        RetryPolicy { ack_timeout: 100, discovery_timeout: 1000, max_attempts: 3 }
    }

    fn t(x: u64) -> SimTime {
        SimTime(x)
    }

    #[test]
    fn hop_ack_clears_retry() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        env.mobile_hops.insert((A, B), B);
        let mut m = ProtoMachine::new(A, policy());
        let (_, out) = m.start_route(t(0), &mut env, B);
        assert_eq!(out.outgoing.len(), 1);
        assert_eq!(out.timers.len(), 1);
        assert_eq!(env.meter.count(MessageKind::RouteHop), 1);
        assert_eq!(env.meter.cost(MessageKind::RouteHop), 4);
        let hop_id = out.outgoing[0].env.msg_id;
        let ack = Envelope {
            src: B,
            dst: A,
            msg_id: 0,
            trace_id: 0,
            msg: WireMessage::HopAck { acked: hop_id },
            auth: None,
        };
        m.poll(t(10), Event::Deliver(ack), &mut env);
        assert_eq!(m.inflight(), 0);
        // The stale timer fires harmlessly.
        let out = m.poll(t(100), Event::Timer(TimerKind::HopRetry { msg_id: hop_id }), &mut env);
        assert!(out.outgoing.is_empty() && out.completions.is_empty());
        assert_eq!(env.meter.count(MessageKind::RouteHop), 1, "no spurious resend");
        assert_eq!(env.meter.count(MessageKind::Timeout), 0);
    }

    #[test]
    fn unacked_hop_retries_with_backoff_then_fails() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        env.mobile_hops.insert((A, B), B); // B is stationary: no rediscovery fallback
        let mut m = ProtoMachine::new(A, policy());
        let (route_id, out) = m.start_route(t(0), &mut env, B);
        let msg_id = out.outgoing[0].env.msg_id;
        assert_eq!(out.timers[0].at, t(100));

        let out1 = m.poll(t(100), Event::Timer(TimerKind::HopRetry { msg_id }), &mut env);
        assert_eq!(out1.outgoing.len(), 1, "first retransmit");
        assert_eq!(out1.outgoing[0].env.msg_id, msg_id, "retransmit reuses the msg id");
        assert_eq!(out1.timers[0].at, t(100 + 200), "exponential backoff");
        let out2 = m.poll(t(300), Event::Timer(TimerKind::HopRetry { msg_id }), &mut env);
        assert_eq!(out2.outgoing.len(), 1, "second retransmit... no: attempts exhausted");
        // max_attempts = 3: initial send + 2 retransmits? attempt counter
        // reaches 2 on this firing, 2 < 3 so it retransmits once more.
        let out3 = m.poll(t(900), Event::Timer(TimerKind::HopRetry { msg_id }), &mut env);
        assert_eq!(
            out3.completions,
            vec![Completion::RouteFailed { origin: A, route_id, at: A }],
            "third expiry gives up"
        );
        assert_eq!(env.meter.count(MessageKind::RouteHop), 3, "initial + 2 retransmits");
        assert_eq!(env.meter.count(MessageKind::Timeout), 3);
        assert_eq!(m.inflight(), 0);
    }

    #[test]
    fn duplicate_route_hop_forwards_once_but_reacks() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        // B owns the target: delivery completes there.
        let mut m = ProtoMachine::new(B, policy());
        let hop = Envelope {
            src: A,
            dst: B,
            msg_id: 7,
            trace_id: 0,
            msg: WireMessage::RouteHop { origin: A, route_id: 3, target: B },
            auth: None,
        };
        let out1 = m.poll(t(0), Event::Deliver(hop.clone()), &mut env);
        assert_eq!(out1.completions, vec![Completion::Delivered { origin: A, route_id: 3 }]);
        assert_eq!(out1.outgoing.len(), 1, "ack");
        let out2 = m.poll(t(1), Event::Deliver(hop), &mut env);
        assert!(out2.completions.is_empty(), "duplicate not re-delivered");
        assert_eq!(out2.outgoing.len(), 1, "but re-acked");
        assert!(matches!(out2.outgoing[0].env.msg, WireMessage::HopAck { acked: 7 }));
    }

    #[test]
    fn unresolved_mobile_next_hop_triggers_discovery_then_forwards() {
        let mut env =
            MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5).with_node(M, 3, 9).mobile(M);
        env.mobile_hops.insert((A, M), M);
        env.entries.insert(A, B);
        let mut m = ProtoMachine::new(A, policy());
        let (_, out) = m.start_route(t(0), &mut env, M);
        assert_eq!(out.outgoing.len(), 1);
        let sent = &out.outgoing[0];
        assert!(
            matches!(sent.env.msg, WireMessage::Discovery { subject, probe: None, .. } if subject == M),
            "no believed address: discovery first, got {:?}",
            sent.env.msg
        );
        assert_eq!(env.meter.count(MessageKind::DiscoveryHop), 1, "injection hop metered");
        assert_eq!(env.meter.count(MessageKind::RouteHop), 0, "no forward yet");
        let sid = match sent.env.msg {
            WireMessage::Discovery { session, .. } => session,
            _ => unreachable!(),
        };
        // The stationary layer answers with M's address.
        let m_addr = env.current_addr(M);
        let reply = Envelope {
            src: B,
            dst: A,
            msg_id: 0,
            trace_id: 0,
            msg: WireMessage::DiscoveryReply { subject: M, session: sid, addr: Some(m_addr) },
            auth: None,
        };
        let out = m.poll(t(50), Event::Deliver(reply), &mut env);
        assert!(out.completions.contains(&Completion::Resolved { subject: M }));
        assert_eq!(env.resolutions, vec![(A, M, m_addr)]);
        assert_eq!(out.outgoing.len(), 1);
        assert!(
            matches!(out.outgoing[0].env.msg, WireMessage::RouteHop { target, .. } if target == M)
        );
        assert_eq!(env.meter.count(MessageKind::RouteHop), 1, "forward after resolution");
        assert_eq!(env.meter.cost(MessageKind::RouteHop), 8, "|1 - 9|");
    }

    #[test]
    fn stale_belief_meters_wasted_attempt_before_discovery() {
        let mut env =
            MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5).with_node(M, 3, 9).mobile(M);
        env.mobile_hops.insert((A, M), M);
        env.entries.insert(A, B);
        // A confidently believes a stale address (epoch 0 no longer valid).
        let stale = WireAddr { host: 3, router: 2, epoch: 0 };
        env.valid.remove(&(3, 0));
        env.believed.insert((A, M), stale);
        let mut m = ProtoMachine::new(A, policy());
        let (_, out) = m.start_route(t(0), &mut env, M);
        assert_eq!(env.meter.count(MessageKind::RouteHop), 1, "wasted stale attempt metered");
        assert_eq!(env.meter.cost(MessageKind::RouteHop), 1, "|1 - 2|");
        assert_eq!(env.meter.count(MessageKind::DiscoveryHop), 1, "then discovery");
        assert_eq!(out.outgoing.len(), 1, "only the discovery actually travels");
    }

    #[test]
    fn discovery_timeout_retries_then_gives_up_via_oracle() {
        let mut env =
            MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5).with_node(M, 3, 9).mobile(M);
        env.mobile_hops.insert((A, M), M);
        env.entries.insert(A, B);
        let mut m = ProtoMachine::new(A, policy());
        let (_, out) = m.start_route(t(0), &mut env, M);
        let sid = match out.outgoing[0].env.msg {
            WireMessage::Discovery { session, .. } => session,
            ref other => panic!("expected discovery, got {other:?}"),
        };
        assert_eq!(out.timers[0].at, t(1000));

        let o1 =
            m.poll(t(1000), Event::Timer(TimerKind::DiscoveryRetry { session: sid }), &mut env);
        assert_eq!(o1.outgoing.len(), 1, "re-issued");
        assert_eq!(o1.timers[0].at, t(1000 + 2000), "backoff doubles");
        assert_eq!(env.meter.count(MessageKind::DiscoveryRetry), 1);
        let o2 =
            m.poll(t(3000), Event::Timer(TimerKind::DiscoveryRetry { session: sid }), &mut env);
        assert_eq!(o2.outgoing.len(), 1);
        let o3 =
            m.poll(t(9000), Event::Timer(TimerKind::DiscoveryRetry { session: sid }), &mut env);
        assert!(o3.completions.contains(&Completion::ResolutionFailed { subject: M }));
        // Gives up on resolving but still forwards to the true address.
        assert_eq!(o3.outgoing.len(), 1);
        assert!(matches!(o3.outgoing[0].env.msg, WireMessage::RouteHop { .. }));
        assert_eq!(env.meter.count(MessageKind::DiscoveryRetry), 2);
        assert_eq!(env.meter.count(MessageKind::Timeout), 3);
    }

    #[test]
    fn stationary_node_routes_discovery_and_owner_replies() {
        let s1 = Key(100);
        let s2 = Key(200);
        let mut env = MockEnv::default()
            .with_node(s1, 1, 2)
            .with_node(s2, 2, 6)
            .with_node(A, 3, 1)
            .with_node(M, 4, 9)
            .mobile(M);
        env.stat_hops.insert((s1, M), s2);
        // s2 owns M's record.
        let m_addr = env.current_addr(M);
        env.records.insert((s2, M), m_addr);

        let mut m1 = ProtoMachine::new(s1, policy());
        let q = Envelope {
            src: A,
            dst: s1,
            msg_id: 0,
            trace_id: 0,
            msg: WireMessage::Discovery { subject: M, asker: A, session: 9, probe: None },
            auth: None,
        };
        let out = m1.poll(t(0), Event::Deliver(q), &mut env);
        assert_eq!(out.outgoing.len(), 1);
        assert_eq!(out.outgoing[0].env.dst, s2, "forwarded toward the owner");
        assert_eq!(env.meter.count(MessageKind::DiscoveryHop), 1);

        let mut m2 = ProtoMachine::new(s2, policy());
        let out = m2.poll(t(1), Event::Deliver(out.outgoing[0].env.clone()), &mut env);
        assert_eq!(out.outgoing.len(), 1);
        assert!(
            matches!(
                out.outgoing[0].env.msg,
                WireMessage::DiscoveryReply { addr: Some(a), session: 9, .. } if a == m_addr
            ),
            "owner replies with the record"
        );
        assert_eq!(out.outgoing[0].env.dst, A);
        assert_eq!(env.meter.count(MessageKind::DiscoveryHop), 2, "reply metered");
    }

    #[test]
    fn owner_miss_probes_replicas_then_terminus_answers() {
        let s1 = Key(100);
        let s2 = Key(200);
        let mut env =
            MockEnv::default().with_node(s1, 1, 2).with_node(s2, 2, 6).with_node(A, 3, 1).mobile(M);
        env.replica_sets.insert(M, vec![s1, s2]);

        // s1 is the terminus (owns M) but has no record: probes s2.
        let mut m1 = ProtoMachine::new(s1, policy());
        let q = Envelope {
            src: A,
            dst: s1,
            msg_id: 0,
            trace_id: 0,
            msg: WireMessage::Discovery { subject: M, asker: A, session: 4, probe: None },
            auth: None,
        };
        let out = m1.poll(t(0), Event::Deliver(q), &mut env);
        assert_eq!(out.outgoing.len(), 1);
        assert!(
            matches!(out.outgoing[0].env.msg, WireMessage::Discovery { probe: Some(p), .. } if p == s1)
        );
        assert_eq!(env.meter.count(MessageKind::DiscoveryHop), 1, "probe hop metered");

        // s2 also misses: chain exhausted, unmetered ProbeMiss to terminus.
        let mut m2 = ProtoMachine::new(s2, policy());
        let out = m2.poll(t(1), Event::Deliver(out.outgoing[0].env.clone()), &mut env);
        assert_eq!(out.outgoing.len(), 1);
        assert!(matches!(out.outgoing[0].env.msg, WireMessage::ProbeMiss { .. }));
        assert_eq!(out.outgoing[0].env.dst, s1);
        assert_eq!(env.meter.count(MessageKind::DiscoveryHop), 1, "probe-miss is unmetered");

        // The terminus answers the asker with a miss, metered from itself.
        let out = m1.poll(t(2), Event::Deliver(out.outgoing[0].env.clone()), &mut env);
        assert_eq!(out.outgoing.len(), 1);
        assert!(matches!(out.outgoing[0].env.msg, WireMessage::DiscoveryReply { addr: None, .. }));
        assert_eq!(out.outgoing[0].env.dst, A);
        assert_eq!(env.meter.count(MessageKind::DiscoveryHop), 2);
    }

    #[test]
    fn update_applies_once_acks_twice_and_retries_bounded() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        let addr = env.current_addr(A);
        let mut sender = ProtoMachine::new(A, policy());
        let out = sender.start_update(t(0), &mut env, A, addr, 3, &[B]);
        assert_eq!(out.outgoing.len(), 1);
        assert_eq!(env.meter.count(MessageKind::Update), 1);
        let update = out.outgoing[0].env.clone();
        let msg_id = update.msg_id;

        let mut receiver = ProtoMachine::new(B, policy());
        let r1 = receiver.poll(t(5), Event::Deliver(update.clone()), &mut env);
        assert_eq!(env.updates, vec![(B, A, 3)]);
        assert!(matches!(r1.outgoing[0].env.msg, WireMessage::UpdateAck { .. }));
        let r2 = receiver.poll(t(6), Event::Deliver(update), &mut env);
        assert_eq!(env.updates.len(), 1, "duplicate update not re-applied");
        assert_eq!(r2.outgoing.len(), 1, "but re-acked");

        // Sender: ack completes the edge.
        let out = sender.poll(t(7), Event::Deliver(r1.outgoing[0].env.clone()), &mut env);
        assert_eq!(out.completions, vec![Completion::UpdateAcked { child: B }]);
        assert_eq!(sender.inflight(), 0);

        // A second, never-acked edge exhausts its retries.
        let out = sender.start_update(t(100), &mut env, A, addr, 4, &[B]);
        let id2 = out.outgoing[0].env.msg_id;
        assert_ne!(id2, msg_id);
        sender.poll(t(200), Event::Timer(TimerKind::UpdateRetry { msg_id: id2 }), &mut env);
        sender.poll(t(400), Event::Timer(TimerKind::UpdateRetry { msg_id: id2 }), &mut env);
        let out =
            sender.poll(t(900), Event::Timer(TimerKind::UpdateRetry { msg_id: id2 }), &mut env);
        assert_eq!(out.completions, vec![Completion::UpdateFailed { child: B }]);
        assert_eq!(env.meter.count(MessageKind::Update), 1 + 3, "initial x2 + 2 retransmits");
        assert_eq!(env.meter.count(MessageKind::Timeout), 3);
    }

    #[test]
    fn register_commits_lease_on_ack() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(M, 3, 9).mobile(M);
        let mut who = ProtoMachine::new(A, policy());
        let out = who.start_register(t(0), &mut env, M, 12);
        assert_eq!(env.meter.count(MessageKind::Register), 1);
        assert_eq!(env.meter.cost(MessageKind::Register), 8);
        let reg = out.outgoing[0].env.clone();

        let mut target = ProtoMachine::new(M, policy());
        let r = target.poll(t(1), Event::Deliver(reg), &mut env);
        assert_eq!(env.registered, vec![(M, A, 12)]);
        let out = who.poll(t(2), Event::Deliver(r.outgoing[0].env.clone()), &mut env);
        assert_eq!(out.completions, vec![Completion::Registered { target: M }]);
        assert_eq!(env.committed, vec![(A, M)], "lease granted only after the ack");
    }

    #[test]
    fn delivery_at_owner_completes_without_forwarding() {
        let mut env = MockEnv::default().with_node(A, 1, 1);
        let mut m = ProtoMachine::new(A, policy());
        // A owns the target: next_hop_mobile returns None.
        let (route_id, out) = m.start_route(t(0), &mut env, Key(999));
        assert_eq!(out.completions, vec![Completion::Delivered { origin: A, route_id }]);
        assert!(out.outgoing.is_empty());
        assert_eq!(env.meter.total_messages(), 0);
    }

    #[test]
    fn hop_failure_to_mobile_peer_falls_back_to_discovery_once() {
        let mut env =
            MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5).with_node(M, 3, 9).mobile(M);
        env.mobile_hops.insert((A, M), M);
        env.entries.insert(A, B);
        env.believed.insert((A, M), env.current_addr(M)); // valid belief
        let mut m = ProtoMachine::new(A, policy());
        let (_, out) = m.start_route(t(0), &mut env, M);
        let msg_id = out.outgoing[0].env.msg_id;
        assert!(matches!(out.outgoing[0].env.msg, WireMessage::RouteHop { .. }));

        // Exhaust the hop retries without an ack.
        m.poll(t(100), Event::Timer(TimerKind::HopRetry { msg_id }), &mut env);
        m.poll(t(300), Event::Timer(TimerKind::HopRetry { msg_id }), &mut env);
        let out = m.poll(t(900), Event::Timer(TimerKind::HopRetry { msg_id }), &mut env);
        assert!(out.completions.is_empty(), "mobile peer: not a failure yet");
        assert_eq!(out.outgoing.len(), 1);
        assert!(
            matches!(out.outgoing[0].env.msg, WireMessage::Discovery { subject, .. } if subject == M),
            "falls back to the stationary layer"
        );
        assert_eq!(env.meter.count(MessageKind::DiscoveryRetry), 1);

        // Resolution succeeds; the re-sent hop fails again -> final.
        let sid = match out.outgoing[0].env.msg {
            WireMessage::Discovery { session, .. } => session,
            _ => unreachable!(),
        };
        let reply = Envelope {
            src: B,
            dst: A,
            msg_id: 50,
            trace_id: 0,
            msg: WireMessage::DiscoveryReply {
                subject: M,
                session: sid,
                addr: Some(env.current_addr(M)),
            },
            auth: None,
        };
        let out = m.poll(t(1000), Event::Deliver(reply), &mut env);
        let id2 = out.outgoing[0].env.msg_id;
        m.poll(t(1100), Event::Timer(TimerKind::HopRetry { msg_id: id2 }), &mut env);
        m.poll(t(1300), Event::Timer(TimerKind::HopRetry { msg_id: id2 }), &mut env);
        let out = m.poll(t(1900), Event::Timer(TimerKind::HopRetry { msg_id: id2 }), &mut env);
        assert_eq!(out.completions.len(), 1);
        assert!(
            matches!(out.completions[0], Completion::RouteFailed { .. }),
            "second failure is final"
        );
    }

    #[test]
    fn concurrent_forwards_share_one_discovery_session() {
        let mut env =
            MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5).with_node(M, 3, 9).mobile(M);
        env.mobile_hops.insert((A, M), M);
        env.mobile_hops.insert((A, Key(31)), M);
        env.entries.insert(A, B);
        let mut m = ProtoMachine::new(A, policy());
        let (_, o1) = m.start_route(t(0), &mut env, M);
        let (_, o2) = m.start_route(t(1), &mut env, Key(31));
        assert_eq!(o1.outgoing.len(), 1);
        assert!(o2.outgoing.is_empty(), "second forward joins the in-flight session");
        assert_eq!(m.inflight(), 1);
        let sid = match o1.outgoing[0].env.msg {
            WireMessage::Discovery { session, .. } => session,
            _ => unreachable!(),
        };
        let reply = Envelope {
            src: B,
            dst: A,
            msg_id: 0,
            trace_id: 0,
            msg: WireMessage::DiscoveryReply {
                subject: M,
                session: sid,
                addr: Some(env.current_addr(M)),
            },
            auth: None,
        };
        let out = m.poll(t(10), Event::Deliver(reply), &mut env);
        assert_eq!(out.outgoing.len(), 2, "both parked forwards resume");
    }

    #[test]
    fn heartbeat_round_trip_keeps_peer_fresh() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        let mut prober = ProtoMachine::new(A, policy());
        let mut target = ProtoMachine::new(B, policy());
        prober.monitor(B);
        let out = prober.start_heartbeats(t(0), &mut env);
        assert_eq!(out.outgoing.len(), 1);
        assert_eq!(env.meter.count(MessageKind::HeartbeatSent), 1);
        assert_eq!(env.meter.cost(MessageKind::HeartbeatSent), 4, "|1 - 5|");
        let hb = out.outgoing[0].env.clone();
        let timer = out.timers[0].kind;

        // The target acks (unmetered), including on a duplicate.
        let r1 = target.poll(t(1), Event::Deliver(hb.clone()), &mut env);
        assert!(matches!(r1.outgoing[0].env.msg, WireMessage::HeartbeatAck { seq: 0, .. }));
        let r2 = target.poll(t(2), Event::Deliver(hb), &mut env);
        assert_eq!(r2.outgoing.len(), 1, "duplicate heartbeat re-acked");
        assert_eq!(env.meter.total_messages(), 1, "only the probe itself is metered");

        let out = prober.poll(t(3), Event::Deliver(r1.outgoing[0].env.clone()), &mut env);
        assert!(out.completions.is_empty());
        assert_eq!(prober.liveness(B), Some(Liveness::Fresh));
        // The stale ack window fires harmlessly.
        let out = prober.poll(t(100), Event::Timer(timer), &mut env);
        assert!(out.outgoing.is_empty() && out.completions.is_empty());
        assert_eq!(env.meter.count(MessageKind::Timeout), 0);
    }

    #[test]
    fn silent_peer_is_suspected_then_condemned() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        let mut prober = ProtoMachine::new(A, policy());
        prober.set_failure_policy(FailurePolicy {
            ack_wait: 100,
            probe_attempts: 2,
            suspect_after: 1,
            dead_after: 2,
            grace_misses: 0,
        });
        prober.monitor(B);

        // Round 1: probe, retransmit, miss -> suspect.
        let out = prober.start_heartbeats(t(0), &mut env);
        let timer = out.timers[0].kind;
        let o1 = prober.poll(t(100), Event::Timer(timer), &mut env);
        assert_eq!(o1.outgoing.len(), 1, "retransmission");
        assert_eq!(env.meter.count(MessageKind::HeartbeatSent), 2);
        let o2 = prober.poll(t(300), Event::Timer(o1.timers[0].kind), &mut env);
        assert_eq!(o2.completions, vec![Completion::PeerSuspected { peer: B }]);
        assert_eq!(env.meter.count(MessageKind::SuspectRaised), 1);
        assert_eq!(prober.liveness(B), Some(Liveness::Suspect));

        // Round 2: another full miss -> dead.
        let out = prober.start_heartbeats(t(1000), &mut env);
        let timer = out.timers[0].kind;
        let o1 = prober.poll(t(1100), Event::Timer(timer), &mut env);
        let o2 = prober.poll(t(1300), Event::Timer(o1.timers[0].kind), &mut env);
        assert_eq!(o2.completions, vec![Completion::PeerDead { peer: B }]);
        assert_eq!(prober.liveness(B), Some(Liveness::Dead));

        // Dead peers are no longer probed.
        let out = prober.start_heartbeats(t(2000), &mut env);
        assert!(out.outgoing.is_empty());
    }

    #[test]
    fn suspect_notify_marks_dead_once() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        let mut origin = ProtoMachine::new(A, policy());
        let mut receiver = ProtoMachine::new(B, policy());
        receiver.monitor(M);
        let out = origin.notify_suspect(t(0), &mut env, B, M);
        assert_eq!(env.meter.total_messages(), 0, "verdict spreading is unmetered");
        let notice = out.outgoing[0].env.clone();
        let r1 = receiver.poll(t(0), Event::Deliver(notice.clone()), &mut env);
        assert_eq!(r1.completions, vec![Completion::PeerDead { peer: M }]);
        assert_eq!(receiver.liveness(M), Some(Liveness::Dead));
        let r2 = receiver.poll(t(1), Event::Deliver(notice), &mut env);
        assert!(r2.completions.is_empty(), "duplicate notice is news only once");
    }

    /// The full wrongful-death recovery handshake at machine level: a
    /// third-party verdict condemns a live peer; after the partition
    /// heals, the zombie's probe is answered with its own obituary, it
    /// bumps its incarnation and refutes, and the refutation overturns
    /// the verdict at the accuser.
    #[test]
    fn healed_zombie_refutes_and_is_resurrected() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5).with_node(M, 3, 9);
        let mut a = ProtoMachine::new(A, policy());
        let mut b = ProtoMachine::new(B, policy());
        let mut herald = ProtoMachine::new(M, policy());
        a.monitor(B);
        b.monitor(A);

        // A third party convinces A that B is dead (wrongfully: B is
        // merely beyond a partition).
        let notice = herald.notify_suspect(t(0), &mut env, A, B).outgoing[0].env.clone();
        a.poll(t(0), Event::Deliver(notice), &mut env);
        assert_eq!(a.liveness(B), Some(Liveness::Dead));

        // The cut heals; B's next probe reaches A, which answers with
        // B's obituary instead of an ack.
        let probe = b.start_heartbeats(t(10), &mut env).outgoing[0].env.clone();
        let out = a.poll(t(11), Event::Deliver(probe), &mut env);
        let obituary = out.outgoing[0].env.clone();
        assert!(
            matches!(obituary.msg, WireMessage::SuspectNotify { suspect, .. } if suspect == B),
            "a dead peer's probe is answered with its obituary: {obituary:?}"
        );

        // B learns of its own funeral: bumps its incarnation, refutes.
        let out = b.poll(t(12), Event::Deliver(obituary), &mut env);
        assert_eq!(b.incarnation(), 1);
        assert_eq!(out.completions, vec![Completion::SelfRefuted { accuser: A, incarnation: 1 }]);
        let refutation = out.outgoing[0].env.clone();
        assert!(matches!(refutation.msg, WireMessage::Alive { node, incarnation: 1 } if node == B));
        assert_eq!(env.meter.count(MessageKind::Refutation), 1);

        // The refutation resurrects B at A.
        let out = a.poll(t(13), Event::Deliver(refutation), &mut env);
        assert_eq!(
            out.completions,
            vec![Completion::PeerRefuted { peer: B, incarnation: 1, was_dead: true }]
        );
        assert_eq!(a.liveness(B), Some(Liveness::Fresh));
        assert_eq!(env.meter.count(MessageKind::WrongfulDeath), 1);
        assert_eq!(a.start_heartbeats(t(20), &mut env).outgoing.len(), 1, "B is probed again");
    }

    #[test]
    fn rejoin_round_trip_completes() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        let mut rejoiner = ProtoMachine::new(A, policy());
        let mut sponsor = ProtoMachine::new(B, policy());
        // A's funeral was charged to incarnation 0; learning of it bumps.
        let notice = sponsor.notify_suspect(t(0), &mut env, A, A).outgoing[0].env.clone();
        rejoiner.poll(t(0), Event::Deliver(notice), &mut env);
        assert_eq!(rejoiner.incarnation(), 1);

        let ask = rejoiner.start_rejoin(t(1), &mut env, B).outgoing[0].env.clone();
        assert_eq!(env.meter.count(MessageKind::Rejoin), 1);
        let out = sponsor.poll(t(1), Event::Deliver(ask.clone()), &mut env);
        assert_eq!(out.completions, vec![Completion::RejoinRequested { peer: A, incarnation: 1 }]);
        let ack = out.outgoing[0].env.clone();
        // A duplicated ask re-acks without re-announcing the request.
        let dup = sponsor.poll(t(2), Event::Deliver(ask), &mut env);
        assert!(dup.completions.is_empty());
        assert_eq!(dup.outgoing.len(), 1, "duplicate rejoin is re-acked");

        let out = rejoiner.poll(t(3), Event::Deliver(ack), &mut env);
        assert_eq!(out.completions, vec![Completion::RejoinCompleted { sponsor: B }]);
    }

    #[test]
    fn stale_incarnation_does_not_resurrect() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        let mut a = ProtoMachine::new(A, policy());
        let mut herald = ProtoMachine::new(B, policy());
        a.monitor(M);
        // M observed alive at incarnation 2, then condemned at 2.
        let alive = Envelope {
            src: B,
            dst: A,
            msg_id: 50,
            trace_id: 0,
            msg: WireMessage::Alive { node: M, incarnation: 2 },
            auth: None,
        };
        a.poll(t(0), Event::Deliver(alive), &mut env);
        let notice = herald.notify_suspect(t(1), &mut env, A, M).outgoing[0].env.clone();
        // The herald never saw M, so its verdict is charged to
        // incarnation 0 — stale against A's knowledge.
        a.poll(t(1), Event::Deliver(notice), &mut env);
        assert_eq!(a.liveness(M), Some(Liveness::Fresh), "stale verdict is ignored");
        // An Alive at the already-known incarnation changes nothing.
        let stale_alive = Envelope {
            src: B,
            dst: A,
            msg_id: 51,
            trace_id: 0,
            msg: WireMessage::Alive { node: M, incarnation: 2 },
            auth: None,
        };
        let out = a.poll(t(2), Event::Deliver(stale_alive), &mut env);
        assert!(out.completions.is_empty());
    }

    // -----------------------------------------------------------------
    // Frame authentication
    // -----------------------------------------------------------------

    #[test]
    fn sealed_register_round_trip_verifies_under_enforcement() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(M, 3, 9).mobile(M);
        env.domain = Some(AuthDomain::new(8));
        env.vpolicy = VerifyPolicy::Enforce;
        let mut who = ProtoMachine::new(A, policy());
        let out = who.start_register(t(0), &mut env, M, 12);
        let reg = out.outgoing[0].env.clone();
        assert!(reg.auth.is_some(), "the register travels sealed");

        let mut target = ProtoMachine::new(M, policy());
        let r = target.poll(t(1), Event::Deliver(reg), &mut env);
        assert_eq!(env.registered, vec![(M, A, 12)]);
        assert!(r.outgoing[0].env.auth.is_some(), "the ack travels sealed too");
        let out = who.poll(t(2), Event::Deliver(r.outgoing[0].env.clone()), &mut env);
        assert_eq!(out.completions, vec![Completion::Registered { target: M }]);
        assert_eq!(env.meter.count(MessageKind::ForgedFrame), 0);
    }

    #[test]
    fn forged_alive_dropped_under_enforcement_but_digested_log_only() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        env.domain = Some(AuthDomain::new(8));
        env.vpolicy = VerifyPolicy::Enforce;
        let mut a = ProtoMachine::new(A, policy());
        a.monitor(M);
        // An adversary refutes on M's behalf: the pubkey certifies M but
        // the tag was minted without M's secret.
        let forged = Envelope {
            src: B,
            dst: A,
            msg_id: 9,
            trace_id: 0,
            msg: WireMessage::Alive { node: M, incarnation: 7 },
            auth: Some(AuthDomain::forged(M)),
        };
        let out = a.poll(t(0), Event::Deliver(forged.clone()), &mut env);
        assert!(out.completions.is_empty() && out.outgoing.is_empty());
        assert_eq!(a.peer_incarnation(M), Some(0), "forged evidence never digested");
        assert_eq!(env.meter.count(MessageKind::ForgedFrame), 1);
        assert_eq!(env.meter.count(MessageKind::AuthReject), 1);

        env.vpolicy = VerifyPolicy::LogOnly;
        a.poll(t(1), Event::Deliver(forged), &mut env);
        assert_eq!(a.peer_incarnation(M), Some(7), "log-only meters but still digests");
        assert_eq!(env.meter.count(MessageKind::ForgedFrame), 2);
        assert_eq!(env.meter.count(MessageKind::AuthReject), 1, "nothing more dropped");
    }

    #[test]
    fn unsigned_verdict_rejected_when_enforcing() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        env.domain = Some(AuthDomain::new(8));
        env.vpolicy = VerifyPolicy::Enforce;
        let mut a = ProtoMachine::new(A, policy());
        a.monitor(M);
        let bare = Envelope {
            src: B,
            dst: A,
            msg_id: 4,
            trace_id: 0,
            msg: WireMessage::SuspectNotify { suspect: M, incarnation: 0 },
            auth: None,
        };
        let out = a.poll(t(0), Event::Deliver(bare), &mut env);
        assert!(out.completions.is_empty());
        assert_eq!(a.liveness(M), Some(Liveness::Fresh), "untagged verdict ignored");
        assert_eq!(env.meter.count(MessageKind::ForgedFrame), 1);
        assert_eq!(env.meter.count(MessageKind::AuthReject), 1);
    }

    #[test]
    fn replayed_publish_with_valid_signature_rejected_as_stale() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(M, 3, 9).mobile(M);
        let domain = AuthDomain::new(8);
        env.domain = Some(domain);
        env.vpolicy = VerifyPolicy::Enforce;
        env.stale_subjects.insert(M);
        let mut holder = ProtoMachine::new(A, policy());
        // The signature is genuinely M's — replayed from before the
        // withdrawal — so only the freshness check can reject it.
        let msg = WireMessage::Publish {
            subject: M,
            addr: WireAddr { host: 3, router: 9, epoch: 0 },
            seq: 1,
        };
        let auth = Some(domain.sign(M, msg.auth_digest()));
        let replay = Envelope { src: M, dst: A, msg_id: 5, trace_id: 0, msg, auth };
        holder.poll(t(0), Event::Deliver(replay.clone()), &mut env);
        assert_eq!(env.meter.count(MessageKind::ForgedFrame), 1);
        assert_eq!(env.meter.count(MessageKind::AuthReject), 1);

        // The same frame for a live subject sails through.
        env.stale_subjects.clear();
        holder.poll(t(1), Event::Deliver(replay), &mut env);
        assert_eq!(env.meter.count(MessageKind::ForgedFrame), 1, "fresh record accepted");
    }

    /// The PR-5 wrongful-death handshake, replayed end to end with
    /// enforcement on: every authority-bearing frame travels sealed and
    /// the honest exchange never trips the gate.
    #[test]
    fn refutation_round_trip_survives_enforcement() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5).with_node(M, 3, 9);
        env.domain = Some(AuthDomain::new(8));
        env.vpolicy = VerifyPolicy::Enforce;
        let mut a = ProtoMachine::new(A, policy());
        let mut b = ProtoMachine::new(B, policy());
        let mut herald = ProtoMachine::new(M, policy());
        a.monitor(B);
        b.monitor(A);

        let notice = herald.notify_suspect(t(0), &mut env, A, B).outgoing[0].env.clone();
        assert!(notice.auth.is_some(), "verdicts travel sealed");
        a.poll(t(0), Event::Deliver(notice), &mut env);
        assert_eq!(a.liveness(B), Some(Liveness::Dead));

        let probe = b.start_heartbeats(t(10), &mut env).outgoing[0].env.clone();
        assert!(probe.auth.is_none(), "heartbeats are unauthenticated kinds");
        let obituary = a.poll(t(11), Event::Deliver(probe), &mut env).outgoing[0].env.clone();
        assert!(obituary.auth.is_some(), "the zombie-path obituary is sealed");
        let refutation = b.poll(t(12), Event::Deliver(obituary), &mut env).outgoing[0].env.clone();
        assert!(refutation.auth.is_some(), "the Alive refutation is sealed");
        let out = a.poll(t(13), Event::Deliver(refutation), &mut env);
        assert_eq!(
            out.completions,
            vec![Completion::PeerRefuted { peer: B, incarnation: 1, was_dead: true }]
        );
        assert_eq!(a.liveness(B), Some(Liveness::Fresh));
        assert_eq!(env.meter.count(MessageKind::ForgedFrame), 0, "honest traffic never rejected");
    }

    #[test]
    fn backoff_shifts_saturate_and_clamp() {
        assert_eq!(backoff(100, 0), 100);
        assert_eq!(backoff(100, 1), 200);
        assert_eq!(backoff(100, 3), 800);
        assert_eq!(backoff(100, 60), MAX_BACKOFF, "deep chains hit the ceiling");
        assert_eq!(backoff(100, 64), MAX_BACKOFF, "shift past the word width saturates");
        assert_eq!(backoff(100, u32::MAX), MAX_BACKOFF);
        assert_eq!(backoff(u64::MAX, 1), MAX_BACKOFF, "multiplication never overflows");
        assert_eq!(backoff(0, 7), 0);
    }

    fn small_rto() -> RtoConfig {
        RtoConfig { min_rto: 10, max_rto: 10_000, initial_rto: 100, jitter_frac: 0 }
    }

    #[test]
    fn adaptive_rto_learns_from_hop_acks_and_rearms_with_the_estimate() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        env.mobile_hops.insert((A, B), B);
        let mut m = ProtoMachine::new(A, policy());
        m.set_adaptive_rto(Some(small_rto()));

        // No samples yet: the first hop arms at the initial RTO, not
        // the fixed policy timeout.
        let (_, out) = m.start_route(t(0), &mut env, B);
        assert_eq!(out.timers[0].at, t(100), "initial RTO before any sample");
        let hop_id = out.outgoing[0].env.msg_id;
        let ack = Envelope {
            src: B,
            dst: A,
            msg_id: 0,
            trace_id: 0,
            msg: WireMessage::HopAck { acked: hop_id },
            auth: None,
        };
        m.poll(t(30), Event::Deliver(ack), &mut env);
        // rtt = 30: srtt8 = 240, rttvar4 = 60, rto = 30 + 60 = 90.
        assert_eq!(m.rto_estimate(B), Some(90));
        let (_, out) = m.start_route(t(1000), &mut env, B);
        assert_eq!(out.timers[0].at, t(1090), "next hop arms with the learned RTO");
    }

    #[test]
    fn karn_backoff_doubles_the_adaptive_retry_wait() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        env.mobile_hops.insert((A, B), B);
        let mut m = ProtoMachine::new(A, policy());
        m.set_adaptive_rto(Some(small_rto()));
        let (_, out) = m.start_route(t(0), &mut env, B);
        let timer = out.timers[0].kind;
        assert_eq!(out.timers[0].at, t(100));
        // First timeout: retransmit, estimator backoff doubles the RTO.
        let out = m.poll(t(100), Event::Timer(timer), &mut env);
        assert_eq!(out.outgoing.len(), 1, "retransmission");
        assert_eq!(out.timers[0].at, t(100 + 200), "Karn backoff doubled the wait");
    }

    #[test]
    fn heartbeat_acks_feed_the_rto_estimator() {
        let mut env = MockEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        let mut prober = ProtoMachine::new(A, policy());
        prober.set_adaptive_rto(Some(small_rto()));
        prober.monitor(B);
        prober.start_heartbeats(t(0), &mut env);
        let ack = Envelope {
            src: B,
            dst: A,
            msg_id: 0,
            trace_id: 0,
            msg: WireMessage::HeartbeatAck { seq: 0, incarnation: 0 },
            auth: None,
        };
        prober.poll(t(40), Event::Deliver(ack), &mut env);
        // rtt = 40: srtt8 = 320, rttvar4 = 80, rto = 40 + 80 = 120.
        assert_eq!(prober.rto_estimate(B), Some(120));
    }
}
