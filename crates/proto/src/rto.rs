//! Adaptive retransmission timeout: a Jacobson/Karn RTT estimator.
//!
//! The fixed [`RetryPolicy`](crate::machine::RetryPolicy) timeouts treat
//! every peer as equally far away, so a slow-but-alive peer looks exactly
//! like a dead one. [`RtoEstimator`] tracks one peer's round-trip time on
//! the virtual clock with the classic TCP fixed-point recurrences
//!
//! ```text
//! srtt   ← 7/8·srtt + 1/8·rtt
//! rttvar ← 3/4·rttvar + 1/4·|srtt − rtt|
//! rto    = clamp(srtt + 4·rttvar, min_rto, max_rto) · 2^backoff
//! ```
//!
//! with the fractions carried as scaled integers (`srtt × 8`,
//! `rttvar × 4`) so there is no floating point anywhere near protocol
//! state. Karn's rule is enforced at the sampling API: an ack that
//! answers a retransmitted frame is ambiguous (which copy did it
//! answer?) and must not enter the estimator. Because a too-short RTO
//! retransmits *every* frame before its first ack lands — starving the
//! estimator of unambiguous samples forever — timeouts inflate the RTO
//! with Karn's exponential backoff until one fresh attempt-zero sample
//! gets through, which collapses the backoff again.
//!
//! The optional jitter is deterministic: a wrapping-multiply hash of a
//! caller-provided salt and an internal draw counter, so two machines
//! never synchronise their retransmissions yet the whole schedule is a
//! pure function of the seed.

/// Bounds and initial value for the adaptive retransmission timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtoConfig {
    /// Floor for the computed RTO (virtual-clock ticks).
    pub min_rto: u64,
    /// Ceiling for the computed RTO, backoff included.
    pub max_rto: u64,
    /// RTO used before the first RTT sample arrives.
    pub initial_rto: u64,
    /// Jitter amplitude in 1/256ths of the computed RTO (0 = none). The
    /// jitter is always additive, so the clamped floor still holds.
    pub jitter_frac: u32,
}

impl Default for RtoConfig {
    /// Matches the fixed policy's 20 000-tick ack timeout before the
    /// first sample, with a generous adaptation range around it.
    fn default() -> Self {
        RtoConfig { min_rto: 2_000, max_rto: 640_000, initial_rto: 20_000, jitter_frac: 8 }
    }
}

impl RtoConfig {
    /// The same bounds scaled for whole-operation (multi-hop discovery)
    /// round trips rather than single-hop acks.
    pub fn for_discovery(initial: u64) -> Self {
        RtoConfig { min_rto: 10_000, max_rto: 1_600_000, initial_rto: initial, jitter_frac: 8 }
    }
}

/// Per-peer Jacobson/Karn RTT estimator (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtoEstimator {
    cfg: RtoConfig,
    /// Smoothed RTT × 8; meaningless until `samples > 0`.
    srtt8: u64,
    /// RTT variance × 4; meaningless until `samples > 0`.
    rttvar4: u64,
    /// Unambiguous samples folded in so far.
    samples: u64,
    /// Karn backoff: doublings applied after timeouts, cleared by the
    /// next fresh sample.
    backoff: u32,
    /// Jitter draw counter (advances once per [`jittered_rto`] call).
    ///
    /// [`jittered_rto`]: RtoEstimator::jittered_rto
    draws: u64,
}

/// Backoff doublings are capped here; `max_rto` clamps the result anyway,
/// so deeper shifts could only overflow, never wait longer.
const MAX_BACKOFF_SHIFT: u32 = 16;

impl RtoEstimator {
    /// A fresh estimator with no samples: `rto()` is `initial_rto`.
    pub fn new(cfg: RtoConfig) -> Self {
        RtoEstimator { cfg, srtt8: 0, rttvar4: 0, samples: 0, backoff: 0, draws: 0 }
    }

    /// Folds one *unambiguous* RTT sample in and collapses any Karn
    /// backoff. Callers must respect Karn's rule — see [`karn_sample`].
    ///
    /// [`karn_sample`]: RtoEstimator::karn_sample
    pub fn sample(&mut self, rtt: u64) {
        if self.samples == 0 {
            // First sample: srtt = rtt, rttvar = rtt / 2 (RFC 6298 §2.2).
            self.srtt8 = rtt.saturating_mul(8);
            self.rttvar4 = rtt.saturating_mul(2);
        } else {
            let err = (self.srtt8 / 8).abs_diff(rtt);
            // rttvar ← 3/4·rttvar + 1/4·err, carried as rttvar × 4.
            self.rttvar4 = self.rttvar4 - self.rttvar4 / 4 + err;
            // srtt ← 7/8·srtt + 1/8·rtt, carried as srtt × 8.
            self.srtt8 = self.srtt8 - self.srtt8 / 8 + rtt;
        }
        self.samples += 1;
        self.backoff = 0;
    }

    /// Karn's rule at the API: folds the sample in only when the frame
    /// was never retransmitted (`attempt == 0`). Returns whether the
    /// sample was taken.
    pub fn karn_sample(&mut self, attempt: u32, rtt: u64) -> bool {
        if attempt == 0 {
            self.sample(rtt);
            true
        } else {
            false
        }
    }

    /// A timer fired without the awaited ack: double the RTO (Karn
    /// backoff) until a fresh sample collapses it.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(MAX_BACKOFF_SHIFT);
    }

    /// Unambiguous samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The smoothed RTT, once at least one sample has arrived.
    pub fn srtt(&self) -> Option<u64> {
        (self.samples > 0).then_some(self.srtt8 / 8)
    }

    /// The current retransmission timeout:
    /// `clamp(srtt + 4·rttvar, min, max) · 2^backoff`, clamped again so
    /// backoff never escapes `max_rto`.
    pub fn rto(&self) -> u64 {
        let raw = if self.samples == 0 {
            self.cfg.initial_rto
        } else {
            (self.srtt8 / 8).saturating_add(self.rttvar4)
        };
        let base = raw.clamp(self.cfg.min_rto, self.cfg.max_rto);
        match base.checked_shl(self.backoff) {
            Some(shifted) if self.backoff < 64 => shifted.min(self.cfg.max_rto),
            _ => self.cfg.max_rto,
        }
    }

    /// [`rto`](RtoEstimator::rto) plus deterministic additive jitter in
    /// `[0, rto · jitter_frac / 256]`, hashed from `salt` and an
    /// internal draw counter (no RNG; reproducible per seed).
    pub fn jittered_rto(&mut self, salt: u64) -> u64 {
        let rto = self.rto();
        if self.cfg.jitter_frac == 0 {
            return rto;
        }
        let h = splitmix(salt ^ self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.draws += 1;
        let span = rto / 256 * self.cfg.jitter_frac as u64;
        if span == 0 {
            rto
        } else {
            rto.saturating_add(h % (span + 1)).min(self.cfg.max_rto)
        }
    }
}

/// Timer jitter hashes its draw counter through the crate's shared
/// [`splitmix64`] finalizer (one copy, pinned outputs).
use crate::mix::splitmix64 as splitmix;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(min: u64, max: u64, initial: u64) -> RtoConfig {
        RtoConfig { min_rto: min, max_rto: max, initial_rto: initial, jitter_frac: 0 }
    }

    #[test]
    fn first_sample_seeds_srtt_and_rttvar() {
        let mut e = RtoEstimator::new(cfg(1, 1_000_000, 20_000));
        assert_eq!(e.rto(), 20_000, "initial RTO before any sample");
        e.sample(1_000);
        assert_eq!(e.srtt(), Some(1_000));
        // rto = srtt + 4·rttvar = 1000 + 4·500 = 3000.
        assert_eq!(e.rto(), 3_000);
    }

    #[test]
    fn converges_to_a_steady_rtt() {
        let mut e = RtoEstimator::new(cfg(1, 1_000_000, 20_000));
        for _ in 0..64 {
            e.sample(5_000);
        }
        let srtt = e.srtt().unwrap();
        assert!((4_900..=5_000).contains(&srtt), "srtt {srtt} should sit at the sample value");
        // Constant samples drive the variance toward zero, so the RTO
        // collapses toward srtt.
        assert!(e.rto() < 5_500, "rto {} should tighten around a stable RTT", e.rto());
    }

    #[test]
    fn tracks_a_step_up_in_rtt() {
        let mut e = RtoEstimator::new(cfg(1, 1_000_000, 20_000));
        for _ in 0..16 {
            e.sample(2_000);
        }
        // The link degrades 4x; within a handful of samples the RTO must
        // cover the new RTT.
        for _ in 0..8 {
            e.sample(8_000);
        }
        assert!(e.rto() > 8_000, "rto {} must exceed the degraded RTT", e.rto());
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let mut e = RtoEstimator::new(cfg(1, 1_000_000, 20_000));
        assert!(e.karn_sample(0, 1_000), "attempt-zero sample is unambiguous");
        let before = (e.srtt(), e.samples());
        assert!(!e.karn_sample(1, 900_000), "retransmitted sample is ambiguous");
        assert!(!e.karn_sample(3, 5), "any nonzero attempt is ambiguous");
        assert_eq!((e.srtt(), e.samples()), before, "ambiguous samples must not move the estimate");
    }

    #[test]
    fn clamps_at_both_bounds() {
        let mut low = RtoEstimator::new(cfg(5_000, 100_000, 20_000));
        for _ in 0..32 {
            low.sample(10); // srtt + 4·rttvar far below the floor
        }
        assert_eq!(low.rto(), 5_000, "floor clamp");

        let mut high = RtoEstimator::new(cfg(5_000, 100_000, 20_000));
        high.sample(90_000_000);
        assert_eq!(high.rto(), 100_000, "ceiling clamp");

        let initial = RtoEstimator::new(cfg(5_000, 100_000, 1));
        assert_eq!(initial.rto(), 5_000, "initial RTO is clamped too");
    }

    #[test]
    fn timeout_backoff_doubles_and_a_sample_collapses_it() {
        let mut e = RtoEstimator::new(cfg(1, 1_000_000, 20_000));
        e.sample(1_000); // rto = 3000
        e.on_timeout();
        assert_eq!(e.rto(), 6_000, "one timeout doubles");
        e.on_timeout();
        assert_eq!(e.rto(), 12_000, "two timeouts quadruple");
        e.sample(1_000);
        assert!(e.rto() < 6_000, "a fresh unambiguous sample collapses the backoff");
    }

    #[test]
    fn backoff_saturates_at_the_ceiling() {
        let mut e = RtoEstimator::new(cfg(1, 50_000, 20_000));
        e.sample(1_000);
        for _ in 0..100 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), 50_000, "deep backoff pins to max_rto, no overflow");
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_additive() {
        let mk = || {
            let mut e = RtoEstimator::new(RtoConfig {
                min_rto: 1,
                max_rto: 1_000_000,
                initial_rto: 20_000,
                jitter_frac: 16,
            });
            e.sample(1_000);
            e
        };
        let (mut a, mut b) = (mk(), mk());
        let draws_a: Vec<u64> = (0..8).map(|_| a.jittered_rto(0xABCD)).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.jittered_rto(0xABCD)).collect();
        assert_eq!(draws_a, draws_b, "same salt, same draw index ⇒ same jitter");
        let rto = a.rto();
        let span = rto / 256 * 16;
        for d in &draws_a {
            assert!((rto..=rto + span).contains(d), "jitter additive and bounded: {d} vs {rto}");
        }
        assert!(draws_a.windows(2).any(|w| w[0] != w[1]), "successive draws differ");
    }

    #[test]
    fn zero_jitter_frac_is_exact() {
        let mut e = RtoEstimator::new(cfg(1, 1_000_000, 20_000));
        e.sample(1_000);
        assert_eq!(e.jittered_rto(99), e.rto());
    }
}
