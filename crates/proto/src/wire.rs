//! Typed wire messages and a hand-rolled binary codec.
//!
//! Every protocol interaction the paper describes — mobile-layer
//! forwarding, `_discovery`, `register`/`update` dissemination, location
//! publication, join/leave/refresh — is expressed as a [`WireMessage`]
//! carried in an [`Envelope`]. The encoding is a fixed little-endian
//! layout with a one-byte message tag: no serde, no varints, nothing the
//! container does not already ship. Decoding is total — every byte string
//! either round-trips or yields a [`WireError`], never a panic.

use bristle_core::auth::fnv1a64;
pub use bristle_core::auth::WireAuth;
use bristle_netsim::attach::{Attachment, HostId};
use bristle_netsim::graph::RouterId;
use bristle_overlay::addr::NetAddr;
use bristle_overlay::key::Key;

/// A network address as it travels on the wire: which host, attached to
/// which router, as of which epoch. Mirrors [`NetAddr`] exactly; the
/// split exists so the wire format is a closed set of plain integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireAddr {
    /// Host identity.
    pub host: u32,
    /// Router the host was attached to when the address was learned.
    pub router: u32,
    /// Attachment epoch at learning time; stale epochs mean stale addresses.
    pub epoch: u64,
}

impl WireAddr {
    /// Converts a simulator address into its wire form.
    pub fn from_net(a: NetAddr) -> WireAddr {
        WireAddr { host: a.host.0, router: a.attachment.router.0, epoch: a.attachment.epoch }
    }

    /// Converts back into the simulator's address type.
    pub fn to_net(self) -> NetAddr {
        NetAddr {
            host: HostId(self.host),
            attachment: Attachment { router: RouterId(self.router), epoch: self.epoch },
        }
    }

    /// The router this address points at.
    pub fn router_id(self) -> RouterId {
        RouterId(self.router)
    }
}

/// The protocol's message vocabulary.
///
/// Metered kinds (RouteHop, Discovery, DiscoveryReply, Register, Update,
/// Publish, JoinProbe, Leave, Refresh) correspond one-to-one with the
/// paper's operations; the remaining variants (acks and the probe-miss
/// notification) are unmetered control traffic that exists only because
/// message passing, unlike a function call, can fail to return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// One mobile-layer forwarding hop of a route toward `target`.
    RouteHop {
        /// Node that originated the route.
        origin: Key,
        /// Originator-scoped route identifier (for completion reporting).
        route_id: u64,
        /// The key being routed toward.
        target: Key,
    },
    /// Acknowledges receipt of the `RouteHop` carried as `acked` msg id.
    HopAck {
        /// `Envelope::msg_id` of the acknowledged hop.
        acked: u64,
    },
    /// A `_discovery` query hop in the stationary layer.
    Discovery {
        /// The mobile node whose address is being resolved.
        subject: Key,
        /// The node that issued the discovery (reply destination).
        asker: Key,
        /// Asker-scoped discovery session (ties replies to retries).
        session: u64,
        /// `None` while routing toward the record owner; `Some(terminus)`
        /// while walking the replica chain after a miss at the owner.
        probe: Option<Key>,
    },
    /// The resolver's answer, sent directly back to the asker.
    DiscoveryReply {
        /// The subject the session asked about.
        subject: Key,
        /// Asker-scoped session id being answered.
        session: u64,
        /// Resolved address, or `None` when no replica held a record.
        addr: Option<WireAddr>,
    },
    /// Replica-chain exhaustion notice back to the route terminus, which
    /// then answers the asker itself (matching the function-call path,
    /// where a total miss replies from the terminus).
    ProbeMiss {
        /// Subject that could not be resolved.
        subject: Key,
        /// Asker awaiting the (negative) reply.
        asker: Key,
        /// Session id to answer under.
        session: u64,
    },
    /// `register`: declare interest in a mobile node's location (§2.3.1).
    Register {
        /// The mobile node being registered with.
        target: Key,
        /// Registrant's capacity report (shapes the target's LDT).
        capacity: u32,
    },
    /// Acknowledges a `Register`.
    RegisterAck {
        /// `Envelope::msg_id` of the acknowledged registration.
        acked: u64,
    },
    /// `update`: one LDT-edge push of a moved node's fresh address (§2.3).
    Update {
        /// The node whose address changed.
        subject: Key,
        /// Its new address.
        addr: WireAddr,
        /// Movement sequence number (receivers ignore stale sequences).
        seq: u64,
    },
    /// Acknowledges an `Update`.
    UpdateAck {
        /// `Envelope::msg_id` of the acknowledged update.
        acked: u64,
    },
    /// Publishes a location record into the stationary layer.
    Publish {
        /// The mobile node the record describes.
        subject: Key,
        /// Its current address.
        addr: WireAddr,
        /// Movement sequence number.
        seq: u64,
    },
    /// Join-protocol liveness/ownership probe (Fig. 5).
    JoinProbe {
        /// Key the joining node is probing for.
        key: Key,
    },
    /// Departure notice.
    Leave {
        /// The leaving node.
        key: Key,
    },
    /// Periodic soft-state refresh.
    Refresh {
        /// The refreshing node.
        key: Key,
    },
    /// Failure-detector liveness probe; the receiver must answer with a
    /// [`WireMessage::HeartbeatAck`] echoing the sequence number.
    Heartbeat {
        /// Prober-scoped probe sequence number.
        seq: u64,
        /// The prober's own SWIM-style incarnation number.
        incarnation: u64,
    },
    /// Answers a [`WireMessage::Heartbeat`].
    HeartbeatAck {
        /// The probe sequence number being answered.
        seq: u64,
        /// The responder's own incarnation number; a fresher value than
        /// the prober last saw refutes any standing suspicion.
        incarnation: u64,
    },
    /// Third-party notice that `suspect` has been confirmed crashed, so
    /// the receiver can stop probing it and treat it as dead — unless a
    /// fresher incarnation has been observed since.
    SuspectNotify {
        /// The node confirmed dead.
        suspect: Key,
        /// The incarnation the verdict was charged against; a suspect
        /// alive at a higher incarnation is not covered by this notice.
        incarnation: u64,
    },
    /// SWIM-style refutation: `node` is alive at `incarnation`, which
    /// overrides any suspicion or death verdict charged to an older
    /// incarnation. Sent by the node itself after bumping its incarnation,
    /// or relayed on its behalf.
    Alive {
        /// The node whose liveness is asserted.
        node: Key,
        /// The (freshly bumped) incarnation it is alive at.
        incarnation: u64,
    },
    /// A wrongfully-buried node asking a live sponsor to reverse its
    /// funeral: re-admit it to the overlay, restore its registrations,
    /// LDT memberships, and withdrawn location records.
    Rejoin {
        /// The incarnation the node rejoins at.
        incarnation: u64,
    },
    /// Acknowledges a [`WireMessage::Rejoin`] after the sponsor has
    /// reversed the funeral.
    RejoinAck {
        /// The incarnation the rejoin was honored at.
        incarnation: u64,
    },
}

impl WireMessage {
    /// One-byte discriminant used by the codec and the transport trace.
    pub fn tag(&self) -> u8 {
        match self {
            WireMessage::RouteHop { .. } => 0,
            WireMessage::HopAck { .. } => 1,
            WireMessage::Discovery { .. } => 2,
            WireMessage::DiscoveryReply { .. } => 3,
            WireMessage::ProbeMiss { .. } => 4,
            WireMessage::Register { .. } => 5,
            WireMessage::RegisterAck { .. } => 6,
            WireMessage::Update { .. } => 7,
            WireMessage::UpdateAck { .. } => 8,
            WireMessage::Publish { .. } => 9,
            WireMessage::JoinProbe { .. } => 10,
            WireMessage::Leave { .. } => 11,
            WireMessage::Refresh { .. } => 12,
            WireMessage::Heartbeat { .. } => 13,
            WireMessage::HeartbeatAck { .. } => 14,
            WireMessage::SuspectNotify { .. } => 15,
            WireMessage::Alive { .. } => 16,
            WireMessage::Rejoin { .. } => 17,
            WireMessage::RejoinAck { .. } => 18,
        }
    }

    /// Static name of the variant, for traces, events and run reports.
    pub fn tag_name(&self) -> &'static str {
        match self {
            WireMessage::RouteHop { .. } => "RouteHop",
            WireMessage::HopAck { .. } => "HopAck",
            WireMessage::Discovery { .. } => "Discovery",
            WireMessage::DiscoveryReply { .. } => "DiscoveryReply",
            WireMessage::ProbeMiss { .. } => "ProbeMiss",
            WireMessage::Register { .. } => "Register",
            WireMessage::RegisterAck { .. } => "RegisterAck",
            WireMessage::Update { .. } => "Update",
            WireMessage::UpdateAck { .. } => "UpdateAck",
            WireMessage::Publish { .. } => "Publish",
            WireMessage::JoinProbe { .. } => "JoinProbe",
            WireMessage::Leave { .. } => "Leave",
            WireMessage::Refresh { .. } => "Refresh",
            WireMessage::Heartbeat { .. } => "Heartbeat",
            WireMessage::HeartbeatAck { .. } => "HeartbeatAck",
            WireMessage::SuspectNotify { .. } => "SuspectNotify",
            WireMessage::Alive { .. } => "Alive",
            WireMessage::Rejoin { .. } => "Rejoin",
            WireMessage::RejoinAck { .. } => "RejoinAck",
        }
    }

    /// Writes the tagged message body — the bytes shared by the codec and
    /// the authentication digest.
    fn write_body(&self, w: &mut Writer) {
        w.u8(self.tag());
        match self {
            WireMessage::RouteHop { origin, route_id, target } => {
                w.key(*origin);
                w.u64(*route_id);
                w.key(*target);
            }
            WireMessage::HopAck { acked }
            | WireMessage::RegisterAck { acked }
            | WireMessage::UpdateAck { acked } => w.u64(*acked),
            WireMessage::Discovery { subject, asker, session, probe } => {
                w.key(*subject);
                w.key(*asker);
                w.u64(*session);
                w.opt_key(*probe);
            }
            WireMessage::DiscoveryReply { subject, session, addr } => {
                w.key(*subject);
                w.u64(*session);
                w.opt_addr(*addr);
            }
            WireMessage::ProbeMiss { subject, asker, session } => {
                w.key(*subject);
                w.key(*asker);
                w.u64(*session);
            }
            WireMessage::Register { target, capacity } => {
                w.key(*target);
                w.u32(*capacity);
            }
            WireMessage::Update { subject, addr, seq }
            | WireMessage::Publish { subject, addr, seq } => {
                w.key(*subject);
                w.addr(*addr);
                w.u64(*seq);
            }
            WireMessage::JoinProbe { key }
            | WireMessage::Leave { key }
            | WireMessage::Refresh { key } => w.key(*key),
            WireMessage::Heartbeat { seq, incarnation }
            | WireMessage::HeartbeatAck { seq, incarnation } => {
                w.u64(*seq);
                w.u64(*incarnation);
            }
            WireMessage::SuspectNotify { suspect, incarnation }
            | WireMessage::Alive { node: suspect, incarnation } => {
                w.key(*suspect);
                w.u64(*incarnation);
            }
            WireMessage::Rejoin { incarnation } | WireMessage::RejoinAck { incarnation } => {
                w.u64(*incarnation)
            }
        }
    }

    /// Digest of the tagged message body, the value an authentication tag
    /// signs. Deliberately excludes the envelope header (src/dst/msg_id/
    /// trace_id) so a relayed frame — an `Alive` forwarded on a corpse's
    /// behalf, a record pushed replica-to-replica — keeps its original
    /// signer's valid signature.
    pub fn auth_digest(&self) -> u64 {
        let mut w = Writer(Vec::with_capacity(40));
        self.write_body(&mut w);
        fnv1a64(&w.0)
    }
}

/// A message addressed between two overlay nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node's key.
    pub src: Key,
    /// Destination node's key.
    pub dst: Key,
    /// Sender-scoped message id; retransmissions reuse it, so
    /// `(src, msg_id)` is the receiver's deduplication key.
    pub msg_id: u64,
    /// Causal trace id: every frame a logical operation (a route, an
    /// update) triggers — including `_discovery` retries, replica
    /// failovers and refutations — carries the originating operation's
    /// trace id, so a flight recorder can replay one operation's whole
    /// story. 0 means background traffic with no originating operation.
    pub trace_id: u64,
    /// The payload.
    pub msg: WireMessage,
    /// Authentication trailer: the signer's pubkey and a MAC over the
    /// message body (see [`WireMessage::auth_digest`]). `None` on
    /// unauthenticated kinds and on every frame of a pre-auth deployment,
    /// which keeps the seed wire format a strict prefix of this one.
    pub auth: Option<WireAuth>,
}

/// Codec failure: the byte string is not a well-formed envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the layout requires.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// An option prefix byte that is neither 0 nor 1.
    BadOption(u8),
    /// Well-formed message followed by extra bytes.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated envelope"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadOption(b) => write!(f, "bad option prefix {b}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after envelope"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn key(&mut self, k: Key) {
        self.u64(k.0);
    }
    fn addr(&mut self, a: WireAddr) {
        self.u32(a.host);
        self.u32(a.router);
        self.u64(a.epoch);
    }
    fn opt_addr(&mut self, a: Option<WireAddr>) {
        match a {
            None => self.u8(0),
            Some(a) => {
                self.u8(1);
                self.addr(a);
            }
        }
    }
    fn opt_key(&mut self, k: Option<Key>) {
        match k {
            None => self.u8(0),
            Some(k) => {
                self.u8(1);
                self.key(k);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn key(&mut self) -> Result<Key, WireError> {
        Ok(Key(self.u64()?))
    }
    fn addr(&mut self) -> Result<WireAddr, WireError> {
        Ok(WireAddr { host: self.u32()?, router: self.u32()?, epoch: self.u64()? })
    }
    fn opt_addr(&mut self) -> Result<Option<WireAddr>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.addr()?)),
            b => Err(WireError::BadOption(b)),
        }
    }
    fn opt_key(&mut self) -> Result<Option<Key>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.key()?)),
            b => Err(WireError::BadOption(b)),
        }
    }
}

impl Envelope {
    /// Serializes the envelope: `src, dst, msg_id, trace_id`, a tagged
    /// message, then the optional authentication trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer(Vec::with_capacity(64));
        w.key(self.src);
        w.key(self.dst);
        w.u64(self.msg_id);
        w.u64(self.trace_id);
        self.msg.write_body(&mut w);
        match self.auth {
            None => w.u8(0),
            Some(a) => {
                w.u8(1);
                w.u64(a.pubkey);
                w.u64(a.tag);
            }
        }
        w.0
    }

    /// Parses an envelope, consuming the whole buffer.
    pub fn decode(bytes: &[u8]) -> Result<Envelope, WireError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let src = r.key()?;
        let dst = r.key()?;
        let msg_id = r.u64()?;
        let trace_id = r.u64()?;
        let tag = r.u8()?;
        let msg = match tag {
            0 => WireMessage::RouteHop { origin: r.key()?, route_id: r.u64()?, target: r.key()? },
            1 => WireMessage::HopAck { acked: r.u64()? },
            2 => WireMessage::Discovery {
                subject: r.key()?,
                asker: r.key()?,
                session: r.u64()?,
                probe: r.opt_key()?,
            },
            3 => WireMessage::DiscoveryReply {
                subject: r.key()?,
                session: r.u64()?,
                addr: r.opt_addr()?,
            },
            4 => WireMessage::ProbeMiss { subject: r.key()?, asker: r.key()?, session: r.u64()? },
            5 => WireMessage::Register { target: r.key()?, capacity: r.u32()? },
            6 => WireMessage::RegisterAck { acked: r.u64()? },
            7 => WireMessage::Update { subject: r.key()?, addr: r.addr()?, seq: r.u64()? },
            8 => WireMessage::UpdateAck { acked: r.u64()? },
            9 => WireMessage::Publish { subject: r.key()?, addr: r.addr()?, seq: r.u64()? },
            10 => WireMessage::JoinProbe { key: r.key()? },
            11 => WireMessage::Leave { key: r.key()? },
            12 => WireMessage::Refresh { key: r.key()? },
            13 => WireMessage::Heartbeat { seq: r.u64()?, incarnation: r.u64()? },
            14 => WireMessage::HeartbeatAck { seq: r.u64()?, incarnation: r.u64()? },
            15 => WireMessage::SuspectNotify { suspect: r.key()?, incarnation: r.u64()? },
            16 => WireMessage::Alive { node: r.key()?, incarnation: r.u64()? },
            17 => WireMessage::Rejoin { incarnation: r.u64()? },
            18 => WireMessage::RejoinAck { incarnation: r.u64()? },
            t => return Err(WireError::BadTag(t)),
        };
        let auth = match r.u8()? {
            0 => None,
            1 => Some(WireAuth { pubkey: r.u64()?, tag: r.u64()? }),
            b => return Err(WireError::BadOption(b)),
        };
        if r.pos != bytes.len() {
            return Err(WireError::TrailingBytes(bytes.len() - r.pos));
        }
        Ok(Envelope { src, dst, msg_id, trace_id, msg, auth })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(h: u32, r: u32, e: u64) -> WireAddr {
        WireAddr { host: h, router: r, epoch: e }
    }

    fn every_message() -> Vec<WireMessage> {
        vec![
            WireMessage::RouteHop { origin: Key(1), route_id: 7, target: Key(u64::MAX) },
            WireMessage::HopAck { acked: 99 },
            WireMessage::Discovery { subject: Key(2), asker: Key(3), session: 4, probe: None },
            WireMessage::Discovery {
                subject: Key(2),
                asker: Key(3),
                session: 4,
                probe: Some(Key(9)),
            },
            WireMessage::DiscoveryReply { subject: Key(5), session: 6, addr: None },
            WireMessage::DiscoveryReply { subject: Key(5), session: 6, addr: Some(addr(1, 2, 3)) },
            WireMessage::ProbeMiss { subject: Key(8), asker: Key(9), session: 10 },
            WireMessage::Register { target: Key(11), capacity: 12 },
            WireMessage::RegisterAck { acked: 13 },
            WireMessage::Update { subject: Key(14), addr: addr(4, 5, 6), seq: 15 },
            WireMessage::UpdateAck { acked: 16 },
            WireMessage::Publish { subject: Key(17), addr: addr(7, 8, 9), seq: 18 },
            WireMessage::JoinProbe { key: Key(19) },
            WireMessage::Leave { key: Key(20) },
            WireMessage::Refresh { key: Key(21) },
            WireMessage::Heartbeat { seq: 22, incarnation: 1 },
            WireMessage::HeartbeatAck { seq: 23, incarnation: 2 },
            WireMessage::SuspectNotify { suspect: Key(24), incarnation: 3 },
            WireMessage::Alive { node: Key(25), incarnation: 4 },
            WireMessage::Rejoin { incarnation: 5 },
            WireMessage::RejoinAck { incarnation: 6 },
        ]
    }

    /// Every tag 0..=18 must appear in `every_message`, so the exhaustive
    /// tests below really are exhaustive.
    #[test]
    fn every_message_covers_every_tag() {
        let tags: std::collections::HashSet<u8> = every_message().iter().map(|m| m.tag()).collect();
        for t in 0..=18u8 {
            assert!(tags.contains(&t), "tag {t} missing from every_message()");
        }
    }

    /// The codec is a bijection on well-formed frames: for every variant,
    /// encode → decode → re-encode reproduces the original bytes exactly.
    /// Future wire changes cannot silently skew one direction of the codec
    /// without failing this test.
    /// Every variant with and without an authentication trailer — the
    /// exhaustive inputs the codec tests run over.
    fn every_envelope() -> Vec<Envelope> {
        let mut out = Vec::new();
        for (i, msg) in every_message().into_iter().enumerate() {
            for auth in [None, Some(WireAuth { pubkey: 0xabc ^ i as u64, tag: 77 + i as u64 })] {
                out.push(Envelope {
                    src: Key(300 + i as u64),
                    dst: Key(400),
                    msg_id: i as u64,
                    trace_id: 9,
                    msg: msg.clone(),
                    auth,
                });
            }
        }
        out
    }

    #[test]
    fn every_variant_reencodes_byte_identically() {
        for (i, env) in every_envelope().into_iter().enumerate() {
            let bytes = env.encode();
            let back = Envelope::decode(&bytes).expect("decodes");
            assert_eq!(back.encode(), bytes, "variant {i} re-encode differs");
        }
    }

    #[test]
    fn every_variant_round_trips() {
        for (i, env) in every_envelope().into_iter().enumerate() {
            let bytes = env.encode();
            let back = Envelope::decode(&bytes).expect("decodes");
            assert_eq!(back, env, "variant {i}");
        }
    }

    #[test]
    fn tags_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for msg in every_message() {
            seen.insert(msg.tag());
        }
        assert_eq!(seen.len(), 19);
    }

    /// Truncating an authenticated *or* unauthenticated frame at every
    /// possible length is a clean `Truncated` error — in particular a
    /// trailer cut mid-tag never passes as unauthenticated.
    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        for env in every_envelope() {
            let bytes = env.encode();
            for cut in 0..bytes.len() {
                assert_eq!(Envelope::decode(&bytes[..cut]), Err(WireError::Truncated), "cut {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let env = Envelope {
            src: Key(1),
            dst: Key(2),
            msg_id: 3,
            trace_id: 4,
            msg: WireMessage::Leave { key: Key(4) },
            auth: None,
        };
        let mut bytes = env.encode();
        bytes.push(0xff);
        assert_eq!(Envelope::decode(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tag_rejected() {
        let env = Envelope {
            src: Key(1),
            dst: Key(2),
            msg_id: 3,
            trace_id: 4,
            msg: WireMessage::Leave { key: Key(4) },
            auth: None,
        };
        let mut bytes = env.encode();
        bytes[32] = 200; // tag byte follows src+dst+msg_id+trace_id
        assert_eq!(Envelope::decode(&bytes), Err(WireError::BadTag(200)));
    }

    #[test]
    fn bad_option_prefix_rejected() {
        let env = Envelope {
            src: Key(1),
            dst: Key(2),
            msg_id: 3,
            trace_id: 4,
            msg: WireMessage::DiscoveryReply { subject: Key(5), session: 6, addr: None },
            auth: None,
        };
        let mut bytes = env.encode();
        // Layout: 32-byte header, tag, subject (8), session (8), addr
        // option, auth option. Corrupt each option prefix in turn.
        let addr_opt = 32 + 1 + 8 + 8;
        bytes[addr_opt] = 7;
        assert_eq!(Envelope::decode(&bytes), Err(WireError::BadOption(7)));
        bytes[addr_opt] = 0;
        *bytes.last_mut().unwrap() = 9; // auth option prefix is the final byte
        assert_eq!(Envelope::decode(&bytes), Err(WireError::BadOption(9)));
    }

    /// The digest signs the message body only: relabeling the envelope
    /// (src/dst/msg_id/trace_id) keeps the digest — and hence a relayed
    /// frame's signature — intact, while any body change breaks it.
    #[test]
    fn auth_digest_covers_exactly_the_body() {
        let msg = WireMessage::Alive { node: Key(25), incarnation: 4 };
        let relabeled = msg.clone();
        assert_eq!(msg.auth_digest(), relabeled.auth_digest());
        let other = WireMessage::Alive { node: Key(25), incarnation: 5 };
        assert_ne!(msg.auth_digest(), other.auth_digest());
        // Same field bytes under a different tag must not collide either.
        let suspect = WireMessage::SuspectNotify { suspect: Key(25), incarnation: 4 };
        assert_ne!(msg.auth_digest(), suspect.auth_digest());
    }

    /// The trailer is self-delimiting: an authenticated frame decodes to
    /// the same message as its unauthenticated twin plus the trailer.
    #[test]
    fn auth_trailer_is_a_strict_suffix() {
        for msg in every_message() {
            let plain = Envelope {
                src: Key(1),
                dst: Key(2),
                msg_id: 3,
                trace_id: 4,
                msg: msg.clone(),
                auth: None,
            };
            let sealed = Envelope { auth: Some(WireAuth { pubkey: 10, tag: 20 }), ..plain.clone() };
            let pb = plain.encode();
            let sb = sealed.encode();
            assert_eq!(sb.len(), pb.len() + 16, "trailer adds exactly pubkey+tag");
            assert_eq!(&sb[..pb.len() - 1], &pb[..pb.len() - 1], "shared prefix");
        }
    }

    /// Attacker-controlled bytes at the datagram boundary: every
    /// single-byte mutation of every well-formed encoding (each byte
    /// position crossed with several corruption patterns) must decode to
    /// `Ok` or a clean `Err` — never panic, never over-read. The decoder
    /// is total; the poll loop's drop-and-meter path depends on it.
    #[test]
    fn mutation_sweep_of_every_encoding_is_total() {
        for (i, env) in every_envelope().into_iter().enumerate() {
            let bytes = env.encode();
            for pos in 0..bytes.len() {
                for mask in [0x01u8, 0x80, 0xff] {
                    let mut bad = bytes.clone();
                    bad[pos] ^= mask;
                    // Any Result is fine; what must not happen is a
                    // panic or an abort inside decode.
                    let _ = Envelope::decode(&bad);
                }
                // Setting the byte outright (not xor) hits option and
                // tag sentinels the masks can miss.
                for value in [0x00u8, 0x02, 0x13, 0xfe] {
                    let mut bad = bytes.clone();
                    bad[pos] = value;
                    let _ = Envelope::decode(&bad);
                }
            }
            // Mutations that also change length: duplicate and excise
            // one byte at every position.
            for pos in 0..bytes.len() {
                let mut longer = bytes.clone();
                longer.insert(pos, bytes[pos]);
                let _ = Envelope::decode(&longer);
                let mut shorter = bytes.clone();
                shorter.remove(pos);
                let _ = Envelope::decode(&shorter);
            }
            // Pure garbage of the same length, from a fixed pattern so
            // the sweep stays deterministic.
            let garbage: Vec<u8> = (0..bytes.len())
                .map(|j| (j as u8).wrapping_mul(31).wrapping_add(i as u8))
                .collect();
            let _ = Envelope::decode(&garbage);
        }
    }

    #[test]
    fn wire_addr_net_round_trip() {
        let net =
            NetAddr { host: HostId(42), attachment: Attachment { router: RouterId(17), epoch: 5 } };
        let wire = WireAddr::from_net(net);
        assert_eq!(wire.to_net(), net);
        assert_eq!(wire.router_id(), RouterId(17));
    }

    #[test]
    fn empty_buffer_is_truncated() {
        assert_eq!(Envelope::decode(&[]), Err(WireError::Truncated));
    }
}
