//! # bristle-sim
//!
//! The experiment harness for the Bristle reproduction: a discrete-event
//! engine, movement/churn workload models, the Type A and Type B baseline
//! architectures of the paper's Table 1, statistics and table rendering,
//! and one experiment driver per table/figure of the paper's evaluation:
//!
//! | binary  | regenerates |
//! |---------|-------------|
//! | `fig3`  | Figure 3 — LDT responsibility, member-only vs non-member-only |
//! | `fig7`  | Figure 7 — hops and RDP, scrambled vs clustered naming |
//! | `fig8`  | Figure 8 — LDT adaptation and heterogeneity |
//! | `fig9`  | Figure 9 — LDT cost with/without locality |
//! | `table1`| Table 1 — Type A / Type B / Bristle comparison |
//! | `all`   | everything above in sequence |
//!
//! Run any of them with `--paper` for the paper's populations; the
//! default "quick" scale preserves every qualitative shape in seconds.

#![warn(missing_docs)]

pub mod adversary;
pub mod baseline_type_a;
pub mod baseline_type_b;
pub mod churn;
pub mod cli;
pub mod conformance;
pub mod degradation;
pub mod durability;
pub mod engine;
pub mod experiments;
pub mod messaging;
pub mod metrics;
pub mod mobility;
pub mod partition;
pub mod report;
pub mod resilience;
pub mod runreport;
pub mod scale;
pub mod scenario;
pub mod workload;

pub use adversary::{run_attack, AttackConfig, AttackFamily, AttackOutcome, ALL_FAMILIES};
pub use baseline_type_a::TypeASystem;
pub use baseline_type_b::TypeBSystem;
pub use churn::{ChurnAction, ChurnModel};
pub use cli::SweepArgs;
pub use degradation::{run_degradation, DegradationConfig, DegradationOutcome};
pub use durability::{run_durability, DurabilityConfig, DurabilityOutcome, RestartMode};
pub use engine::EventQueue;
pub use experiments::Scale;
pub use messaging::{MessagingBristleSystem, MessagingError, MessagingRouteReport, RejoinRecord};
pub use metrics::{Histogram, Samples};
pub use mobility::MobilityModel;
pub use partition::{run_partition, PartitionConfig, PartitionOutcome};
pub use report::Table;
pub use resilience::{run_churn_messaging, ResilienceConfig, ResilienceOutcome};
pub use scenario::{ScenarioConfig, ScenarioOutcome};
pub use workload::{measure_routes, sample_any_pairs, sample_stationary_pairs, RouteAggregate};
