//! Discrete-event simulation engine.
//!
//! A minimal but complete scheduler over virtual time: events fire in
//! timestamp order (FIFO among equal timestamps), handlers may schedule
//! further events, and the run can be bounded by time and/or event
//! count. Dynamic scenarios (Table 1: movement, churn, failures, lease
//! expiry) are driven through this engine.
//!
//! [`EventQueue`] is a **calendar (bucket) queue**: a fixed wheel of
//! [`WHEEL_SLOTS`] per-tick buckets covering the window
//! `[base, base + WHEEL_SLOTS)`, with a `BTreeMap` overflow for events
//! beyond it. Scheduling into the window and popping are O(1) amortized
//! — no heap sift — and a batch of same-timestamp events drains from
//! one bucket allocation-free. When the wheel empties, the window
//! re-bases onto the earliest overflow time and migrates that span's
//! deques wholesale. Because a bucket maps to exactly one tick (direct
//! indexing, no modulo collisions) and migration only happens into an
//! empty wheel, every bucket's push order is sequence order, so the
//! `(time, seq)` FIFO contract is identical to a binary heap's — the
//! reference implementation survives as [`BinaryHeapQueue`] and a
//! differential test holds the two to identical pop sequences.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use bristle_core::time::SimTime;

/// Width of the calendar wheel: how many consecutive ticks the O(1)
/// window covers. Events farther out wait in the overflow tree.
pub const WHEEL_SLOTS: usize = 1024;

/// A scheduled entry: time, tie-breaking sequence number, payload.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A future-event list over event payloads of type `E`.
///
/// # Examples
///
/// ```
/// use bristle_core::time::SimTime;
/// use bristle_sim::engine::{run, EventQueue};
///
/// let mut queue: EventQueue<&str> = EventQueue::new();
/// queue.schedule_at(SimTime(5), "later");
/// queue.schedule_at(SimTime(1), "sooner");
///
/// let mut seen = Vec::new();
/// run(&mut queue, SimTime(100), u64::MAX, |q, t, e| {
///     seen.push((t, e));
///     if e == "sooner" {
///         q.schedule_in(1, "follow-up"); // handlers may reschedule
///     }
/// });
/// assert_eq!(seen[0], (SimTime(1), "sooner"));
/// assert_eq!(seen[1], (SimTime(2), "follow-up"));
/// assert_eq!(seen[2], (SimTime(5), "later"));
/// ```
pub struct EventQueue<E> {
    /// Per-tick buckets for times in `[base, base + WHEEL_SLOTS)`;
    /// bucket `i` holds exactly the events at time `base + i`, in
    /// schedule (sequence) order.
    wheel: Vec<VecDeque<E>>,
    /// Time of bucket 0. Invariant: `base <= now` between calls — the
    /// window only re-bases inside [`Self::pop`], which immediately
    /// advances `now` to the new base.
    base: u64,
    /// First wheel bucket that may be non-empty; buckets before it are
    /// empty. Scheduling into an earlier bucket rewinds it.
    cursor: usize,
    /// Events at times `>= base + WHEEL_SLOTS`, keyed by time; each
    /// deque is in sequence order.
    overflow: BTreeMap<u64, VecDeque<E>>,
    pending: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        let mut wheel = Vec::with_capacity(WHEEL_SLOTS);
        wheel.resize_with(WHEEL_SLOTS, VecDeque::new);
        EventQueue {
            wheel,
            base: 0,
            cursor: 0,
            overflow: BTreeMap::new(),
            pending: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        self.next_seq += 1;
        self.pending += 1;
        let offset = at.0 - self.base; // at >= now >= base
        if offset < WHEEL_SLOTS as u64 {
            let slot = offset as usize;
            self.wheel[slot].push_back(event);
            if slot < self.cursor {
                self.cursor = slot;
            }
        } else {
            self.overflow.entry(at.0).or_default().push_back(event);
        }
    }

    /// Schedules `event` `delay` ticks after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.now.plus(delay), event);
    }

    /// The time of the earliest pending event, without popping it or
    /// advancing the clock. (`&mut` only to memoize the bucket scan.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while self.cursor < WHEEL_SLOTS && self.wheel[self.cursor].is_empty() {
            self.cursor += 1;
        }
        if self.cursor < WHEEL_SLOTS {
            // Overflow times are all >= base + WHEEL_SLOTS, so a
            // non-empty wheel always holds the minimum.
            return Some(SimTime(self.base + self.cursor as u64));
        }
        self.overflow.keys().next().map(|&t| SimTime(t))
    }

    /// Pops the earliest event, advancing the queue's clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            while self.cursor < WHEEL_SLOTS && self.wheel[self.cursor].is_empty() {
                self.cursor += 1;
            }
            if self.cursor < WHEEL_SLOTS {
                let t = SimTime(self.base + self.cursor as u64);
                let event = self.wheel[self.cursor].pop_front().expect("cursor on live bucket");
                self.pending -= 1;
                self.now = t;
                return Some((t, event));
            }
            // Wheel drained: re-base the window on the earliest overflow
            // time and migrate its span in, deque by deque (no per-event
            // work). The next iteration pops at the new base, so the
            // `base <= now` invariant is restored before control returns.
            let &t0 = self.overflow.keys().next()?;
            self.base = t0;
            self.cursor = 0;
            let tail = self.overflow.split_off(&t0.saturating_add(WHEEL_SLOTS as u64));
            let migrate = std::mem::replace(&mut self.overflow, tail);
            for (t, dq) in migrate {
                let slot = (t - t0) as usize;
                debug_assert!(slot < WHEEL_SLOTS && self.wheel[slot].is_empty());
                self.wheel[slot] = dq;
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }
}

/// The original binary-heap future-event list, kept as the reference
/// model for the calendar queue: same API, same `(time, seq)` FIFO
/// contract, O(log n) per operation. The differential test in
/// `tests/queue_differential.rs` holds [`EventQueue`] to this
/// implementation's exact pop order; the `scale` bin uses it as the
/// events/sec baseline.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        BinaryHeapQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }
}

impl<E> BinaryHeapQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time: at, seq, event }));
    }

    /// Schedules `event` `delay` ticks after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.now.plus(delay), event);
    }

    /// The time of the earliest pending event, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Pops the earliest event, advancing the queue's clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| {
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Runs the queue until it empties, `horizon` passes, or `max_events`
/// fire. The handler receives the current time and event and may push
/// follow-ups through the queue it is handed. Returns events processed.
///
/// An event beyond the horizon **stays queued** (and the clock stays
/// put): a later `run` with a larger horizon picks it up exactly where
/// it was scheduled.
pub fn run<E>(
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    max_events: u64,
    mut handler: impl FnMut(&mut EventQueue<E>, SimTime, E),
) -> u64 {
    let mut processed = 0u64;
    while processed < max_events {
        match queue.peek_time() {
            Some(t) if t <= horizon => {}
            _ => break,
        }
        let Some((t, e)) = queue.pop() else { break };
        handler(queue, t, e);
        processed += 1;
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(5), "b");
        q.schedule_at(SimTime(1), "a");
        q.schedule_at(SimTime(9), "c");
        assert_eq!(q.pop().unwrap(), (SimTime(1), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(5), "b"));
        assert_eq!(q.now(), SimTime(5));
        assert_eq!(q.pop().unwrap(), (SimTime(9), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime(3), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), "first");
        q.pop();
        q.schedule_in(5, "second");
        assert_eq!(q.pop().unwrap().0, SimTime(15));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn events_beyond_the_wheel_overflow_and_return() {
        let mut q = EventQueue::new();
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        q.schedule_at(SimTime(far), "far");
        q.schedule_at(SimTime(2), "near");
        q.schedule_at(SimTime(far), "far2");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap(), (SimTime(2), "near"));
        assert_eq!(q.pop().unwrap(), (SimTime(far), "far"), "re-based onto the overflow");
        assert_eq!(q.pop().unwrap(), (SimTime(far), "far2"), "FIFO survives migration");
        assert!(q.is_empty());
        // The window followed the pops: scheduling just after `far` is
        // an O(1) wheel insert and still pops correctly.
        q.schedule_at(SimTime(far + 5), "tail");
        assert_eq!(q.pop().unwrap(), (SimTime(far + 5), "tail"));
    }

    #[test]
    fn fifo_across_wheel_and_overflow_boundary() {
        let mut q = EventQueue::new();
        let t = WHEEL_SLOTS as u64 + 100; // starts in overflow
        for i in 0..5 {
            q.schedule_at(SimTime(t), i);
        }
        // Drain a nearer event so the wheel re-bases onto `t`...
        q.schedule_at(SimTime(1), 100);
        assert_eq!(q.pop().unwrap().1, 100);
        // ...then schedule more at the same time, now inside the wheel.
        assert_eq!(q.pop().unwrap(), (SimTime(t), 0));
        for i in 5..8 {
            q.schedule_at(SimTime(t), i);
        }
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![1, 2, 3, 4, 5, 6, 7], "earlier seqs pop first");
    }

    #[test]
    fn peek_time_does_not_advance_the_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(42), ());
        assert_eq!(q.peek_time(), Some(SimTime(42)));
        assert_eq!(q.now(), SimTime::ZERO, "peek must not move now");
        assert_eq!(q.len(), 1, "peek must not pop");
        // Scheduling earlier than a previous peek's scan still works.
        q.schedule_at(SimTime(3), ());
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.pop().unwrap().0, SimTime(3));
        assert_eq!(q.pop().unwrap().0, SimTime(42));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn run_honors_horizon() {
        let mut q = EventQueue::new();
        for t in [1u64, 2, 3, 50, 60] {
            q.schedule_at(SimTime(t), t);
        }
        let mut seen = Vec::new();
        let n = run(&mut q, SimTime(10), u64::MAX, |_, _, e| seen.push(e));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn horizon_break_leaves_future_events_queued() {
        // Regression: the old loop popped the first past-horizon event
        // before checking, silently dropping it (and advancing the
        // clock). Both events must survive and fire on a later run.
        let mut q = EventQueue::new();
        for t in [1u64, 2, 3, 50, 60] {
            q.schedule_at(SimTime(t), t);
        }
        run(&mut q, SimTime(10), u64::MAX, |_, _, _| {});
        assert_eq!(q.len(), 2, "past-horizon events stay queued");
        assert_eq!(q.now(), SimTime(3), "clock stops at the last in-horizon event");
        let mut later = Vec::new();
        let n = run(&mut q, SimTime(100), u64::MAX, |_, t, e| later.push((t, e)));
        assert_eq!(n, 2);
        assert_eq!(later, vec![(SimTime(50), 50), (SimTime(60), 60)]);
    }

    #[test]
    fn run_honors_event_cap() {
        let mut q = EventQueue::new();
        for t in 0..100u64 {
            q.schedule_at(SimTime(t), ());
        }
        let n = run(&mut q, SimTime(1000), 7, |_, _, _| {});
        assert_eq!(n, 7);
        assert_eq!(q.len(), 93);
    }

    #[test]
    fn handler_can_reschedule() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(0), 0u32);
        let mut count = 0;
        run(&mut q, SimTime(100), u64::MAX, |q, _, gen| {
            count += 1;
            if gen < 5 {
                q.schedule_in(10, gen + 1);
            }
        });
        assert_eq!(count, 6, "chain of self-scheduled events");
    }
}
