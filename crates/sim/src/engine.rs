//! Discrete-event simulation engine.
//!
//! A minimal but complete priority-queue scheduler over virtual time:
//! events fire in timestamp order (FIFO among equal timestamps), handlers
//! may schedule further events, and the run can be bounded by time and/or
//! event count. Dynamic scenarios (Table 1: movement, churn, failures,
//! lease expiry) are driven through this engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bristle_core::time::SimTime;

/// A scheduled entry: time, tie-breaking sequence number, payload.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A future-event list over event payloads of type `E`.
///
/// # Examples
///
/// ```
/// use bristle_core::time::SimTime;
/// use bristle_sim::engine::{run, EventQueue};
///
/// let mut queue: EventQueue<&str> = EventQueue::new();
/// queue.schedule_at(SimTime(5), "later");
/// queue.schedule_at(SimTime(1), "sooner");
///
/// let mut seen = Vec::new();
/// run(&mut queue, SimTime(100), u64::MAX, |q, t, e| {
///     seen.push((t, e));
///     if e == "sooner" {
///         q.schedule_in(1, "follow-up"); // handlers may reschedule
///     }
/// });
/// assert_eq!(seen[0], (SimTime(1), "sooner"));
/// assert_eq!(seen[1], (SimTime(2), "follow-up"));
/// assert_eq!(seen[2], (SimTime(5), "later"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { time: at, seq, event }));
    }

    /// Schedules `event` `delay` ticks after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule_at(self.now.plus(delay), event);
    }

    /// Pops the earliest event, advancing the queue's clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(s)| {
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Runs the queue until it empties, `horizon` passes, or `max_events`
/// fire. The handler receives the current time and event and may push
/// follow-ups through the queue it is handed. Returns events processed.
pub fn run<E>(
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    max_events: u64,
    mut handler: impl FnMut(&mut EventQueue<E>, SimTime, E),
) -> u64 {
    let mut processed = 0u64;
    while processed < max_events {
        // Peek via pop-or-restore would need an extra move; we pop and
        // check the horizon afterwards since handlers only see in-horizon
        // events.
        let Some((t, e)) = queue.pop() else { break };
        if t > horizon {
            break;
        }
        handler(queue, t, e);
        processed += 1;
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(5), "b");
        q.schedule_at(SimTime(1), "a");
        q.schedule_at(SimTime(9), "c");
        assert_eq!(q.pop().unwrap(), (SimTime(1), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(5), "b"));
        assert_eq!(q.now(), SimTime(5));
        assert_eq!(q.pop().unwrap(), (SimTime(9), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime(3), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), "first");
        q.pop();
        q.schedule_in(5, "second");
        assert_eq!(q.pop().unwrap().0, SimTime(15));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn run_honors_horizon() {
        let mut q = EventQueue::new();
        for t in [1u64, 2, 3, 50, 60] {
            q.schedule_at(SimTime(t), t);
        }
        let mut seen = Vec::new();
        let n = run(&mut q, SimTime(10), u64::MAX, |_, _, e| seen.push(e));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn run_honors_event_cap() {
        let mut q = EventQueue::new();
        for t in 0..100u64 {
            q.schedule_at(SimTime(t), ());
        }
        let n = run(&mut q, SimTime(1000), 7, |_, _, _| {});
        assert_eq!(n, 7);
        assert_eq!(q.len(), 93);
    }

    #[test]
    fn handler_can_reschedule() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(0), 0u32);
        let mut count = 0;
        run(&mut q, SimTime(100), u64::MAX, |q, _, gen| {
            count += 1;
            if gen < 5 {
                q.schedule_in(10, gen + 1);
            }
        });
        assert_eq!(count, 6, "chain of self-scheduled events");
    }
}
