//! Sim-vs-socket conformance: the same seed-scripted scenario run over
//! the in-memory [`SimTransport`] and over real UDP loopback sockets
//! must tell the same story.
//!
//! Both arms drive the *same* [`ProtoMachine`] code through the *same*
//! `SystemEnv` window onto a [`BristleSystem`] built from the same
//! seed; only the carrier differs — the simulator's event queue and
//! micro-clock on one side, `bristle-net`'s nonblocking sockets and
//! fast-forwarding wall clock on the other. Two artifacts are compared:
//!
//! - **Per-kind meter tallies** — `(kind, count, cost)` over every
//!   [`MessageKind`]. Every metering decision is made by the machines
//!   or by mirrored driver bookkeeping (the spurious-retry check, the
//!   stale-address black-hole), so a divergence means a driver leaked
//!   semantics into the protocol.
//! - **The causal profile** — every flight-recorder event, grouped by
//!   trace id and stripped of wall-dependent fields (`at`, `elapsed`).
//!   Within one trace, event *timing* differs between a micro-clock
//!   and a real kernel, but the *set* of causal events must not.
//!
//! The scripted scenario covers the paper's interesting paths:
//! registration, plain routes, a settled move followed by an LDT
//! dissemination, and the stale-belief recovery — a confidently wrong
//! (force-believed) address found epoch-stale at forwarding time, one
//! wasted metered hop, and a `_discovery` through the stationary
//! layer. Mid-flight moves — the only wedge that could make the sim's
//! arrival-time black-hole and the socket driver's send-time staleness
//! check disagree — are deliberately excluded; the socket-side timeout
//! ladder is exercised by `bristle-net`'s own driver tests.
//!
//! [`SimTransport`]: bristle_proto::transport::SimTransport
//! [`ProtoMachine`]: bristle_proto::machine::ProtoMachine

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

use bristle_core::config::BristleConfig;
use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_core::time::SimTime;
use bristle_net::{SocketDriver, WallClock};
use bristle_netsim::graph::RouterId;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::addr::{NetAddr, StatePair};
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, Meter, ALL_KINDS};
use bristle_overlay::obs::{ObsEvent, ObsEventKind};
use bristle_proto::failure::FailurePolicy;
use bristle_proto::machine::{Completion, ProtoMachine, RetryPolicy};
use bristle_proto::transport::FaultConfig;
use bristle_proto::wire::WireAddr;

use crate::messaging::{AuthConfig, MessagingBristleSystem, ObsCollector, SystemEnv};

/// Event budget per scripted operation, mirroring the messaging
/// driver's runaway backstop.
const MAX_EVENTS: u64 = 2_000_000;

/// What one arm of the conformance run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// `(kind, count, cost)` for every message kind, in `ALL_KINDS`
    /// order (kinds with zero traffic included, so the vectors align).
    pub tallies: Vec<(MessageKind, u64, u64)>,
    /// The causal profile: flight events grouped by trace id, with
    /// wall-dependent fields stripped (see [`profile`]).
    pub profile: String,
}

/// The shared population: identical to the golden-trace scenario's.
fn build(seed: u64) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(40)
        .mobile_nodes(12)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds")
}

/// A pair whose mobile-layer route is a single direct hop to a mobile
/// target, so a force-believed stale address is used verbatim by the
/// origin (the recovery-ladder precondition).
fn direct_pair(sys: &BristleSystem) -> (Key, Key) {
    for &target in sys.mobile_keys() {
        for src in sys.mobile.keys() {
            if src != target && sys.mobile.next_hop(src, target).ok().flatten() == Some(target) {
                return (src, target);
            }
        }
    }
    panic!("no direct mobile pair in this population");
}

/// Installs a fresh (but about-to-be-stale) resolved state-pair at
/// `holder` for `subject`, modelling an established session.
fn force_belief(sys: &mut BristleSystem, holder: Key, subject: Key) {
    let info = *sys.node_info(subject).expect("known");
    let addr = NetAddr::current(info.host, &sys.attachments);
    let (now, ttl) = (sys.clock.now(), sys.config().lease_ttl);
    sys.leases.grant(holder, subject, now, ttl);
    sys.mobile.node_mut(holder).expect("known").upsert_entry(StatePair::resolved(subject, addr));
}

/// The deterministic actors of the scripted scenario, chosen from the
/// freshly built (pre-ops) system so both arms agree.
struct Cast {
    /// Stationary registrants of mobile node `m`.
    w1: Key,
    w2: Key,
    /// The mobile node that registers watchers, moves, disseminates.
    m: Key,
    m_to: RouterId,
    /// The stale-belief recovery's origin and (direct-hop) mobile target.
    ladder_src: Key,
    ladder_target: Key,
    ladder_to: RouterId,
}

fn cast(sys: &BristleSystem) -> Cast {
    let (ladder_src, ladder_target) = direct_pair(sys);
    let m = *sys
        .mobile_keys()
        .iter()
        .find(|&&k| k != ladder_target)
        .expect("more than one mobile node");
    let w1 = sys.stationary_keys()[0];
    let w2 = sys.stationary_keys()[1];
    let other_router = |of: Key| {
        let here = sys.router_of(of).expect("attached");
        sys.stub_routers().iter().copied().find(|&r| r != here).expect("another stub router exists")
    };
    Cast {
        w1,
        w2,
        m,
        m_to: other_router(m),
        ladder_src,
        ladder_target,
        ladder_to: other_router(ladder_target),
    }
}

/// One flight event as a stable, wall-clock-free line: node plus kind,
/// with `at` dropped entirely and `elapsed` dropped from the discovery
/// milestones (micro-ticks and fast-forwarded wall ticks measure
/// different spans of the same story).
fn fmt_causal(e: &ObsEvent) -> String {
    let kind = match e.kind {
        ObsEventKind::Send { to, tag, msg_id } => format!("send to={to} tag={tag} msg_id={msg_id}"),
        ObsEventKind::Ack { from, msg_id } => format!("ack from={from} msg_id={msg_id}"),
        ObsEventKind::Timeout { what, attempt } => format!("timeout what={what} attempt={attempt}"),
        ObsEventKind::Suspect { peer, incarnation } => {
            format!("suspect peer={peer} incarnation={incarnation}")
        }
        ObsEventKind::Refute { incarnation } => format!("refute incarnation={incarnation}"),
        ObsEventKind::RouteDelivered { route_id } => format!("route_delivered route_id={route_id}"),
        ObsEventKind::RouteFailed { route_id } => format!("route_failed route_id={route_id}"),
        ObsEventKind::DiscoveryStart { subject } => format!("discovery_start subject={subject}"),
        ObsEventKind::DiscoveryResolved { subject, .. } => {
            format!("discovery_resolved subject={subject}")
        }
        ObsEventKind::DiscoveryFailed { subject, .. } => {
            format!("discovery_failed subject={subject}")
        }
        ObsEventKind::AuthReject { from, tag, reason, dropped } => {
            format!("auth_reject from={from} tag={tag} reason={reason} dropped={dropped}")
        }
    };
    format!("node={} {}", e.node, kind)
}

/// Renders the causal profile: events grouped by ascending trace id,
/// lines sorted within each trace (carrier-dependent interleavings —
/// a kernel scheduling two sockets vs. a queue popping two deliveries —
/// must not count as divergence; the *multiset* of events per trace
/// must match exactly, duplicates included).
pub fn profile(events: &[ObsEvent]) -> String {
    let mut by_trace: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for e in events {
        by_trace.entry(e.trace).or_default().push(fmt_causal(e));
    }
    let mut doc = String::new();
    for (trace, mut lines) in by_trace {
        lines.sort();
        doc.push_str(&format!("trace {trace:016x}\n"));
        for line in lines {
            doc.push_str("  ");
            doc.push_str(&line);
            doc.push('\n');
        }
    }
    doc
}

/// `(kind, count, cost)` over every kind, in declaration order.
fn tallies(meter: &Meter) -> Vec<(MessageKind, u64, u64)> {
    ALL_KINDS.iter().map(|&k| (k, meter.count(k), meter.cost(k))).collect()
}

/// Runs the scripted scenario over the simulator's event queue and
/// in-memory transport (fault-free: the recovery ladder's losses come
/// from the scripted stale address, not from random drops).
pub fn run_sim(seed: u64) -> ConformanceReport {
    let sys = build(seed);
    let cast = cast(&sys);
    let mut mbs = MessagingBristleSystem::new(sys, FaultConfig::perfect(), seed);

    mbs.register(cast.w1, cast.m).expect("w1 registers on m");
    mbs.settle();
    mbs.register(cast.w2, cast.m).expect("w2 registers on m");
    mbs.settle();
    mbs.route(cast.w1, cast.m).expect("plain route w1 -> m");
    mbs.settle();

    let t = mbs.micro_now();
    mbs.schedule_move(SimTime(t.0 + 1), cast.m, Some(cast.m_to));
    mbs.settle();
    mbs.disseminate_update(cast.m).expect("m disseminates its move");
    mbs.settle();
    mbs.route(cast.w2, cast.m).expect("route w2 -> m after the update");
    mbs.settle();

    force_belief(&mut mbs.sys, cast.ladder_src, cast.ladder_target);
    let t = mbs.micro_now();
    mbs.schedule_move(SimTime(t.0 + 1), cast.ladder_target, Some(cast.ladder_to));
    mbs.settle();
    mbs.route(cast.ladder_src, cast.ladder_target).expect("ladder route recovers");
    mbs.settle();

    ConformanceReport {
        tallies: tallies(&mbs.sys.meter),
        profile: profile(&mbs.obs().flight.events()),
    }
}

/// The socket arm's world state: everything [`SystemEnv`] windows onto,
/// minus what the simulator-specific driver owns (event queue, fault
/// transport). No failures are scripted, so the tombstone and degraded
/// sets stay empty.
struct NetWorld {
    sys: BristleSystem,
    tombstones: HashMap<Key, WireAddr>,
    obs: ObsCollector,
    auth: AuthConfig,
    degraded: BTreeSet<Key>,
}

impl NetWorld {
    fn env(&mut self) -> SystemEnv<'_> {
        SystemEnv {
            sys: &mut self.sys,
            tombstones: &self.tombstones,
            obs: &mut self.obs,
            auth: self.auth,
            degraded: &self.degraded,
        }
    }
}

/// The node's wire address as the system currently attaches it.
fn addr_of(sys: &BristleSystem, key: Key) -> WireAddr {
    let info = sys.node_info(key).expect("known node");
    WireAddr::from_net(NetAddr::current(info.host, &sys.attachments))
}

fn net_register(d: &mut SocketDriver, w: &mut NetWorld, who: Key, target: Key) {
    let capacity = w.sys.node_info(who).expect("known").capacity;
    let now = d.now();
    let mut env = w.env();
    let out = d.machine_mut(who).expect("bound").start_register(now, &mut env, target, capacity);
    d.dispatch(who, out, &mut env).expect("register dispatch");
    let settled = |c: &Completion| {
        matches!(c,
            Completion::Registered { target: t } | Completion::RegisterFailed { target: t }
                if *t == target)
    };
    d.run_until(&mut env, MAX_EVENTS, settled).expect("register settles");
    assert!(
        d.completions
            .iter()
            .any(|c| matches!(c, Completion::Registered { target: t } if *t == target)),
        "registration must be acked"
    );
    d.completions.retain(|c| !settled(c));
}

fn net_route(d: &mut SocketDriver, w: &mut NetWorld, src: Key, target: Key) {
    let now = d.now();
    let mut env = w.env();
    let (route_id, out) = d.machine_mut(src).expect("bound").start_route(now, &mut env, target);
    d.dispatch(src, out, &mut env).expect("route dispatch");
    let mine = move |c: &Completion| match *c {
        Completion::Delivered { origin, route_id: r } => origin == src && r == route_id,
        Completion::RouteFailed { origin, route_id: r, .. } => origin == src && r == route_id,
        _ => false,
    };
    d.run_until(&mut env, MAX_EVENTS, mine).expect("route settles");
    assert!(
        d.completions
            .iter()
            .any(|c| matches!(*c, Completion::Delivered { origin, route_id: r } if origin == src && r == route_id)),
        "route {src} -> {target} must deliver"
    );
    d.completions.retain(|c| !mine(c));
}

fn net_disseminate(d: &mut SocketDriver, w: &mut NetWorld, key: Key) {
    let info = *w.sys.node_info(key).expect("known");
    let ldt = w.sys.build_ldt(key).expect("ldt builds");
    let addr = addr_of(&w.sys, key);
    let mut by_parent: Vec<(Key, Vec<Key>)> = Vec::new();
    for (parent, child) in ldt.edges() {
        match by_parent.iter_mut().find(|(p, _)| *p == parent) {
            Some((_, cs)) => cs.push(child),
            None => by_parent.push((parent, vec![child])),
        }
    }
    let mut expected = 0usize;
    for (parent, children) in by_parent {
        expected += children.len();
        let now = d.now();
        let mut env = w.env();
        let out = d
            .machine_mut(parent)
            .expect("bound")
            .start_update(now, &mut env, key, addr, info.seq, &children);
        d.dispatch(parent, out, &mut env).expect("update dispatch");
    }
    let mut settled = 0usize;
    while settled < expected {
        let mut env = w.env();
        d.run_until(&mut env, MAX_EVENTS, |c| {
            matches!(c, Completion::UpdateAcked { .. } | Completion::UpdateFailed { .. })
        })
        .expect("update edge settles");
        d.completions.retain(|c| match c {
            Completion::UpdateAcked { .. } | Completion::UpdateFailed { .. } => {
                settled += 1;
                false
            }
            _ => true,
        });
    }
}

/// Drains in-flight datagrams and remaining timers, then forgets any
/// leftover completions — the socket mirror of the sim driver's settle.
fn net_settle(d: &mut SocketDriver, w: &mut NetWorld) {
    let mut env = w.env();
    d.run_until_quiet(&mut env, MAX_EVENTS).expect("network quiesces");
    d.completions.clear();
}

/// Executes a settled move: the system reattaches the host (epoch
/// bump), the address book re-seats it. The endpoint — the node's
/// socket — does not change; only its overlay address did.
fn net_move(d: &mut SocketDriver, w: &mut NetWorld, key: Key, to: RouterId) {
    let host = w.sys.node_info(key).expect("known").host;
    w.sys.move_node(key, Some(to)).expect("mobile node moves");
    d.book_mut().reseat(host.0, to);
}

/// Runs the same scripted scenario with every machine behind a real
/// nonblocking UDP socket on loopback, driven by `bristle-net`'s
/// fast-forwarding poll loop.
pub fn run_sockets(seed: u64) -> ConformanceReport {
    let sys = build(seed);
    let cast = cast(&sys);
    let mut world = NetWorld {
        sys,
        tombstones: HashMap::new(),
        obs: ObsCollector::default(),
        auth: AuthConfig::default(),
        degraded: BTreeSet::new(),
    };
    let mut d = SocketDriver::new(WallClock::new(SimTime::ZERO, Duration::from_millis(1)));
    d.set_grace(Duration::from_millis(5));
    let all: Vec<Key> =
        world.sys.stationary_keys().iter().chain(world.sys.mobile_keys()).copied().collect();
    for key in all {
        // Same construction as the sim driver's machine_entry, with the
        // session defaults the sim arm runs under.
        let mut machine = ProtoMachine::new(key, RetryPolicy::default());
        machine.set_failure_policy(FailurePolicy::default());
        machine.set_adaptive_rto(None);
        d.bind_node(key, addr_of(&world.sys, key), machine).expect("loopback socket binds");
    }

    net_register(&mut d, &mut world, cast.w1, cast.m);
    net_settle(&mut d, &mut world);
    net_register(&mut d, &mut world, cast.w2, cast.m);
    net_settle(&mut d, &mut world);
    net_route(&mut d, &mut world, cast.w1, cast.m);
    net_settle(&mut d, &mut world);

    net_move(&mut d, &mut world, cast.m, cast.m_to);
    net_disseminate(&mut d, &mut world, cast.m);
    net_settle(&mut d, &mut world);
    net_route(&mut d, &mut world, cast.w2, cast.m);
    net_settle(&mut d, &mut world);

    force_belief(&mut world.sys, cast.ladder_src, cast.ladder_target);
    net_move(&mut d, &mut world, cast.ladder_target, cast.ladder_to);
    net_route(&mut d, &mut world, cast.ladder_src, cast.ladder_target);
    net_settle(&mut d, &mut world);

    // Nothing in the scripted scenario may trip the socket boundary's
    // hardening: every datagram on the wire is one of our envelopes.
    let stats = d.stats();
    assert_eq!(stats.dropped_oversized, 0, "no oversized frames in a clean run");
    assert_eq!(stats.dropped_garbage, 0, "no undecodable frames in a clean run");

    ConformanceReport {
        tallies: tallies(&world.sys.meter),
        profile: profile(&world.obs.flight.events()),
    }
}
