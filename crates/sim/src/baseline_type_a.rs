//! The Type A baseline: a plain HS-P2P over bare IP (paper Table 1).
//!
//! Type A handles mobility by "treat\[ing\] that node as leaving the HS-P2P
//! and then joining as a new peer in the new location", relying on
//! periodic state refresh to purge the stale identity. The consequences
//! the paper calls out — and this model reproduces — are:
//!
//! * **no end-to-end semantics**: the node's overlay identity changes on
//!   every move, so correspondents holding the old key lose the session;
//! * **data unavailability**: records the mover stored for the overlay
//!   die with its old identity until re-published/refreshed;
//! * **maintenance overhead**: every move costs a full join (2·O(log N)
//!   messages) plus its share of refresh traffic.

use std::sync::Arc;

use bristle_netsim::attach::{AttachmentMap, HostId};
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::RouterId;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
use bristle_overlay::config::RingConfig;
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, Meter};
use bristle_overlay::ring::{RingDht, RingError};

/// A logical device participating in the Type A overlay. Its overlay key
/// changes on every move; the `BodyId` is stable (it is "the laptop").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BodyId(pub u32);

#[derive(Debug, Clone, Copy)]
struct Body {
    host: HostId,
    current_key: Key,
    mobile: bool,
}

/// A Type A HS-P2P deployment.
pub struct TypeASystem {
    /// The single overlay; all state-pairs point at "current" addresses
    /// that silently die when a node moves.
    pub dht: RingDht<Vec<u8>>,
    /// Host attachments.
    pub attachments: AttachmentMap,
    /// Message accounting.
    pub meter: Meter,
    dcache: Arc<DistanceCache>,
    stub_routers: Vec<RouterId>,
    rng: Pcg64,
    bodies: Vec<Body>,
    replicas: usize,
}

impl TypeASystem {
    /// Builds a Type A system with the given populations.
    pub fn build(
        seed: u64,
        n_stationary: usize,
        n_mobile: usize,
        topology: &TransitStubConfig,
        replicas: usize,
    ) -> Self {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut topo_rng = rng.split(1);
        let topo = TransitStubTopology::generate(topology, &mut topo_rng);
        let stub_routers = topo.stub_routers().to_vec();
        let dcache = Arc::new(DistanceCache::new(Arc::new(topo.into_graph()), 4096));
        let mut sys = TypeASystem {
            dht: RingDht::new(RingConfig::tornado()),
            attachments: AttachmentMap::new(),
            meter: Meter::new(),
            dcache,
            stub_routers,
            rng,
            bodies: Vec::new(),
            replicas: replicas.max(1),
        };
        for i in 0..n_stationary + n_mobile {
            let router = *sys.rng.choose(&sys.stub_routers);
            let host = sys.attachments.attach_new(router);
            let key = sys.fresh_key();
            sys.dht.insert(key, host, 1).expect("fresh key");
            sys.bodies.push(Body { host, current_key: key, mobile: i >= n_stationary });
        }
        let mut wire_rng = sys.rng.split(2);
        sys.dht.build_all_tables(&sys.attachments, &sys.dcache, &mut wire_rng);
        sys
    }

    fn fresh_key(&mut self) -> Key {
        loop {
            let k = Key::random(&mut self.rng);
            if !self.dht.contains(k) {
                return k;
            }
        }
    }

    /// Number of logical devices.
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// Whether the system has no devices.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }

    /// Ids of the mobile devices.
    pub fn mobile_bodies(&self) -> Vec<BodyId> {
        self.bodies
            .iter()
            .enumerate()
            .filter(|(_, b)| b.mobile)
            .map(|(i, _)| BodyId(i as u32))
            .collect()
    }

    /// Ids of the stationary devices.
    pub fn stationary_bodies(&self) -> Vec<BodyId> {
        self.bodies
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.mobile)
            .map(|(i, _)| BodyId(i as u32))
            .collect()
    }

    /// The device's *current* overlay key — correspondents holding an old
    /// one are simply out of luck.
    pub fn current_key(&self, body: BodyId) -> Key {
        self.bodies[body.0 as usize].current_key
    }

    /// The shortest-path distance oracle.
    pub fn distances(&self) -> &DistanceCache {
        &self.dcache
    }

    /// Moves a device: it leaves (losing its stored records and its
    /// identity) and rejoins under a fresh key at the new attachment.
    /// Returns `(old key, new key, join messages)`.
    pub fn move_body(&mut self, body: BodyId) -> Result<(Key, Key, u64), RingError> {
        let b = self.bodies[body.0 as usize];
        assert!(b.mobile, "stationary bodies do not move");
        let old_key = b.current_key;
        // Leave: abrupt from the overlay's perspective — the node's new
        // incarnation does not answer for the old key.
        self.dht.fail_node(old_key)?;
        let mut move_rng = self.rng.split(3);
        self.attachments.move_host_random(b.host, &self.stub_routers, &mut move_rng);
        // Rejoin as a brand-new peer.
        let new_key = self.fresh_key();
        self.dht.insert(new_key, b.host, 1)?;
        let mut wire_rng = self.rng.split(4);
        let entries =
            self.dht.rebuild_node(new_key, &self.attachments, &self.dcache, &mut wire_rng)?;
        // Join cost: the paper's 2·O(log N) — one exchange per table row.
        let join_msgs = 2 * entries as u64;
        self.meter.bump(MessageKind::Join, join_msgs);
        self.bodies[body.0 as usize].current_key = new_key;
        Ok((old_key, new_key, join_msgs))
    }

    /// Publishes a record from `src_body` under `data_key`.
    pub fn publish(
        &mut self,
        src_body: BodyId,
        data_key: Key,
        value: Vec<u8>,
    ) -> Result<(), RingError> {
        let src = self.current_key(src_body);
        self.dht.publish(
            src,
            data_key,
            value,
            self.replicas,
            &self.attachments,
            &self.dcache,
            &mut self.meter,
        )?;
        Ok(())
    }

    /// Looks a record up from `src_body`. Returns `(found, hops)`.
    pub fn lookup(&mut self, src_body: BodyId, data_key: Key) -> Result<(bool, usize), RingError> {
        let src = self.current_key(src_body);
        let out = self.dht.lookup(
            src,
            data_key,
            self.replicas,
            &self.attachments,
            &self.dcache,
            &mut self.meter,
        )?;
        Ok((out.value.is_some(), out.hops))
    }

    /// One periodic maintenance round: refresh all tables and re-replicate
    /// records to their current owners.
    pub fn refresh(&mut self) -> Result<usize, RingError> {
        let mut rng = self.rng.split(5);
        self.dht.refresh_cycle(&self.attachments, &self.dcache, &mut rng, &mut self.meter);
        self.dht.rebalance_replicas(self.replicas, &self.attachments, &self.dcache, &mut self.meter)
    }

    /// Average routing-state rows per node (Table 1 scalability metric).
    pub fn avg_state_per_node(&self) -> f64 {
        self.dht.total_state() as f64 / self.dht.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(seed: u64) -> TypeASystem {
        TypeASystem::build(seed, 30, 15, &TransitStubConfig::tiny(), 2)
    }

    #[test]
    fn build_populates_overlay() {
        let sys = system(1);
        assert_eq!(sys.len(), 45);
        assert_eq!(sys.dht.len(), 45);
        assert_eq!(sys.mobile_bodies().len(), 15);
        assert_eq!(sys.stationary_bodies().len(), 30);
    }

    #[test]
    fn move_changes_identity() {
        let mut sys = system(2);
        let body = sys.mobile_bodies()[0];
        let before = sys.current_key(body);
        let (old, new, msgs) = sys.move_body(body).unwrap();
        assert_eq!(old, before);
        assert_ne!(new, old, "Type A cannot keep its key");
        assert!(!sys.dht.contains(old));
        assert!(sys.dht.contains(new));
        assert!(msgs > 0);
    }

    #[test]
    fn correspondent_loses_session_after_move() {
        // The end-to-end-semantics failure: a correspondent that captured
        // the peer's key before a move can no longer reach *that peer* —
        // the key now resolves to a different owner (or nothing of the
        // peer's).
        let mut sys = system(3);
        let body = sys.mobile_bodies()[0];
        let old_key = sys.current_key(body);
        sys.move_body(body).unwrap();
        assert!(!sys.dht.contains(old_key), "the captured identity is dead");
    }

    #[test]
    fn movers_records_become_unavailable() {
        let mut sys = system(4);
        let body = sys.mobile_bodies()[0];
        let reader = sys.stationary_bodies()[0];
        // Find a data key whose full replica set lives on the mover.
        let mover_key = sys.current_key(body);
        let data_key = Key(mover_key.0.wrapping_sub(1)); // owned by the mover
                                                         // Force single-replica to isolate the effect.
        sys.replicas = 1;
        sys.publish(reader, data_key, vec![1]).unwrap();
        let (found, _) = sys.lookup(reader, data_key).unwrap();
        assert!(found);
        sys.move_body(body).unwrap();
        let (found_after, _) = sys.lookup(reader, data_key).unwrap();
        assert!(!found_after, "records die with the old identity");
    }

    #[test]
    fn refresh_heals_routing_damage() {
        let mut sys = system(5);
        for body in sys.mobile_bodies() {
            sys.move_body(body).unwrap();
        }
        assert!(!sys.dht.health().is_healthy(), "moves leave dangling state");
        sys.refresh().unwrap();
        assert!(sys.dht.health().is_healthy());
    }

    #[test]
    fn state_per_node_is_logarithmic() {
        let sys = system(6);
        let avg = sys.avg_state_per_node();
        assert!(avg > 4.0 && avg < 64.0, "{avg}");
    }
}
