//! Full dynamic scenarios: movement + churn + lookups + periodic upkeep
//! on one virtual timeline.
//!
//! This is the harness behind the `dynamics` binary and the longevity
//! integration tests: it drives a [`BristleSystem`] through the
//! discrete-event engine for a configurable horizon, with Poisson
//! movement per mobile node, Poisson churn over the population, a
//! steady lookup workload, and upkeep rounds on a fixed period — then
//! reports per-interval health (delivery rate, discovery rate, traffic)
//! so degradation or recovery over time is visible.

use bristle_core::naming::Mobility;
use bristle_core::system::BristleSystem;
use bristle_core::time::SimTime;

use crate::churn::{ChurnAction, ChurnModel};
use crate::engine::{run as run_events, EventQueue};
use crate::mobility::MobilityModel;
use crate::report::{f2, pct, Table};

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Virtual-time horizon.
    pub horizon: u64,
    /// Movement process per mobile node.
    pub mobility: MobilityModel,
    /// Churn process over the whole population.
    pub churn: ChurnModel,
    /// Mean ticks between lookups.
    pub lookup_interval: u64,
    /// Upkeep period (0 disables upkeep).
    pub upkeep_period: u64,
    /// Number of reporting intervals.
    pub intervals: usize,
}

impl ScenarioConfig {
    /// A balanced default: moderate movement, light churn, periodic
    /// upkeep at half the lease TTL.
    pub fn standard(horizon: u64) -> Self {
        ScenarioConfig {
            horizon,
            mobility: MobilityModel::new(horizon / 10),
            churn: ChurnModel::balanced(horizon / 20),
            lookup_interval: (horizon / 200).max(1),
            upkeep_period: 150,
            intervals: 10,
        }
    }
}

/// Metrics for one reporting interval.
#[derive(Debug, Clone, Default)]
pub struct IntervalStats {
    /// Interval end time.
    pub until: SimTime,
    /// Lookups attempted.
    pub lookups: usize,
    /// Lookups that found their record.
    pub delivered: usize,
    /// `_discovery` operations across the interval's lookups.
    pub discoveries: usize,
    /// Moves executed.
    pub moves: usize,
    /// Churn events executed.
    pub churn_events: usize,
    /// Protocol messages sent during the interval.
    pub messages: u64,
}

impl IntervalStats {
    /// Delivery rate within the interval (1.0 when no lookups ran).
    pub fn delivery_rate(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.delivered as f64 / self.lookups as f64
        }
    }
}

/// The completed scenario timeline.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Per-interval health metrics.
    pub intervals: Vec<IntervalStats>,
    /// Final population (stationary, mobile).
    pub final_population: (usize, usize),
    /// Total events processed.
    pub events: u64,
}

impl ScenarioOutcome {
    /// Overall delivery rate across the whole run.
    pub fn overall_delivery(&self) -> f64 {
        let (ok, total) = self
            .intervals
            .iter()
            .fold((0usize, 0usize), |(ok, t), iv| (ok + iv.delivered, t + iv.lookups));
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    }
}

enum Ev {
    Move(u64),
    Churn,
    Lookup(u64),
    Upkeep,
}

/// Runs the scenario against an already-built system.
pub fn run(sys: &mut BristleSystem, cfg: &ScenarioConfig) -> ScenarioOutcome {
    assert!(cfg.intervals >= 1 && cfg.horizon >= cfg.intervals as u64);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    {
        let mobility = cfg.mobility;
        let rng = sys.rng();
        // One movement process per initially-mobile slot; each event
        // re-schedules itself, so the process outlives churn of specific
        // nodes (the slot picks a live mobile node at fire time).
        let initial_mobile = 8u64;
        for slot in 0..initial_mobile {
            queue.schedule_at(SimTime(mobility.next_delay(rng)), Ev::Move(slot));
        }
        if cfg.churn.is_active() {
            queue.schedule_at(SimTime(cfg.churn.next_delay(rng)), Ev::Churn);
        }
        queue.schedule_at(SimTime(1), Ev::Lookup(0));
        if cfg.upkeep_period > 0 {
            queue.schedule_at(SimTime(cfg.upkeep_period), Ev::Upkeep);
        }
    }

    let interval_len = cfg.horizon / cfg.intervals as u64;
    let mut intervals: Vec<IntervalStats> = (1..=cfg.intervals)
        .map(|i| IntervalStats { until: SimTime(interval_len * i as u64), ..Default::default() })
        .collect();
    let mut msgs_at_interval_start = sys.meter.total_messages();
    let mut current_interval = 0usize;
    let mobility = cfg.mobility;
    let churn = cfg.churn;
    let lookup_interval = cfg.lookup_interval;
    let upkeep_period = cfg.upkeep_period;
    let horizon = SimTime(cfg.horizon);

    let events = run_events(&mut queue, horizon, 2_000_000, |q, t, ev| {
        // Advance system time and interval bookkeeping.
        if sys.clock.now() < t {
            let dt = t.since(sys.clock.now());
            sys.tick(dt);
        }
        while current_interval + 1 < intervals.len() && t > intervals[current_interval].until {
            intervals[current_interval].messages =
                sys.meter.total_messages() - msgs_at_interval_start;
            msgs_at_interval_start = sys.meter.total_messages();
            current_interval += 1;
        }
        let iv = &mut intervals[current_interval];
        match ev {
            Ev::Move(slot) => {
                let mobiles = sys.mobile_keys();
                if !mobiles.is_empty() {
                    let m = mobiles[slot as usize % mobiles.len()];
                    sys.move_node(m, None).expect("move");
                    iv.moves += 1;
                }
                let delay = mobility.next_delay(sys.rng());
                q.schedule_in(delay, Ev::Move(slot));
            }
            Ev::Churn => {
                let action = churn.next_action(sys.rng());
                match action {
                    ChurnAction::Join => {
                        let mobility_class = if sys.rng().chance(0.5) {
                            Mobility::Mobile
                        } else {
                            Mobility::Stationary
                        };
                        sys.join_node(mobility_class).expect("join");
                    }
                    ChurnAction::Leave => {
                        let mobiles = sys.mobile_keys().to_vec();
                        if mobiles.len() > 2 {
                            let idx = sys.rng().index(mobiles.len());
                            sys.leave_node(mobiles[idx]).expect("leave");
                        }
                    }
                    ChurnAction::Fail => {
                        // Fail a stationary node (the harsher case: it may
                        // hold location records).
                        let stationaries = sys.stationary_keys().to_vec();
                        if stationaries.len() > 4 {
                            let idx = sys.rng().index(stationaries.len());
                            sys.fail_node(stationaries[idx]).expect("fail");
                        }
                    }
                }
                iv.churn_events += 1;
                let delay = churn.next_delay(sys.rng());
                q.schedule_in(delay, Ev::Churn);
            }
            Ev::Lookup(n) => {
                let stationaries = sys.stationary_keys().to_vec();
                let mobiles = sys.mobile_keys().to_vec();
                if !stationaries.is_empty() && !mobiles.is_empty() {
                    let src = stationaries[n as usize % stationaries.len()];
                    let dst = mobiles[(n as usize * 3) % mobiles.len()];
                    let rep = sys.route_mobile(src, dst).expect("route");
                    iv.lookups += 1;
                    iv.discoveries += rep.discoveries;
                    if rep.terminus == dst {
                        iv.delivered += 1;
                    }
                }
                q.schedule_in(lookup_interval, Ev::Lookup(n + 1));
            }
            Ev::Upkeep => {
                sys.run_upkeep().expect("upkeep");
                q.schedule_in(upkeep_period, Ev::Upkeep);
            }
        }
    });
    intervals[current_interval].messages += sys.meter.total_messages() - msgs_at_interval_start;

    ScenarioOutcome {
        intervals,
        final_population: (sys.stationary_keys().len(), sys.mobile_keys().len()),
        events,
    }
}

/// Renders the timeline.
pub fn to_table(outcome: &ScenarioOutcome) -> Table {
    let mut t = Table::new(
        "Dynamic scenario timeline",
        &["until", "lookups", "delivery", "disc/lookup", "moves", "churn", "messages"],
    );
    for iv in &outcome.intervals {
        let disc = if iv.lookups == 0 { 0.0 } else { iv.discoveries as f64 / iv.lookups as f64 };
        t.row(vec![
            iv.until.to_string(),
            iv.lookups.to_string(),
            pct(iv.delivery_rate()),
            f2(disc),
            iv.moves.to_string(),
            iv.churn_events.to_string(),
            iv.messages.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_core::system::BristleBuilder;
    use bristle_netsim::transit_stub::TransitStubConfig;

    fn system(seed: u64) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(50)
            .mobile_nodes(20)
            .topology(TransitStubConfig::tiny())
            .build()
            .unwrap()
    }

    fn quick_cfg() -> ScenarioConfig {
        ScenarioConfig {
            horizon: 1_000,
            mobility: MobilityModel::new(120),
            churn: ChurnModel::balanced(150),
            lookup_interval: 10,
            upkeep_period: 200,
            intervals: 5,
        }
    }

    #[test]
    fn scenario_delivers_through_movement_and_churn() {
        let mut sys = system(1);
        let outcome = run(&mut sys, &quick_cfg());
        assert!(outcome.events > 50, "scenario must actually run ({} events)", outcome.events);
        assert!(outcome.overall_delivery() > 0.95, "delivery {}", outcome.overall_delivery());
        let total_moves: usize = outcome.intervals.iter().map(|i| i.moves).sum();
        assert!(total_moves > 0);
        let total_churn: usize = outcome.intervals.iter().map(|i| i.churn_events).sum();
        assert!(total_churn > 0);
    }

    #[test]
    fn no_upkeep_still_delivers_via_late_discovery() {
        let mut sys = system(2);
        let cfg = ScenarioConfig { upkeep_period: 0, ..quick_cfg() };
        let outcome = run(&mut sys, &cfg);
        assert!(outcome.overall_delivery() > 0.9, "delivery {}", outcome.overall_delivery());
    }

    #[test]
    fn timeline_has_requested_intervals_and_table_renders() {
        let mut sys = system(3);
        let cfg = quick_cfg();
        let outcome = run(&mut sys, &cfg);
        assert_eq!(outcome.intervals.len(), cfg.intervals);
        assert_eq!(to_table(&outcome).len(), cfg.intervals);
    }

    #[test]
    fn population_changes_under_churn() {
        let mut sys = system(4);
        let before = (sys.stationary_keys().len(), sys.mobile_keys().len());
        let cfg = ScenarioConfig { churn: ChurnModel::balanced(40), ..quick_cfg() };
        let outcome = run(&mut sys, &cfg);
        assert_ne!(outcome.final_population, before, "churn must change the population");
    }

    #[test]
    fn deterministic_outcome() {
        let run_once = || {
            let mut sys = system(5);
            let o = run(&mut sys, &quick_cfg());
            (o.events, o.overall_delivery().to_bits(), o.final_population)
        };
        assert_eq!(run_once(), run_once());
    }
}
