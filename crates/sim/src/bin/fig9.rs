//! Regenerates the paper's **Figure 9** (LDT cost with/without network
//! locality). `--paper` for full scale.
use bristle_sim::experiments::{fig9, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let cfg = match scale {
        Scale::Quick => fig9::Fig9Config::quick(),
        Scale::Paper => fig9::Fig9Config::paper(),
    };
    eprintln!(
        "fig9: up to {} nodes on {:?}-router topology",
        cfg.max_nodes,
        cfg.topology.total_routers()
    );
    let result = fig9::run(&cfg);
    fig9::to_table(&result).print();
}
