//! Scale sweep: route hops, LDT depth, state size, and engine-queue
//! throughput as N grows by decades.
//!
//! Flags: `--smoke` (N = 1e3 only), `--stretch` (adds N = 1e6),
//! `--workers <k>` (wiring/sampling threads; never changes results),
//! `--json <path>` (machine-readable `bristle-run-report/v1`).
//!
//! The JSON report carries only deterministic quantities — identical
//! bytes at any worker count. Wall-clock and events/sec go to stdout.

use bristle_sim::cli::SweepArgs;
use bristle_sim::report::{f2, f3, Table};
use bristle_sim::runreport::{Json, RunReport};
use bristle_sim::scale::{growth_fits, queue_bench, run_cell, to_table, ScaleCell, ScaleConfig};

fn main() {
    let args = SweepArgs::parse();
    let json_path = args.json;
    let workers = args
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));

    let seed = args.seed;
    let mut cfg = if args.smoke {
        ScaleConfig::smoke(seed, workers)
    } else {
        ScaleConfig::standard(seed, workers)
    };
    if args.stretch {
        cfg = cfg.with_stretch();
    }
    eprintln!(
        "scale: N = {:?}, {} route samples, {} LDT samples, {} workers, seed {}",
        cfg.populations, cfg.route_samples, cfg.ldt_samples, cfg.workers, seed
    );

    let mut report = RunReport::new("scale", seed);
    let mut cells: Vec<ScaleCell> = Vec::new();
    let mut timing =
        Table::new("Wall-clock (informational, not committed)", &["N", "build s", "routes/s"]);
    for &n in &cfg.populations {
        let (cell, t) = run_cell(&cfg, n);
        timing.row(vec![n.to_string(), f2(t.build_secs), f2(t.routes_per_sec)]);
        report.push_cell(
            Json::obj([
                ("n", Json::U64(cell.n as u64)),
                ("stationary", Json::U64(cell.stationary as u64)),
                ("mobile", Json::U64(cell.mobile as u64)),
                ("route_samples", Json::U64(cell.route_samples as u64)),
                ("ldt_samples", Json::U64(cell.ldt_samples as u64)),
            ]),
            &[],
            &[],
            Json::obj([
                ("hops_mean", Json::F64(cell.hops_mean())),
                ("hops_max", Json::U64(cell.hops_max as u64)),
                ("ldt_depth_mean", Json::F64(cell.depth_mean())),
                ("ldt_size_mean", Json::F64(cell.size_mean())),
                ("table_rows", Json::U64(cell.table_rows)),
                ("rows_per_node", Json::F64(cell.rows_per_node())),
            ]),
        );
        cells.push(cell);
    }

    to_table(&cells).print();
    timing.print();

    let (hop_fit, depth_fit) = growth_fits(&cells);
    println!(
        "fit: hops ≈ {}·log2 N + {} (R² {}) — consistent with O(log N) iff slope small & stable",
        f3(hop_fit.slope),
        f3(hop_fit.intercept),
        f3(hop_fit.r2)
    );
    println!(
        "fit: LDT depth ≈ {}·log2 log2 N + {} (R² {})",
        f3(depth_fit.slope),
        f3(depth_fit.intercept),
        f3(depth_fit.r2)
    );
    report.push_cell(
        Json::obj([("cell", Json::Str("growth_fits".into()))]),
        &[],
        &[],
        Json::obj([
            ("hops_vs_log2n_slope", Json::F64(hop_fit.slope)),
            ("hops_vs_log2n_intercept", Json::F64(hop_fit.intercept)),
            ("hops_vs_log2n_r2", Json::F64(hop_fit.r2)),
            ("depth_vs_loglog2n_slope", Json::F64(depth_fit.slope)),
            ("depth_vs_loglog2n_intercept", Json::F64(depth_fit.intercept)),
            ("depth_vs_loglog2n_r2", Json::F64(depth_fit.r2)),
        ]),
    );

    // Engine-queue throughput (hold model) at steady size 1e4 — the
    // calendar queue must beat the binary heap by ≥ 5×. Stdout only:
    // wall-clock numbers never enter the committed report.
    let b = queue_bench(10_000, 400_000, seed);
    println!(
        "queue hold-model @ N=10000: bucket {} ev/s, heap {} ev/s, speedup {}x ({})",
        f2(b.bucket_events_per_sec),
        f2(b.heap_events_per_sec),
        f2(b.speedup()),
        if b.speedup() >= 5.0 { "SPEEDUP_OK >=5x" } else { "below 5x target" }
    );

    if let Some(path) = json_path {
        report.write_to(&path).expect("run report written");
        eprintln!("run report: {}", path.display());
    }
}
