//! Regenerates the paper's **Table 1** (Type A / Type B / Bristle,
//! measured). `--paper` for full scale.
use bristle_sim::experiments::{table1, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let cfg = match scale {
        Scale::Quick => table1::Table1Config::quick(),
        Scale::Paper => table1::Table1Config::paper(),
    };
    eprintln!(
        "table1: {}+{} nodes, {} moves, {} lookups",
        cfg.n_stationary, cfg.n_mobile, cfg.moves, cfg.lookups
    );
    let result = table1::run(&cfg);
    table1::to_table(&result).print();
}
