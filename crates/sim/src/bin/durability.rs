//! Durability sweep: crash-restart of the busiest record primary,
//! recovered by WAL replay vs full republication, as the crash point
//! (WAL history) and snapshot interval vary. `--paper` for a larger
//! population; `--json <path>` also writes a machine-readable run
//! report.
use bristle_sim::cli::SweepArgs;
use bristle_sim::durability::{run_durability, DurabilityConfig, RestartMode};
use bristle_sim::experiments::Scale;
use bristle_sim::report::{pct, Table};
use bristle_sim::runreport::{Json, RunReport};

fn main() {
    let args = SweepArgs::parse();
    let (stationary, mobile, crash_points) = match args.scale {
        Scale::Quick => (40usize, 16usize, [6usize, 12, 24]),
        Scale::Paper => (90, 40, [10, 20, 40]),
    };
    eprintln!("durability: {stationary}+{mobile} nodes per cell");
    let mut report = RunReport::new("durability", args.seed);

    let mut table = Table::new(
        "Crash-restart durability — WAL replay vs republication, by crash point × snapshot interval",
        &[
            "mode",
            "crash pt",
            "snap every",
            "shard",
            "recovered",
            "skipped",
            "AE fixes",
            "Replicates",
            "recov msgs",
            "converged",
            "deliv pre→post",
        ],
    );
    let mut all_converged = true;
    let mut replay_always_wins = true;
    for crash_point in crash_points {
        // One republication baseline per crash point, then the WAL
        // restart at a never/tight snapshot interval — same seed, same
        // victim, same downtime, only the recovery path differs.
        let cells: Vec<(RestartMode, u64)> = vec![
            (RestartMode::Republish, 0),
            (RestartMode::WalReplay, 0),
            (RestartMode::WalReplay, 8),
        ];
        let mut baseline_replicates = None;
        for (mode, snapshot_every) in cells {
            let mut cfg = DurabilityConfig::standard(args.seed, mode);
            cfg.stationary = stationary;
            cfg.mobile = mobile;
            cfg.crash_point = crash_point;
            cfg.snapshot_every = snapshot_every;
            let out = run_durability(&cfg);
            all_converged &= out.converged;
            match mode {
                RestartMode::Republish => baseline_replicates = Some(out.recovery_replicates),
                RestartMode::WalReplay => {
                    replay_always_wins &=
                        baseline_replicates.is_some_and(|base| out.recovery_replicates < base);
                }
            }
            report.push_cell(
                Json::obj([
                    ("mode", Json::Str(mode.name().into())),
                    ("crash_point", Json::U64(crash_point as u64)),
                    ("snapshot_every", Json::U64(snapshot_every)),
                    ("stationary", Json::U64(stationary as u64)),
                    ("mobile", Json::U64(mobile as u64)),
                    ("loss", Json::F64(cfg.loss)),
                ]),
                &out.tallies,
                &out.latencies,
                Json::obj([
                    ("victim_shard", Json::U64(out.victim_shard as u64)),
                    ("records_recovered", Json::U64(out.records_recovered as u64)),
                    ("records_skipped", Json::U64(out.records_skipped as u64)),
                    ("registrations_restored", Json::U64(out.registrations_restored as u64)),
                    ("leases_restored", Json::U64(out.leases_restored as u64)),
                    ("wal_snapshot_records", Json::U64(out.wal_snapshot_records)),
                    ("wal_log_records", Json::U64(out.wal_log_records)),
                    ("anti_entropy_fixes", Json::U64(out.anti_entropy_fixes as u64)),
                    ("recovery_replicates", Json::U64(out.recovery_replicates)),
                    ("recovery_messages", Json::U64(out.recovery_messages)),
                    ("detection_rounds_used", Json::U64(out.detection_rounds_used as u64)),
                    ("converged", Json::Bool(out.converged)),
                    ("pre_rate", Json::F64(out.pre_rate())),
                    ("post_rate", Json::F64(out.post_rate())),
                ]),
            );
            table.row(vec![
                mode.name().to_string(),
                crash_point.to_string(),
                if mode == RestartMode::Republish {
                    "—".into()
                } else {
                    snapshot_every.to_string()
                },
                out.victim_shard.to_string(),
                out.records_recovered.to_string(),
                out.records_skipped.to_string(),
                out.anti_entropy_fixes.to_string(),
                out.recovery_replicates.to_string(),
                out.recovery_messages.to_string(),
                out.converged.to_string(),
                format!("{}→{}", pct(out.pre_rate()), pct(out.post_rate())),
            ]);
        }
    }
    table.print();
    println!(
        "anti-entropy converges after every recovery: {}",
        if all_converged { "ok in all cells" } else { "VIOLATED" }
    );
    println!(
        "WAL replay strictly beats republication on Replicate traffic: {}",
        if replay_always_wins { "ok in all cells" } else { "VIOLATED" }
    );
    if let Some(path) = args.json {
        report.write_to(&path).expect("run report written");
        eprintln!("run report: {}", path.display());
    }
}
