//! Regenerates the paper's **Figure 8** (LDT adaptation and node
//! heterogeneity). `--paper` for full scale.
use bristle_sim::experiments::{fig8, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let cfg = match scale {
        Scale::Quick => fig8::Fig8Config::quick(),
        Scale::Paper => fig8::Fig8Config::paper(),
    };
    eprintln!("fig8: {} nodes, MAX capacities {:?}", cfg.n_nodes, cfg.max_capacities);
    let result = fig8::run(&cfg);
    fig8::to_table_levels(&result).print();
    println!();
    fig8::to_table_detail(&result).print();
}
