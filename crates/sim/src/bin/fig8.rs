//! Regenerates the paper's **Figure 8** (LDT adaptation and node
//! heterogeneity). `--paper` for full scale; `--json <path>` also writes
//! a machine-readable run report.
use bristle_sim::experiments::{fig8, Scale};
use bristle_sim::runreport::{json_arg, Json, RunReport};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let json_path = json_arg(std::env::args().skip(1));
    let cfg = match scale {
        Scale::Quick => fig8::Fig8Config::quick(),
        Scale::Paper => fig8::Fig8Config::paper(),
    };
    eprintln!("fig8: {} nodes, MAX capacities {:?}", cfg.n_nodes, cfg.max_capacities);
    let result = fig8::run(&cfg);
    fig8::to_table_levels(&result).print();
    println!();
    fig8::to_table_detail(&result).print();
    if let Some(path) = json_path {
        // Figure 8 is a function-call experiment: no message-passing
        // driver, so cells carry distribution rows only.
        let mut report = RunReport::new("fig8", cfg.seed);
        for dist in &result.distributions {
            report.push_cell(
                Json::obj([
                    ("study", Json::Str("levels".into())),
                    ("n_nodes", Json::U64(cfg.n_nodes as u64)),
                    ("max_capacity", Json::U64(dist.max_capacity as u64)),
                ]),
                &[],
                &[],
                Json::obj([
                    (
                        "fractions",
                        Json::Arr(dist.fractions.iter().map(|&f| Json::F64(f)).collect()),
                    ),
                    ("mean_depth", Json::F64(dist.mean_depth)),
                    ("max_depth", Json::U64(dist.max_depth as u64)),
                ]),
            );
        }
        for (i, tree) in result.detail.iter().enumerate() {
            report.push_cell(
                Json::obj([("study", Json::Str("detail".into())), ("tree", Json::U64(i as u64))]),
                &[],
                &[],
                Json::Obj(vec![(
                    "members".to_string(),
                    Json::Arr(
                        tree.iter()
                            .map(|m| {
                                Json::obj([
                                    ("capacity", Json::U64(m.capacity as u64)),
                                    ("assigned", Json::U64(m.assigned as u64)),
                                ])
                            })
                            .collect(),
                    ),
                )]),
            );
        }
        report.write_to(&path).expect("run report written");
        eprintln!("run report: {}", path.display());
    }
}
