//! Adversarial sweep: the four scripted attack families run against
//! every verification policy (off / log-only / enforce). Each cell's
//! pre-volley delivery measurement doubles as that policy's no-attack
//! baseline. Headline claims: enforcement drives every family's
//! success rate to zero, and costs honest traffic nothing. `--paper`
//! for a larger population; `--json <path>` also writes a
//! machine-readable run report.
use bristle_core::auth::VerifyPolicy;
use bristle_sim::adversary::{run_attack, AttackConfig, ALL_FAMILIES};
use bristle_sim::cli::SweepArgs;
use bristle_sim::experiments::Scale;
use bristle_sim::report::{pct, Table};
use bristle_sim::runreport::{Json, RunReport};

const POLICIES: [VerifyPolicy; 3] =
    [VerifyPolicy::Off, VerifyPolicy::LogOnly, VerifyPolicy::Enforce];

fn main() {
    let args = SweepArgs::parse();
    let (stationary, mobile) = match args.scale {
        Scale::Quick => (40usize, 16usize),
        Scale::Paper => (90, 40),
    };
    eprintln!("attacks: {stationary}+{mobile} nodes per cell");
    let mut report = RunReport::new("attacks", args.seed);

    let mut table = Table::new(
        "Adversarial overlay — attack success and honest delivery, by family × verify policy",
        &[
            "family",
            "policy",
            "attempts",
            "successes",
            "success rate",
            "forged metered",
            "dropped",
            "deliv pre→post",
        ],
    );
    let mut enforce_stops_everything = true;
    let mut off_never_stops = true;
    let mut enforce_costs_nothing = true;
    for family in ALL_FAMILIES {
        let mut off_pre_delivered = None;
        for policy in POLICIES {
            let mut cfg = AttackConfig::standard(args.seed, family, policy);
            cfg.stationary = stationary;
            cfg.mobile = mobile;
            let out = run_attack(&cfg);
            match policy {
                VerifyPolicy::Off => {
                    off_never_stops &= out.successes > 0;
                    off_pre_delivered = Some(out.honest_pre_delivered);
                }
                VerifyPolicy::LogOnly => {}
                VerifyPolicy::Enforce => {
                    enforce_stops_everything &= out.successes == 0;
                    enforce_costs_nothing &=
                        off_pre_delivered.is_some_and(|base| out.honest_pre_delivered == base);
                }
            }
            report.push_cell(
                Json::obj([
                    ("family", Json::Str(family.name().into())),
                    ("policy", Json::Str(policy.name().into())),
                    ("stationary", Json::U64(stationary as u64)),
                    ("mobile", Json::U64(mobile as u64)),
                ]),
                &out.tallies,
                &out.latencies,
                Json::obj([
                    ("attempts", Json::U64(out.attempts)),
                    ("successes", Json::U64(out.successes)),
                    ("success_rate", Json::F64(out.success_rate())),
                    ("forged_frames", Json::U64(out.forged_frames)),
                    ("auth_rejects", Json::U64(out.auth_rejects)),
                    ("pre_rate", Json::F64(out.pre_rate())),
                    ("post_rate", Json::F64(out.post_rate())),
                ]),
            );
            table.row(vec![
                family.name().to_string(),
                policy.name().to_string(),
                out.attempts.to_string(),
                out.successes.to_string(),
                pct(out.success_rate()),
                out.forged_frames.to_string(),
                out.auth_rejects.to_string(),
                format!("{}→{}", pct(out.pre_rate()), pct(out.post_rate())),
            ]);
        }
    }
    table.print();
    println!(
        "enforcement stops every attack family cold: {}",
        if enforce_stops_everything { "ok in all cells" } else { "VIOLATED" }
    );
    println!(
        "with verification off every family lands: {}",
        if off_never_stops { "ok in all cells" } else { "VIOLATED" }
    );
    println!(
        "enforcement costs honest pre-attack delivery nothing: {}",
        if enforce_costs_nothing { "ok in all cells" } else { "VIOLATED" }
    );
    if let Some(path) = args.json {
        report.write_to(&path).expect("run report written");
        eprintln!("run report: {}", path.display());
    }
}
