//! Regenerates the paper's **Figure 7** (state discovery: hops and RDP,
//! scrambled vs clustered naming). `--paper` for full scale.
use bristle_sim::experiments::{fig7, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let cfg = match scale {
        Scale::Quick => fig7::Fig7Config::quick(),
        Scale::Paper => fig7::Fig7Config::paper(),
    };
    eprintln!("fig7: {} stationary nodes, {} routes/point", cfg.n_stationary, cfg.routes);
    let result = fig7::run(&cfg);
    fig7::to_table_hops(&result).print();
    println!();
    fig7::to_table_rdp(&result).print();
}
