//! Partition-tolerance sweep: wrongful deaths, refutation/rejoin
//! traffic, recovery latency and post-heal delivery as the partition
//! duration and transport loss rate vary. `--paper` for a larger
//! population.
use bristle_sim::cli::SweepArgs;
use bristle_sim::experiments::Scale;
use bristle_sim::partition::{run_partition, PartitionConfig};
use bristle_sim::report::{pct, Table};
use bristle_sim::runreport::{Json, RunReport};

fn main() {
    let args = SweepArgs::parse();
    let (stationary, mobile) = match args.scale {
        Scale::Quick => (36, 14),
        Scale::Paper => (90, 40),
    };
    eprintln!("partition: {stationary}+{mobile} nodes per cell");
    let mut report = RunReport::new("partition", args.seed);

    let mut table = Table::new(
        "Partition tolerance — wrongful death and recovery vs cut duration × loss",
        &[
            "cut rds",
            "loss",
            "far side",
            "wrongful",
            "rejoined",
            "refutes",
            "rejoin msgs",
            "recov rds",
            "reconciled",
            "deliv pre→post",
        ],
    );
    let mut all_recovered = true;
    let mut all_reconciled = true;
    for partition_rounds in [2usize, 4, 6] {
        for loss in [0.0f64, 0.05, 0.10] {
            let mut cfg = PartitionConfig::standard(args.seed);
            cfg.stationary = stationary;
            cfg.mobile = mobile;
            cfg.loss = loss;
            cfg.partition_rounds = partition_rounds;
            let out = run_partition(&cfg);
            all_recovered &= out.rejoined == out.wrongful_deaths && out.delivery_recovered(0.01);
            all_reconciled &= out.reconciled;
            report.push_cell(
                Json::obj([
                    ("partition_rounds", Json::U64(partition_rounds as u64)),
                    ("loss", Json::F64(loss)),
                    ("stationary", Json::U64(stationary as u64)),
                    ("mobile", Json::U64(mobile as u64)),
                ]),
                &out.tallies,
                &out.latencies,
                Json::obj([
                    ("far_side", Json::U64(out.far_side as u64)),
                    ("wrongful_deaths", Json::U64(out.wrongful_deaths as u64)),
                    ("rejoined", Json::U64(out.rejoined as u64)),
                    ("recovery_rounds_used", Json::U64(out.recovery_rounds_used as u64)),
                    ("max_rejoin_latency", Json::U64(out.max_rejoin_latency)),
                    ("refutations", Json::U64(out.refutations)),
                    ("rejoin_messages", Json::U64(out.rejoin_messages)),
                    ("pre_rate", Json::F64(out.pre_rate())),
                    ("post_rate", Json::F64(out.post_rate())),
                    ("reconciled", Json::Bool(out.reconciled)),
                ]),
            );
            table.row(vec![
                partition_rounds.to_string(),
                pct(loss),
                out.far_side.to_string(),
                out.wrongful_deaths.to_string(),
                out.rejoined.to_string(),
                out.refutations.to_string(),
                out.rejoin_messages.to_string(),
                if out.wrongful_deaths == 0 {
                    "—".into()
                } else {
                    out.recovery_rounds_used.to_string()
                },
                if out.divergent_planted == 0 {
                    "—".into()
                } else {
                    format!("{}", out.reconciled)
                },
                format!("{}→{}", pct(out.pre_rate()), pct(out.post_rate())),
            ]);
        }
    }
    table.print();
    println!(
        "every funeral reversed and delivery within 1% of pre-cut: {}",
        if all_recovered { "ok in all cells" } else { "VIOLATED" }
    );
    println!(
        "split-brain records reconciled to the incarnation maximum: {}",
        if all_reconciled { "ok in all cells" } else { "VIOLATED" }
    );
    if let Some(path) = args.json {
        report.write_to(&path).expect("run report written");
        eprintln!("run report: {}", path.display());
    }
}
