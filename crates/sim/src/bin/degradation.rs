//! Gray-failure degradation sweep: fail-slow slowdown × flash-crowd
//! overload × {fixed, adaptive} retransmission timers. Each cell runs
//! the identical seeded script under both timer policies, so the
//! headline claims — fewer spurious retransmissions, a shorter pooled
//! latency tail, zero wrongful burials, and the real crash still found
//! — are attributable to the adaptive RTO alone. `--paper` for a
//! larger population; `--json <path>` also writes a machine-readable
//! run report.
use bristle_sim::cli::SweepArgs;
use bristle_sim::degradation::{run_degradation, DegradationConfig};
use bristle_sim::experiments::Scale;
use bristle_sim::metrics::Samples;
use bristle_sim::report::{pct, Table};
use bristle_sim::runreport::{Json, RunReport};

fn main() {
    let args = SweepArgs::parse();
    let (stationary, mobile, degraded_nodes, waves) = match args.scale {
        Scale::Quick => (36usize, 14usize, 8usize, 10usize),
        Scale::Paper => (90, 40, 20, 16),
    };
    eprintln!(
        "degradation: {stationary}+{mobile} nodes, {waves} waves per cell, seed {}",
        args.seed
    );
    let mut report = RunReport::new("degradation", args.seed);

    let mut table = Table::new(
        "Gray-failure degradation — spurious retries and latency tail, by slowdown × burst × RTO",
        &[
            "slowdown",
            "burst",
            "rto",
            "spurious",
            "sheds",
            "p50",
            "p99",
            "deliv",
            "burials",
            "crash found",
            "flagged",
        ],
    );

    // Pooled per-arm wave latencies over the *degraded* cells; the
    // slowdown-free cells are the baseline showing both arms at parity.
    let mut pooled = [Samples::new(), Samples::new()];
    let mut arm_spurious = [0u64; 2];
    let mut arm_sheds = [0u64; 2];
    let mut adaptive_fewer_spurious = true;
    let mut zero_burials = true;
    let mut crash_always_found = true;
    for slowdown in [100u32, 200, 300] {
        for burst in [16usize, 24] {
            let mut fixed_spurious = None;
            for adaptive in [false, true] {
                let mut cfg = DegradationConfig::standard(args.seed);
                cfg.stationary = stationary;
                cfg.mobile = mobile;
                cfg.degraded_nodes = degraded_nodes;
                cfg.waves = waves;
                cfg.slowdown_pct = slowdown;
                cfg.burst = burst;
                cfg.adaptive = adaptive;
                let out = run_degradation(&cfg);
                zero_burials &= out.wrongful_burials == 0;
                crash_always_found &= out.crash_confirmed;
                if slowdown > 100 {
                    let arm = adaptive as usize;
                    for &s in &out.wave_samples {
                        pooled[arm].push(s as f64);
                    }
                    arm_spurious[arm] += out.spurious_retries;
                    arm_sheds[arm] += out.load_sheds;
                    match adaptive {
                        false => fixed_spurious = Some(out.spurious_retries),
                        true => {
                            adaptive_fewer_spurious &=
                                fixed_spurious.is_some_and(|fixed| out.spurious_retries < fixed);
                        }
                    }
                }
                report.push_cell(
                    Json::obj([
                        ("slowdown_pct", Json::U64(slowdown as u64)),
                        ("burst", Json::U64(burst as u64)),
                        ("adaptive_rto", Json::Bool(adaptive)),
                        ("stationary", Json::U64(stationary as u64)),
                        ("mobile", Json::U64(mobile as u64)),
                        ("waves", Json::U64(waves as u64)),
                        ("ingress_cap", Json::U64(cfg.ingress_cap as u64)),
                    ]),
                    &out.tallies,
                    &out.latencies,
                    Json::obj([
                        ("spurious_retries", Json::U64(out.spurious_retries)),
                        ("load_sheds", Json::U64(out.load_sheds)),
                        ("wave_p50", Json::U64(out.wave_p50)),
                        ("wave_p99", Json::U64(out.wave_p99)),
                        ("wave_max", Json::U64(out.wave_max)),
                        ("routes_attempted", Json::U64(out.routes_attempted as u64)),
                        ("routes_delivered", Json::U64(out.routes_delivered as u64)),
                        ("delivery_rate", Json::F64(out.delivery_rate())),
                        ("wrongful_burials", Json::U64(out.wrongful_burials as u64)),
                        ("crash_confirmed", Json::Bool(out.crash_confirmed)),
                        ("detection_rounds", Json::U64(out.detection_rounds as u64)),
                        ("degraded_flagged_max", Json::U64(out.degraded_flagged_max as u64)),
                    ]),
                );
                table.row(vec![
                    format!("{slowdown}%"),
                    burst.to_string(),
                    if adaptive { "adaptive".into() } else { "fixed".into() },
                    out.spurious_retries.to_string(),
                    out.load_sheds.to_string(),
                    out.wave_p50.to_string(),
                    out.wave_p99.to_string(),
                    pct(out.delivery_rate()),
                    out.wrongful_burials.to_string(),
                    out.crash_confirmed.to_string(),
                    out.degraded_flagged_max.to_string(),
                ]);
            }
        }
    }
    table.print();

    let [fixed_p99, adaptive_p99] = pooled.each_mut().map(|s| s.percentile(99.0) as u64);
    let [fixed_max, adaptive_max] = pooled.each_mut().map(|s| s.max() as u64);
    report.push_cell(
        Json::obj([("cell", Json::Str("arm_summary".into()))]),
        &[],
        &[],
        Json::obj([
            ("degraded_samples_per_arm", Json::U64(pooled[0].len() as u64)),
            ("fixed_spurious", Json::U64(arm_spurious[0])),
            ("adaptive_spurious", Json::U64(arm_spurious[1])),
            ("fixed_sheds", Json::U64(arm_sheds[0])),
            ("adaptive_sheds", Json::U64(arm_sheds[1])),
            ("fixed_p99", Json::U64(fixed_p99)),
            ("adaptive_p99", Json::U64(adaptive_p99)),
            ("fixed_max", Json::U64(fixed_max)),
            ("adaptive_max", Json::U64(adaptive_max)),
        ]),
    );
    println!(
        "adaptive RTO fires strictly fewer spurious retries in every degraded cell: {}",
        if adaptive_fewer_spurious { "ok in all cells" } else { "VIOLATED" }
    );
    println!(
        "adaptive arm p99 route latency beats the fixed arm over the degraded cells ({adaptive_p99} < {fixed_p99}): {}",
        if adaptive_p99 < fixed_p99 { "ok" } else { "VIOLATED" }
    );
    println!(
        "zero wrongful burials under gray failure in both arms: {}",
        if zero_burials { "ok in all cells" } else { "VIOLATED" }
    );
    println!(
        "the real crash is confirmed and healed in every cell: {}",
        if crash_always_found { "ok in all cells" } else { "VIOLATED" }
    );
    if let Some(path) = args.json {
        report.write_to(&path).expect("run report written");
        eprintln!("run report: {}", path.display());
    }
}
