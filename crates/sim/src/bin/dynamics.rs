//! Runs a full dynamic scenario: movement + churn + lookups + upkeep on
//! one virtual timeline, printing the per-interval health table.
//! `--paper` for a larger population and longer horizon.
use bristle_core::system::BristleBuilder;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_sim::experiments::Scale;
use bristle_sim::scenario::{self, ScenarioConfig};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let (n_stat, n_mob, horizon) = match scale {
        Scale::Quick => (120, 60, 3_000),
        Scale::Paper => (700, 300, 12_000),
    };
    eprintln!("dynamics: {n_stat}+{n_mob} nodes over {horizon} ticks");
    let mut sys = BristleBuilder::new(4242)
        .stationary_nodes(n_stat)
        .mobile_nodes(n_mob)
        .topology(TransitStubConfig::small())
        .build()
        .expect("system builds");
    let cfg = ScenarioConfig::standard(horizon);
    let outcome = scenario::run(&mut sys, &cfg);
    scenario::to_table(&outcome).print();
    println!(
        "overall delivery {:.1}%  final population {}+{}  events {}",
        outcome.overall_delivery() * 100.0,
        outcome.final_population.0,
        outcome.final_population.1,
        outcome.events
    );
}
