//! Runs the ablation studies (substrate comparison, LDT fan-out, binding
//! modes). `--paper` for larger populations; `--json <path>` also writes
//! a machine-readable run report.
use bristle_sim::experiments::{ablation, Scale};
use bristle_sim::runreport::{json_arg, Json, RunReport};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let json_path = json_arg(std::env::args().skip(1));
    let cfg = match scale {
        Scale::Quick => ablation::AblationConfig::quick(),
        Scale::Paper => ablation::AblationConfig::paper(),
    };
    eprintln!("ablation: {} nodes, {} routes", cfg.n_nodes, cfg.routes);
    let result = ablation::run(&cfg);
    ablation::to_table_substrates(&result).print();
    println!();
    ablation::to_table_fanout(&result).print();
    println!();
    ablation::to_table_binding(&result).print();
    println!();
    ablation::to_table_query_modes(&result).print();
    if let Some(path) = json_path {
        // Ablation runs have no message-passing driver, so cells carry
        // study rows only — no meter tallies, no latency histograms.
        let mut report = RunReport::new("ablation", cfg.seed);
        for row in &result.substrates {
            report.push_cell(
                Json::obj([("study", Json::Str("substrate".into()))]),
                &[],
                &[],
                Json::obj([
                    ("name", Json::Str(row.name.into())),
                    ("state_per_node", Json::F64(row.state_per_node)),
                    ("route_hops", Json::F64(row.route_hops)),
                ]),
            );
        }
        for row in &result.fanout {
            report.push_cell(
                Json::obj([("study", Json::Str("fanout".into()))]),
                &[],
                &[],
                Json::obj([
                    ("unit_cost", Json::U64(row.unit_cost as u64)),
                    ("depth", Json::U64(row.depth as u64)),
                    ("max_fanout", Json::U64(row.max_fanout as u64)),
                ]),
            );
        }
        for row in &result.binding {
            report.push_cell(
                Json::obj([("study", Json::Str("binding".into()))]),
                &[],
                &[],
                Json::obj([
                    ("name", Json::Str(row.name.into())),
                    ("proactive_msgs", Json::U64(row.proactive_msgs)),
                    ("discoveries", Json::F64(row.discoveries)),
                    ("route_hops", Json::F64(row.route_hops)),
                ]),
            );
        }
        for row in &result.query_modes {
            report.push_cell(
                Json::obj([("study", Json::Str("query_mode".into()))]),
                &[],
                &[],
                Json::obj([
                    ("name", Json::Str(row.name.into())),
                    ("cost_per_query", Json::F64(row.cost_per_query)),
                    ("msgs_per_query", Json::F64(row.msgs_per_query)),
                ]),
            );
        }
        report.write_to(&path).expect("run report written");
        eprintln!("run report: {}", path.display());
    }
}
