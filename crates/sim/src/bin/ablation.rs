//! Runs the ablation studies (substrate comparison, LDT fan-out, binding
//! modes). `--paper` for larger populations.
use bristle_sim::experiments::{ablation, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let cfg = match scale {
        Scale::Quick => ablation::AblationConfig::quick(),
        Scale::Paper => ablation::AblationConfig::paper(),
    };
    eprintln!("ablation: {} nodes, {} routes", cfg.n_nodes, cfg.routes);
    let result = ablation::run(&cfg);
    ablation::to_table_substrates(&result).print();
    println!();
    ablation::to_table_fanout(&result).print();
    println!();
    ablation::to_table_binding(&result).print();
    println!();
    ablation::to_table_query_modes(&result).print();
}
