//! Regenerates every table and figure of the paper in sequence.
//! `--paper` for full scale.
use bristle_sim::experiments::{fig3, fig7, fig8, fig9, table1, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let paper = scale == Scale::Paper;
    eprintln!("running all experiments at {:?} scale", scale);

    let t1 = if paper { table1::Table1Config::paper() } else { table1::Table1Config::quick() };
    table1::to_table(&table1::run(&t1)).print();
    println!();

    let f3 = if paper { fig3::Fig3Config::paper() } else { fig3::Fig3Config::quick() };
    fig3::to_table(&fig3::run(&f3)).print();
    println!();

    let f7 = if paper { fig7::Fig7Config::paper() } else { fig7::Fig7Config::quick() };
    let r7 = fig7::run(&f7);
    fig7::to_table_hops(&r7).print();
    println!();
    fig7::to_table_rdp(&r7).print();
    println!();

    let f8 = if paper { fig8::Fig8Config::paper() } else { fig8::Fig8Config::quick() };
    let r8 = fig8::run(&f8);
    fig8::to_table_levels(&r8).print();
    println!();
    fig8::to_table_detail(&r8).print();
    println!();

    let f9 = if paper { fig9::Fig9Config::paper() } else { fig9::Fig9Config::quick() };
    fig9::to_table(&fig9::run(&f9)).print();
}
