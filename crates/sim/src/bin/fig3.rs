//! Regenerates the paper's **Figure 3** (LDT responsibility). `--paper`
//! for full scale.
use bristle_sim::experiments::{fig3, Scale};

fn main() {
    let scale = Scale::from_args(std::env::args().skip(1));
    let cfg = match scale {
        Scale::Quick => fig3::Fig3Config::quick(),
        Scale::Paper => fig3::Fig3Config::paper(),
    };
    eprintln!("fig3: analytic N = {}, measured overlay = {} nodes", cfg.analytic_n, cfg.measured_n);
    let result = fig3::run(&cfg);
    fig3::to_table(&result).print();
}
