//! Churn-resilience sweep: delivery success, stale-answer rate, and
//! repair behaviour as the churn mix shifts toward failures, at several
//! transport loss rates. `--paper` for a larger population and longer
//! horizon.
use bristle_overlay::meter::MessageKind;
use bristle_sim::churn::ChurnModel;
use bristle_sim::cli::SweepArgs;
use bristle_sim::experiments::Scale;
use bristle_sim::report::{f2, pct, Table};
use bristle_sim::resilience::{run_churn_messaging, ResilienceConfig};
use bristle_sim::runreport::{Json, RunReport};

fn main() {
    let args = SweepArgs::parse();
    let (stationary, mobile, events) = match args.scale {
        Scale::Quick => (36, 14, 18),
        Scale::Paper => (90, 40, 60),
    };
    eprintln!("resilience: {stationary}+{mobile} nodes, {events} churn events per cell");
    let mut report = RunReport::new("resilience", args.seed);

    let mut table = Table::new(
        "Churn resilience — delivery, staleness and repair vs fail weight × loss",
        &[
            "fail wt",
            "loss",
            "deliv %",
            "stale/disc",
            "fails",
            "confirmed",
            "detect rds",
            "LDT repairs",
            "failover ok",
            "heartbeats",
        ],
    );
    let mut all_invariants_ok = true;
    for fail_weight in [0u32, 1, 3, 6] {
        for loss in [0.0f64, 0.10, 0.20] {
            let mut cfg = ResilienceConfig::standard(args.seed);
            cfg.stationary = stationary;
            cfg.mobile = mobile;
            cfg.events = events;
            cfg.loss = loss;
            cfg.churn =
                ChurnModel { mean_interval: 50, join_weight: 4, leave_weight: 3, fail_weight };
            let out = run_churn_messaging(&cfg);
            all_invariants_ok &= out.invariant_ok;
            report.push_cell(
                Json::obj([
                    ("fail_weight", Json::U64(fail_weight as u64)),
                    ("loss", Json::F64(loss)),
                    ("stationary", Json::U64(stationary as u64)),
                    ("mobile", Json::U64(mobile as u64)),
                    ("events", Json::U64(events as u64)),
                ]),
                &out.tallies,
                &out.latencies,
                Json::obj([
                    ("delivery_rate", Json::F64(out.delivery_rate())),
                    ("routes_attempted", Json::U64(out.routes_attempted as u64)),
                    ("routes_delivered", Json::U64(out.routes_delivered as u64)),
                    ("discoveries", Json::U64(out.discoveries as u64)),
                    ("stale_answers", Json::U64(out.stale_answers as u64)),
                    ("fails", Json::U64(out.fails as u64)),
                    ("deaths_confirmed", Json::U64(out.deaths_confirmed as u64)),
                    ("detection_rounds", Json::U64(out.detection_rounds as u64)),
                    ("ldts_repaired", Json::U64(out.ldts_repaired as u64)),
                    ("repairs_expected", Json::U64(out.repairs_expected as u64)),
                    ("invariant_ok", Json::Bool(out.invariant_ok)),
                ]),
            );
            let heartbeats = out
                .tallies
                .iter()
                .find(|&&(k, _, _)| k == MessageKind::HeartbeatSent)
                .map(|&(_, c, _)| c)
                .unwrap_or(0);
            let detect = if out.deaths_confirmed == 0 {
                "—".into()
            } else {
                f2(out.detection_rounds as f64 / out.deaths_confirmed as f64)
            };
            table.row(vec![
                fail_weight.to_string(),
                pct(loss),
                pct(out.delivery_rate()),
                format!("{}/{}", out.stale_answers, out.discoveries),
                out.fails.to_string(),
                out.deaths_confirmed.to_string(),
                detect,
                format!("{}/{}", out.ldts_repaired, out.repairs_expected),
                format!("{}/{}", out.dead_primary_hits, out.dead_primary_lookups),
                heartbeats.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "root-reachability invariant after every repair: {}",
        if all_invariants_ok { "ok in all cells" } else { "VIOLATED" }
    );
    if let Some(path) = args.json {
        report.write_to(&path).expect("run report written");
        eprintln!("run report: {}", path.display());
    }
}
