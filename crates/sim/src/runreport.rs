//! Machine-readable run reports: a dependency-free JSON writer and the
//! `bristle-run-report/v1` document the sweep binaries emit under
//! `--json <path>`.
//!
//! A report captures one sweep run at a fixed seed: per-cell parameters,
//! the per-kind meter tallies, and the driver's latency-histogram
//! snapshots (count/p50/p99/max, micro-clock ticks). The workspace has
//! no serde, so [`Json`] is a small ordered value tree rendered with
//! stable two-space indentation — committed artifacts diff cleanly and
//! identical runs produce byte-identical files.

use std::io::Write as _;
use std::path::Path;

use bristle_overlay::meter::MessageKind;
use bristle_overlay::obs::Snapshot;

/// The `schema` tag stamped on every report.
pub const SCHEMA: &str = "bristle-run-report/v1";

/// An ordered JSON value. Object keys keep insertion order so rendering
/// is deterministic without sorting.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the report's native counter type).
    U64(u64),
    /// A finite float, rendered with Rust's shortest round-trip form.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value with two-space indentation and a trailing
    /// newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(v) => {
                // JSON has no NaN/Infinity; clamp to null like serde_json.
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included) into `out`.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Per-kind meter tallies as `{Kind: {count, cost}}`, zero rows skipped.
pub fn meter_json(tallies: &[(MessageKind, u64, u64)]) -> Json {
    Json::Obj(
        tallies
            .iter()
            .filter(|&&(_, count, cost)| count > 0 || cost > 0)
            .map(|&(k, count, cost)| {
                (
                    k.name().to_string(),
                    Json::obj([("count", Json::U64(count)), ("cost", Json::U64(cost))]),
                )
            })
            .collect(),
    )
}

/// Latency snapshots as `{name: {count, p50, p99, max}}`.
pub fn histograms_json(snaps: &[(&'static str, Snapshot)]) -> Json {
    Json::Obj(
        snaps
            .iter()
            .map(|&(name, s)| {
                (
                    name.to_string(),
                    Json::obj([
                        ("count", Json::U64(s.count)),
                        ("p50", Json::U64(s.p50)),
                        ("p99", Json::U64(s.p99)),
                        ("max", Json::U64(s.max)),
                    ]),
                )
            })
            .collect(),
    )
}

/// One sweep's machine-readable report, accumulated cell by cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The emitting binary ("resilience", "partition", "ablation").
    pub bin: String,
    /// The seed every cell was run at.
    pub seed: u64,
    /// One entry per sweep cell.
    pub cells: Vec<Json>,
}

impl RunReport {
    /// An empty report for `bin` at `seed`.
    pub fn new(bin: impl Into<String>, seed: u64) -> Self {
        RunReport { bin: bin.into(), seed, cells: Vec::new() }
    }

    /// Appends one sweep cell: its parameters, meter tallies, latency
    /// snapshots, and scenario-specific outcome fields.
    pub fn push_cell(
        &mut self,
        params: Json,
        tallies: &[(MessageKind, u64, u64)],
        snaps: &[(&'static str, Snapshot)],
        outcome: Json,
    ) {
        self.cells.push(Json::obj([
            ("params", params),
            ("meter", meter_json(tallies)),
            ("histograms", histograms_json(snaps)),
            ("outcome", outcome),
        ]));
    }

    /// The whole report as a [`Json`] document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Str(SCHEMA.to_string())),
            ("bin", Json::Str(self.bin.clone())),
            ("seed", Json::U64(self.seed)),
            ("cells", Json::Arr(self.cells.clone())),
        ])
    }

    /// Renders the report (two-space indent, trailing newline).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Writes the rendered report to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.render().as_bytes())
    }
}

/// Extracts the `--json <path>` flag from a binary's argument list, if
/// present. Other arguments (e.g. `--paper`) pass through untouched via
/// the caller's own parsing.
pub fn json_arg(args: impl Iterator<Item = String>) -> Option<std::path::PathBuf> {
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Json::obj([
            ("schema", Json::Str(SCHEMA.into())),
            ("n", Json::U64(3)),
            ("rate", Json::F64(0.5)),
            ("flag", Json::Bool(true)),
            ("items", Json::Arr(vec![Json::U64(1), Json::Null])),
            ("empty", Json::Obj(vec![])),
        ]);
        let s = doc.render();
        assert!(s.contains("\"schema\": \"bristle-run-report/v1\""));
        assert!(s.contains("\"rate\": 0.5"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn report_shape_and_determinism() {
        let snaps = [("route", Snapshot { count: 2, p50: 4, p99: 8, max: 7 })];
        let tallies = [
            (MessageKind::RouteHop, 5, 10),
            (MessageKind::Timeout, 0, 0), // zero rows are skipped
        ];
        let mut r = RunReport::new("resilience", 8);
        r.push_cell(
            Json::obj([("loss", Json::F64(0.1))]),
            &tallies,
            &snaps,
            Json::obj([("ok", Json::Bool(true))]),
        );
        let a = r.render();
        assert_eq!(a, r.render(), "rendering is deterministic");
        assert!(a.contains("\"RouteHop\""));
        assert!(!a.contains("\"Timeout\""));
        assert!(a.contains("\"p99\": 8"));
        assert!(a.contains("\"bin\": \"resilience\""));
    }

    #[test]
    fn json_arg_extracts_path() {
        let args = ["--paper", "--json", "out.json"].map(String::from);
        assert_eq!(json_arg(args.into_iter()), Some(std::path::PathBuf::from("out.json")));
        let none = ["--paper"].map(String::from);
        assert_eq!(json_arg(none.into_iter()), None);
        let dangling = ["--json"].map(String::from);
        assert_eq!(json_arg(dangling.into_iter()), None);
    }
}
