//! Shared command-line parsing for the sweep binaries.
//!
//! Every sweep binary accepts the same small flag vocabulary; before
//! this module each binary hand-rolled its own scan of `std::env::args`
//! (six slightly-different copies). [`SweepArgs`] is the single parser:
//!
//! | flag | meaning |
//! |------|---------|
//! | `--paper`        | the paper's populations instead of the quick scale |
//! | `--json <path>`  | also write a `bristle-run-report/v1` document |
//! | `--seed <n>`     | master seed (default 8 — the committed-report seed) |
//! | `--smoke`        | smallest cell only (scale sweep) |
//! | `--stretch`      | add the largest cell (scale sweep) |
//! | `--workers <k>`  | wiring/sampling threads (scale sweep) |
//!
//! Unknown flags are ignored, matching the historical behaviour of the
//! binaries, so wrapper scripts passing extra arguments keep working.

use std::path::PathBuf;

use crate::experiments::Scale;

/// The seed the committed `BENCH_*.json` artifacts are generated at.
pub const DEFAULT_SEED: u64 = 8;

/// Parsed sweep-binary arguments. See the module docs for the flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Population scale (`--paper` ⇒ [`Scale::Paper`]).
    pub scale: Scale,
    /// Where to write the machine-readable run report, if anywhere.
    pub json: Option<PathBuf>,
    /// Master seed for the sweep ([`DEFAULT_SEED`] unless `--seed`).
    pub seed: u64,
    /// Scale sweep only: run the smallest population cell only.
    pub smoke: bool,
    /// Scale sweep only: add the largest (stretch) population cell.
    pub stretch: bool,
    /// Scale sweep only: worker-thread count override (`None` lets the
    /// binary pick, e.g. from `available_parallelism`).
    pub workers: Option<usize>,
}

impl SweepArgs {
    /// Parses the process's own arguments (everything after `argv[0]`).
    pub fn parse() -> SweepArgs {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests, wrappers).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> SweepArgs {
        let mut out = SweepArgs {
            scale: Scale::Quick,
            json: None,
            seed: DEFAULT_SEED,
            smoke: false,
            stretch: false,
            workers: None,
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper" => out.scale = Scale::Paper,
                "--smoke" => out.smoke = true,
                "--stretch" => out.stretch = true,
                "--json" => out.json = args.next().map(PathBuf::from),
                "--seed" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--workers" => out.workers = args.next().and_then(|v| v.parse().ok()),
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> SweepArgs {
        SweepArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_the_committed_artifacts() {
        let a = parse(&[]);
        assert_eq!(a.scale, Scale::Quick);
        assert_eq!(a.seed, DEFAULT_SEED);
        assert_eq!(a.json, None);
        assert!(!a.smoke && !a.stretch);
        assert_eq!(a.workers, None);
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&[
            "--paper",
            "--json",
            "out.json",
            "--seed",
            "27",
            "--smoke",
            "--stretch",
            "--workers",
            "4",
        ]);
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.json, Some(PathBuf::from("out.json")));
        assert_eq!(a.seed, 27);
        assert!(a.smoke && a.stretch);
        assert_eq!(a.workers, Some(4));
    }

    #[test]
    fn unknown_flags_and_bad_values_are_ignored() {
        let a = parse(&["--verbose", "--seed", "not-a-number", "--workers"]);
        assert_eq!(a.seed, DEFAULT_SEED);
        assert_eq!(a.workers, None);
    }
}
