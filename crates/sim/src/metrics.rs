//! Statistics collection for experiments.

/// Accumulates samples and answers mean / percentile / extrema queries.
///
/// Stores the raw samples (experiment scales are modest) so percentiles
/// are exact rather than sketched.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn push(&mut self, v: f64) {
        debug_assert!(v.is_finite(), "non-finite sample {v}");
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }

    /// Exact percentile by nearest-rank (`p` in `[0, 100]`).
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p}");
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.values.len() as f64 - 1.0)).round() as usize;
        self.values[rank]
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min).into_finite()
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max).into_finite()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// All samples, sorted ascending — for pooling collectors.
    pub fn sorted_values(&mut self) -> &[f64] {
        if !self.sorted {
            self.values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            self.sorted = true;
        }
        &self.values
    }
}

trait IntoFinite {
    fn into_finite(self) -> f64;
}
impl IntoFinite for f64 {
    fn into_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// An integer-bucket histogram (e.g. tree levels, hop counts).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `bucket`.
    pub fn record(&mut self, bucket: usize) {
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// Count in `bucket` (0 when beyond the recorded range).
    pub fn count(&self, bucket: usize) -> u64 {
        self.counts.get(bucket).copied().unwrap_or(0)
    }

    /// Fraction of observations in `bucket` (0 when empty).
    pub fn fraction(&self, bucket: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(bucket) as f64 / self.total as f64
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets covering the recorded range.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let mut s = Samples::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.len(), 8);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn empty_collector_is_calm() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn percentiles_exact() {
        let mut s = Samples::new();
        for v in 1..=100 {
            s.push(v as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(50.0), 51.0); // nearest rank on 0-indexed
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn percentile_after_push_resorts() {
        let mut s = Samples::new();
        s.push(5.0);
        assert_eq!(s.percentile(100.0), 5.0);
        s.push(1.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn histogram_counts_and_fractions() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(3);
        h.record(0);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.total(), 4);
        assert!((h.fraction(1) - 0.5).abs() < 1e-12);
        assert_eq!(h.buckets(), 4);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.fraction(0), 0.0);
        assert_eq!(h.total(), 0);
    }
}
