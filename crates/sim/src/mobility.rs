//! Movement workload models.
//!
//! The paper's mobile nodes re-attach at random network points; how often
//! they do so is the experiment's knob. We model inter-move times as
//! exponentially distributed around a configurable mean (a discrete
//! Poisson movement process), the standard assumption for session-scale
//! mobility studies.

use bristle_netsim::rng::Pcg64;

/// A Poisson movement process: moves arrive with the given mean interval.
#[derive(Debug, Clone, Copy)]
pub struct MobilityModel {
    /// Mean ticks between two moves of the same node (≥ 1).
    pub mean_interval: u64,
}

impl MobilityModel {
    /// Creates a model; `mean_interval` is clamped to ≥ 1.
    pub fn new(mean_interval: u64) -> Self {
        MobilityModel { mean_interval: mean_interval.max(1) }
    }

    /// Draws the delay until a node's next move (exponential, ≥ 1 tick).
    pub fn next_delay(&self, rng: &mut Pcg64) -> u64 {
        let u = rng.f64().max(1e-12);
        let d = (-u.ln()) * self.mean_interval as f64;
        (d.round() as u64).max(1)
    }

    /// Draws an initial phase for each of `n` nodes so moves do not
    /// synchronize at simulation start.
    pub fn initial_phases(&self, n: usize, rng: &mut Pcg64) -> Vec<u64> {
        (0..n).map(|_| self.next_delay(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_positive_and_mean_close() {
        let model = MobilityModel::new(100);
        let mut rng = Pcg64::seed_from_u64(1);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| model.next_delay(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn minimum_delay_is_one_tick() {
        let model = MobilityModel::new(1);
        let mut rng = Pcg64::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(model.next_delay(&mut rng) >= 1);
        }
    }

    #[test]
    fn zero_interval_clamped() {
        assert_eq!(MobilityModel::new(0).mean_interval, 1);
    }

    #[test]
    fn initial_phases_cover_population() {
        let model = MobilityModel::new(50);
        let mut rng = Pcg64::seed_from_u64(3);
        let phases = model.initial_phases(100, &mut rng);
        assert_eq!(phases.len(), 100);
        assert!(phases.iter().all(|&p| p >= 1));
        // Not all identical (they desynchronize).
        assert!(phases.iter().any(|&p| p != phases[0]));
    }
}
