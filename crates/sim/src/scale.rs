//! Scale sweep: population growth vs route length, LDT depth, state
//! size, and engine-queue throughput.
//!
//! The paper's HS-P2P claims are asymptotic — `O(log N)` application
//! hops on the ring and `O(log log N)`-ish LDT depth (capacity-bounded
//! trees over `O(log N)` registrants). This module grows `N` over
//! decades, measures both quantities on live overlays, and fits each
//! against its claimed growth law so the committed report carries the
//! slope/R² evidence, not just point samples.
//!
//! Determinism contract: every number destined for the committed
//! `BENCH_scale.json` derives from integer sums under per-sample RNGs
//! (`Pcg64::new(seed ^ SALT, sample_index)`), so the report bytes are
//! identical at any `--workers` count — sharding the sample loop across
//! threads changes wall-clock only. Wall-clock and events/sec are
//! printed to stdout and never enter the report.

use std::time::Instant;

use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_core::time::SimTime;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::key::Key;
use bristle_overlay::ring::RingDht;

use crate::engine::{BinaryHeapQueue, EventQueue};
use crate::report::{f2, f3, Table};

/// RNG stream salts (stable: committed report bytes depend on them).
const ROUTE_SALT: u64 = 0x0005_ca1e_0001;
const LDT_SALT: u64 = 0x0005_ca1e_0002;
const BENCH_SALT: u64 = 0x0005_ca1e_0003;

/// Parameters of the scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Total populations (stationary + mobile) to measure, ascending.
    pub populations: Vec<usize>,
    /// Mobile fraction of each population.
    pub mobile_fraction: f64,
    /// Routed lookups sampled per cell.
    pub route_samples: usize,
    /// LDT roots sampled per cell (capped at the mobile count).
    pub ldt_samples: usize,
    /// RNG seed (cells derive per-sample streams from it).
    pub seed: u64,
    /// Worker threads for table wiring and route sampling. Never affects
    /// results — only wall-clock.
    pub workers: usize,
}

impl ScaleConfig {
    /// The committed-benchmark sweep: N ∈ {1e3, 1e4, 1e5} at seed 8.
    pub fn standard(seed: u64, workers: usize) -> Self {
        ScaleConfig {
            populations: vec![1_000, 10_000, 100_000],
            mobile_fraction: 0.2,
            route_samples: 2_000,
            ldt_samples: 400,
            seed,
            workers,
        }
    }

    /// CI smoke: N = 1e3 only, fewer samples.
    pub fn smoke(seed: u64, workers: usize) -> Self {
        ScaleConfig {
            populations: vec![1_000],
            route_samples: 500,
            ldt_samples: 100,
            ..Self::standard(seed, workers)
        }
    }

    /// Adds the stretch point N = 1e6.
    pub fn with_stretch(mut self) -> Self {
        self.populations.push(1_000_000);
        self
    }
}

/// Deterministic measurements for one population cell (everything here
/// may enter the committed report).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleCell {
    /// Total population N.
    pub n: usize,
    /// Stationary-node count.
    pub stationary: usize,
    /// Mobile-node count.
    pub mobile: usize,
    /// Routed lookups sampled.
    pub route_samples: usize,
    /// Sum of application hops over all samples.
    pub hops_sum: u64,
    /// Worst sampled route.
    pub hops_max: u32,
    /// LDT roots sampled.
    pub ldt_samples: usize,
    /// Sum of tree depths.
    pub depth_sum: u64,
    /// Sum of tree sizes (members incl. root).
    pub size_sum: u64,
    /// Total routing-state rows across the mobile ring.
    pub table_rows: u64,
}

impl ScaleCell {
    /// Mean application hops per routed lookup.
    pub fn hops_mean(&self) -> f64 {
        self.hops_sum as f64 / self.route_samples.max(1) as f64
    }

    /// Mean LDT depth.
    pub fn depth_mean(&self) -> f64 {
        self.depth_sum as f64 / self.ldt_samples.max(1) as f64
    }

    /// Mean LDT size.
    pub fn size_mean(&self) -> f64 {
        self.size_sum as f64 / self.ldt_samples.max(1) as f64
    }

    /// Mean routing-state rows per node.
    pub fn rows_per_node(&self) -> f64 {
        self.table_rows as f64 / self.n.max(1) as f64
    }
}

/// Wall-clock observations for one cell (stdout only, never committed).
#[derive(Debug, Clone, Copy)]
pub struct CellTiming {
    /// Seconds to build + wire the system.
    pub build_secs: f64,
    /// Routed lookups per second during sampling.
    pub routes_per_sec: f64,
}

/// Builds the cell's system and measures it.
pub fn run_cell(cfg: &ScaleConfig, n: usize) -> (ScaleCell, CellTiming) {
    let mobile = ((n as f64) * cfg.mobile_fraction) as usize;
    let stationary = n - mobile;
    let t0 = Instant::now();
    let sys = BristleBuilder::new(cfg.seed)
        .stationary_nodes(stationary)
        .mobile_nodes(mobile)
        .topology(TransitStubConfig::small())
        .build_workers(cfg.workers)
        .build()
        .expect("system builds");
    let build_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let hops = sample_routes(&sys.mobile, cfg.seed, cfg.route_samples, cfg.workers);
    let routes_per_sec = cfg.route_samples as f64 / t1.elapsed().as_secs_f64().max(1e-9);

    let (depth_sum, size_sum, ldt_samples) = sample_ldts(&sys, cfg.seed, cfg.ldt_samples);

    let cell = ScaleCell {
        n,
        stationary,
        mobile,
        route_samples: hops.len(),
        hops_sum: hops.iter().map(|&h| h as u64).sum(),
        hops_max: hops.iter().copied().max().unwrap_or(0),
        ldt_samples,
        depth_sum,
        size_sum,
        table_rows: sys.mobile.total_state() as u64,
    };
    (cell, CellTiming { build_secs, routes_per_sec })
}

/// Samples `samples` routed lookups on `ring`, sharded across `workers`
/// scoped threads. Per-sample RNG streams make the result independent of
/// the worker count.
pub fn sample_routes(
    ring: &RingDht<Vec<u8>>,
    seed: u64,
    samples: usize,
    workers: usize,
) -> Vec<u32> {
    let keys: Vec<Key> = ring.keys().collect();
    if keys.is_empty() || samples == 0 {
        return Vec::new();
    }
    let route_one = |i: usize| -> u32 {
        let mut rng = Pcg64::new(seed ^ ROUTE_SALT, i as u64);
        let src = *rng.choose(&keys);
        let target = Key::random(&mut rng);
        let mut cur = src;
        let mut hops = 0u32;
        while let Some(next) = ring.next_hop(cur, target).expect("known node") {
            cur = next;
            hops += 1;
            assert!(hops <= 512, "route failed to terminate");
        }
        hops
    };
    let workers = workers.max(1).min(samples);
    if workers == 1 {
        return (0..samples).map(route_one).collect();
    }
    let chunk = samples.div_ceil(workers);
    let shards: Vec<Vec<usize>> =
        (0..samples).collect::<Vec<_>>().chunks(chunk).map(|c| c.to_vec()).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| s.spawn(|| shard.iter().map(|&i| route_one(i)).collect::<Vec<u32>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("route worker")).collect()
    })
}

/// Samples LDT depth/size over up to `samples` mobile roots. Sequential:
/// the tree build borrows the whole system, and the sample counts are
/// small.
fn sample_ldts(sys: &BristleSystem, seed: u64, samples: usize) -> (u64, u64, usize) {
    let roots = sys.mobile_keys();
    if roots.is_empty() || samples == 0 {
        return (0, 0, 0);
    }
    let mut rng = Pcg64::new(seed ^ LDT_SALT, 0);
    let mut picked: Vec<Key> = roots.to_vec();
    rng.shuffle(&mut picked);
    picked.truncate(samples);
    let mut depth_sum = 0u64;
    let mut size_sum = 0u64;
    for &root in &picked {
        let tree = sys.build_ldt(root).expect("live mobile root");
        depth_sum += tree.depth() as u64;
        size_sum += tree.len() as u64;
    }
    (depth_sum, size_sum, picked.len())
}

/// A least-squares linear fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect fit).
    pub r2: f64,
}

/// Fits `ys` against `xs` by ordinary least squares.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.len() < 2 {
        return Fit { slope: 0.0, intercept: ys.first().copied().unwrap_or(0.0), r2: 1.0 };
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Fit { slope, intercept, r2 }
}

/// Fits route hops against `log2 N` (the paper's `O(log N)` hop claim)
/// and LDT depth against `log2 log2 N` (the `O(log log N)` depth claim).
pub fn growth_fits(cells: &[ScaleCell]) -> (Fit, Fit) {
    let log_n: Vec<f64> = cells.iter().map(|c| (c.n as f64).log2()).collect();
    let loglog_n: Vec<f64> = log_n.iter().map(|&x| x.log2()).collect();
    let hops: Vec<f64> = cells.iter().map(|c| c.hops_mean()).collect();
    let depth: Vec<f64> = cells.iter().map(|c| c.depth_mean()).collect();
    (linear_fit(&log_n, &hops), linear_fit(&loglog_n, &depth))
}

/// Queue-throughput microbenchmark: the classic *hold model* (pop one,
/// schedule one a short seeded delta ahead) at steady queue size `n`,
/// identical op sequence on the calendar [`EventQueue`] and the
/// [`BinaryHeapQueue`] reference.
#[derive(Debug, Clone, Copy)]
pub struct QueueBench {
    /// Steady queue size.
    pub n: usize,
    /// Hold operations timed.
    pub ops: usize,
    /// Calendar-queue throughput (events/sec).
    pub bucket_events_per_sec: f64,
    /// Binary-heap throughput (events/sec).
    pub heap_events_per_sec: f64,
}

impl QueueBench {
    /// Bucket-over-heap speedup factor.
    pub fn speedup(&self) -> f64 {
        self.bucket_events_per_sec / self.heap_events_per_sec.max(1e-9)
    }
}

/// Runs the hold-model benchmark at steady size `n` for `ops` holds.
pub fn queue_bench(n: usize, ops: usize, seed: u64) -> QueueBench {
    fn hold<Q>(n: usize, ops: usize, seed: u64, queue: &mut Q) -> f64
    where
        Q: HoldQueue,
    {
        let mut rng = Pcg64::new(seed ^ BENCH_SALT, 0);
        for i in 0..n {
            queue.push(SimTime(rng.below(256)), i as u64);
        }
        let t0 = Instant::now();
        for _ in 0..ops {
            let (t, e) = queue.pull().expect("steady-state queue never empties");
            queue.push(SimTime(t.0 + 1 + rng.below(64)), std::hint::black_box(e));
        }
        ops as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    }
    let mut bucket: EventQueue<u64> = EventQueue::new();
    let mut heap: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    QueueBench {
        n,
        ops,
        bucket_events_per_sec: hold(n, ops, seed, &mut bucket),
        heap_events_per_sec: hold(n, ops, seed, &mut heap),
    }
}

/// The hold-model surface both queue implementations expose.
trait HoldQueue {
    fn push(&mut self, at: SimTime, e: u64);
    fn pull(&mut self) -> Option<(SimTime, u64)>;
}

impl HoldQueue for EventQueue<u64> {
    fn push(&mut self, at: SimTime, e: u64) {
        self.schedule_at(at, e);
    }
    fn pull(&mut self) -> Option<(SimTime, u64)> {
        self.pop()
    }
}

impl HoldQueue for BinaryHeapQueue<u64> {
    fn push(&mut self, at: SimTime, e: u64) {
        self.schedule_at(at, e);
    }
    fn pull(&mut self) -> Option<(SimTime, u64)> {
        self.pop()
    }
}

/// Renders the sweep as a table.
pub fn to_table(cells: &[ScaleCell]) -> Table {
    let mut t = Table::new(
        "Scale sweep — hops, LDT depth and state vs N",
        &["N", "log2 N", "hops mean", "hops max", "LDT depth", "LDT size", "rows/node"],
    );
    for c in cells {
        t.row(vec![
            c.n.to_string(),
            f2((c.n as f64).log2()),
            f3(c.hops_mean()),
            c.hops_max.to_string(),
            f3(c.depth_mean()),
            f2(c.size_mean()),
            f2(c.rows_per_node()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_sampling_is_worker_count_invariant() {
        let sys = BristleBuilder::new(5)
            .stationary_nodes(120)
            .mobile_nodes(40)
            .topology(TransitStubConfig::tiny())
            .build()
            .unwrap();
        let a = sample_routes(&sys.mobile, 5, 300, 1);
        let b = sample_routes(&sys.mobile, 5, 300, 4);
        let c = sample_routes(&sys.mobile, 5, 300, 7);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.iter().any(|&h| h > 0), "some routes must take hops");
    }

    #[test]
    fn cells_are_deterministic_across_runs() {
        let cfg = ScaleConfig {
            populations: vec![200],
            mobile_fraction: 0.2,
            route_samples: 100,
            ldt_samples: 30,
            seed: 8,
            workers: 2,
        };
        let (a, _) = run_cell(&cfg, 200);
        let (b, _) = run_cell(&cfg, 200);
        assert_eq!(a, b);
        let seq = ScaleConfig { workers: 1, ..cfg };
        let (c, _) = run_cell(&seq, 200);
        assert_eq!(a, c, "worker count must not change measurements");
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let f = linear_fit(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hops_grow_sublinearly_with_n() {
        let cfg = ScaleConfig {
            populations: vec![128, 1024],
            mobile_fraction: 0.2,
            route_samples: 300,
            ldt_samples: 50,
            seed: 8,
            workers: 2,
        };
        let cells: Vec<ScaleCell> = cfg.populations.iter().map(|&n| run_cell(&cfg, n).0).collect();
        let (hop_fit, _) = growth_fits(&cells);
        // 8× population growth must cost far less than 8× hops: the
        // log-law slope stays small and positive.
        assert!(cells[1].hops_mean() < cells[0].hops_mean() * 3.0);
        assert!(hop_fit.slope > 0.0, "hops must grow with N");
        assert!(hop_fit.slope < 2.0, "slope per doubling stays logarithmic");
    }

    #[test]
    fn queue_bench_runs_both_queues() {
        let b = queue_bench(1_000, 20_000, 8);
        assert!(b.bucket_events_per_sec > 0.0);
        assert!(b.heap_events_per_sec > 0.0);
    }
}
