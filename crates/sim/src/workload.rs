//! Route-sampling workloads and their aggregation.
//!
//! The paper's §4.1 experiment: "There are 10,000 sample routes between
//! two randomly picked stationary nodes generated, and the average
//! application-level hops and the path costs for these routes are
//! averaged." This module generates those samples and aggregates route
//! reports into the metrics the figures plot.

use bristle_core::system::BristleSystem;
use bristle_overlay::key::Key;

use crate::metrics::Samples;

/// Aggregated route metrics over a batch of sampled routes.
#[derive(Debug, Clone, Default)]
pub struct RouteAggregate {
    /// Application-level hops (forwarding + discovery + wasted attempts).
    pub hops: Samples,
    /// Physical path cost per route.
    pub path_cost: Samples,
    /// `_discovery` operations per route.
    pub discoveries: Samples,
    /// Routes attempted.
    pub routes: usize,
}

impl RouteAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean application-level hops (Fig. 7a's y-axis).
    pub fn mean_hops(&self) -> f64 {
        self.hops.mean()
    }

    /// Mean physical path cost.
    pub fn mean_cost(&self) -> f64 {
        self.path_cost.mean()
    }

    /// Mean discoveries per route.
    pub fn mean_discoveries(&self) -> f64 {
        self.discoveries.mean()
    }
}

/// Samples `count` ordered pairs of distinct stationary nodes.
///
/// # Panics
/// Panics when fewer than two stationary nodes exist.
pub fn sample_stationary_pairs(sys: &mut BristleSystem, count: usize) -> Vec<(Key, Key)> {
    let keys = sys.stationary_keys().to_vec();
    assert!(keys.len() >= 2, "need two stationary nodes to sample routes");
    let rng = sys.rng();
    (0..count)
        .map(|_| {
            let a = keys[rng.index(keys.len())];
            let mut b = keys[rng.index(keys.len())];
            while b == a {
                b = keys[rng.index(keys.len())];
            }
            (a, b)
        })
        .collect()
}

/// Samples `count` ordered pairs of distinct nodes of any mobility.
pub fn sample_any_pairs(sys: &mut BristleSystem, count: usize) -> Vec<(Key, Key)> {
    let keys: Vec<Key> = sys.mobile.keys().collect();
    assert!(keys.len() >= 2, "need two nodes to sample routes");
    let rng = sys.rng();
    (0..count)
        .map(|_| {
            let a = keys[rng.index(keys.len())];
            let mut b = keys[rng.index(keys.len())];
            while b == a {
                b = keys[rng.index(keys.len())];
            }
            (a, b)
        })
        .collect()
}

/// Routes every pair through the mobile layer (paper Fig. 2 semantics)
/// and aggregates hops, path cost, and discovery counts.
pub fn measure_routes(sys: &mut BristleSystem, pairs: &[(Key, Key)]) -> RouteAggregate {
    let mut agg = RouteAggregate::new();
    for &(src, dst) in pairs {
        let rep = sys.route_mobile(src, dst).expect("sampled nodes exist");
        agg.hops.push(rep.total_hops() as f64);
        agg.path_cost.push(rep.path_cost as f64);
        agg.discoveries.push(rep.discoveries as f64);
        agg.routes += 1;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_core::config::BristleConfig;
    use bristle_core::system::BristleBuilder;
    use bristle_netsim::transit_stub::TransitStubConfig;

    fn system(seed: u64) -> BristleSystem {
        BristleBuilder::new(seed)
            .stationary_nodes(30)
            .mobile_nodes(15)
            .topology(TransitStubConfig::tiny())
            .config(BristleConfig::recommended())
            .build()
            .unwrap()
    }

    #[test]
    fn stationary_pairs_are_stationary_and_distinct() {
        let mut sys = system(1);
        let pairs = sample_stationary_pairs(&mut sys, 100);
        assert_eq!(pairs.len(), 100);
        for (a, b) in pairs {
            assert_ne!(a, b);
            assert!(!sys.is_mobile(a));
            assert!(!sys.is_mobile(b));
        }
    }

    #[test]
    fn any_pairs_cover_mobility_classes() {
        let mut sys = system(2);
        let pairs = sample_any_pairs(&mut sys, 300);
        assert!(pairs.iter().any(|&(a, _)| sys.is_mobile(a)), "mobile sources appear");
        assert!(pairs.iter().any(|&(a, _)| !sys.is_mobile(a)), "stationary sources appear");
    }

    #[test]
    fn measure_routes_aggregates() {
        let mut sys = system(3);
        let pairs = sample_stationary_pairs(&mut sys, 50);
        let agg = measure_routes(&mut sys, &pairs);
        assert_eq!(agg.routes, 50);
        assert_eq!(agg.hops.len(), 50);
        assert!(agg.mean_hops() > 0.0);
        assert!(agg.mean_cost() > 0.0);
        assert!(agg.mean_discoveries() >= 0.0);
    }

    #[test]
    fn route_sampling_is_deterministic_per_seed() {
        let mut a = system(7);
        let mut b = system(7);
        assert_eq!(sample_stationary_pairs(&mut a, 20), sample_stationary_pairs(&mut b, 20));
    }
}
