//! Partition-tolerance scenario: a message-driven Bristle system split
//! in two, wrongful funerals on the far side, refutation and rejoin
//! after the heal, and split-brain record reconciliation.
//!
//! The run cuts the router population into two groups on the transport's
//! [`LinkFilter`]. Near-side watchers stop hearing far-side heartbeats,
//! suspicion hardens into death verdicts, and the scenario confirms each
//! one — a *wrongful* funeral, since the condemned machines are still
//! running behind the cut. After the heal, the driver's rejoin sweep
//! (see [`MessagingBristleSystem::heartbeat_round`]) delivers each
//! obituary, the buried node refutes it with a bumped incarnation, and a
//! sponsored rejoin reverses the funeral. The scenario then plants
//! far-side-life records (stale incarnation, inflated sequence number)
//! on replica subsets and checks that anti-entropy reconciles every
//! replica to the `(incarnation, seq, published_at)` maximum — the
//! post-rejoin record. Delivery is measured over the same endpoint pairs
//! before the cut and after recovery.
//!
//! Everything is seeded: two runs with the same [`PartitionConfig`]
//! produce identical [`PartitionOutcome`]s, meter tallies included.

use std::collections::{BTreeMap, BTreeSet};

use bristle_core::config::BristleConfig;
use bristle_core::system::BristleBuilder;
use bristle_netsim::graph::RouterId;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, ALL_KINDS};
use bristle_overlay::obs::Snapshot;
use bristle_proto::transport::{FaultConfig, LinkFilter};

use crate::messaging::MessagingBristleSystem;

/// Parameters of one partition-tolerance run.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Seed for the system build, the transport, and the scenario draws.
    pub seed: u64,
    /// Stationary population at build time.
    pub stationary: usize,
    /// Mobile population at build time.
    pub mobile: usize,
    /// Transport drop probability (applies on both sides of the cut).
    pub loss: f64,
    /// Heartbeat rounds run while the network is cut (the partition
    /// duration; death verdicts need several rounds to harden).
    pub partition_rounds: usize,
    /// Maximum heartbeat rounds allowed after the heal for every
    /// wrongful funeral to be reversed.
    pub recovery_rounds: usize,
    /// Endpoint pairs measured before the cut and again after recovery.
    pub route_pairs: usize,
}

impl PartitionConfig {
    /// The standard acceptance-scale run: a small-but-structured system,
    /// 5% loss, a four-round cut.
    pub fn standard(seed: u64) -> Self {
        PartitionConfig {
            seed,
            stationary: 36,
            mobile: 14,
            loss: 0.05,
            partition_rounds: 4,
            recovery_rounds: 6,
            route_pairs: 24,
        }
    }
}

/// What one partition-tolerance run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOutcome {
    /// Nodes attached behind the cut (candidates for wrongful death).
    pub far_side: usize,
    /// Funerals run on nodes that were actually alive (the cut's wrongful
    /// deaths).
    pub wrongful_deaths: usize,
    /// Funerals reversed by refutation + rejoin after the heal.
    pub rejoined: usize,
    /// Heartbeat rounds needed after the heal until every funeral was
    /// reversed (`recovery_rounds` when some never were).
    pub recovery_rounds_used: usize,
    /// Largest burial-to-rejoin span on the micro-clock.
    pub max_rejoin_latency: u64,
    /// `Alive` refutation broadcasts (meter count).
    pub refutations: u64,
    /// Rejoin-protocol messages (meter count).
    pub rejoin_messages: u64,
    /// Routes delivered / attempted before the cut.
    pub pre_delivered: usize,
    /// Routes attempted before the cut.
    pub pre_attempted: usize,
    /// Routes delivered over the same pairs after recovery.
    pub post_delivered: usize,
    /// Routes attempted after recovery.
    pub post_attempted: usize,
    /// Far-side-life record copies planted to create split-brain state.
    pub divergent_planted: usize,
    /// Whether anti-entropy reconciled every replica of every rejoined
    /// subject to the `(incarnation, seq, published_at)` maximum.
    pub reconciled: bool,
    /// Record copies installed by the reconciliation pass.
    pub anti_entropy_fixes: usize,
    /// Per-kind meter `(kind, count, cost)` at the end of the run.
    pub tallies: Vec<(MessageKind, u64, u64)>,
    /// Named latency-histogram snapshots from the driver's collector
    /// (micro-clock ticks; see
    /// [`ObsCollector`](crate::messaging::ObsCollector)).
    pub latencies: Vec<(&'static str, Snapshot)>,
}

impl PartitionOutcome {
    /// Fraction of pre-cut routes delivered.
    pub fn pre_rate(&self) -> f64 {
        if self.pre_attempted == 0 {
            1.0
        } else {
            self.pre_delivered as f64 / self.pre_attempted as f64
        }
    }

    /// Fraction of post-recovery routes delivered.
    pub fn post_rate(&self) -> f64 {
        if self.post_attempted == 0 {
            1.0
        } else {
            self.post_delivered as f64 / self.post_attempted as f64
        }
    }

    /// Whether post-recovery delivery is within `slack` of the pre-cut
    /// level (the acceptance criterion uses `slack = 0.01`).
    pub fn delivery_recovered(&self, slack: f64) -> bool {
        self.post_rate() + slack >= self.pre_rate()
    }
}

/// Splits the occupied stub routers into two balanced groups
/// (deterministic greedy bin-packing by attached-node count, sorted
/// router order). Returns `(groups, far_keys)` where the far side is the
/// second group.
fn split_routers(msys: &MessagingBristleSystem) -> (Vec<Vec<RouterId>>, BTreeSet<Key>) {
    let sys = &msys.sys;
    let mut per_router: BTreeMap<RouterId, Vec<Key>> = BTreeMap::new();
    let mut all: Vec<Key> = sys.mobile.keys().collect();
    all.sort_unstable();
    for k in all {
        if let Ok(r) = sys.router_of(k) {
            per_router.entry(r).or_default().push(k);
        }
    }
    let mut near: (Vec<RouterId>, usize) = (Vec::new(), 0);
    let mut far: (Vec<RouterId>, usize) = (Vec::new(), 0);
    let mut by_load: Vec<(&RouterId, &Vec<Key>)> = per_router.iter().collect();
    by_load.sort_by_key(|(r, ks)| (std::cmp::Reverse(ks.len()), **r));
    for (&r, keys) in by_load {
        let side = if near.1 <= far.1 { &mut near } else { &mut far };
        side.0.push(r);
        side.1 += keys.len();
    }
    let far_keys: BTreeSet<Key> =
        far.0.iter().flat_map(|r| per_router[r].iter().copied()).collect();
    (vec![near.0, far.0], far_keys)
}

/// Measures message-passing delivery over `pairs`, skipping pairs with a
/// missing endpoint. Returns `(delivered, attempted)`.
fn measure_pairs(msys: &mut MessagingBristleSystem, pairs: &[(Key, Key)]) -> (usize, usize) {
    let mut delivered = 0usize;
    let mut attempted = 0usize;
    for &(src, target) in pairs {
        if msys.is_failed(src)
            || msys.is_failed(target)
            || msys.sys.node_info(src).is_err()
            || msys.sys.node_info(target).is_err()
        {
            continue;
        }
        attempted += 1;
        if msys.route(src, target).is_ok() {
            delivered += 1;
        }
    }
    (delivered, attempted)
}

/// Runs one partition-tolerance scenario: build, measure, cut, bury,
/// heal, rejoin, reconcile, re-measure. Deterministic in `cfg`.
pub fn run_partition(cfg: &PartitionConfig) -> PartitionOutcome {
    let sys = BristleBuilder::new(cfg.seed)
        .stationary_nodes(cfg.stationary)
        .mobile_nodes(cfg.mobile)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds");
    let mut msys = MessagingBristleSystem::new(sys, FaultConfig::lossy(cfg.loss), cfg.seed ^ 0xA7);
    let mut rng = Pcg64::new(cfg.seed, 0xCA7);

    let mut out = PartitionOutcome {
        far_side: 0,
        wrongful_deaths: 0,
        rejoined: 0,
        recovery_rounds_used: 0,
        max_rejoin_latency: 0,
        refutations: 0,
        rejoin_messages: 0,
        pre_delivered: 0,
        pre_attempted: 0,
        post_delivered: 0,
        post_attempted: 0,
        divergent_planted: 0,
        reconciled: true,
        anti_entropy_fixes: 0,
        tallies: Vec::new(),
        latencies: Vec::new(),
    };

    // Fixed endpoint pairs, measured identically before and after.
    let mut endpoints: Vec<Key> = msys.sys.mobile.keys().collect();
    endpoints.sort_unstable();
    let mut pairs: Vec<(Key, Key)> = Vec::with_capacity(cfg.route_pairs);
    while pairs.len() < cfg.route_pairs && endpoints.len() >= 2 {
        let src = endpoints[rng.index(endpoints.len())];
        let target = endpoints[rng.index(endpoints.len())];
        if src != target {
            pairs.push((src, target));
        }
    }
    (out.pre_delivered, out.pre_attempted) = measure_pairs(&mut msys, &pairs);

    // Cut the network and let near-side suspicion harden into verdicts.
    // Only far-side deaths are confirmed: the near side is the majority
    // running the funerals; its own nodes are never buried.
    let (groups, far_keys) = split_routers(&msys);
    out.far_side = far_keys.len();
    msys.partition_now(LinkFilter::default().partition_groups(&groups));
    for _ in 0..cfg.partition_rounds {
        let newly = msys.heartbeat_round();
        for k in newly {
            if far_keys.contains(&k) && msys.confirm_and_heal(k).is_ok() {
                out.wrongful_deaths += 1;
            }
        }
        msys.sys.tick(5);
    }

    // Heal; the heartbeat machinery's rejoin sweep now delivers every
    // obituary, collects the refutations, and reverses the funerals.
    msys.heal_now();
    for r in 0..cfg.recovery_rounds {
        msys.heartbeat_round();
        out.recovery_rounds_used = r + 1;
        if msys.wrongly_buried().is_empty() {
            break;
        }
    }
    out.rejoined = msys.rejoin_log().len();
    out.max_rejoin_latency =
        msys.rejoin_log().iter().map(|r| r.rejoined_at.since(r.buried_at)).max().unwrap_or(0);

    // Split-brain reconciliation: for every rejoined mobile subject,
    // plant its far-side life — stale incarnation, inflated sequence
    // number, later publication time — on every replica but the first,
    // then let anti-entropy pick the winner. Only the incarnation rank
    // makes the post-rejoin record win.
    let replicas = msys.sys.config().location_replicas;
    let rejoined_mobiles: Vec<Key> =
        msys.rejoin_log().iter().map(|r| r.key).filter(|&k| msys.sys.is_mobile(k)).collect();
    for &subject in &rejoined_mobiles {
        let Ok(set) = msys.sys.stationary.replica_set(subject, replicas) else { continue };
        let Some(current) = set
            .first()
            .and_then(|&r| msys.sys.stationary.node(r).ok())
            .and_then(|n| n.store.get(&subject).copied())
        else {
            continue;
        };
        let mut far_life = current;
        far_life.incarnation = current.incarnation.saturating_sub(1);
        far_life.seq = current.seq + 25;
        far_life.published_at = bristle_core::time::SimTime(current.published_at.0 + 40);
        for &r in &set[1..] {
            if let Ok(node) = msys.sys.stationary.node_mut(r) {
                node.store.insert(subject, far_life);
                out.divergent_planted += 1;
            }
        }
    }
    out.anti_entropy_fixes = msys.sys.anti_entropy_locations().expect("reconciliation succeeds");
    for &subject in &rejoined_mobiles {
        let Ok(set) = msys.sys.stationary.replica_set(subject, replicas) else { continue };
        let mut best = None;
        let mut copies = Vec::new();
        for &r in &set {
            if let Ok(node) = msys.sys.stationary.node(r) {
                if let Some(rec) = node.store.get(&subject).copied() {
                    best = Some(match best {
                        None => rec,
                        Some(b) => rec.newer_of(b),
                    });
                    copies.push(rec);
                }
            }
        }
        let Some(best) = best else {
            out.reconciled = false;
            continue;
        };
        out.reconciled &= copies.len() == set.len()
            && copies.iter().all(|c| {
                (c.incarnation, c.seq, c.published_at)
                    == (best.incarnation, best.seq, best.published_at)
            });
    }

    (out.post_delivered, out.post_attempted) = measure_pairs(&mut msys, &pairs);

    out.refutations = msys.sys.meter.count(MessageKind::Refutation);
    out.rejoin_messages = msys.sys.meter.count(MessageKind::Rejoin);
    out.tallies =
        ALL_KINDS.iter().map(|&k| (k, msys.sys.meter.count(k), msys.sys.meter.cost(k))).collect();
    out.latencies = msys.obs().latency_snapshots();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_buries_far_side_and_heal_resurrects_everyone() {
        let out = run_partition(&PartitionConfig::standard(5));
        assert!(out.far_side > 0, "the cut must isolate someone: {out:?}");
        assert!(out.wrongful_deaths > 0, "far-side nodes must be wrongfully buried: {out:?}");
        assert_eq!(out.rejoined, out.wrongful_deaths, "every funeral reversed: {out:?}");
        assert!(out.refutations > 0, "refutations must be broadcast");
        assert!(out.rejoin_messages > 0, "rejoins travel as messages");
        assert!(out.reconciled, "split-brain records reconcile to the incarnation maximum");
        assert!(out.delivery_recovered(0.01), "post-heal delivery within 1%: {out:?}");
    }

    #[test]
    fn same_seed_twice_is_identical() {
        let cfg = PartitionConfig::standard(9);
        assert_eq!(run_partition(&cfg), run_partition(&cfg));
    }

    #[test]
    fn no_partition_means_no_wrongful_deaths() {
        let mut cfg = PartitionConfig::standard(7);
        cfg.partition_rounds = 0;
        let out = run_partition(&cfg);
        assert_eq!(out.wrongful_deaths, 0);
        assert_eq!(out.rejoined, 0);
        assert_eq!(out.refutations, 0);
        assert_eq!(out.rejoin_messages, 0);
    }
}
