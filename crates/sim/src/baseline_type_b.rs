//! The Type B baseline: an HS-P2P deployed over Mobile IP (paper Table 1).
//!
//! Mobile IP gives the overlay a transparent view — overlay keys and
//! "home addresses" never change — but at the network layer every packet
//! to a mobile node takes the **triangular route** through its home
//! agent: sender → home agent → care-of address. Home agents are also
//! single points of failure: when one dies, its mobile node is
//! unreachable until the agent recovers, no matter how healthy the
//! overlay is. Both properties are what Table 1's "Poor"
//! reliability/performance entries for Type B summarize, and both are
//! modelled here quantitatively.

use std::collections::HashMap;
use std::sync::Arc;

use bristle_netsim::attach::{AttachmentMap, HostId};
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::RouterId;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
use bristle_overlay::config::RingConfig;
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, Meter};
use bristle_overlay::ring::{RingDht, RingError};

/// Outcome of routing one message in a Type B system.
#[derive(Debug, Clone)]
pub struct TypeBRoute {
    /// Overlay hops taken.
    pub hops: usize,
    /// Total physical cost actually paid (with triangular detours).
    pub path_cost: u64,
    /// Physical cost an oracle with direct addresses would have paid.
    pub direct_cost: u64,
    /// Whether the message arrived (false when a home agent on the path
    /// is down).
    pub delivered: bool,
}

impl TypeBRoute {
    /// The triangular-routing stretch factor (≥ 1; 1 when no mobile hops).
    pub fn stretch(&self) -> f64 {
        if self.direct_cost == 0 {
            1.0
        } else {
            self.path_cost as f64 / self.direct_cost as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct MobileState {
    home_agent: RouterId,
    agent_alive: bool,
}

/// A Type B HS-P2P deployment (overlay over Mobile IP).
pub struct TypeBSystem {
    /// The overlay; from its perspective nobody ever moves.
    pub dht: RingDht<Vec<u8>>,
    /// Host attachments (care-of addresses).
    pub attachments: AttachmentMap,
    /// Message accounting.
    pub meter: Meter,
    dcache: Arc<DistanceCache>,
    stub_routers: Vec<RouterId>,
    rng: Pcg64,
    mobiles: HashMap<Key, MobileState>,
    hosts: HashMap<Key, HostId>,
}

impl TypeBSystem {
    /// Builds a Type B system. Every mobile node is assigned a home agent
    /// at a random stub router (its "home network").
    pub fn build(
        seed: u64,
        n_stationary: usize,
        n_mobile: usize,
        topology: &TransitStubConfig,
    ) -> Self {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut topo_rng = rng.split(1);
        let topo = TransitStubTopology::generate(topology, &mut topo_rng);
        let stub_routers = topo.stub_routers().to_vec();
        let dcache = Arc::new(DistanceCache::new(Arc::new(topo.into_graph()), 4096));
        let mut sys = TypeBSystem {
            dht: RingDht::new(RingConfig::tornado()),
            attachments: AttachmentMap::new(),
            meter: Meter::new(),
            dcache,
            stub_routers,
            rng,
            mobiles: HashMap::new(),
            hosts: HashMap::new(),
        };
        for i in 0..n_stationary + n_mobile {
            let router = *sys.rng.choose(&sys.stub_routers);
            let host = sys.attachments.attach_new(router);
            let key = loop {
                let k = Key::random(&mut sys.rng);
                if !sys.dht.contains(k) {
                    break k;
                }
            };
            sys.dht.insert(key, host, 1).expect("fresh key");
            sys.hosts.insert(key, host);
            if i >= n_stationary {
                // The home agent sits at the node's *initial* network.
                sys.mobiles.insert(key, MobileState { home_agent: router, agent_alive: true });
            }
        }
        let mut wire_rng = sys.rng.split(2);
        sys.dht.build_all_tables(&sys.attachments, &sys.dcache, &mut wire_rng);
        sys
    }

    /// Keys of the mobile nodes.
    pub fn mobile_keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self.mobiles.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Keys of the stationary nodes.
    pub fn stationary_keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self.dht.keys().filter(|k| !self.mobiles.contains_key(k)).collect();
        v.sort_unstable();
        v
    }

    /// The distance oracle.
    pub fn distances(&self) -> &DistanceCache {
        &self.dcache
    }

    /// Moves a mobile node to a random new care-of address and registers
    /// it with the home agent (one binding-update message). The overlay
    /// never hears about it. Returns the registration cost.
    pub fn move_node(&mut self, key: Key) -> Result<u64, RingError> {
        let state = *self.mobiles.get(&key).ok_or(RingError::UnknownNode(key))?;
        let host = self.hosts[&key];
        let mut move_rng = self.rng.split(3);
        let att = self.attachments.move_host_random(host, &self.stub_routers, &mut move_rng);
        let cost = self.dcache.distance(att.router, state.home_agent);
        self.meter.record(MessageKind::Update, cost);
        Ok(cost)
    }

    /// Kills (or revives) a node's home agent.
    pub fn set_agent_alive(&mut self, key: Key, alive: bool) {
        if let Some(s) = self.mobiles.get_mut(&key) {
            s.agent_alive = alive;
        }
    }

    /// Cost of physically delivering one packet to `key` from `from_router`,
    /// or `None` when the node is unreachable (agent down).
    fn delivery_cost(&self, from_router: RouterId, key: Key) -> Option<u64> {
        let actual = self.attachments.router(self.hosts[&key]);
        match self.mobiles.get(&key) {
            None => Some(self.dcache.distance(from_router, actual)),
            Some(state) => {
                if !state.agent_alive {
                    return None;
                }
                // Triangular: sender → home agent → care-of address.
                Some(
                    self.dcache.distance(from_router, state.home_agent)
                        + self.dcache.distance(state.home_agent, actual),
                )
            }
        }
    }

    /// Routes a message from `src` toward `target` through the overlay,
    /// paying Mobile IP's triangular cost on every hop to a mobile node.
    pub fn route(&mut self, src: Key, target: Key) -> Result<TypeBRoute, RingError> {
        let mut cur = src;
        let mut hops = 0usize;
        let mut path_cost = 0u64;
        let mut direct_cost = 0u64;
        let mut delivered = true;
        while let Some(next) = self.dht.next_hop(cur, target)? {
            let cur_router = self.attachments.router(self.hosts[&cur]);
            let next_router = self.attachments.router(self.hosts[&next]);
            let direct = self.dcache.distance(cur_router, next_router);
            match self.delivery_cost(cur_router, next) {
                Some(cost) => {
                    self.meter.record(MessageKind::RouteHop, cost);
                    path_cost += cost;
                    direct_cost += direct;
                    hops += 1;
                    cur = next;
                }
                None => {
                    delivered = false;
                    break;
                }
            }
        }
        Ok(TypeBRoute { hops, path_cost, direct_cost, delivered })
    }

    /// Average stretch over many sampled routes between random node pairs.
    pub fn sample_stretch(&mut self, samples: usize) -> f64 {
        let keys: Vec<Key> = self.dht.keys().collect();
        let mut total = 0.0;
        let mut n = 0usize;
        let mut rng = self.rng.split(4);
        for _ in 0..samples {
            let a = *rng.choose(&keys);
            let b = *rng.choose(&keys);
            if a == b {
                continue;
            }
            if let Ok(r) = self.route(a, b) {
                if r.delivered && r.direct_cost > 0 {
                    total += r.stretch();
                    n += 1;
                }
            }
        }
        if n == 0 {
            1.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(seed: u64) -> TypeBSystem {
        TypeBSystem::build(seed, 30, 15, &TransitStubConfig::tiny())
    }

    #[test]
    fn build_assigns_home_agents() {
        let sys = system(1);
        assert_eq!(sys.mobile_keys().len(), 15);
        assert_eq!(sys.stationary_keys().len(), 30);
        assert_eq!(sys.dht.len(), 45);
    }

    #[test]
    fn overlay_identity_survives_moves() {
        let mut sys = system(2);
        let m = sys.mobile_keys()[0];
        sys.move_node(m).unwrap();
        sys.move_node(m).unwrap();
        assert!(sys.dht.contains(m), "Mobile IP keeps overlay identity");
    }

    #[test]
    fn triangular_routing_costs_more_after_moving() {
        let mut sys = system(3);
        // Move every mobile node away from its home network, then compare
        // stretch: it must exceed 1 (triangles are real detours).
        for m in sys.mobile_keys() {
            sys.move_node(m).unwrap();
        }
        let stretch = sys.sample_stretch(300);
        assert!(stretch > 1.02, "stretch {stretch} should exceed 1 after moves");
    }

    #[test]
    fn stationary_only_routes_have_no_stretch() {
        let mut sys = TypeBSystem::build(4, 30, 0, &TransitStubConfig::tiny());
        let stretch = sys.sample_stretch(200);
        assert!((stretch - 1.0).abs() < 1e-9, "no mobiles → no triangles, got {stretch}");
    }

    #[test]
    fn dead_agent_makes_node_unreachable() {
        let mut sys = system(5);
        let m = sys.mobile_keys()[0];
        let src = sys.stationary_keys()[0];
        sys.set_agent_alive(m, false);
        // Routes that must hop *through or into* m fail; route directly to
        // m's key (owner is m itself).
        let r = sys.route(src, m).unwrap();
        if sys.dht.owner(m).unwrap() == m {
            assert!(!r.delivered, "agent down → unreachable");
        }
        sys.set_agent_alive(m, true);
        let r = sys.route(src, m).unwrap();
        assert!(r.delivered);
    }

    #[test]
    fn move_charges_binding_update() {
        let mut sys = system(6);
        let m = sys.mobile_keys()[0];
        let before = sys.meter.count(MessageKind::Update);
        sys.move_node(m).unwrap();
        assert_eq!(sys.meter.count(MessageKind::Update), before + 1);
    }
}
