//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints its results through a [`Table`], so the
//! regenerated figures/tables look uniform and are easy to diff against
//! EXPERIMENTS.md.

/// A fixed-width text table with a title, header row, and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals (the experiments' standard precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row(vec!["1".into(), "10.00".into()]);
        t.row(vec!["100".into(), "3.14".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
        // Right-aligned: both data lines have equal width.
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_rejected() {
        Table::new("t", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(f3(2.0), "2.000");
        assert_eq!(pct(0.1234), "12.3%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("empty", &["col"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 3);
    }
}
