//! Churn-resilience scenario: a message-driven Bristle system under
//! joins, graceful leaves, and silent crashes on a lossy transport.
//!
//! Each scenario event draws one [`ChurnAction`], then runs the full
//! detect-and-heal loop: heartbeat rounds over the message-passing driver
//! until every silent crash is confirmed, [`confirm_and_heal`] for each
//! confirmation (LDT re-grafting, registration and lease pruning, record
//! withdrawal), followed by a measurement batch of `_discovery`
//! operations and mobile-layer routes. Occasionally a mobile node moves
//! *silently* (its attachment changes without a republish), planting the
//! stale records the discovery batch then surfaces and repairs.
//!
//! Everything is seeded: two runs with the same [`ResilienceConfig`]
//! produce identical [`ResilienceOutcome`]s, meter tallies included.
//!
//! [`ChurnAction`]: crate::churn::ChurnAction
//! [`confirm_and_heal`]: MessagingBristleSystem::confirm_and_heal

use std::collections::BTreeSet;

use bristle_core::config::BristleConfig;
use bristle_core::naming::Mobility;
use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::addr::NetAddr;
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, ALL_KINDS};
use bristle_overlay::obs::Snapshot;
use bristle_proto::transport::FaultConfig;

use crate::churn::{ChurnAction, ChurnModel};
use crate::messaging::MessagingBristleSystem;

/// Parameters of one churn-resilience run.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Seed for the system build, the transport, and the scenario draws.
    pub seed: u64,
    /// Stationary population at build time.
    pub stationary: usize,
    /// Mobile population at build time.
    pub mobile: usize,
    /// Churn mix (only the weights matter; events are drawn per step).
    pub churn: ChurnModel,
    /// Transport drop probability.
    pub loss: f64,
    /// Scenario events (one churn draw + measurement batch each).
    pub events: usize,
    /// Message-passing routes measured per event.
    pub routes_per_event: usize,
    /// `_discovery` operations measured per event.
    pub discoveries_per_event: usize,
    /// Leave/Fail events never shrink the stationary layer below this.
    pub min_stationary: usize,
    /// Leave/Fail events never shrink the mobile population below this.
    pub min_mobile: usize,
    /// Adversarial fault placement: halfway through the run, crash the
    /// stationary node that is record-primary for the most mobile
    /// subjects. Random churn almost never hits the primary (clustered
    /// naming concentrates ownership on the band boundary), yet the
    /// failover path is exactly what a resilience run must exercise.
    pub assassinate_primary: bool,
}

impl ResilienceConfig {
    /// The standard acceptance-scale run: a small-but-structured system,
    /// balanced churn, 10% message loss.
    pub fn standard(seed: u64) -> Self {
        ResilienceConfig {
            seed,
            stationary: 36,
            mobile: 14,
            churn: ChurnModel::balanced(50),
            loss: 0.10,
            events: 18,
            routes_per_event: 4,
            discoveries_per_event: 2,
            min_stationary: 8,
            min_mobile: 4,
            assassinate_primary: true,
        }
    }
}

/// What one churn-resilience run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceOutcome {
    /// Nodes that joined during the run.
    pub joins: usize,
    /// Nodes that left gracefully.
    pub leaves: usize,
    /// Nodes that crashed silently.
    pub fails: usize,
    /// Crashes confirmed dead by the heartbeat machinery.
    pub deaths_confirmed: usize,
    /// Heartbeat rounds run while at least one crash awaited confirmation
    /// (`/ deaths_confirmed` ≈ detection latency in rounds).
    pub detection_rounds: usize,
    /// LDT memberships held by confirmed-dead nodes at confirmation time
    /// (the repairs the healing pass *must* perform).
    pub repairs_expected: usize,
    /// LDT re-grafts actually reported by the healing pass.
    pub ldts_repaired: usize,
    /// Whether every repaired tree passed the root-reachability invariant.
    pub invariant_ok: bool,
    /// Message-passing routes attempted between live endpoints.
    pub routes_attempted: usize,
    /// Routes that reached their target's owner.
    pub routes_delivered: usize,
    /// `_discovery` operations measured.
    pub discoveries: usize,
    /// Discoveries answered with an address that was no longer current.
    pub stale_answers: usize,
    /// Stale answers repaired by a full `update` operation.
    pub stale_repairs: usize,
    /// Post-mortem discoveries for subjects whose record primary died.
    pub dead_primary_lookups: usize,
    /// Those discoveries that still resolved (via a surviving replica).
    pub dead_primary_hits: usize,
    /// Replica-chain probes served past the route terminus (meter delta).
    pub replica_failovers: u64,
    /// Record copies re-installed by anti-entropy reconciliation.
    pub anti_entropy_fixes: usize,
    /// Per-kind meter `(kind, count, cost)` at the end of the run.
    pub tallies: Vec<(MessageKind, u64, u64)>,
    /// Named latency-histogram snapshots from the driver's collector
    /// (micro-clock ticks; see
    /// [`ObsCollector`](crate::messaging::ObsCollector)).
    pub latencies: Vec<(&'static str, Snapshot)>,
}

impl ResilienceOutcome {
    /// Fraction of attempted routes that were delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.routes_attempted == 0 {
            1.0
        } else {
            self.routes_delivered as f64 / self.routes_attempted as f64
        }
    }
}

/// Keys of `keys` that have not silently crashed, sorted.
fn live_sorted(msys: &MessagingBristleSystem, keys: &[Key]) -> Vec<Key> {
    let mut v: Vec<Key> = keys.iter().copied().filter(|&k| !msys.is_failed(k)).collect();
    v.sort_unstable();
    v
}

/// How many live targets count `dead` among their registrants — the LDTs
/// the healing pass must re-graft (the same rule
/// [`BristleSystem::confirm_dead`](bristle_core::heal) applies).
fn ldt_memberships(sys: &BristleSystem, dead: Key) -> usize {
    sys.registry
        .iter()
        .filter(|&(t, regs)| {
            t != dead && sys.node_info(t).is_ok() && regs.iter().any(|r| r.key == dead)
        })
        .count()
}

/// The live stationary node that is record-primary for the most live
/// mobile subjects (ties broken toward the smaller key), if any node
/// currently owns a subject at all.
fn busiest_primary(msys: &MessagingBristleSystem) -> Option<Key> {
    let sys = &msys.sys;
    let mut counts: std::collections::BTreeMap<Key, usize> = std::collections::BTreeMap::new();
    for &m in sys.mobile_keys() {
        if let Ok(owner) = sys.stationary.owner(m) {
            if !msys.is_failed(owner) {
                *counts.entry(owner).or_insert(0) += 1;
            }
        }
    }
    counts.into_iter().max_by_key(|&(k, c)| (c, std::cmp::Reverse(k))).map(|(k, _)| k)
}

/// Mobile subjects whose location-record primary is `owner` right now.
fn subjects_owned_by(sys: &BristleSystem, owner: Key) -> Vec<Key> {
    let mut v: Vec<Key> = sys
        .mobile_keys()
        .iter()
        .copied()
        .filter(|&m| sys.stationary.owner(m) == Ok(owner))
        .collect();
    v.sort_unstable();
    v
}

/// Runs heartbeat rounds until every key in `pending` is confirmed (or
/// `max_rounds` pass), healing each confirmation and folding the death
/// reports into `out`. Stationary deaths additionally trigger post-mortem
/// discoveries for every subject the corpse was record-primary of.
fn detect_and_heal(
    msys: &mut MessagingBristleSystem,
    pending: &mut BTreeSet<Key>,
    max_rounds: usize,
    out: &mut ResilienceOutcome,
) {
    for _ in 0..max_rounds {
        if !pending.is_empty() {
            out.detection_rounds += 1;
        }
        let newly = msys.heartbeat_round();
        for k in newly {
            let expected = ldt_memberships(&msys.sys, k);
            let orphaned_subjects = subjects_owned_by(&msys.sys, k);
            let report = msys.confirm_and_heal(k).expect("confirmed peer is known");
            out.deaths_confirmed += 1;
            out.repairs_expected += expected;
            out.ldts_repaired += report.ldts_repaired.len();
            out.invariant_ok &= report.invariant_ok;
            pending.remove(&k);

            // The acceptance question: do records whose primary just died
            // still resolve (through a surviving replica)?
            let askers = live_sorted(msys, msys.sys.stationary_keys());
            for m in orphaned_subjects {
                if msys.is_failed(m) || msys.sys.node_info(m).is_err() {
                    continue;
                }
                let Some(&from) = askers.iter().find(|&&s| s != m) else { continue };
                out.dead_primary_lookups += 1;
                if let Ok(r) = msys.sys.discover(from, m) {
                    if r.resolved.is_some() {
                        out.dead_primary_hits += 1;
                    }
                }
            }
        }
        if pending.is_empty() {
            break;
        }
    }
}

/// Runs one churn-resilience scenario: build, churn, detect, heal,
/// measure. Deterministic in `cfg` (same config ⇒ identical outcome).
pub fn run_churn_messaging(cfg: &ResilienceConfig) -> ResilienceOutcome {
    let sys = BristleBuilder::new(cfg.seed)
        .stationary_nodes(cfg.stationary)
        .mobile_nodes(cfg.mobile)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds");
    let mut msys = MessagingBristleSystem::new(sys, FaultConfig::lossy(cfg.loss), cfg.seed ^ 0x51);
    let mut rng = Pcg64::new(cfg.seed, 0xC1A0);

    let mut out = ResilienceOutcome {
        joins: 0,
        leaves: 0,
        fails: 0,
        deaths_confirmed: 0,
        detection_rounds: 0,
        repairs_expected: 0,
        ldts_repaired: 0,
        invariant_ok: true,
        routes_attempted: 0,
        routes_delivered: 0,
        discoveries: 0,
        stale_answers: 0,
        stale_repairs: 0,
        dead_primary_lookups: 0,
        dead_primary_hits: 0,
        replica_failovers: 0,
        anti_entropy_fixes: 0,
        tallies: Vec::new(),
        latencies: Vec::new(),
    };
    let failovers_before = msys.sys.meter.count(MessageKind::ReplicaFailover);
    // Crashes injected but not yet confirmed dead.
    let mut pending: BTreeSet<Key> = BTreeSet::new();

    for e in 0..cfg.events {
        // Adversarial fault placement (see [`ResilienceConfig`]): kill
        // the busiest record primary at the run's midpoint.
        if cfg.assassinate_primary && e == cfg.events / 2 {
            let live_st = live_sorted(&msys, msys.sys.stationary_keys());
            if live_st.len() > cfg.min_stationary {
                if let Some(primary) = busiest_primary(&msys) {
                    msys.fail_silently(primary);
                    pending.insert(primary);
                    out.fails += 1;
                }
            }
        }

        // One churn draw per event (the model's weights pick the action;
        // its interval is a real-time notion the event loop abstracts).
        if cfg.churn.is_active() {
            match cfg.churn.next_action(&mut rng) {
                ChurnAction::Join => {
                    let mobility =
                        if rng.chance(0.35) { Mobility::Mobile } else { Mobility::Stationary };
                    msys.sys.join_node(mobility).expect("join succeeds");
                    out.joins += 1;
                }
                action @ (ChurnAction::Leave | ChurnAction::Fail) => {
                    let live_st = live_sorted(&msys, msys.sys.stationary_keys());
                    let live_mob = live_sorted(&msys, msys.sys.mobile_keys());
                    let mut cands: Vec<Key> = Vec::new();
                    if live_st.len() > cfg.min_stationary {
                        cands.extend(&live_st);
                    }
                    if live_mob.len() > cfg.min_mobile {
                        cands.extend(&live_mob);
                    }
                    if !cands.is_empty() {
                        let k = cands[rng.index(cands.len())];
                        if action == ChurnAction::Leave {
                            msys.leave(k).expect("leaver is known");
                            out.leaves += 1;
                        } else {
                            msys.fail_silently(k);
                            pending.insert(k);
                            out.fails += 1;
                        }
                    }
                }
            }
        }

        // Detection: one routine round when all is quiet, a sustained
        // barrage while a silent crash is waiting to be noticed.
        let rounds = if pending.is_empty() { 1 } else { 5 };
        detect_and_heal(&mut msys, &mut pending, rounds, &mut out);

        // Every third event a mobile node moves *silently* — attachment
        // changed, nothing republished — planting a stale record.
        if e % 3 == 1 {
            let movers = live_sorted(&msys, msys.sys.mobile_keys());
            let anchors = live_sorted(&msys, msys.sys.stationary_keys());
            if let (Some(&m), false) = (movers.first(), anchors.is_empty()) {
                let host = msys.sys.node_info(m).expect("live mover").host;
                let anchor = anchors[rng.index(anchors.len())];
                let router = msys.sys.router_of(anchor).expect("live anchor");
                msys.sys.attachments.move_host(host, router);
            }
        }

        // Measurement: discoveries first (they surface staleness), then
        // message-passing routes between live endpoints.
        let subjects = live_sorted(&msys, msys.sys.mobile_keys());
        let askers = live_sorted(&msys, msys.sys.stationary_keys());
        for _ in 0..cfg.discoveries_per_event {
            if subjects.is_empty() || askers.is_empty() {
                break;
            }
            let subject = subjects[rng.index(subjects.len())];
            let from = askers[rng.index(askers.len())];
            if from == subject {
                continue;
            }
            let Ok(report) = msys.sys.discover(from, subject) else { continue };
            out.discoveries += 1;
            if let Some(addr) = report.resolved {
                let host = msys.sys.node_info(subject).expect("live subject").host;
                if addr != NetAddr::current(host, &msys.sys.attachments) {
                    out.stale_answers += 1;
                    // The mover's next update operation repairs the lie.
                    msys.sys.move_node(subject, None).expect("subject is mobile");
                    out.stale_repairs += 1;
                }
            }
        }
        let mut endpoints: Vec<Key> = msys.sys.mobile.keys().collect();
        endpoints.sort_unstable();
        endpoints.retain(|&k| !msys.is_failed(k));
        for _ in 0..cfg.routes_per_event {
            if endpoints.len() < 2 {
                break;
            }
            let src = endpoints[rng.index(endpoints.len())];
            let target = endpoints[rng.index(endpoints.len())];
            if src == target {
                continue;
            }
            out.routes_attempted += 1;
            if msys.route(src, target).is_ok() {
                out.routes_delivered += 1;
            }
        }

        msys.sys.tick(5);
        if e % 4 == 3 {
            out.anti_entropy_fixes +=
                msys.sys.anti_entropy_locations().expect("reconciliation succeeds");
        }
    }

    // Flush: confirm any crash still pending, then reconcile replicas.
    detect_and_heal(&mut msys, &mut pending, 5, &mut out);
    out.anti_entropy_fixes += msys.sys.anti_entropy_locations().expect("reconciliation succeeds");

    out.replica_failovers = msys.sys.meter.count(MessageKind::ReplicaFailover) - failovers_before;
    out.tallies =
        ALL_KINDS.iter().map(|&k| (k, msys.sys.meter.count(k), msys.sys.meter.cost(k))).collect();
    out.latencies = msys.obs().latency_snapshots();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_run_has_no_deaths_and_full_delivery() {
        let mut cfg = ResilienceConfig::standard(5);
        cfg.churn = ChurnModel::none();
        cfg.loss = 0.0;
        cfg.events = 4;
        cfg.assassinate_primary = false;
        let out = run_churn_messaging(&cfg);
        assert_eq!(out.fails, 0);
        assert_eq!(out.deaths_confirmed, 0);
        assert!(out.invariant_ok);
        assert!(out.routes_attempted > 0);
        assert_eq!(out.routes_delivered, out.routes_attempted);
        // Silent movers still plant stale records; discovery surfaces them.
        assert!(out.discoveries > 0);
    }

    #[test]
    fn same_seed_twice_is_identical() {
        let cfg = ResilienceConfig::standard(11);
        let a = run_churn_messaging(&cfg);
        let b = run_churn_messaging(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn churn_confirms_exactly_the_injected_crashes() {
        let cfg = ResilienceConfig::standard(3);
        let out = run_churn_messaging(&cfg);
        assert_eq!(out.deaths_confirmed, out.fails, "every crash must be confirmed: {out:?}");
        assert_eq!(out.ldts_repaired, out.repairs_expected);
        assert!(out.invariant_ok);
    }
}
