//! Message-passing driver: runs a [`BristleSystem`] over the
//! `bristle-proto` state machines and a fault-injecting transport.
//!
//! The function-call path in `bristle-core` computes a whole route (or
//! discovery, or update fan-out) in one synchronous call. This driver
//! replays the same protocols as *messages*: every hop is an envelope
//! submitted to a [`SimTransport`], every ack has a timeout, and lost
//! messages are retried with exponential backoff by the per-node
//! [`ProtoMachine`]s. With a perfect transport the per-kind meter tallies
//! match the function-call path exactly; under loss the extra
//! retransmissions, [`MessageKind::Timeout`]s and
//! [`MessageKind::DiscoveryRetry`]s become visible in the same meter.
//!
//! Time has two scales. The system's coarse [`Clock`](bristle_core::time::Clock)
//! (lease windows, record TTLs) stays frozen while an operation is in
//! flight, exactly as the function-call path completes a route "within"
//! one clock instant; the driver's own [`EventQueue`] runs a fine-grained
//! micro-clock for link latencies and retry timers.

use std::collections::HashMap;

use bristle_core::location::LocationRecord;
use bristle_core::naming::Mobility;
use bristle_core::registry::Registrant;
use bristle_core::system::BristleSystem;
use bristle_core::time::SimTime;
use bristle_netsim::graph::RouterId;
use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;
use bristle_proto::machine::{
    Completion, Event, NodeEnv, Output, ProtoMachine, RetryPolicy, TimerKind,
};
use bristle_proto::transport::{Delivery, FaultConfig, SimTransport, Transport};
use bristle_proto::wire::WireAddr;

use crate::engine::EventQueue;

/// Hard cap on events processed per driver operation; hitting it means a
/// protocol bug (unbounded retry), not a slow network.
const MAX_EVENTS_PER_OP: u64 = 2_000_000;

/// Events on the driver's micro-clock.
enum MsgEvent {
    /// Bytes arrive at a router (discarded if the destination host has
    /// moved away from it in the meantime).
    Deliver(Delivery),
    /// A machine's retry timer expires.
    Timer {
        /// The machine the timer belongs to.
        node: Key,
        /// The timer payload.
        kind: TimerKind,
    },
    /// A scheduled mid-operation disruption: move a mobile node.
    Move {
        /// The node to move.
        key: Key,
        /// Destination router (random when `None`).
        to: Option<RouterId>,
    },
}

/// Why a messaging operation did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessagingError {
    /// Every retry of some hop was exhausted; the route died at `at`.
    RouteFailed {
        /// Route originator.
        origin: Key,
        /// Originator-scoped route id.
        route_id: u64,
        /// Node at which forwarding gave up.
        at: Key,
    },
    /// The event queue drained without the operation completing.
    Stalled,
    /// The per-operation event budget was hit — a retry loop is not
    /// converging.
    Runaway,
    /// The named node is not part of the system.
    UnknownNode(Key),
}

impl std::fmt::Display for MessagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessagingError::RouteFailed { origin, route_id, at } => {
                write!(f, "route {route_id} from {origin} failed at {at}: retries exhausted")
            }
            MessagingError::Stalled => {
                write!(f, "event queue drained before the operation completed")
            }
            MessagingError::Runaway => {
                write!(f, "event budget exhausted: retry loop not converging")
            }
            MessagingError::UnknownNode(k) => write!(f, "unknown node {k}"),
        }
    }
}

impl std::error::Error for MessagingError {}

/// What a completed messaging route reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessagingRouteReport {
    /// Originator-scoped route id.
    pub route_id: u64,
    /// Micro-clock time the route reached its target's owner.
    pub delivered_at: SimTime,
    /// Events processed while the route was in flight.
    pub events: u64,
}

/// The machines' window onto the shared system: every [`NodeEnv`] query
/// or commit maps onto the exact state the function-call path reads and
/// writes, which is what makes the meter tallies comparable.
struct SystemEnv<'a> {
    sys: &'a mut BristleSystem,
}

impl NodeEnv for SystemEnv<'_> {
    fn next_hop_mobile(&self, cur: Key, target: Key) -> Option<Key> {
        self.sys.mobile.next_hop(cur, target).ok().flatten()
    }

    fn next_hop_stationary(&self, cur: Key, target: Key) -> Option<Key> {
        self.sys.stationary.next_hop(cur, target).ok().flatten()
    }

    fn is_mobile(&self, key: Key) -> bool {
        self.sys.is_mobile(key)
    }

    fn entry_stationary(&self, from: Key) -> Key {
        self.sys.entry_stationary_for(from).unwrap_or(from)
    }

    fn replicas(&self, subject: Key) -> Vec<Key> {
        self.sys
            .stationary
            .replica_set(subject, self.sys.config().location_replicas)
            .unwrap_or_default()
    }

    fn current_addr(&self, key: Key) -> WireAddr {
        let host = self.sys.node_info(key).expect("known node").host;
        WireAddr::from_net(bristle_overlay::addr::NetAddr::current(host, &self.sys.attachments))
    }

    fn addr_current(&self, addr: WireAddr) -> bool {
        addr.to_net().is_valid(&self.sys.attachments)
    }

    fn believed_addr(&self, holder: Key, subject: Key) -> Option<WireAddr> {
        let cached = self.sys.mobile.node(holder).ok()?.entry(subject).and_then(|p| p.addr)?;
        if self.sys.leases.is_fresh(holder, subject, self.sys.clock.now()) {
            Some(WireAddr::from_net(cached))
        } else {
            None
        }
    }

    fn location_record(&self, holder: Key, subject: Key) -> Option<WireAddr> {
        let rec = self.sys.stationary.node(holder).ok()?.store.get(&subject)?;
        Some(WireAddr::from_net(rec.addr))
    }

    fn distance(&self, a: RouterId, b: RouterId) -> u64 {
        self.sys.distances().distance(a, b)
    }

    fn meter(&mut self, kind: MessageKind, cost: u64) {
        self.sys.meter.record(kind, cost);
    }

    fn bump(&mut self, kind: MessageKind) {
        self.sys.meter.bump(kind, 1);
    }

    fn commit_resolution(&mut self, asker: Key, subject: Key, addr: WireAddr) {
        let now = self.sys.clock.now();
        let ttl = self.sys.config().lease_ttl;
        self.sys.leases.grant(asker, subject, now, ttl);
        if let Ok(node) = self.sys.mobile.node_mut(asker) {
            if let Some(pair) = node.entry_mut(subject) {
                pair.addr = Some(addr.to_net());
            }
        }
    }

    fn apply_update(&mut self, receiver: Key, subject: Key, addr: WireAddr, _seq: u64) {
        let now = self.sys.clock.now();
        let ttl = self.sys.config().lease_ttl;
        self.sys.leases.grant(receiver, subject, now, ttl);
        if let Ok(node) = self.sys.mobile.node_mut(receiver) {
            if let Some(pair) = node.entry_mut(subject) {
                pair.addr = Some(addr.to_net());
            }
        }
    }

    fn apply_register(&mut self, target: Key, who: Key, capacity: u32) {
        self.sys.registry.register(Registrant::new(who, capacity), target);
    }

    fn commit_register(&mut self, who: Key, target: Key) {
        let now = self.sys.clock.now();
        let ttl = self.sys.config().lease_ttl;
        self.sys.leases.grant(who, target, now, ttl);
    }

    fn apply_publish(&mut self, holder: Key, subject: Key, addr: WireAddr, seq: u64) {
        let record = LocationRecord {
            subject,
            addr: addr.to_net(),
            seq,
            published_at: self.sys.clock.now(),
            ttl: self.sys.config().location_ttl,
        };
        if let Ok(node) = self.sys.stationary.node_mut(holder) {
            let keep = node.store.get(&subject).map(|r| r.seq <= seq).unwrap_or(true);
            if keep {
                node.store.insert(subject, record);
            }
        }
    }
}

/// A [`BristleSystem`] driven entirely by messages over a
/// [`SimTransport`].
pub struct MessagingBristleSystem {
    /// The shared system state (routing tables, leases, meter, clock).
    pub sys: BristleSystem,
    transport: SimTransport,
    machines: HashMap<Key, ProtoMachine>,
    queue: EventQueue<MsgEvent>,
    policy: RetryPolicy,
    completions: Vec<Completion>,
}

impl MessagingBristleSystem {
    /// Wraps `sys` with per-node machines and a seeded transport with the
    /// given fault schedule.
    pub fn new(sys: BristleSystem, faults: FaultConfig, seed: u64) -> Self {
        Self::with_policy(sys, faults, seed, RetryPolicy::default())
    }

    /// Like [`Self::new`] with an explicit retry policy. The policy's
    /// timeouts must comfortably exceed the worst link latency or a
    /// loss-free run will retransmit spuriously and break meter parity.
    pub fn with_policy(
        sys: BristleSystem,
        faults: FaultConfig,
        seed: u64,
        policy: RetryPolicy,
    ) -> Self {
        let transport = SimTransport::new(sys.distances_arc(), faults, seed);
        MessagingBristleSystem {
            sys,
            transport,
            machines: HashMap::new(),
            queue: EventQueue::new(),
            policy,
            completions: Vec::new(),
        }
    }

    /// The transport (for its trace).
    pub fn transport(&self) -> &SimTransport {
        &self.transport
    }

    /// The driver's micro-clock.
    pub fn micro_now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules a mobile node's move at micro-time `at`, to be executed
    /// while a later operation's event loop runs past that time.
    pub fn schedule_move(&mut self, at: SimTime, key: Key, to: Option<RouterId>) {
        self.queue.schedule_at(at, MsgEvent::Move { key, to });
    }

    /// Routes a message from `src` toward `target` entirely by message
    /// passing, driving the event loop until the route completes or
    /// fails. Lost hops time out and retransmit; hops to a moved mobile
    /// peer fall back to a `_discovery` through the stationary layer.
    pub fn route(&mut self, src: Key, target: Key) -> Result<MessagingRouteReport, MessagingError> {
        if self.sys.node_info(src).is_err() {
            return Err(MessagingError::UnknownNode(src));
        }
        let now = self.queue.now();
        let (route_id, out) = {
            let machine =
                self.machines.entry(src).or_insert_with(|| ProtoMachine::new(src, self.policy));
            let mut env = SystemEnv { sys: &mut self.sys };
            machine.start_route(now, &mut env, target)
        };
        self.dispatch(src, out);
        let mut events = 0u64;
        loop {
            if let Some(done) = self.take_route_completion(src, route_id)? {
                return Ok(MessagingRouteReport { route_id, delivered_at: done, events });
            }
            if events >= MAX_EVENTS_PER_OP {
                return Err(MessagingError::Runaway);
            }
            if !self.step() {
                return Err(MessagingError::Stalled);
            }
            events += 1;
        }
    }

    /// Disseminates `key`'s current address through its LDT by reliable
    /// Update messages (the message-passing `advertise_update`), running
    /// the event loop until every edge is acked or exhausts its retries.
    /// Returns the number of acknowledged edges.
    pub fn disseminate_update(&mut self, key: Key) -> Result<usize, MessagingError> {
        let info = *self.sys.node_info(key).map_err(|_| MessagingError::UnknownNode(key))?;
        let ldt = self.sys.build_ldt(key).map_err(|_| MessagingError::UnknownNode(key))?;
        let addr = WireAddr::from_net(bristle_overlay::addr::NetAddr::current(
            info.host,
            &self.sys.attachments,
        ));
        let mut by_parent: Vec<(Key, Vec<Key>)> = Vec::new();
        for (parent, child) in ldt.edges() {
            match by_parent.iter_mut().find(|(p, _)| *p == parent) {
                Some((_, cs)) => cs.push(child),
                None => by_parent.push((parent, vec![child])),
            }
        }
        let mut expected = 0usize;
        for (parent, children) in by_parent {
            expected += children.len();
            let now = self.queue.now();
            let out = {
                let machine = self
                    .machines
                    .entry(parent)
                    .or_insert_with(|| ProtoMachine::new(parent, self.policy));
                let mut env = SystemEnv { sys: &mut self.sys };
                machine.start_update(now, &mut env, key, addr, info.seq, &children)
            };
            self.dispatch(parent, out);
        }
        let mut acked = 0usize;
        let mut settled = 0usize;
        let mut events = 0u64;
        while settled < expected {
            self.completions.retain(|c| match c {
                Completion::UpdateAcked { .. } => {
                    acked += 1;
                    settled += 1;
                    false
                }
                Completion::UpdateFailed { .. } => {
                    settled += 1;
                    false
                }
                _ => true,
            });
            if settled >= expected {
                break;
            }
            if events >= MAX_EVENTS_PER_OP {
                return Err(MessagingError::Runaway);
            }
            if !self.step() {
                return Err(MessagingError::Stalled);
            }
            events += 1;
        }
        Ok(acked)
    }

    /// Registers `who`'s interest in mobile `target` by message, driving
    /// the loop until the registration is acked (lease granted) or fails.
    pub fn register(&mut self, who: Key, target: Key) -> Result<(), MessagingError> {
        let info = *self.sys.node_info(who).map_err(|_| MessagingError::UnknownNode(who))?;
        if self.sys.node_info(target).map(|i| i.mobility) != Ok(Mobility::Mobile) {
            return Err(MessagingError::UnknownNode(target));
        }
        let now = self.queue.now();
        let out = {
            let machine =
                self.machines.entry(who).or_insert_with(|| ProtoMachine::new(who, self.policy));
            let mut env = SystemEnv { sys: &mut self.sys };
            machine.start_register(now, &mut env, target, info.capacity)
        };
        self.dispatch(who, out);
        let mut events = 0u64;
        loop {
            let mut done = None;
            self.completions.retain(|c| match *c {
                Completion::Registered { target: t } if t == target => {
                    done = Some(Ok(()));
                    false
                }
                Completion::RegisterFailed { target: t } if t == target => {
                    done = Some(Err(MessagingError::Stalled));
                    false
                }
                _ => true,
            });
            if let Some(r) = done {
                return r;
            }
            if events >= MAX_EVENTS_PER_OP {
                return Err(MessagingError::Runaway);
            }
            if !self.step() {
                return Err(MessagingError::Stalled);
            }
            events += 1;
        }
    }

    /// Drains every pending event (stray acks, stale timers) so the next
    /// operation starts from a quiet network.
    pub fn settle(&mut self) {
        let mut budget = MAX_EVENTS_PER_OP;
        while budget > 0 && self.step() {
            budget -= 1;
        }
        self.completions.clear();
    }

    /// Pops and handles one event. Returns false when the queue is empty.
    fn step(&mut self) -> bool {
        let Some((now, event)) = self.queue.pop() else {
            return false;
        };
        match event {
            MsgEvent::Deliver(d) => {
                // The sender addressed a router; if the destination host
                // has moved away since, the bytes black-hole there.
                let dst = d.env.dst;
                match self.sys.router_of(dst) {
                    Ok(r) if r == d.to_router => {
                        let out = {
                            let machine = self
                                .machines
                                .entry(dst)
                                .or_insert_with(|| ProtoMachine::new(dst, self.policy));
                            let mut env = SystemEnv { sys: &mut self.sys };
                            machine.poll(now, Event::Deliver(d.env), &mut env)
                        };
                        self.dispatch(dst, out);
                    }
                    _ => {}
                }
            }
            MsgEvent::Timer { node, kind } => {
                if let Some(machine) = self.machines.get_mut(&node) {
                    let out = {
                        let mut env = SystemEnv { sys: &mut self.sys };
                        machine.poll(now, Event::Timer(kind), &mut env)
                    };
                    self.dispatch(node, out);
                }
            }
            MsgEvent::Move { key, to } => {
                let _ = self.sys.move_node(key, to);
            }
        }
        true
    }

    /// Turns one machine's [`Output`] into transport sends, scheduled
    /// deliveries and armed timers.
    fn dispatch(&mut self, from: Key, out: Output) {
        let now = self.queue.now();
        let from_router = match self.sys.router_of(from) {
            Ok(r) => r,
            Err(_) => return,
        };
        for o in out.outgoing {
            let to_router = o.to_addr.router_id();
            for d in self.transport.send(now, from_router, to_router, o.env) {
                self.queue.schedule_at(d.at, MsgEvent::Deliver(d));
            }
        }
        for t in out.timers {
            self.queue.schedule_at(t.at, MsgEvent::Timer { node: from, kind: t.kind });
        }
        self.completions.extend(out.completions);
    }

    /// Scans buffered completions for this route's outcome.
    fn take_route_completion(
        &mut self,
        origin: Key,
        route_id: u64,
    ) -> Result<Option<SimTime>, MessagingError> {
        let mut found = None;
        let now = self.queue.now();
        self.completions.retain(|c| match *c {
            Completion::Delivered { origin: o, route_id: r } if o == origin && r == route_id => {
                if found.is_none() {
                    found = Some(Ok(Some(now)));
                }
                false
            }
            Completion::RouteFailed { origin: o, route_id: r, at }
                if o == origin && r == route_id =>
            {
                if found.is_none() {
                    found = Some(Err(MessagingError::RouteFailed { origin: o, route_id: r, at }));
                }
                false
            }
            _ => true,
        });
        found.unwrap_or(Ok(None))
    }
}
