//! Message-passing driver: runs a [`BristleSystem`] over the
//! `bristle-proto` state machines and a fault-injecting transport.
//!
//! The function-call path in `bristle-core` computes a whole route (or
//! discovery, or update fan-out) in one synchronous call. This driver
//! replays the same protocols as *messages*: every hop is an envelope
//! submitted to a [`SimTransport`], every ack has a timeout, and lost
//! messages are retried with exponential backoff by the per-node
//! [`ProtoMachine`]s. With a perfect transport the per-kind meter tallies
//! match the function-call path exactly; under loss the extra
//! retransmissions, [`MessageKind::Timeout`]s and
//! [`MessageKind::DiscoveryRetry`]s become visible in the same meter.
//!
//! Time has two scales. The system's coarse [`Clock`](bristle_core::time::Clock)
//! (lease windows, record TTLs) stays frozen while an operation is in
//! flight, exactly as the function-call path completes a route "within"
//! one clock instant; the driver's own [`EventQueue`] runs a fine-grained
//! micro-clock for link latencies and retry timers.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use bristle_core::arena::{KeyInterner, NodeArena};
use bristle_core::auth::{AuthDomain, VerifyPolicy};
use bristle_core::durable::WalRecord;
use bristle_core::heal::DeathReport;
use bristle_core::location::LocationRecord;
use bristle_core::naming::Mobility;
use bristle_core::registry::Registrant;
use bristle_core::rejoin::RejoinReport;
use bristle_core::restart::RestartReport;
use bristle_core::system::BristleSystem;
use bristle_core::time::SimTime;
use bristle_netsim::graph::RouterId;
use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;
use bristle_overlay::obs::{
    EventSink, FlightRecorder, Histogram as LatencyHistogram, ObsEvent, ObsEventKind, Snapshot,
};
use bristle_proto::failure::FailurePolicy;
use bristle_proto::machine::{
    Completion, Event, NodeEnv, Output, ProtoMachine, RetryPolicy, TimerKind,
};
use bristle_proto::rto::RtoConfig;
use bristle_proto::transport::{
    Degradation, Delivery, FaultConfig, LinkFilter, SimTransport, Transport,
};
use bristle_proto::wire::{Envelope, WireAddr, WireMessage};

use crate::engine::EventQueue;

/// Hard cap on events processed per driver operation; hitting it means a
/// protocol bug (unbounded retry), not a slow network.
const MAX_EVENTS_PER_OP: u64 = 2_000_000;

/// Events on the driver's micro-clock.
enum MsgEvent {
    /// Bytes arrive at a router (discarded if the destination host has
    /// moved away from it in the meantime).
    Deliver(Delivery),
    /// A machine's retry timer expires.
    Timer {
        /// The machine the timer belongs to.
        node: Key,
        /// The timer payload.
        kind: TimerKind,
    },
    /// A scheduled mid-operation disruption: move a mobile node.
    Move {
        /// The node to move.
        key: Key,
        /// Destination router (random when `None`).
        to: Option<RouterId>,
    },
    /// A scheduled mid-operation disruption: a node crashes silently.
    Fail {
        /// The node that dies.
        key: Key,
    },
    /// A scheduled network partition: the transport's link filter is
    /// replaced wholesale.
    Partition(LinkFilter),
    /// A scheduled partition heal: every link works again.
    Heal,
    /// A scheduled fail-slow script lands on a node (resolved to its
    /// router at apply time, so it follows the node's current seat).
    DegradeNode {
        /// The node that starts failing slow.
        key: Key,
        /// The script.
        degradation: Degradation,
    },
    /// A scheduled fail-slow script lands on the directed link between
    /// two nodes' routers.
    DegradeLink {
        /// Sending side.
        from: Key,
        /// Receiving side.
        to: Key,
        /// The script.
        degradation: Degradation,
    },
    /// A scheduled lift of every fail-slow script.
    HealDegradations,
}

/// Why a messaging operation did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessagingError {
    /// Every retry of some hop was exhausted; the route died at `at`.
    RouteFailed {
        /// Route originator.
        origin: Key,
        /// Originator-scoped route id.
        route_id: u64,
        /// Node at which forwarding gave up.
        at: Key,
    },
    /// The event queue drained without the operation completing.
    Stalled,
    /// The per-operation event budget was hit — a retry loop is not
    /// converging.
    Runaway,
    /// The named node is not part of the system.
    UnknownNode(Key),
}

impl std::fmt::Display for MessagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessagingError::RouteFailed { origin, route_id, at } => {
                write!(f, "route {route_id} from {origin} failed at {at}: retries exhausted")
            }
            MessagingError::Stalled => {
                write!(f, "event queue drained before the operation completed")
            }
            MessagingError::Runaway => {
                write!(f, "event budget exhausted: retry loop not converging")
            }
            MessagingError::UnknownNode(k) => write!(f, "unknown node {k}"),
        }
    }
}

impl std::error::Error for MessagingError {}

/// One reversed funeral: when the node was wrongfully buried and when
/// the rejoin restored it (micro-clock times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinRecord {
    /// The resurrected node.
    pub key: Key,
    /// Micro-time of the wrongful funeral.
    pub buried_at: SimTime,
    /// Micro-time the funeral was reversed.
    pub rejoined_at: SimTime,
    /// The incarnation the node lives at after the rejoin.
    pub incarnation: u64,
}

/// Driver bookkeeping for a funeral run on a node whose machine was
/// still alive (unreachable, not crashed).
struct WrongfulBurial {
    /// The corpse's own incarnation at burial; any higher incarnation
    /// observed later proves it refuted the verdict.
    incarnation: u64,
    /// Micro-time of the funeral.
    at: SimTime,
    /// Watchers that held the death verdict — the nodes whose obituary
    /// the corpse must eventually receive.
    announcers: Vec<Key>,
}

/// What a completed messaging route reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessagingRouteReport {
    /// Originator-scoped route id.
    pub route_id: u64,
    /// Micro-clock time the route reached its target's owner.
    pub delivered_at: SimTime,
    /// Events processed while the route was in flight.
    pub events: u64,
}

/// How many structured events the driver's flight recorder retains.
/// Large enough to hold a whole operation's causal neighborhood at the
/// paper's scales; old events are overwritten (and counted) beyond it.
const FLIGHT_RECORDER_CAPACITY: usize = 4096;

/// Driver-side observability state: the flight recorder plus the
/// per-operation latency histograms the run reports are built from.
/// All latencies are micro-clock ticks (the driver's [`EventQueue`]
/// time scale, not the coarse lease clock).
#[derive(Debug)]
pub struct ObsCollector {
    /// Bounded ring of recent structured protocol events.
    pub flight: FlightRecorder,
    /// Route start → delivery-at-owner latency.
    pub route_latency: LatencyHistogram,
    /// `_discovery` session start → resolution (or abandonment) latency.
    pub discovery_latency: LatencyHistogram,
    /// Update-dissemination start → every edge settled latency.
    pub dissemination_latency: LatencyHistogram,
    /// Failure-detection latency: first suspicion → confirmed dead.
    pub detection_latency: LatencyHistogram,
    /// Partition-recovery latency: wrongful burial → funeral reversed.
    pub rejoin_latency: LatencyHistogram,
    /// Micro-time each peer was first suspected, pending confirmation.
    suspected_at: HashMap<Key, u64>,
}

impl Default for ObsCollector {
    fn default() -> Self {
        ObsCollector {
            flight: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            route_latency: LatencyHistogram::new(),
            discovery_latency: LatencyHistogram::new(),
            dissemination_latency: LatencyHistogram::new(),
            detection_latency: LatencyHistogram::new(),
            rejoin_latency: LatencyHistogram::new(),
            suspected_at: HashMap::new(),
        }
    }
}

impl ObsCollector {
    /// Digests one machine-emitted event: records it in the flight
    /// recorder and folds resolution latencies / suspicion timestamps
    /// into the histograms.
    fn observe(&mut self, event: ObsEvent) {
        match event.kind {
            ObsEventKind::DiscoveryResolved { elapsed, .. }
            | ObsEventKind::DiscoveryFailed { elapsed, .. } => {
                self.discovery_latency.record(elapsed);
            }
            ObsEventKind::Suspect { peer, .. } => {
                self.suspected_at.entry(peer).or_insert(event.at);
            }
            _ => {}
        }
        self.flight.record(event);
    }

    /// Records suspect→confirmed latency for `key` if a machine reported
    /// suspicion of it earlier (first suspicion wins), and forgets the
    /// pending suspicion either way.
    fn confirm_detection(&mut self, key: Key, now: u64) {
        if let Some(at) = self.suspected_at.remove(&key) {
            self.detection_latency.record(now.saturating_sub(at));
        }
    }

    /// Named snapshots of every latency histogram, in report order.
    pub fn latency_snapshots(&self) -> Vec<(&'static str, Snapshot)> {
        vec![
            ("route", self.route_latency.snapshot()),
            ("discovery", self.discovery_latency.snapshot()),
            ("dissemination", self.dissemination_latency.snapshot()),
            ("detection", self.detection_latency.snapshot()),
            ("rejoin", self.rejoin_latency.snapshot()),
        ]
    }
}

/// The machines' window onto the shared system: every [`NodeEnv`] query
/// or commit maps onto the exact state the function-call path reads and
/// writes, which is what makes the meter tallies comparable.
pub(crate) struct SystemEnv<'a> {
    pub(crate) sys: &'a mut BristleSystem,
    /// Last known wire addresses of nodes that crashed or left: senders
    /// may still address them (that is the point of crash *detection*),
    /// and the transport needs a router to deliver the doomed bytes to.
    pub(crate) tombstones: &'a HashMap<Key, WireAddr>,
    /// Destination for machine-emitted structured events.
    pub(crate) obs: &'a mut ObsCollector,
    /// The run's authentication configuration (defaults are the seed
    /// deployment: unsealed frames, nothing verified).
    pub(crate) auth: AuthConfig,
    /// Peers some watcher currently holds degraded (gray-failing):
    /// replica sets are reordered healthy-first so placement prefers
    /// responsive replicas without shrinking the set. Empty by default,
    /// which leaves ordering untouched.
    pub(crate) degraded: &'a BTreeSet<Key>,
}

/// Authentication configuration of one messaging run, shared by every
/// node's environment.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AuthConfig {
    /// The deployment's key-derivation oracle (`None` = pre-auth seed).
    pub(crate) domain: Option<AuthDomain>,
    /// How strictly received frames are checked.
    pub(crate) policy: VerifyPolicy,
}

/// Where mail for a node nobody ever knew goes: a syntactically valid
/// address whose epoch can never match a live attachment. Router 0 always
/// exists in a generated topology.
const DEAD_LETTER_ADDR: WireAddr = WireAddr { host: u32::MAX, router: 0, epoch: u64::MAX };

/// Fetches (or creates, under the session's policies) the machine for
/// `node`. A free function so call sites can keep borrowing the driver's
/// other fields disjointly. `ids` is the driver's own interner: machines
/// live in a flat arena indexed by it, so the steady-state lookup on the
/// delivery hot path is one hash plus an array index.
fn machine_entry<'m>(
    ids: &mut KeyInterner,
    machines: &'m mut NodeArena<ProtoMachine>,
    node: Key,
    policy: RetryPolicy,
    fpolicy: FailurePolicy,
    rto: Option<RtoConfig>,
) -> &'m mut ProtoMachine {
    let idx = ids.intern(node);
    if !machines.contains(idx) {
        let mut m = ProtoMachine::new(node, policy);
        m.set_failure_policy(fpolicy);
        m.set_adaptive_rto(rto);
        machines.insert(idx, m);
    }
    machines.get_mut(idx).expect("just ensured")
}

impl NodeEnv for SystemEnv<'_> {
    fn next_hop_mobile(&self, cur: Key, target: Key) -> Option<Key> {
        self.sys.mobile.next_hop(cur, target).ok().flatten()
    }

    fn next_hop_stationary(&self, cur: Key, target: Key) -> Option<Key> {
        self.sys.stationary.next_hop(cur, target).ok().flatten()
    }

    fn is_mobile(&self, key: Key) -> bool {
        self.sys.is_mobile(key)
    }

    fn entry_stationary(&self, from: Key) -> Key {
        self.sys.entry_stationary_for(from).unwrap_or(from)
    }

    fn replicas(&self, subject: Key) -> Vec<Key> {
        let mut set = self
            .sys
            .stationary
            .replica_set(subject, self.sys.config().location_replicas)
            .unwrap_or_default();
        // Latency-aware failover: a degraded-but-alive replica keeps its
        // slot (the set is never shrunk — a funeral needs real evidence)
        // but moves behind its healthy peers. The stable sort keeps ring
        // order within each class, and an empty degraded set leaves the
        // historical order byte-identical.
        if !self.degraded.is_empty() {
            set.sort_by_key(|k| self.degraded.contains(k));
        }
        set
    }

    fn current_addr(&self, key: Key) -> WireAddr {
        match self.sys.node_info(key) {
            Ok(info) => WireAddr::from_net(bristle_overlay::addr::NetAddr::current(
                info.host,
                &self.sys.attachments,
            )),
            Err(_) => self.tombstones.get(&key).copied().unwrap_or(DEAD_LETTER_ADDR),
        }
    }

    fn addr_current(&self, addr: WireAddr) -> bool {
        addr.to_net().is_valid(&self.sys.attachments)
    }

    fn believed_addr(&self, holder: Key, subject: Key) -> Option<WireAddr> {
        let cached = self.sys.mobile.node(holder).ok()?.entry(subject).and_then(|p| p.addr)?;
        if self.sys.leases.is_fresh(holder, subject, self.sys.clock.now()) {
            Some(WireAddr::from_net(cached))
        } else {
            None
        }
    }

    fn location_record(&self, holder: Key, subject: Key) -> Option<WireAddr> {
        let rec = self.sys.stationary.node(holder).ok()?.store.get(&subject)?;
        Some(WireAddr::from_net(rec.addr))
    }

    fn distance(&self, a: RouterId, b: RouterId) -> u64 {
        self.sys.distances().distance(a, b)
    }

    fn meter(&mut self, kind: MessageKind, cost: u64) {
        self.sys.meter.record(kind, cost);
    }

    fn bump(&mut self, kind: MessageKind) {
        self.sys.meter.bump(kind, 1);
    }

    fn commit_resolution(&mut self, asker: Key, subject: Key, addr: WireAddr) {
        let now = self.sys.clock.now();
        let ttl = self.sys.config().lease_ttl;
        self.sys.leases.grant(asker, subject, now, ttl);
        self.sys
            .stores
            .apply(asker, WalRecord::LeaseGrant { subject: subject.0, expires: now.plus(ttl).0 });
        if let Ok(node) = self.sys.mobile.node_mut(asker) {
            if let Some(pair) = node.entry_mut(subject) {
                pair.addr = Some(addr.to_net());
            }
        }
    }

    fn apply_update(&mut self, receiver: Key, subject: Key, addr: WireAddr, _seq: u64) {
        let now = self.sys.clock.now();
        let ttl = self.sys.config().lease_ttl;
        self.sys.leases.grant(receiver, subject, now, ttl);
        self.sys.stores.apply(
            receiver,
            WalRecord::LeaseGrant { subject: subject.0, expires: now.plus(ttl).0 },
        );
        if let Ok(node) = self.sys.mobile.node_mut(receiver) {
            if let Some(pair) = node.entry_mut(subject) {
                pair.addr = Some(addr.to_net());
            }
        }
    }

    fn apply_register(&mut self, target: Key, who: Key, capacity: u32) {
        self.sys.registry.register(Registrant::new(who, capacity), target);
        self.sys.stores.apply(who, WalRecord::Register { target: target.0, capacity });
    }

    fn commit_register(&mut self, who: Key, target: Key) {
        let now = self.sys.clock.now();
        let ttl = self.sys.config().lease_ttl;
        self.sys.leases.grant(who, target, now, ttl);
        self.sys
            .stores
            .apply(who, WalRecord::LeaseGrant { subject: target.0, expires: now.plus(ttl).0 });
    }

    fn apply_publish(&mut self, holder: Key, subject: Key, addr: WireAddr, seq: u64) {
        // The wire `Publish` carries no incarnation; the holder stamps the
        // subject's current one — the same value the function-call path
        // writes — so post-rejoin records dominate pre-partition ones.
        let incarnation = self.sys.node_info(subject).map(|i| i.incarnation).unwrap_or(0);
        let record = LocationRecord {
            subject,
            addr: addr.to_net(),
            incarnation,
            seq,
            published_at: self.sys.clock.now(),
            ttl: self.sys.config().location_ttl,
        };
        // Centralized with the function-call path: same conflict rule,
        // same durable-store mirror (no-op if the holder is gone).
        let _ = self.sys.install_record(holder, record);
    }

    fn emit(&mut self, event: ObsEvent) {
        self.obs.observe(event);
    }

    fn auth_domain(&self) -> Option<AuthDomain> {
        self.auth.domain
    }

    fn verify_policy(&self) -> VerifyPolicy {
        self.auth.policy
    }

    fn publish_fresh(&self, subject: Key) -> bool {
        // A replayed publication carries its subject's *valid* signature
        // — staleness is the only thing that can reject it. Withdrawn
        // means the subject's funeral is confirmed system-wide.
        !self.sys.is_confirmed_dead(subject)
    }
}

/// A [`BristleSystem`] driven entirely by messages over a
/// [`SimTransport`].
pub struct MessagingBristleSystem {
    /// The shared system state (routing tables, leases, meter, clock).
    pub sys: BristleSystem,
    transport: SimTransport,
    /// Driver-side key interner; machine lookups go through it once and
    /// then index the flat arena below.
    ids: KeyInterner,
    machines: NodeArena<ProtoMachine>,
    queue: EventQueue<MsgEvent>,
    policy: RetryPolicy,
    failure_policy: FailurePolicy,
    completions: Vec<Completion>,
    /// Nodes that crashed silently: their machines are gone and mail to
    /// them black-holes, but the *system* bookkeeping still believes in
    /// them until a confirmation heals it.
    failed: HashSet<Key>,
    /// Last known addresses of failed/departed nodes (see [`SystemEnv`]).
    tombstones: HashMap<Key, WireAddr>,
    /// Nodes buried while their machine was still running — wrongful
    /// funerals awaiting an incarnation-bumped refutation and rejoin.
    wrongly_buried: BTreeMap<Key, WrongfulBurial>,
    /// Every funeral reversed so far, in rejoin order.
    rejoin_log: Vec<RejoinRecord>,
    /// Flight recorder and latency histograms for this run.
    obs: ObsCollector,
    /// Authentication configuration shared by every node's environment.
    auth: AuthConfig,
    /// Adaptive-RTO configuration applied to every machine (`None` =
    /// fixed [`RetryPolicy`] timers, the default).
    rto: Option<RtoConfig>,
    /// Bounded-ingress backpressure: max queued deliveries per
    /// destination node before lookup-class frames are shed (`None` =
    /// unbounded, the default).
    ingress_cap: Option<usize>,
    /// Deliveries currently queued per destination node (only
    /// maintained while `ingress_cap` is set).
    inflight: HashMap<Key, usize>,
    /// `(src, msg_id)` of every frame some machine has already
    /// processed; a later transmission of the same frame is a spurious
    /// retry (wasted work from a too-short timeout).
    delivered: HashSet<(Key, u64)>,
    /// Peers some watcher's health score currently holds degraded; fed
    /// to [`SystemEnv::replicas`] for healthy-first ordering.
    degraded: BTreeSet<Key>,
}

impl MessagingBristleSystem {
    /// Wraps `sys` with per-node machines and a seeded transport with the
    /// given fault schedule.
    pub fn new(sys: BristleSystem, faults: FaultConfig, seed: u64) -> Self {
        Self::with_policy(sys, faults, seed, RetryPolicy::default())
    }

    /// Like [`Self::new`] with an explicit retry policy. The policy's
    /// timeouts must comfortably exceed the worst link latency or a
    /// loss-free run will retransmit spuriously and break meter parity.
    pub fn with_policy(
        sys: BristleSystem,
        faults: FaultConfig,
        seed: u64,
        policy: RetryPolicy,
    ) -> Self {
        let transport = SimTransport::new(sys.distances_arc(), faults, seed);
        let rto = sys.config().adaptive_rto.then(RtoConfig::default);
        MessagingBristleSystem {
            sys,
            transport,
            ids: KeyInterner::new(),
            machines: NodeArena::new(),
            queue: EventQueue::new(),
            policy,
            failure_policy: FailurePolicy::default(),
            completions: Vec::new(),
            failed: HashSet::new(),
            tombstones: HashMap::new(),
            wrongly_buried: BTreeMap::new(),
            rejoin_log: Vec::new(),
            obs: ObsCollector::default(),
            auth: AuthConfig::default(),
            rto,
            ingress_cap: None,
            inflight: HashMap::new(),
            delivered: HashSet::new(),
            degraded: BTreeSet::new(),
        }
    }

    /// Switches every machine (existing and future) to adaptive
    /// per-peer RTO estimation, or back to fixed timers with `None`.
    /// Estimator state does not survive the switch.
    pub fn set_adaptive_rto(&mut self, cfg: Option<RtoConfig>) {
        self.rto = cfg;
        for (_, machine) in self.machines.iter_mut() {
            machine.set_adaptive_rto(cfg);
        }
    }

    /// Whether machines run adaptive RTO estimation.
    pub fn adaptive_rto(&self) -> bool {
        self.rto.is_some()
    }

    /// Bounds every node's ingress queue at `cap` pending deliveries:
    /// beyond it, lookup-class frames (route and discovery traffic) are
    /// shed deterministically and metered as [`MessageKind::LoadShed`];
    /// protocol-fact frames (updates, registrations, heartbeats, acks,
    /// verdicts) are always admitted, so overload degrades lookup
    /// latency instead of corrupting protocol state. `None` (the
    /// default) disables backpressure entirely.
    pub fn set_ingress_cap(&mut self, cap: Option<usize>) {
        self.ingress_cap = cap;
        if cap.is_none() {
            self.inflight.clear();
        }
    }

    /// Turns on frame authentication: honest machines seal every
    /// authority-bearing frame under the domain derived from `seed`.
    /// Verification strictness is set separately with
    /// [`Self::set_verify_policy`] — sealing without verification is
    /// exactly the log-only migration posture.
    pub fn enable_auth(&mut self, seed: u64) {
        self.auth.domain = Some(AuthDomain::new(seed));
    }

    /// Sets how strictly received frames are authenticated. Meaningful
    /// once [`Self::enable_auth`] has established a domain; without one
    /// every kind is treated as unauthenticated and nothing is checked.
    pub fn set_verify_policy(&mut self, policy: VerifyPolicy) {
        self.auth.policy = policy;
    }

    /// The deployment's authentication domain, if auth is enabled. The
    /// adversary driver uses this to mint *identity-certifying* (but
    /// MAC-invalid) trailers and to replay genuinely signed frames.
    pub fn auth_domain(&self) -> Option<AuthDomain> {
        self.auth.domain
    }

    /// Injects an adversary-crafted frame into the transport as if some
    /// node at `from_router` had sent it: same link latencies, faults
    /// and delivery scheduling as honest traffic. The adversary is a
    /// protocol-level attacker — it can put any bytes on the wire, but
    /// the honest receive path (and its [`VerifyPolicy`]) decides what
    /// those bytes do.
    pub fn inject_frame(&mut self, from_router: RouterId, to_addr: WireAddr, env: Envelope) {
        let now = self.queue.now();
        let to_router = to_addr.router_id();
        for d in self.transport.send(now, from_router, to_router, env) {
            self.admit(d);
        }
    }

    /// Drains every event the injected frames (and any reactions they
    /// provoke) schedule, then reports how many events ran. The
    /// adversary driver calls this after a volley of [`Self::inject_frame`]s.
    pub fn settle_injected(&mut self) -> u64 {
        let mut events = 0u64;
        while self.step() {
            events += 1;
            if events > MAX_EVENTS_PER_OP {
                break;
            }
        }
        events
    }

    /// Overrides the failure-detection policy used by every machine
    /// (existing machines are rebuilt around it, monitored sets intact).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure_policy = policy;
        for (_, machine) in self.machines.iter_mut() {
            machine.set_failure_policy(policy);
        }
    }

    /// The machine for `key`, if one is running.
    fn machine_of(&self, key: Key) -> Option<&ProtoMachine> {
        self.ids.get(key).and_then(|i| self.machines.get(i))
    }

    /// Whether a machine is running for `key`.
    fn has_machine(&self, key: Key) -> bool {
        self.machine_of(key).is_some()
    }

    /// Retires `key`'s machine (its interned index survives).
    fn remove_machine(&mut self, key: Key) {
        if let Some(i) = self.ids.get(key) {
            self.machines.remove(i);
        }
    }

    /// Keys of all running machines, sorted.
    fn machine_keys_sorted(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.machines.iter().map(|(i, _)| self.ids.key_of(i)).collect();
        keys.sort_unstable();
        keys
    }

    /// The transport (for its trace).
    pub fn transport(&self) -> &SimTransport {
        &self.transport
    }

    /// The run's observability state: flight recorder and latency
    /// histograms.
    pub fn obs(&self) -> &ObsCollector {
        &self.obs
    }

    /// The driver's micro-clock.
    pub fn micro_now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedules a mobile node's move at micro-time `at`, to be executed
    /// while a later operation's event loop runs past that time.
    pub fn schedule_move(&mut self, at: SimTime, key: Key, to: Option<RouterId>) {
        self.queue.schedule_at(at, MsgEvent::Move { key, to });
    }

    /// Schedules a silent crash at micro-time `at` (see
    /// [`Self::fail_silently`]), to be executed while a later operation's
    /// event loop runs past that time.
    pub fn schedule_fail(&mut self, at: SimTime, key: Key) {
        self.queue.schedule_at(at, MsgEvent::Fail { key });
    }

    /// Cuts the network along `filter` immediately: sends whose
    /// endpoints the filter separates are blocked until
    /// [`Self::heal_now`] (in-flight deliveries are unaffected).
    pub fn partition_now(&mut self, filter: LinkFilter) {
        self.transport.set_filter(filter);
    }

    /// Heals every cut immediately: the transport's link filter is reset.
    pub fn heal_now(&mut self) {
        self.transport.set_filter(LinkFilter::default());
    }

    /// Schedules a partition at micro-time `at`.
    pub fn schedule_partition(&mut self, at: SimTime, filter: LinkFilter) {
        self.queue.schedule_at(at, MsgEvent::Partition(filter));
    }

    /// Schedules a heal at micro-time `at`.
    pub fn schedule_heal(&mut self, at: SimTime) {
        self.queue.schedule_at(at, MsgEvent::Heal);
    }

    /// Schedules a router-group partition for the window `[from, to)`:
    /// traffic between different groups is cut at `from` and restored at
    /// `to` (while some operation's event loop runs past those times).
    pub fn schedule_partition_window(
        &mut self,
        groups: &[Vec<RouterId>],
        from: SimTime,
        to: SimTime,
    ) {
        self.schedule_partition(from, LinkFilter::default().partition_groups(groups));
        self.schedule_heal(to);
    }

    /// Applies a fail-slow script to `key`'s current router immediately:
    /// everything it sends or receives suffers the script's slowdown,
    /// ramp and extra loss until healed. The node stays up — this is
    /// gray failure, not a crash.
    pub fn degrade_node_now(&mut self, key: Key, degradation: Degradation) {
        if let Ok(router) = self.sys.router_of(key) {
            self.transport.degrade_node(router, degradation, self.queue.now());
        }
    }

    /// Applies a fail-slow script to the directed `from → to` link
    /// between two nodes' current routers immediately; the reverse
    /// direction is untouched (asymmetric degradation).
    pub fn degrade_link_now(&mut self, from: Key, to: Key, degradation: Degradation) {
        if let (Ok(a), Ok(b)) = (self.sys.router_of(from), self.sys.router_of(to)) {
            self.transport.degrade_link(a, b, degradation, self.queue.now());
        }
    }

    /// Lifts every fail-slow script immediately.
    pub fn heal_degradations_now(&mut self) {
        self.transport.clear_degradations();
    }

    /// Schedules a node fail-slow script for micro-time `at` (applied
    /// while a later operation's event loop runs past that time).
    pub fn schedule_degrade_node(&mut self, at: SimTime, key: Key, degradation: Degradation) {
        self.queue.schedule_at(at, MsgEvent::DegradeNode { key, degradation });
    }

    /// Schedules a directed-link fail-slow script for micro-time `at`.
    pub fn schedule_degrade_link(
        &mut self,
        at: SimTime,
        from: Key,
        to: Key,
        degradation: Degradation,
    ) {
        self.queue.schedule_at(at, MsgEvent::DegradeLink { from, to, degradation });
    }

    /// Schedules a lift of every fail-slow script for micro-time `at`.
    pub fn schedule_degrade_heal(&mut self, at: SimTime) {
        self.queue.schedule_at(at, MsgEvent::HealDegradations);
    }

    /// Peers some watcher's health score currently holds degraded
    /// (sorted). Refreshed by every [`Self::heartbeat_round`].
    pub fn degraded_peers(&self) -> Vec<Key> {
        self.degraded.iter().copied().collect()
    }

    /// Nodes currently awaiting a funeral reversal (sorted).
    pub fn wrongly_buried(&self) -> Vec<Key> {
        self.wrongly_buried.keys().copied().collect()
    }

    /// Every funeral reversed so far, in rejoin order.
    pub fn rejoin_log(&self) -> &[RejoinRecord] {
        &self.rejoin_log
    }

    /// Crashes `key` without notice: its machine vanishes and mail to it
    /// black-holes, but every piece of *system* bookkeeping — ring
    /// membership, registrations, published records, leases — still
    /// believes in it. Only failure detection plus
    /// [`Self::confirm_and_heal`] repairs the damage.
    pub fn fail_silently(&mut self, key: Key) {
        self.fail_now(key);
    }

    /// Whether `key` has crashed silently (and not yet been confirmed).
    pub fn is_failed(&self, key: Key) -> bool {
        self.failed.contains(&key)
    }

    /// Graceful departure through the driver: the machine is retired and
    /// the system-level leave protocol runs.
    pub fn leave(&mut self, key: Key) -> Result<(), MessagingError> {
        self.remember_addr(key);
        self.remove_machine(key);
        self.sys.leave_node(key).map_err(|_| MessagingError::UnknownNode(key))
    }

    /// Restarts a crashed, buried node from its durable store — distinct
    /// from both [`Self::leave`] (gone for good) and the rejoin path
    /// (which resurrects an *empty* node that re-learns its state from
    /// the overlay). The node must have been confirmed dead
    /// ([`Self::confirm_and_heal`]); its store — re-opened from disk
    /// when WAL-backed — supplies the recovered shard, and a brand-new
    /// machine is started at the restored incarnation (nothing of the
    /// old process survives but the disk).
    pub fn crash_restart(&mut self, key: Key) -> Result<RestartReport, MessagingError> {
        let report =
            self.sys.restart_node_from_store(key).map_err(|_| MessagingError::UnknownNode(key))?;
        if report.restored {
            self.failed.remove(&key);
            self.tombstones.remove(&key);
            self.wrongly_buried.remove(&key);
            self.remove_machine(key);
            let machine = machine_entry(
                &mut self.ids,
                &mut self.machines,
                key,
                self.policy,
                self.failure_policy,
                self.rto,
            );
            machine.restore_incarnation(report.incarnation);
        }
        Ok(report)
    }

    /// Restarts a crashed, buried node with a *blank* disk — the
    /// republication baseline for [`Self::crash_restart`]. The node's
    /// durable store is discarded and it comes back empty via the rejoin
    /// path, re-learning its state from the overlay (anti-entropy refills
    /// a stationary shard one `Replicate` per record). A fresh machine is
    /// started at the rejoined incarnation, exactly as in a WAL restart.
    pub fn republish_restart(&mut self, key: Key) -> Result<RejoinReport, MessagingError> {
        self.sys.stores.forget(key);
        let report = self.sys.rejoin_node(key, 1).map_err(|_| MessagingError::UnknownNode(key))?;
        if report.reversed {
            self.failed.remove(&key);
            self.tombstones.remove(&key);
            self.wrongly_buried.remove(&key);
            self.remove_machine(key);
            let machine = machine_entry(
                &mut self.ids,
                &mut self.machines,
                key,
                self.policy,
                self.failure_policy,
                self.rto,
            );
            machine.restore_incarnation(report.incarnation);
        }
        Ok(report)
    }

    fn fail_now(&mut self, key: Key) {
        if self.sys.node_info(key).is_err() {
            return;
        }
        self.remember_addr(key);
        self.failed.insert(key);
        self.remove_machine(key);
    }

    /// Snapshots `key`'s current wire address into the tombstone book so
    /// later sends (from nodes that still believe in it) stay routable.
    fn remember_addr(&mut self, key: Key) {
        if let Ok(info) = self.sys.node_info(key) {
            let addr = WireAddr::from_net(bristle_overlay::addr::NetAddr::current(
                info.host,
                &self.sys.attachments,
            ));
            self.tombstones.insert(key, addr);
        }
    }

    /// Rebuilds every live node's monitored-peer set from the current
    /// registration state, so heartbeat coverage tracks membership:
    ///
    /// * LDT edges watch both ways — a mobile target monitors its
    ///   registrants and each registrant monitors the target (those are
    ///   exactly the nodes whose silence breaks dissemination);
    /// * each stationary node monitors its ring successor (the peer that
    ///   would inherit its records);
    /// * every node is monitored by its mobile-ring predecessor, so no
    ///   crash can go unobserved.
    ///
    /// Silently-failed nodes stay *watched* but never watch.
    pub fn seed_monitors(&mut self) {
        let mut wanted: BTreeMap<Key, BTreeSet<Key>> = BTreeMap::new();
        {
            let sys = &self.sys;
            let failed = &self.failed;
            let live = |k: Key| sys.node_info(k).is_ok() && !failed.contains(&k);
            let mut add = |watcher: Key, peer: Key| {
                if watcher != peer && live(watcher) && sys.node_info(peer).is_ok() {
                    wanted.entry(watcher).or_default().insert(peer);
                }
            };
            let mut targets: Vec<Key> = sys.registry.iter().map(|(t, _)| t).collect();
            targets.sort_unstable();
            for t in targets {
                for r in sys.registry.registrants_of(t) {
                    add(r.key, t);
                    add(t, r.key);
                }
            }
            for &s in sys.stationary_keys() {
                if let Ok(set) = sys.stationary.replica_set(s, 2) {
                    if let Some(&succ) = set.get(1) {
                        add(s, succ);
                    }
                }
            }
            let mut all: Vec<Key> = sys.mobile.keys().collect();
            all.sort_unstable();
            let n = all.len();
            for (i, &node) in all.iter().enumerate() {
                add(all[(i + n - 1) % n], node);
            }
        }
        for (watcher, peers) in wanted {
            let machine = machine_entry(
                &mut self.ids,
                &mut self.machines,
                watcher,
                self.policy,
                self.failure_policy,
                self.rto,
            );
            machine.retain_monitored(|k| peers.contains(&k));
            for &p in &peers {
                machine.monitor(p);
            }
        }
    }

    /// Runs one system-wide heartbeat round: re-seeds the monitor sets,
    /// lets every live machine probe its monitored peers, and drains the
    /// resulting acks, retransmissions and timeouts. Returns the peers
    /// newly *confirmed dead* this round (sorted, deduplicated, minus
    /// anything already confirmed) — candidates for
    /// [`Self::confirm_and_heal`]. Suspicion alone is not reported; it
    /// either heals on the next ack or hardens into confirmation.
    pub fn heartbeat_round(&mut self) -> Vec<Key> {
        self.seed_monitors();
        let watchers = self.machine_keys_sorted();
        for w in watchers {
            let now = self.queue.now();
            let out = {
                let Some(machine) = self.ids.get(w).and_then(|i| self.machines.get_mut(i)) else {
                    continue;
                };
                let mut env = SystemEnv {
                    sys: &mut self.sys,
                    tombstones: &self.tombstones,
                    obs: &mut self.obs,
                    auth: self.auth,
                    degraded: &self.degraded,
                };
                machine.start_heartbeats(now, &mut env)
            };
            self.dispatch(w, out);
        }
        let mut budget = MAX_EVENTS_PER_OP;
        while budget > 0 && self.step() {
            budget -= 1;
        }
        // Refresh the gray-failure view from the round's evidence: any
        // watcher holding a peer degraded is enough to demote it in
        // replica ordering (the union errs toward caution, never toward
        // a funeral).
        self.degraded.clear();
        for (_, machine) in self.machines.iter() {
            self.degraded.extend(machine.degraded_peers());
        }
        self.rejoin_sweep();
        let mut dead = Vec::new();
        self.completions.retain(|c| match *c {
            Completion::PeerDead { peer } => {
                dead.push(peer);
                false
            }
            Completion::PeerSuspected { .. } => false,
            Completion::PeerRefuted { .. }
            | Completion::SelfRefuted { .. }
            | Completion::RejoinRequested { .. }
            | Completion::RejoinCompleted { .. } => false,
            _ => true,
        });
        dead.sort_unstable();
        dead.dedup();
        dead.retain(|&k| !self.sys.is_confirmed_dead(k));
        dead
    }

    /// Gives every wrongly buried node a chance to learn of its own
    /// funeral and reverse it. Each still-buried node is sent an
    /// obituary (`SuspectNotify` naming itself) by a live watcher that
    /// held the verdict; a node that receives one bumps its incarnation
    /// and answers with an `Alive` refutation, after which the driver
    /// has it ask the same watcher to sponsor a rejoin. An accepted
    /// rejoin reverses the funeral ([`BristleSystem::rejoin_node`]).
    /// Every message travels the faulty transport, so a node still cut
    /// off by a partition simply misses its obituary and is retried on
    /// the next round — rejoin happens only once connectivity is back.
    fn rejoin_sweep(&mut self) {
        if self.wrongly_buried.is_empty() {
            return;
        }
        // (1) Obituary announcements, one per buried node, from the
        // lowest-keyed surviving believer (deterministic).
        let buried: Vec<Key> = self.wrongly_buried.keys().copied().collect();
        let mut sponsors: BTreeMap<Key, Key> = BTreeMap::new();
        for &f in &buried {
            let Some(announcer) = self.pick_announcer(f) else { continue };
            sponsors.insert(f, announcer);
            let now = self.queue.now();
            let out = {
                let Some(machine) = self.ids.get(announcer).and_then(|i| self.machines.get_mut(i))
                else {
                    continue;
                };
                let mut env = SystemEnv {
                    sys: &mut self.sys,
                    tombstones: &self.tombstones,
                    obs: &mut self.obs,
                    auth: self.auth,
                    degraded: &self.degraded,
                };
                machine.notify_suspect(now, &mut env, f, f)
            };
            self.dispatch(announcer, out);
        }
        let mut budget = MAX_EVENTS_PER_OP;
        while budget > 0 && self.step() {
            budget -= 1;
        }
        // (2) Nodes whose incarnation moved past their burial have
        // refuted the verdict: they ask their announcer to sponsor the
        // rejoin.
        for &f in &buried {
            let Some(&sponsor) = sponsors.get(&f) else { continue };
            let refuted = match (self.machine_of(f), self.wrongly_buried.get(&f)) {
                (Some(m), Some(b)) => m.incarnation() > b.incarnation,
                _ => false,
            };
            if !refuted {
                continue;
            }
            let now = self.queue.now();
            let out = {
                let Some(machine) = self.ids.get(f).and_then(|i| self.machines.get_mut(i)) else {
                    continue;
                };
                let mut env = SystemEnv {
                    sys: &mut self.sys,
                    tombstones: &self.tombstones,
                    obs: &mut self.obs,
                    auth: self.auth,
                    degraded: &self.degraded,
                };
                machine.start_rejoin(now, &mut env, sponsor)
            };
            self.dispatch(f, out);
        }
        let mut budget = MAX_EVENTS_PER_OP;
        while budget > 0 && self.step() {
            budget -= 1;
        }
        // (3) Reverse the funeral of every accepted rejoin.
        let mut requests: Vec<(Key, u64)> = Vec::new();
        self.completions.retain(|c| match *c {
            Completion::RejoinRequested { peer, incarnation } => {
                requests.push((peer, incarnation));
                false
            }
            _ => true,
        });
        requests.sort_unstable();
        requests.dedup();
        for (peer, incarnation) in requests {
            let Some(burial) = self.wrongly_buried.remove(&peer) else { continue };
            let Ok(report) = self.sys.rejoin_node(peer, incarnation) else { continue };
            if !report.reversed {
                continue;
            }
            self.sys.meter.bump(MessageKind::WrongfulDeath, 1);
            let rejoined_at = self.queue.now();
            self.obs.rejoin_latency.record(rejoined_at.since(burial.at));
            self.rejoin_log.push(RejoinRecord {
                key: peer,
                buried_at: burial.at,
                rejoined_at,
                incarnation: report.incarnation,
            });
        }
    }

    /// The lowest-keyed live watcher that held `buried`'s death verdict,
    /// falling back to the lowest-keyed live machine when none of the
    /// original believers survive.
    fn pick_announcer(&self, buried: Key) -> Option<Key> {
        let live = |k: &Key| {
            *k != buried
                && self.sys.node_info(*k).is_ok()
                && !self.failed.contains(k)
                && !self.wrongly_buried.contains_key(k)
                && self.has_machine(*k)
        };
        if let Some(b) = self.wrongly_buried.get(&buried) {
            if let Some(&a) = b.announcers.iter().find(|k| live(k)) {
                return Some(a);
            }
        }
        self.machine_keys_sorted().into_iter().find(|k| live(k))
    }

    /// Acts on a confirmed death: spreads the verdict to watchers that
    /// have not yet condemned `key` themselves (`SuspectNotify`), retires
    /// the corpse at the driver level, and runs the system-wide funeral
    /// ([`BristleSystem::confirm_dead`]) — LDT re-grafting, registration
    /// and lease pruning, record withdrawal.
    pub fn confirm_and_heal(&mut self, key: Key) -> Result<DeathReport, MessagingError> {
        if self.sys.node_info(key).is_err() && !self.sys.is_confirmed_dead(key) {
            return Err(MessagingError::UnknownNode(key));
        }
        // A funeral for a node whose machine is still running is
        // *wrongful* — the node is unreachable (partitioned), not
        // crashed. Its machine stays alive so it can eventually receive
        // its obituary and refute the verdict; the driver remembers the
        // burial so [`Self::rejoin_sweep`] can reverse it.
        let wrongful =
            !self.failed.contains(&key) && self.sys.node_info(key).is_ok() && self.has_machine(key);
        if wrongful {
            self.remember_addr(key);
        } else {
            self.fail_now(key);
        }
        let mut believers = Vec::new();
        let mut unconvinced = Vec::new();
        for (i, m) in self.machines.iter() {
            let w = self.ids.key_of(i);
            match m.liveness(key) {
                Some(bristle_proto::failure::Liveness::Dead) => believers.push(w),
                Some(_) => unconvinced.push(w),
                None => {}
            }
        }
        believers.sort_unstable();
        unconvinced.sort_unstable();
        if let Some(&herald) = believers.first() {
            for &peer in &unconvinced {
                let now = self.queue.now();
                let out = {
                    let Some(machine) = self.ids.get(herald).and_then(|i| self.machines.get_mut(i))
                    else {
                        break;
                    };
                    let mut env = SystemEnv {
                        sys: &mut self.sys,
                        tombstones: &self.tombstones,
                        obs: &mut self.obs,
                        auth: self.auth,
                        degraded: &self.degraded,
                    };
                    machine.notify_suspect(now, &mut env, peer, key)
                };
                self.dispatch(herald, out);
            }
            let mut budget = MAX_EVENTS_PER_OP;
            while budget > 0 && self.step() {
                budget -= 1;
            }
        }
        // The notifications above re-announce the same death; those
        // echoes are not news.
        self.completions.retain(|c| !matches!(c, Completion::PeerDead { peer } if *peer == key));
        if wrongful {
            let incarnation = self.machine_of(key).map(|m| m.incarnation()).unwrap_or(0);
            self.wrongly_buried.insert(
                key,
                WrongfulBurial { incarnation, at: self.queue.now(), announcers: believers },
            );
        }
        let report = self.sys.confirm_dead(key).map_err(|_| MessagingError::UnknownNode(key))?;
        self.obs.confirm_detection(key, self.queue.now().0);
        Ok(report)
    }

    /// Routes a message from `src` toward `target` entirely by message
    /// passing, driving the event loop until the route completes or
    /// fails. Lost hops time out and retransmit; hops to a moved mobile
    /// peer fall back to a `_discovery` through the stationary layer.
    pub fn route(&mut self, src: Key, target: Key) -> Result<MessagingRouteReport, MessagingError> {
        if self.sys.node_info(src).is_err() || self.failed.contains(&src) {
            return Err(MessagingError::UnknownNode(src));
        }
        let now = self.queue.now();
        let (route_id, out) = {
            let machine = machine_entry(
                &mut self.ids,
                &mut self.machines,
                src,
                self.policy,
                self.failure_policy,
                self.rto,
            );
            let mut env = SystemEnv {
                sys: &mut self.sys,
                tombstones: &self.tombstones,
                obs: &mut self.obs,
                auth: self.auth,
                degraded: &self.degraded,
            };
            machine.start_route(now, &mut env, target)
        };
        self.dispatch(src, out);
        let mut events = 0u64;
        loop {
            if let Some(done) = self.take_route_completion(src, route_id)? {
                self.obs.route_latency.record(done.since(now));
                return Ok(MessagingRouteReport { route_id, delivered_at: done, events });
            }
            if events >= MAX_EVENTS_PER_OP {
                return Err(MessagingError::Runaway);
            }
            if !self.step() {
                return Err(MessagingError::Stalled);
            }
            events += 1;
        }
    }

    /// Routes every `(src, target)` pair *concurrently*: all routes are
    /// launched before the event loop runs, so their frames contend for
    /// the same links and ingress queues — the flash-crowd shape
    /// sequential [`Self::route`] calls (each settling before the next
    /// starts) can never produce. Results are positional.
    pub fn route_burst(
        &mut self,
        pairs: &[(Key, Key)],
    ) -> Vec<Result<MessagingRouteReport, MessagingError>> {
        let mut results: Vec<Option<Result<MessagingRouteReport, MessagingError>>> =
            vec![None; pairs.len()];
        let mut sessions: Vec<Option<(Key, u64, SimTime)>> = Vec::with_capacity(pairs.len());
        for (i, &(src, target)) in pairs.iter().enumerate() {
            if self.sys.node_info(src).is_err() || self.failed.contains(&src) {
                results[i] = Some(Err(MessagingError::UnknownNode(src)));
                sessions.push(None);
                continue;
            }
            let now = self.queue.now();
            let (route_id, out) = {
                let machine = machine_entry(
                    &mut self.ids,
                    &mut self.machines,
                    src,
                    self.policy,
                    self.failure_policy,
                    self.rto,
                );
                let mut env = SystemEnv {
                    sys: &mut self.sys,
                    tombstones: &self.tombstones,
                    obs: &mut self.obs,
                    auth: self.auth,
                    degraded: &self.degraded,
                };
                machine.start_route(now, &mut env, target)
            };
            self.dispatch(src, out);
            sessions.push(Some((src, route_id, now)));
        }
        let mut events = 0u64;
        loop {
            let mut open = 0usize;
            for (i, session) in sessions.iter().enumerate() {
                let Some((src, route_id, started)) = *session else { continue };
                if results[i].is_some() {
                    continue;
                }
                match self.take_route_completion(src, route_id) {
                    Ok(Some(done)) => {
                        self.obs.route_latency.record(done.since(started));
                        results[i] =
                            Some(Ok(MessagingRouteReport { route_id, delivered_at: done, events }));
                    }
                    Ok(None) => open += 1,
                    Err(e) => results[i] = Some(Err(e)),
                }
            }
            if open == 0 {
                break;
            }
            if events >= MAX_EVENTS_PER_OP {
                for r in results.iter_mut().filter(|r| r.is_none()) {
                    *r = Some(Err(MessagingError::Runaway));
                }
                break;
            }
            if !self.step() {
                for r in results.iter_mut().filter(|r| r.is_none()) {
                    *r = Some(Err(MessagingError::Stalled));
                }
                break;
            }
            events += 1;
        }
        results.into_iter().map(|r| r.unwrap_or(Err(MessagingError::Stalled))).collect()
    }

    /// Disseminates `key`'s current address through its LDT by reliable
    /// Update messages (the message-passing `advertise_update`), running
    /// the event loop until every edge is acked or exhausts its retries.
    /// Returns the number of acknowledged edges.
    pub fn disseminate_update(&mut self, key: Key) -> Result<usize, MessagingError> {
        let info = *self.sys.node_info(key).map_err(|_| MessagingError::UnknownNode(key))?;
        let ldt = self.sys.build_ldt(key).map_err(|_| MessagingError::UnknownNode(key))?;
        let addr = WireAddr::from_net(bristle_overlay::addr::NetAddr::current(
            info.host,
            &self.sys.attachments,
        ));
        let started = self.queue.now();
        let mut by_parent: Vec<(Key, Vec<Key>)> = Vec::new();
        for (parent, child) in ldt.edges() {
            match by_parent.iter_mut().find(|(p, _)| *p == parent) {
                Some((_, cs)) => cs.push(child),
                None => by_parent.push((parent, vec![child])),
            }
        }
        let mut expected = 0usize;
        for (parent, children) in by_parent {
            // A parent that crashed (or vanished) mid-tree cannot relay:
            // its edges are skipped now and repaired by confirmation.
            if self.failed.contains(&parent) || self.sys.node_info(parent).is_err() {
                continue;
            }
            expected += children.len();
            let now = self.queue.now();
            let out = {
                let machine = machine_entry(
                    &mut self.ids,
                    &mut self.machines,
                    parent,
                    self.policy,
                    self.failure_policy,
                    self.rto,
                );
                let mut env = SystemEnv {
                    sys: &mut self.sys,
                    tombstones: &self.tombstones,
                    obs: &mut self.obs,
                    auth: self.auth,
                    degraded: &self.degraded,
                };
                machine.start_update(now, &mut env, key, addr, info.seq, &children)
            };
            self.dispatch(parent, out);
        }
        let mut acked = 0usize;
        let mut settled = 0usize;
        let mut events = 0u64;
        while settled < expected {
            self.completions.retain(|c| match c {
                Completion::UpdateAcked { .. } => {
                    acked += 1;
                    settled += 1;
                    false
                }
                Completion::UpdateFailed { .. } => {
                    settled += 1;
                    false
                }
                _ => true,
            });
            if settled >= expected {
                break;
            }
            if events >= MAX_EVENTS_PER_OP {
                return Err(MessagingError::Runaway);
            }
            if !self.step() {
                // The queue drained with edges unsettled: a parent died
                // *during* the round, so its pending acks can never
                // arrive. Report how far the dissemination got — the
                // shortfall is exactly what failure detection must catch.
                break;
            }
            events += 1;
        }
        if expected > 0 {
            self.obs.dissemination_latency.record(self.queue.now().since(started));
        }
        Ok(acked)
    }

    /// Registers `who`'s interest in mobile `target` by message, driving
    /// the loop until the registration is acked (lease granted) or fails.
    pub fn register(&mut self, who: Key, target: Key) -> Result<(), MessagingError> {
        let info = *self.sys.node_info(who).map_err(|_| MessagingError::UnknownNode(who))?;
        if self.failed.contains(&who) {
            return Err(MessagingError::UnknownNode(who));
        }
        if self.sys.node_info(target).map(|i| i.mobility) != Ok(Mobility::Mobile) {
            return Err(MessagingError::UnknownNode(target));
        }
        let now = self.queue.now();
        let out = {
            let machine = machine_entry(
                &mut self.ids,
                &mut self.machines,
                who,
                self.policy,
                self.failure_policy,
                self.rto,
            );
            let mut env = SystemEnv {
                sys: &mut self.sys,
                tombstones: &self.tombstones,
                obs: &mut self.obs,
                auth: self.auth,
                degraded: &self.degraded,
            };
            machine.start_register(now, &mut env, target, info.capacity)
        };
        self.dispatch(who, out);
        let mut events = 0u64;
        loop {
            let mut done = None;
            self.completions.retain(|c| match *c {
                Completion::Registered { target: t } if t == target => {
                    done = Some(Ok(()));
                    false
                }
                Completion::RegisterFailed { target: t } if t == target => {
                    done = Some(Err(MessagingError::Stalled));
                    false
                }
                _ => true,
            });
            if let Some(r) = done {
                return r;
            }
            if events >= MAX_EVENTS_PER_OP {
                return Err(MessagingError::Runaway);
            }
            if !self.step() {
                return Err(MessagingError::Stalled);
            }
            events += 1;
        }
    }

    /// Drains every pending event (stray acks, stale timers) so the next
    /// operation starts from a quiet network.
    pub fn settle(&mut self) {
        let mut budget = MAX_EVENTS_PER_OP;
        while budget > 0 && self.step() {
            budget -= 1;
        }
        self.completions.clear();
    }

    /// Pops and handles one event. Returns false when the queue is empty.
    fn step(&mut self) -> bool {
        let Some((now, event)) = self.queue.pop() else {
            return false;
        };
        match event {
            MsgEvent::Deliver(d) => {
                // The sender addressed a router; if the destination host
                // has moved away since — or crashed — the bytes
                // black-hole there. A wrongly buried node is gone from
                // the system's books but still listening at its
                // tombstoned attachment: its obituary must reach it.
                let dst = d.env.dst;
                if self.ingress_cap.is_some() {
                    if let Some(n) = self.inflight.get_mut(&dst) {
                        *n = n.saturating_sub(1);
                    }
                }
                if self.failed.contains(&dst) {
                    return true;
                }
                let reachable = match self.sys.router_of(dst) {
                    Ok(r) => r == d.to_router,
                    Err(_) => {
                        self.wrongly_buried.contains_key(&dst)
                            && self
                                .tombstones
                                .get(&dst)
                                .is_some_and(|a| a.router_id() == d.to_router)
                    }
                };
                if reachable {
                    // The frame is about to be processed: any *later*
                    // copy of it on the wire is a spurious retry.
                    self.delivered.insert((d.env.src, d.env.msg_id));
                    let out = {
                        let machine = machine_entry(
                            &mut self.ids,
                            &mut self.machines,
                            dst,
                            self.policy,
                            self.failure_policy,
                            self.rto,
                        );
                        let mut env = SystemEnv {
                            sys: &mut self.sys,
                            tombstones: &self.tombstones,
                            obs: &mut self.obs,
                            auth: self.auth,
                            degraded: &self.degraded,
                        };
                        machine.poll(now, Event::Deliver(d.env), &mut env)
                    };
                    self.dispatch(dst, out);
                }
            }
            MsgEvent::Timer { node, kind } => {
                if let Some(machine) = self.ids.get(node).and_then(|i| self.machines.get_mut(i)) {
                    let out = {
                        let mut env = SystemEnv {
                            sys: &mut self.sys,
                            tombstones: &self.tombstones,
                            obs: &mut self.obs,
                            auth: self.auth,
                            degraded: &self.degraded,
                        };
                        machine.poll(now, Event::Timer(kind), &mut env)
                    };
                    self.dispatch(node, out);
                }
            }
            MsgEvent::Move { key, to } => {
                let _ = self.sys.move_node(key, to);
            }
            MsgEvent::Fail { key } => self.fail_now(key),
            MsgEvent::Partition(filter) => self.transport.set_filter(filter),
            MsgEvent::Heal => self.transport.set_filter(LinkFilter::default()),
            MsgEvent::DegradeNode { key, degradation } => self.degrade_node_now(key, degradation),
            MsgEvent::DegradeLink { from, to, degradation } => {
                self.degrade_link_now(from, to, degradation)
            }
            MsgEvent::HealDegradations => self.transport.clear_degradations(),
        }
        true
    }

    /// Turns one machine's [`Output`] into transport sends, scheduled
    /// deliveries and armed timers.
    fn dispatch(&mut self, from: Key, out: Output) {
        let now = self.queue.now();
        let from_router = match self.sys.router_of(from) {
            Ok(r) => r,
            // A wrongly buried node transmits from its tombstoned
            // attachment (refutations and rejoin requests).
            Err(_) if self.wrongly_buried.contains_key(&from) => match self.tombstones.get(&from) {
                Some(a) => a.router_id(),
                None => return,
            },
            Err(_) => return,
        };
        for o in out.outgoing {
            // A transmission of a frame whose first copy was already
            // processed is retry-timer waste — the receiver will dedup
            // it. Counted (cost zero) so the degradation sweep can
            // compare RTO policies by wasted sends.
            if self.delivered.contains(&(o.env.src, o.env.msg_id)) {
                self.sys.meter.bump(MessageKind::SpuriousRetry, 1);
            }
            let to_router = o.to_addr.router_id();
            for d in self.transport.send(now, from_router, to_router, o.env) {
                self.admit(d);
            }
        }
        for t in out.timers {
            self.queue.schedule_at(t.at, MsgEvent::Timer { node: from, kind: t.kind });
        }
        self.completions.extend(out.completions);
    }

    /// Schedules one transport delivery, applying ingress backpressure:
    /// with a cap set and the destination's queue full, lookup-class
    /// frames are shed (metered, never delivered) while protocol-fact
    /// frames are admitted regardless — shedding a fact would corrupt
    /// protocol state to save queue space, the wrong trade.
    fn admit(&mut self, d: Delivery) {
        if let Some(cap) = self.ingress_cap {
            let queued = self.inflight.entry(d.env.dst).or_insert(0);
            let sheddable = matches!(
                d.env.msg,
                WireMessage::RouteHop { .. }
                    | WireMessage::Discovery { .. }
                    | WireMessage::DiscoveryReply { .. }
                    | WireMessage::ProbeMiss { .. }
            );
            if *queued >= cap && sheddable {
                self.sys.meter.bump(MessageKind::LoadShed, 1);
                return;
            }
            *queued += 1;
        }
        self.queue.schedule_at(d.at, MsgEvent::Deliver(d));
    }

    /// Scans buffered completions for this route's outcome.
    fn take_route_completion(
        &mut self,
        origin: Key,
        route_id: u64,
    ) -> Result<Option<SimTime>, MessagingError> {
        let mut found = None;
        let now = self.queue.now();
        self.completions.retain(|c| match *c {
            Completion::Delivered { origin: o, route_id: r } if o == origin && r == route_id => {
                if found.is_none() {
                    found = Some(Ok(Some(now)));
                }
                false
            }
            Completion::RouteFailed { origin: o, route_id: r, at }
                if o == origin && r == route_id =>
            {
                if found.is_none() {
                    found = Some(Err(MessagingError::RouteFailed { origin: o, route_id: r, at }));
                }
                false
            }
            _ => true,
        });
        found.unwrap_or(Ok(None))
    }
}
