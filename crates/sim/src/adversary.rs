//! Adversarial overlay scenarios: four scripted attack families run
//! against the message-passing deployment under each [`VerifyPolicy`],
//! measuring how far a protocol-level attacker gets.
//!
//! The adversary models the classic structured-overlay threat surface
//! (Castro et al., OSDI '02) specialized to Bristle's mobility
//! machinery:
//!
//! * [`AttackFamily::ForgedRefutation`] — forge `Alive` refutations for
//!   a confirmed-dead node so survivors overturn its funeral and keep
//!   routing to a corpse.
//! * [`AttackFamily::Eclipse`] — flood a mobile node's LDT registrant
//!   set with spoofed high-capacity `Register`s, crowding honest
//!   registrants out of its dissemination tree.
//! * [`AttackFamily::SybilFlood`] — publish location records for
//!   identities that do not exist, squatting the stationary band's
//!   replica stores.
//! * [`AttackFamily::StaleReplay`] — re-inject a *genuinely signed*
//!   `Publish` captured before its subject's funeral, resurrecting a
//!   withdrawn record without forging anything.
//!
//! The attacker is protocol-level: it can put arbitrary bytes on the
//! wire from any router ([`MessagingBristleSystem::inject_frame`]) and
//! can replay signatures it observed, but it cannot invert the identity
//! hash's MAC or read another node's signing secret. Identity alone is
//! *not* a defense here — Bristle's toy pubkey derivation is public, so
//! a Sybil can always mint a self-consistent identity; the MAC over the
//! frame body is what the verifying receive path actually checks.
//!
//! Everything is seeded: the same [`AttackConfig`] always yields the
//! same [`AttackOutcome`], so the `attacks` sweep can be pinned in CI.

use bristle_core::auth::{AuthDomain, VerifyPolicy};
use bristle_core::config::BristleConfig;
use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::addr::NetAddr;
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, ALL_KINDS};
use bristle_overlay::obs::Snapshot;
use bristle_proto::transport::FaultConfig;
use bristle_proto::wire::{Envelope, WireAddr, WireMessage};

use crate::messaging::MessagingBristleSystem;

/// The four scripted attack families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackFamily {
    /// Forged `Alive` refutations keep a corpse routable.
    ForgedRefutation,
    /// Spoofed `Register`s eclipse a mobile node's registrant set.
    Eclipse,
    /// Fabricated identities squat the stationary band's stores.
    SybilFlood,
    /// A captured, genuinely signed `Publish` is replayed after the
    /// subject's funeral withdrew it.
    StaleReplay,
}

/// Every family, in sweep order.
pub const ALL_FAMILIES: [AttackFamily; 4] = [
    AttackFamily::ForgedRefutation,
    AttackFamily::Eclipse,
    AttackFamily::SybilFlood,
    AttackFamily::StaleReplay,
];

impl AttackFamily {
    /// Short label for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            AttackFamily::ForgedRefutation => "forged-refutation",
            AttackFamily::Eclipse => "eclipse",
            AttackFamily::SybilFlood => "sybil-flood",
            AttackFamily::StaleReplay => "stale-replay",
        }
    }
}

/// Parameters of one attack run.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Seed for the system build, the transport, and the scenario draws.
    pub seed: u64,
    /// Which attack the adversary scripts.
    pub family: AttackFamily,
    /// How strictly honest nodes authenticate received frames. Frames
    /// are *sealed* in every arm; only checking varies, so the policy
    /// knob is the single difference between arms.
    pub policy: VerifyPolicy,
    /// Stationary population at build time.
    pub stationary: usize,
    /// Mobile population at build time.
    pub mobile: usize,
    /// Honest registrants attached to the victim before the attack.
    pub honest_registrants: usize,
    /// Sybil identities the adversary mints (eclipse and sybil-flood).
    pub sybils: usize,
    /// Maximum heartbeat rounds for the forced-refutation funeral to be
    /// detected before the scenario confirms it directly.
    pub detection_rounds: usize,
    /// Endpoint pairs measured before and after the attack volley.
    pub route_pairs: usize,
}

impl AttackConfig {
    /// The standard acceptance-scale run at `seed`.
    pub fn standard(seed: u64, family: AttackFamily, policy: VerifyPolicy) -> Self {
        AttackConfig {
            seed,
            family,
            policy,
            stationary: 40,
            mobile: 16,
            honest_registrants: 3,
            sybils: 6,
            detection_rounds: 8,
            route_pairs: 16,
        }
    }
}

/// What one attack run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// The attacked node (mobile for every family; for sybil-flood the
    /// victim is the stationary band itself and this is its busiest
    /// primary).
    pub victim: Key,
    /// Frames the adversary put on the wire.
    pub attempts: u64,
    /// Attack frames that achieved their effect (family-specific: a
    /// funeral overturned, a sybil registered, a fake record installed,
    /// a withdrawn record resurrected).
    pub successes: u64,
    /// `ForgedFrame` meter delta across the volley: frames whose
    /// authentication failed (metered under log-only and enforce).
    pub forged_frames: u64,
    /// `AuthReject` meter delta: failed frames actually dropped
    /// (enforce only).
    pub auth_rejects: u64,
    /// Routes delivered / attempted over fixed pairs before the volley.
    pub honest_pre_delivered: usize,
    /// Routes attempted before the volley.
    pub honest_pre_attempted: usize,
    /// Routes delivered over the same pairs after the volley.
    pub honest_post_delivered: usize,
    /// Routes attempted after the volley.
    pub honest_post_attempted: usize,
    /// Per-kind meter `(kind, count, cost)` at the end of the run.
    pub tallies: Vec<(MessageKind, u64, u64)>,
    /// Named latency-histogram snapshots from the driver's collector.
    pub latencies: Vec<(&'static str, Snapshot)>,
}

impl AttackOutcome {
    /// Fraction of attack frames that achieved their effect.
    pub fn success_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// Fraction of pre-attack routes delivered.
    pub fn pre_rate(&self) -> f64 {
        if self.honest_pre_attempted == 0 {
            1.0
        } else {
            self.honest_pre_delivered as f64 / self.honest_pre_attempted as f64
        }
    }

    /// Fraction of post-attack routes delivered.
    pub fn post_rate(&self) -> f64 {
        if self.honest_post_attempted == 0 {
            1.0
        } else {
            self.honest_post_delivered as f64 / self.honest_post_attempted as f64
        }
    }
}

/// Base for the adversary's sender-scoped message ids — far above
/// anything honest machines allocate, so injected frames never collide
/// in a receiver's `(src, msg_id)` dedup window.
const ADV_MSG_ID: u64 = 0xAD00_0000_0000_0000;

/// Trace id stamped on injected frames, so the flight recorder can
/// isolate the volley's causal story.
const ADV_TRACE: u64 = 0xADAD;

/// The stationary node holding the most location records (ties break
/// toward the smaller key for determinism).
fn busiest_primary(sys: &BristleSystem) -> Key {
    let mut best = (0usize, Key(u64::MAX));
    for &s in sys.stationary_keys() {
        let n = sys.stationary.node(s).map(|node| node.store.len()).unwrap_or(0);
        if n > best.0 || (n == best.0 && s < best.1) {
            best = (n, s);
        }
    }
    best.1
}

/// The current wire address of a live node.
fn addr_of(sys: &BristleSystem, key: Key) -> Option<WireAddr> {
    let info = sys.node_info(key).ok()?;
    Some(WireAddr::from_net(NetAddr::current(info.host, &sys.attachments)))
}

/// Measures message-passing delivery over `pairs`, skipping pairs with a
/// missing endpoint. Returns `(delivered, attempted)`.
fn measure_pairs(msys: &mut MessagingBristleSystem, pairs: &[(Key, Key)]) -> (usize, usize) {
    let mut delivered = 0usize;
    let mut attempted = 0usize;
    for &(src, target) in pairs {
        if msys.is_failed(src)
            || msys.is_failed(target)
            || msys.sys.node_info(src).is_err()
            || msys.sys.node_info(target).is_err()
        {
            continue;
        }
        attempted += 1;
        if msys.route(src, target).is_ok() {
            delivered += 1;
        }
    }
    (delivered, attempted)
}

/// One injected frame: the adversary transmits from `from_router` like
/// any honest host would, through the same links and scheduling.
fn inject(
    msys: &mut MessagingBristleSystem,
    from_router: bristle_netsim::graph::RouterId,
    to: Key,
    env: Envelope,
) -> bool {
    match addr_of(&msys.sys, to) {
        Some(addr) => {
            msys.inject_frame(from_router, addr, env);
            true
        }
        None => false,
    }
}

/// Runs one adversarial scenario: build, arm the policy, stage the
/// family's preconditions, fire the volley, settle, measure.
/// Deterministic in `cfg`.
pub fn run_attack(cfg: &AttackConfig) -> AttackOutcome {
    let sys = BristleBuilder::new(cfg.seed)
        .stationary_nodes(cfg.stationary)
        .mobile_nodes(cfg.mobile)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds");
    // A lossless transport keeps the success counts exact: what varies
    // between arms is the verify policy, not the network's dice.
    let mut msys = MessagingBristleSystem::new(sys, FaultConfig::perfect(), cfg.seed ^ 0xA7);
    let mut rng = Pcg64::new(cfg.seed, 0xA77C);

    // Honest nodes seal their frames in every arm; the policy knob
    // alone decides whether anyone looks at the trailers.
    msys.enable_auth(cfg.seed);
    msys.set_verify_policy(cfg.policy);
    let domain = msys.auth_domain().expect("auth just enabled");

    let victim = match cfg.family {
        AttackFamily::SybilFlood => busiest_primary(&msys.sys),
        _ => msys.sys.mobile_keys()[0],
    };

    // The adversary transmits from an honest stationary host's router —
    // an on-path attacker needs no overlay membership of its own.
    let attacker_router =
        msys.sys.router_of(msys.sys.stationary_keys()[0]).expect("stationary node is live");

    // Honest registrants give the victim a watcher set (and, for the
    // eclipse family, the honest LDT the sybils try to crowd out).
    let mut honest_regs: Vec<Key> = Vec::new();
    if cfg.family != AttackFamily::SybilFlood {
        let mobiles: Vec<Key> = msys.sys.mobile_keys().to_vec();
        for &m in mobiles.iter().filter(|&&m| m != victim).take(cfg.honest_registrants) {
            msys.register(m, victim).expect("registration completes");
            honest_regs.push(m);
        }
    }
    msys.seed_monitors();

    // Fixed endpoint pairs, measured identically before and after the
    // volley: enforcement must not tax honest traffic.
    let mut endpoints: Vec<Key> = msys.sys.mobile.keys().collect();
    endpoints.sort_unstable();
    let mut pairs: Vec<(Key, Key)> = Vec::with_capacity(cfg.route_pairs);
    while pairs.len() < cfg.route_pairs && endpoints.len() >= 2 {
        let src = endpoints[rng.index(endpoints.len())];
        let target = endpoints[rng.index(endpoints.len())];
        if src != target && src != victim && target != victim {
            pairs.push((src, target));
        }
    }

    let mut out = AttackOutcome {
        victim,
        attempts: 0,
        successes: 0,
        forged_frames: 0,
        auth_rejects: 0,
        honest_pre_delivered: 0,
        honest_pre_attempted: 0,
        honest_post_delivered: 0,
        honest_post_attempted: 0,
        tallies: Vec::new(),
        latencies: Vec::new(),
    };
    (out.honest_pre_delivered, out.honest_pre_attempted) = measure_pairs(&mut msys, &pairs);

    // Families that attack a corpse stage a real funeral first.
    let needs_funeral =
        matches!(cfg.family, AttackFamily::ForgedRefutation | AttackFamily::StaleReplay);
    // Stale replay captures the victim's signed publication *before*
    // the crash — exactly what an eavesdropper on any replica path saw.
    let captured: Option<Envelope> = if cfg.family == AttackFamily::StaleReplay {
        let addr = addr_of(&msys.sys, victim).expect("victim is live pre-crash");
        let seq = msys
            .sys
            .stationary
            .replica_set(victim, msys.sys.config().location_replicas)
            .ok()
            .and_then(|set| set.first().copied())
            .and_then(|h| msys.sys.stationary.node(h).ok())
            .and_then(|n| n.store.get(&victim))
            .map(|r| r.seq)
            .unwrap_or(1);
        let msg = WireMessage::Publish { subject: victim, addr, seq };
        let mut env = Envelope {
            src: victim,
            dst: Key(0), // patched per holder below
            msg_id: ADV_MSG_ID,
            trace_id: ADV_TRACE,
            msg,
            auth: None,
        };
        // A *valid* trailer: the body digest signed with the subject's
        // key, as it actually crossed the wire. No forgery involved.
        env.auth = Some(domain.sign(victim, env.msg.auth_digest()));
        Some(env)
    } else {
        None
    };

    if needs_funeral {
        msys.fail_silently(victim);
        let mut confirmed = false;
        for _ in 0..cfg.detection_rounds {
            let newly = msys.heartbeat_round();
            msys.sys.tick(1);
            if newly.contains(&victim) {
                msys.confirm_and_heal(victim).expect("victim is known");
                confirmed = true;
                break;
            }
        }
        if !confirmed {
            msys.confirm_and_heal(victim).expect("victim is known");
        }
    }

    let meter_count = |msys: &MessagingBristleSystem, kind: MessageKind| msys.sys.meter.count(kind);
    let wrongful_before = meter_count(&msys, MessageKind::WrongfulDeath);
    let forged_before = meter_count(&msys, MessageKind::ForgedFrame);
    let rejects_before = meter_count(&msys, MessageKind::AuthReject);

    // The volley.
    let mut next_id = ADV_MSG_ID + 1;
    match cfg.family {
        AttackFamily::ForgedRefutation => {
            // One forged refutation per surviving node: "I am alive at
            // an incarnation far beyond my obituary."
            let mut targets: Vec<Key> =
                msys.sys.stationary_keys().iter().chain(msys.sys.mobile_keys()).copied().collect();
            targets.sort_unstable();
            targets.retain(|&t| t != victim && !msys.is_failed(t));
            for t in targets {
                let msg = WireMessage::Alive { node: victim, incarnation: 1000 };
                let mut env = Envelope {
                    src: victim,
                    dst: t,
                    msg_id: next_id,
                    trace_id: ADV_TRACE,
                    msg,
                    auth: None,
                };
                // The adversary does not hold the victim's secret: the
                // trailer certifies the identity but fails the MAC.
                env.auth = Some(AuthDomain::forged(victim));
                if inject(&mut msys, attacker_router, t, env) {
                    out.attempts += 1;
                    next_id += 1;
                }
            }
        }
        AttackFamily::Eclipse => {
            // Spoofed registrations from sybil identities, each claiming
            // enormous capacity so LDT scheduling seats them high.
            for i in 0..cfg.sybils {
                let sybil = Key(0xEC11_0000_0000_0000 + i as u64);
                let msg = WireMessage::Register { target: victim, capacity: 1_000_000 };
                let mut env = Envelope {
                    src: sybil,
                    dst: victim,
                    msg_id: next_id,
                    trace_id: ADV_TRACE,
                    msg,
                    auth: None,
                };
                env.auth = Some(AuthDomain::forged(sybil));
                if inject(&mut msys, attacker_router, victim, env) {
                    out.attempts += 1;
                    next_id += 1;
                }
            }
        }
        AttackFamily::SybilFlood => {
            // Fabricated identities publish location records straight to
            // the stationary band's replica holders.
            for i in 0..cfg.sybils {
                let sybil = Key(0x5B11_0000_0000_0000 + i as u64);
                let addr = addr_of(&msys.sys, victim).expect("primary is live");
                let holders = msys
                    .sys
                    .stationary
                    .replica_set(sybil, msys.sys.config().location_replicas)
                    .unwrap_or_default();
                for h in holders {
                    let msg = WireMessage::Publish { subject: sybil, addr, seq: 1 };
                    let mut env = Envelope {
                        src: sybil,
                        dst: h,
                        msg_id: next_id,
                        trace_id: ADV_TRACE,
                        msg,
                        auth: None,
                    };
                    env.auth = Some(AuthDomain::forged(sybil));
                    if inject(&mut msys, attacker_router, h, env) {
                        out.attempts += 1;
                        next_id += 1;
                    }
                }
            }
        }
        AttackFamily::StaleReplay => {
            // Replay the captured publication to the dead subject's
            // replica holders; its funeral withdrew the real record.
            let captured = captured.expect("staged above");
            let holders = msys
                .sys
                .stationary
                .replica_set(victim, msys.sys.config().location_replicas)
                .unwrap_or_default();
            for h in holders {
                let mut env = captured.clone();
                env.dst = h;
                env.msg_id = next_id;
                if inject(&mut msys, attacker_router, h, env) {
                    out.attempts += 1;
                    next_id += 1;
                }
            }
        }
    }
    msys.settle_injected();

    out.forged_frames = meter_count(&msys, MessageKind::ForgedFrame) - forged_before;
    out.auth_rejects = meter_count(&msys, MessageKind::AuthReject) - rejects_before;

    // Family-specific effect measurement.
    out.successes = match cfg.family {
        AttackFamily::ForgedRefutation => {
            meter_count(&msys, MessageKind::WrongfulDeath) - wrongful_before
        }
        AttackFamily::Eclipse => {
            let regs = msys.sys.registry.registrants_of(victim);
            regs.iter().filter(|r| (r.key.0 >> 32) == (0xEC11_0000_0000_0000u64 >> 32)).count()
                as u64
        }
        AttackFamily::SybilFlood => {
            let mut installed = 0u64;
            for i in 0..cfg.sybils {
                let sybil = Key(0x5B11_0000_0000_0000 + i as u64);
                for &s in msys.sys.stationary_keys() {
                    if let Ok(node) = msys.sys.stationary.node(s) {
                        if node.store.contains_key(&sybil) {
                            installed += 1;
                        }
                    }
                }
            }
            installed
        }
        AttackFamily::StaleReplay => {
            let mut resurrected = 0u64;
            for &s in msys.sys.stationary_keys() {
                if let Ok(node) = msys.sys.stationary.node(s) {
                    if node.store.contains_key(&victim) {
                        resurrected += 1;
                    }
                }
            }
            resurrected
        }
    };

    (out.honest_post_delivered, out.honest_post_attempted) = measure_pairs(&mut msys, &pairs);

    out.tallies =
        ALL_KINDS.iter().map(|&k| (k, msys.sys.meter.count(k), msys.sys.meter.cost(k))).collect();
    out.latencies = msys.obs().latency_snapshots();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(family: AttackFamily, policy: VerifyPolicy) -> AttackOutcome {
        run_attack(&AttackConfig::standard(8, family, policy))
    }

    #[test]
    fn every_family_succeeds_with_verification_off() {
        for family in ALL_FAMILIES {
            let out = run(family, VerifyPolicy::Off);
            assert!(out.attempts > 0, "{} must fire frames", family.name());
            assert!(out.successes > 0, "{} must succeed unverified: {out:?}", family.name());
            assert_eq!(out.forged_frames, 0, "off means nobody checks: {out:?}");
            assert_eq!(out.auth_rejects, 0, "off means nobody drops: {out:?}");
        }
    }

    #[test]
    fn every_family_is_stopped_by_enforcement() {
        for family in ALL_FAMILIES {
            let out = run(family, VerifyPolicy::Enforce);
            assert!(out.attempts > 0, "{} must fire frames", family.name());
            assert_eq!(
                out.successes,
                0,
                "{} must be stopped under enforce: {out:?}",
                family.name()
            );
            assert!(out.forged_frames > 0, "failures must be metered: {out:?}");
            assert!(out.auth_rejects > 0, "failures must be dropped: {out:?}");
        }
    }

    #[test]
    fn log_only_observes_but_does_not_stop() {
        for family in ALL_FAMILIES {
            let out = run(family, VerifyPolicy::LogOnly);
            assert!(out.successes > 0, "{} still lands under log-only: {out:?}", family.name());
            assert!(out.forged_frames > 0, "but every bad frame is metered: {out:?}");
            assert_eq!(out.auth_rejects, 0, "and none are dropped: {out:?}");
        }
    }

    #[test]
    fn enforcement_does_not_tax_honest_delivery() {
        for family in ALL_FAMILIES {
            let off = run(family, VerifyPolicy::Off);
            let enforce = run(family, VerifyPolicy::Enforce);
            assert_eq!(
                enforce.honest_pre_delivered,
                off.honest_pre_delivered,
                "{}: sealed-but-unchecked and sealed-and-checked honest \
                 traffic must deliver identically",
                family.name()
            );
            assert!(
                enforce.post_rate() >= off.post_rate(),
                "{}: enforcement must not hurt post-attack delivery \
                 (enforce {:.2} vs off {:.2})",
                family.name(),
                enforce.post_rate(),
                off.post_rate()
            );
        }
    }

    #[test]
    fn same_seed_twice_is_identical() {
        for family in ALL_FAMILIES {
            let cfg = AttackConfig::standard(9, family, VerifyPolicy::Enforce);
            assert_eq!(run_attack(&cfg), run_attack(&cfg), "{}", family.name());
        }
    }
}
