//! Gray-failure degradation scenario: fail-slow nodes, an asymmetric
//! lossy link, and flash-crowd route bursts against bounded ingress
//! queues, under either the fixed [`RetryPolicy`] timers or the
//! adaptive per-peer RTO estimator.
//!
//! The scenario answers the gray-failure questions the binary
//! alive/dead sweeps cannot:
//!
//! * does a *fail-slow* (degraded but alive) node survive detection
//!   without a wrongful funeral, while a genuinely crashed node is
//!   still confirmed and healed?
//! * does the adaptive RTO cut the spurious retransmissions the fixed
//!   timers fire against slowed peers, and with them the load-shed
//!   cascade at bounded ingress queues?
//!
//! Both retry arms run the identical seeded script — same build, same
//! degradation placement, same burst pairs — so their outcome deltas
//! are attributable to the timer policy alone.
//!
//! [`RetryPolicy`]: bristle_proto::machine::RetryPolicy

use bristle_core::config::BristleConfig;
use bristle_core::system::BristleBuilder;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, ALL_KINDS};
use bristle_overlay::obs::Snapshot;
use bristle_proto::failure::FailurePolicy;
use bristle_proto::rto::RtoConfig;
use bristle_proto::transport::{Degradation, FaultConfig};

use crate::messaging::MessagingBristleSystem;
use crate::metrics::Samples;

/// Parameters of one degradation run.
#[derive(Debug, Clone, Copy)]
pub struct DegradationConfig {
    /// Seed for the build, the transport, and the scenario draws.
    pub seed: u64,
    /// Stationary population at build time.
    pub stationary: usize,
    /// Mobile population at build time.
    pub mobile: usize,
    /// Adaptive per-peer RTO (`true`) or the fixed retry timers.
    pub adaptive: bool,
    /// Fail-slow latency multiplier applied to the degraded stationary
    /// nodes, in percent (`100` = no degradation cell).
    pub slowdown_pct: u32,
    /// How many stationary nodes the slowdown script hits.
    pub degraded_nodes: usize,
    /// Extra one-way loss on the scripted asymmetric link.
    pub link_loss: f64,
    /// Concurrent routes per flash-crowd wave (the overload axis).
    pub burst: usize,
    /// Flash-crowd waves (one heartbeat round after each).
    pub waves: usize,
    /// Sequential routes before degradation starts, so the adaptive
    /// arm's estimators are trained on the healthy network first.
    pub warmup_routes: usize,
    /// Bounded per-node ingress queue capacity (applied in all cells).
    pub ingress_cap: usize,
    /// Background transport drop probability.
    pub loss: f64,
    /// Base link latency; the slowdown multiplies this, so it sets how
    /// far past the fixed ack timeout a degraded round trip lands.
    pub min_latency: u64,
    /// Extra missed heartbeat rounds granted to recently-acking peers
    /// ([`FailurePolicy::grace_misses`], both arms).
    pub grace_misses: u32,
}

impl DegradationConfig {
    /// The standard acceptance-scale cell: enough slowdown to push
    /// degraded round trips past the fixed 20 000-tick ack timeout,
    /// bursts large enough to actually fill the bounded ingress queues.
    /// Background loss is zero — the resilience sweep owns random loss;
    /// here every anomaly is a *scripted* gray failure, so outcome
    /// deltas are attributable to the fail-slow family alone.
    pub fn standard(seed: u64) -> Self {
        DegradationConfig {
            seed,
            stationary: 36,
            mobile: 14,
            adaptive: false,
            slowdown_pct: 300,
            degraded_nodes: 8,
            link_loss: 0.35,
            burst: 16,
            waves: 10,
            warmup_routes: 40,
            ingress_cap: 6,
            loss: 0.0,
            min_latency: 6_000,
            grace_misses: 2,
        }
    }
}

/// What one degradation run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationOutcome {
    /// Routes attempted across all flash-crowd waves (warmup excluded).
    pub routes_attempted: usize,
    /// Wave routes that reached their target's owner.
    pub routes_delivered: usize,
    /// Retransmissions of frames the destination had already processed
    /// (meter [`MessageKind::SpuriousRetry`]).
    pub spurious_retries: u64,
    /// Lookup-class frames shed at full ingress queues
    /// (meter [`MessageKind::LoadShed`]).
    pub load_sheds: u64,
    /// Funerals held for nodes whose machine was still running. The
    /// acceptance bar is zero: fail-slow must never look like death.
    pub wrongful_burials: usize,
    /// Whether the scripted *real* crash was confirmed dead and healed.
    pub crash_confirmed: bool,
    /// Heartbeat rounds from the crash to its confirmation.
    pub detection_rounds: usize,
    /// Most peers simultaneously flagged degraded by the health score
    /// across the run (shows the fail-slow family is *observed*, not
    /// just injected).
    pub degraded_flagged_max: usize,
    /// Median wave-route completion latency (micro-clock ticks).
    pub wave_p50: u64,
    /// 99th-percentile wave-route completion latency.
    pub wave_p99: u64,
    /// Worst wave-route completion latency.
    pub wave_max: u64,
    /// Every wave-route completion latency, sorted ascending — so the
    /// sweep binary can pool cells into per-arm percentiles.
    pub wave_samples: Vec<u64>,
    /// Per-kind meter `(kind, count, cost)` at the end of the run.
    pub tallies: Vec<(MessageKind, u64, u64)>,
    /// Named latency-histogram snapshots from the driver's collector.
    pub latencies: Vec<(&'static str, Snapshot)>,
}

impl DegradationOutcome {
    /// Fraction of attempted wave routes that were delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.routes_attempted == 0 {
            1.0
        } else {
            self.routes_delivered as f64 / self.routes_attempted as f64
        }
    }
}

/// Every `n`-th key of the sorted stationary population — a
/// deterministic spread of degradation targets around the ring.
fn spread(keys: &[Key], n: usize) -> Vec<Key> {
    let mut sorted: Vec<Key> = keys.to_vec();
    sorted.sort_unstable();
    if n == 0 || sorted.is_empty() {
        return Vec::new();
    }
    let step = (sorted.len() / n).max(1);
    sorted.iter().step_by(step).take(n).copied().collect()
}

/// Runs one gray-failure degradation scenario: build, warm up, degrade,
/// crash one node for real, drive flash-crowd waves with heartbeat
/// rounds interleaved, heal, and settle. Deterministic in `cfg`.
pub fn run_degradation(cfg: &DegradationConfig) -> DegradationOutcome {
    let sys = BristleBuilder::new(cfg.seed)
        .stationary_nodes(cfg.stationary)
        .mobile_nodes(cfg.mobile)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig { adaptive_rto: cfg.adaptive, ..BristleConfig::recommended() })
        .build()
        .expect("system builds");
    let faults = FaultConfig {
        drop_probability: cfg.loss,
        min_latency: cfg.min_latency,
        ..FaultConfig::default()
    };
    let mut msys = MessagingBristleSystem::new(sys, faults, cfg.seed ^ 0xD06);
    if cfg.adaptive {
        msys.set_adaptive_rto(Some(RtoConfig::default()));
    }
    msys.set_ingress_cap(Some(cfg.ingress_cap));
    msys.set_failure_policy(FailurePolicy {
        grace_misses: cfg.grace_misses,
        ..FailurePolicy::default()
    });
    msys.seed_monitors();
    let mut rng = Pcg64::new(cfg.seed, 0xDE64);

    let mut out = DegradationOutcome {
        routes_attempted: 0,
        routes_delivered: 0,
        spurious_retries: 0,
        load_sheds: 0,
        wrongful_burials: 0,
        crash_confirmed: false,
        detection_rounds: 0,
        degraded_flagged_max: 0,
        wave_p50: 0,
        wave_p99: 0,
        wave_max: 0,
        wave_samples: Vec::new(),
        tallies: Vec::new(),
        latencies: Vec::new(),
    };

    let mut endpoints: Vec<Key> = msys.sys.mobile.keys().collect();
    endpoints.sort_unstable();
    let draw_pair = |rng: &mut Pcg64, endpoints: &[Key]| -> Option<(Key, Key)> {
        if endpoints.len() < 2 {
            return None;
        }
        let src = endpoints[rng.index(endpoints.len())];
        let dst = endpoints[rng.index(endpoints.len())];
        (src != dst).then_some((src, dst))
    };

    // Warmup on the healthy network: trains the adaptive arm's RTT
    // estimators; the fixed arm runs the same routes for rng parity.
    for _ in 0..cfg.warmup_routes {
        if let Some((src, dst)) = draw_pair(&mut rng, &endpoints) {
            let _ = msys.route(src, dst);
        }
    }
    msys.heartbeat_round();

    // Fail-slow scripts: a spread of stationary nodes slowed down, plus
    // one asymmetric lossy link between the first two victims (loss in
    // one direction only — acks die, data arrives).
    let victims = spread(msys.sys.stationary_keys(), cfg.degraded_nodes);
    if cfg.slowdown_pct > 100 {
        for &v in &victims {
            msys.degrade_node_now(v, Degradation::slowdown(cfg.slowdown_pct));
        }
        if let [a, b, ..] = victims[..] {
            msys.degrade_link_now(a, b, Degradation::lossy(cfg.link_loss));
        }
    }

    // One *real* silent crash among the healthy stationary nodes: the
    // detector must tell slow from dead while the scripts run, so the
    // confirmation races the degraded peers' late acks. Detection and
    // healing complete before the measurement waves — the waves then
    // observe the degradation itself, not the corpse's discovery tail.
    let crash = {
        let mut sorted: Vec<Key> = msys.sys.stationary_keys().to_vec();
        sorted.sort_unstable();
        sorted.into_iter().rev().find(|k| !victims.contains(k))
    };
    if let Some(c) = crash {
        msys.fail_silently(c);
        for _ in 0..8 {
            out.detection_rounds += 1;
            for k in msys.heartbeat_round() {
                let _ = msys.confirm_and_heal(k);
                if k == c {
                    out.crash_confirmed = true;
                }
            }
            out.degraded_flagged_max = out.degraded_flagged_max.max(msys.degraded_peers().len());
            if out.crash_confirmed {
                break;
            }
        }
    }

    let spurious_before = msys.sys.meter.count(MessageKind::SpuriousRetry);
    let sheds_before = msys.sys.meter.count(MessageKind::LoadShed);
    endpoints.retain(|&k| !msys.is_failed(k));

    let mut wave_latencies = Samples::new();
    for _ in 0..cfg.waves {
        // Each wave is a flash crowd: half its routes converge on one
        // hot target, so the hot record-owner's ingress queue actually
        // fills — the overload the bounded queues exist to survive.
        let hot = endpoints.get(rng.index(endpoints.len().max(1))).copied();
        let mut pairs = Vec::with_capacity(cfg.burst);
        let mut tries = 0;
        while pairs.len() < cfg.burst && tries < cfg.burst * 4 {
            tries += 1;
            if endpoints.len() < 2 {
                break;
            }
            let src = endpoints[rng.index(endpoints.len())];
            let dst = match hot {
                Some(h) if rng.chance(0.5) => h,
                _ => endpoints[rng.index(endpoints.len())],
            };
            if src != dst {
                pairs.push((src, dst));
            }
        }
        let started = msys.micro_now();
        let results = msys.route_burst(&pairs);
        out.routes_attempted += pairs.len();
        for report in results.iter().flatten() {
            out.routes_delivered += 1;
            wave_latencies.push(report.delivered_at.since(started) as f64);
        }

        // One detection round per wave: probes to the degraded peers
        // come back late (health score drops, grace credit accrues).
        // Anything confirmed here is by construction a wrongful burial
        // — the only real corpse was already found above.
        for k in msys.heartbeat_round() {
            let _ = msys.confirm_and_heal(k);
        }
        out.degraded_flagged_max = out.degraded_flagged_max.max(msys.degraded_peers().len());
    }

    msys.heal_degradations_now();

    out.spurious_retries = msys.sys.meter.count(MessageKind::SpuriousRetry) - spurious_before;
    out.load_sheds = msys.sys.meter.count(MessageKind::LoadShed) - sheds_before;
    out.wrongful_burials = msys.wrongly_buried().len();
    if !wave_latencies.is_empty() {
        out.wave_p50 = wave_latencies.percentile(50.0) as u64;
        out.wave_p99 = wave_latencies.percentile(99.0) as u64;
        out.wave_max = wave_latencies.max() as u64;
    }
    out.wave_samples = wave_latencies.sorted_values().iter().map(|&v| v as u64).collect();
    out.tallies =
        ALL_KINDS.iter().map(|&k| (k, msys.sys.meter.count(k), msys.sys.meter.cost(k))).collect();
    out.latencies = msys.obs().latency_snapshots();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_twice_is_identical() {
        let cfg = DegradationConfig::standard(11);
        let a = run_degradation(&cfg);
        let b = run_degradation(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn undegraded_cell_is_clean() {
        let mut cfg = DegradationConfig::standard(5);
        cfg.slowdown_pct = 100;
        cfg.loss = 0.0;
        let out = run_degradation(&cfg);
        assert_eq!(out.wrongful_burials, 0);
        assert!(out.crash_confirmed, "the real crash must be confirmed: {out:?}");
        assert_eq!(out.spurious_retries, 0, "no timeouts on a clean network");
        assert_eq!(out.routes_delivered, out.routes_attempted);
    }

    #[test]
    fn degraded_cell_flags_peers_without_burying_them() {
        let cfg = DegradationConfig::standard(8);
        let out = run_degradation(&cfg);
        assert_eq!(out.wrongful_burials, 0, "fail-slow must never look like death: {out:?}");
        assert!(out.crash_confirmed, "slow ≠ dead must still find the corpse: {out:?}");
        assert!(out.degraded_flagged_max > 0, "health scoring saw no degraded peer: {out:?}");
    }
}
