//! **Ablations** — the design choices DESIGN.md calls out, measured.
//!
//! Four studies, none of which is a paper figure but all of which back
//! claims the paper makes in passing:
//!
//! 1. **Substrate comparison** (§2.2, §2.3.2): "The stationary layer can
//!    be any HS-P2P, e.g., CAN, Chord, Pastry, Tapestry, Tornado" — with
//!    different state/route trade-offs (CAN: O(d) state, O(d·N^(1/d))
//!    hops; ring/prefix DHTs: O(log N) both). We measure state-per-node
//!    and route hops for the Tornado-like ring (base 4), the Chord-like
//!    ring (base 2), the Pastry-like prefix DHT, and CAN at d ∈ {2, 4}.
//! 2. **LDT fan-out** (Fig. 4's `v`): how the advertisement unit cost
//!    shifts tree depth vs per-node sending load.
//! 3. **Binding mode** (§2.3.2): early binding trades proactive update
//!    traffic for discovery-free routes; late binding the reverse.
//! 4. **Query mode**: recursive vs iterative `_discovery` — identical
//!    hop sequences, very different physical cost.

use bristle_core::config::BristleConfig;
use bristle_core::ldt::Ldt;
use bristle_core::registry::Registrant;
use bristle_core::system::BristleBuilder;
use bristle_netsim::attach::{AttachmentMap, HostId};
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::{Graph, RouterId};
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::can::CanOverlay;
use bristle_overlay::config::{NeighborSelection, RingConfig};
use bristle_overlay::key::Key;
use bristle_overlay::ring::RingDht;

use crate::report::{f2, Table};

use std::sync::Arc;

/// Parameters for the ablation studies.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Overlay size for the substrate comparison.
    pub n_nodes: usize,
    /// Routes sampled per substrate.
    pub routes: usize,
    /// Registrant count for the LDT fan-out study.
    pub ldt_members: usize,
    /// Unit costs `v` swept in the fan-out study.
    pub unit_costs: Vec<u32>,
    /// Population for the binding-mode study.
    pub binding_nodes: (usize, usize),
    /// Route samples in the binding-mode study.
    pub binding_routes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AblationConfig {
    /// Reduced scale.
    pub fn quick() -> Self {
        AblationConfig {
            n_nodes: 512,
            routes: 400,
            ldt_members: 24,
            unit_costs: vec![1, 2, 4, 8],
            binding_nodes: (120, 60),
            binding_routes: 150,
            seed: 42,
        }
    }

    /// Larger populations.
    pub fn paper() -> Self {
        AblationConfig { n_nodes: 4096, routes: 2_000, binding_nodes: (600, 300), ..Self::quick() }
    }
}

/// One substrate's measurements.
#[derive(Debug, Clone)]
pub struct SubstrateRow {
    /// Substrate name.
    pub name: &'static str,
    /// Mean routing-state rows (ring) / neighbors (CAN) per node.
    pub state_per_node: f64,
    /// Mean route hops to random keys.
    pub route_hops: f64,
}

/// One LDT fan-out measurement.
#[derive(Debug, Clone, Copy)]
pub struct FanoutRow {
    /// The unit cost `v`.
    pub unit_cost: u32,
    /// Resulting tree depth.
    pub depth: u32,
    /// Maximum messages any single member sends (its partition fan-out).
    pub max_fanout: usize,
}

/// One binding-mode measurement.
#[derive(Debug, Clone)]
pub struct BindingRow {
    /// Mode name.
    pub name: &'static str,
    /// Proactive messages (publish + update) during the scenario.
    pub proactive_msgs: u64,
    /// Reactive discovery operations during the route phase.
    pub discoveries: f64,
    /// Mean route hops (including discovery traffic).
    pub route_hops: f64,
}

/// One query-mode measurement (recursive vs iterative discovery).
#[derive(Debug, Clone)]
pub struct QueryModeRow {
    /// Mode name.
    pub name: &'static str,
    /// Mean physical cost per discovery-style query.
    pub cost_per_query: f64,
    /// Mean messages per query.
    pub msgs_per_query: f64,
}

/// The full ablation data set.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Study 1: substrate comparison.
    pub substrates: Vec<SubstrateRow>,
    /// Study 2: LDT fan-out.
    pub fanout: Vec<FanoutRow>,
    /// Study 3: binding modes.
    pub binding: Vec<BindingRow>,
    /// Study 4: recursive vs iterative query routing.
    pub query_modes: Vec<QueryModeRow>,
}

fn flat_env() -> (AttachmentMap, DistanceCache) {
    let mut g = Graph::with_vertices(2);
    g.add_edge(RouterId(0), RouterId(1), 1);
    (AttachmentMap::new(), DistanceCache::new(Arc::new(g), 4))
}

fn measure_ring(
    cfg: &AblationConfig,
    ring: RingConfig,
    name: &'static str,
    seed: u64,
) -> SubstrateRow {
    let mut rng = Pcg64::seed_from_u64(seed);
    let (mut attachments, dcache) = flat_env();
    let mut dht: RingDht<()> = RingDht::new(ring);
    for _ in 0..cfg.n_nodes {
        let host = attachments.attach_new(RouterId(0));
        loop {
            let k = Key::random(&mut rng);
            if dht.insert(k, host, 1).is_ok() {
                break;
            }
        }
    }
    dht.build_all_tables(&attachments, &dcache, &mut rng);
    let keys: Vec<Key> = dht.keys().collect();
    let mut hops_total = 0usize;
    for _ in 0..cfg.routes {
        let src = *rng.choose(&keys);
        let target = Key::random(&mut rng);
        let mut cur = src;
        while let Some(next) = dht.next_hop(cur, target).expect("route") {
            cur = next;
            hops_total += 1;
        }
    }
    SubstrateRow {
        name,
        state_per_node: dht.total_state() as f64 / dht.len() as f64,
        route_hops: hops_total as f64 / cfg.routes as f64,
    }
}

fn measure_prefix(cfg: &AblationConfig, name: &'static str, seed: u64) -> SubstrateRow {
    use bristle_overlay::prefix::PrefixDht;
    let mut rng = Pcg64::seed_from_u64(seed);
    let (mut attachments, dcache) = flat_env();
    let ring = RingConfig { selection: NeighborSelection::First, ..RingConfig::tornado() };
    let mut dht: PrefixDht<()> = PrefixDht::new(ring);
    for _ in 0..cfg.n_nodes {
        let host = attachments.attach_new(RouterId(0));
        loop {
            let k = Key::random(&mut rng);
            if dht.insert(k, host, 1).is_ok() {
                break;
            }
        }
    }
    dht.build_all_tables(&attachments, &dcache, &mut rng);
    let keys: Vec<Key> = dht.keys().collect();
    let mut hops_total = 0usize;
    for _ in 0..cfg.routes {
        let src = *rng.choose(&keys);
        hops_total += dht.route(src, Key::random(&mut rng)).expect("route").len();
    }
    SubstrateRow {
        name,
        state_per_node: dht.total_state() as f64 / dht.len() as f64,
        route_hops: hops_total as f64 / cfg.routes as f64,
    }
}

fn measure_can(cfg: &AblationConfig, dims: usize, name: &'static str, seed: u64) -> SubstrateRow {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut can: CanOverlay<()> = CanOverlay::new(dims);
    for i in 0..cfg.n_nodes {
        loop {
            let k = Key::random(&mut rng);
            if can.join(k, HostId(i as u32), &mut rng).is_ok() {
                break;
            }
        }
    }
    let keys: Vec<Key> = can.iter().map(|n| n.key).collect();
    let mut hops_total = 0usize;
    for _ in 0..cfg.routes {
        let src = *rng.choose(&keys);
        let target = Key::random(&mut rng);
        hops_total += can.route(src, target).expect("route").len();
    }
    SubstrateRow {
        name,
        state_per_node: can.avg_state(),
        route_hops: hops_total as f64 / cfg.routes as f64,
    }
}

fn measure_fanout(cfg: &AblationConfig) -> Vec<FanoutRow> {
    let mut rng = Pcg64::seed_from_u64(cfg.seed ^ 0xfa);
    let registrants: Vec<Registrant> = (0..cfg.ldt_members)
        .map(|i| Registrant::new(Key(i as u64 + 1), rng.range_inclusive(1, 15) as u32))
        .collect();
    let root = Registrant::new(Key(0), 15);
    cfg.unit_costs
        .iter()
        .map(|&v| {
            let tree = Ldt::build(root, &registrants, |_| 0, v);
            // Fan-out of a member = number of children it has.
            let mut children = vec![0usize; tree.len()];
            for n in tree.nodes() {
                if let Some(p) = n.parent {
                    children[p as usize] += 1;
                }
            }
            FanoutRow {
                unit_cost: v,
                depth: tree.depth(),
                max_fanout: children.into_iter().max().unwrap_or(0),
            }
        })
        .collect()
}

fn measure_binding(cfg: &AblationConfig) -> Vec<BindingRow> {
    use bristle_overlay::meter::MessageKind;
    let mut rows = Vec::new();
    for (name, base) in [
        ("early binding", BristleConfig::recommended()),
        (
            "late binding",
            BristleConfig {
                lease_ttl: 0,
                binding: bristle_core::config::BindingMode::Late,
                ..BristleConfig::recommended()
            },
        ),
    ] {
        let mut sys = BristleBuilder::new(cfg.seed ^ 0xb1)
            .stationary_nodes(cfg.binding_nodes.0)
            .mobile_nodes(cfg.binding_nodes.1)
            .topology(TransitStubConfig::small())
            .config(base)
            .build()
            .expect("builds");
        let before = sys.meter.clone();
        for m in sys.mobile_keys().to_vec() {
            sys.move_node(m, None).expect("move");
        }
        let proactive_msgs = (sys.meter.count(MessageKind::Publish)
            + sys.meter.count(MessageKind::Update)
            + sys.meter.count(MessageKind::Replicate))
            - (before.count(MessageKind::Publish)
                + before.count(MessageKind::Update)
                + before.count(MessageKind::Replicate));
        let stationaries = sys.stationary_keys().to_vec();
        let mobiles = sys.mobile_keys().to_vec();
        let mut discoveries = 0usize;
        let mut hops = 0usize;
        for i in 0..cfg.binding_routes {
            let src = stationaries[i % stationaries.len()];
            let dst = mobiles[(i * 3) % mobiles.len()];
            let rep = sys.route_mobile(src, dst).expect("route");
            discoveries += rep.discoveries;
            hops += rep.total_hops();
        }
        rows.push(BindingRow {
            name,
            proactive_msgs,
            discoveries: discoveries as f64 / cfg.binding_routes as f64,
            route_hops: hops as f64 / cfg.binding_routes as f64,
        });
    }
    rows
}

fn measure_query_modes(cfg: &AblationConfig) -> Vec<QueryModeRow> {
    use bristle_netsim::transit_stub::TransitStubTopology;
    use bristle_overlay::meter::{MessageKind, Meter};
    // A physically realistic network this time: round trips must cost
    // real distance for the comparison to mean anything.
    let mut rng = Pcg64::seed_from_u64(cfg.seed ^ 0x17e2);
    let topo = TransitStubTopology::generate(&TransitStubConfig::small(), &mut rng);
    let stubs = topo.stub_routers().to_vec();
    let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 2048);
    let mut attachments = AttachmentMap::new();
    let mut dht: RingDht<()> = RingDht::new(RingConfig::tornado());
    for _ in 0..cfg.n_nodes.min(1024) {
        let host = attachments.attach_new(*rng.choose(&stubs));
        loop {
            let k = Key::random(&mut rng);
            if dht.insert(k, host, 1).is_ok() {
                break;
            }
        }
    }
    dht.build_all_tables(&attachments, &dcache, &mut rng);
    let keys: Vec<Key> = dht.keys().collect();
    let mut rec = Meter::new();
    let mut ite = Meter::new();
    for _ in 0..cfg.routes {
        let src = *rng.choose(&keys);
        let target = Key::random(&mut rng);
        dht.route_as(src, target, MessageKind::DiscoveryHop, &attachments, &dcache, &mut rec)
            .expect("route");
        dht.route_iterative(
            src,
            target,
            MessageKind::DiscoveryHop,
            &attachments,
            &dcache,
            &mut ite,
        )
        .expect("route");
    }
    let row = |name, m: &Meter| QueryModeRow {
        name,
        cost_per_query: m.cost(MessageKind::DiscoveryHop) as f64 / cfg.routes as f64,
        msgs_per_query: m.count(MessageKind::DiscoveryHop) as f64 / cfg.routes as f64,
    };
    vec![row("recursive", &rec), row("iterative", &ite)]
}

/// Runs all four studies.
pub fn run(cfg: &AblationConfig) -> AblationResult {
    let substrates = vec![
        measure_ring(
            cfg,
            RingConfig { selection: NeighborSelection::First, ..RingConfig::tornado() },
            "ring base-4 (Tornado-like)",
            cfg.seed ^ 1,
        ),
        measure_ring(
            cfg,
            RingConfig { selection: NeighborSelection::First, ..RingConfig::chord() },
            "ring base-2 (Chord-like)",
            cfg.seed ^ 2,
        ),
        measure_prefix(cfg, "prefix base-4 (Pastry-like)", cfg.seed ^ 7),
        measure_can(cfg, 2, "CAN d=2", cfg.seed ^ 3),
        measure_can(cfg, 4, "CAN d=4", cfg.seed ^ 4),
    ];
    AblationResult {
        substrates,
        fanout: measure_fanout(cfg),
        binding: measure_binding(cfg),
        query_modes: measure_query_modes(cfg),
    }
}

/// Renders the substrate comparison.
pub fn to_table_substrates(result: &AblationResult) -> Table {
    let mut t = Table::new(
        "Ablation 1 — HS-P2P substrate candidates (paper §2.3.2)",
        &["substrate", "state/node", "route hops"],
    );
    for r in &result.substrates {
        t.row(vec![r.name.to_string(), f2(r.state_per_node), f2(r.route_hops)]);
    }
    t
}

/// Renders the fan-out study.
pub fn to_table_fanout(result: &AblationResult) -> Table {
    let mut t = Table::new(
        "Ablation 2 — LDT unit cost v (Fig. 4)",
        &["v", "tree depth", "max member fan-out"],
    );
    for r in &result.fanout {
        t.row(vec![r.unit_cost.to_string(), r.depth.to_string(), r.max_fanout.to_string()]);
    }
    t
}

/// Renders the binding study.
pub fn to_table_binding(result: &AblationResult) -> Table {
    let mut t = Table::new(
        "Ablation 3 — early vs late binding (§2.3.2)",
        &["mode", "proactive msgs", "disc/route", "hops/route"],
    );
    for r in &result.binding {
        t.row(vec![
            r.name.to_string(),
            r.proactive_msgs.to_string(),
            f2(r.discoveries),
            f2(r.route_hops),
        ]);
    }
    t
}

/// Renders the query-mode study.
pub fn to_table_query_modes(result: &AblationResult) -> Table {
    let mut t = Table::new(
        "Ablation 4 — recursive vs iterative query routing",
        &["mode", "cost/query", "msgs/query"],
    );
    for r in &result.query_modes {
        t.row(vec![r.name.to_string(), f2(r.cost_per_query), f2(r.msgs_per_query)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            n_nodes: 128,
            routes: 100,
            ldt_members: 16,
            unit_costs: vec![1, 4],
            binding_nodes: (40, 20),
            binding_routes: 40,
            seed: 5,
        }
    }

    #[test]
    fn can_trades_state_for_hops() {
        let result = run(&tiny());
        let ring4 = &result.substrates[0];
        let can2 = &result.substrates[3];
        assert!(can2.state_per_node < ring4.state_per_node, "CAN keeps O(d) state");
        assert!(can2.route_hops > ring4.route_hops, "CAN pays O(d·N^(1/d)) hops");
    }

    #[test]
    fn base4_beats_base2_on_hops() {
        let result = run(&tiny());
        assert!(result.substrates[0].route_hops < result.substrates[1].route_hops);
    }

    #[test]
    fn prefix_family_behaves_like_ring_family() {
        // Same base, same O(log N) class: hops within 1.5x of each other.
        let result = run(&tiny());
        let ring4 = &result.substrates[0];
        let prefix4 = &result.substrates[2];
        assert!(prefix4.route_hops < ring4.route_hops * 1.5);
        assert!(ring4.route_hops < prefix4.route_hops * 1.5);
    }

    #[test]
    fn higher_dim_can_routes_shorter() {
        let result = run(&tiny());
        let can2 = &result.substrates[3];
        let can4 = &result.substrates[4];
        assert!(
            can4.route_hops <= can2.route_hops * 1.2,
            "d=4 {} vs d=2 {}",
            can4.route_hops,
            can2.route_hops
        );
    }

    #[test]
    fn bigger_unit_cost_deepens_trees() {
        let result = run(&tiny());
        let first = result.fanout.first().unwrap();
        let last = result.fanout.last().unwrap();
        assert!(last.depth >= first.depth, "v=4 {} vs v=1 {}", last.depth, first.depth);
        assert!(last.max_fanout <= first.max_fanout);
    }

    #[test]
    fn late_binding_discovers_more() {
        let result = run(&tiny());
        let early = &result.binding[0];
        let late = &result.binding[1];
        assert!(
            late.discoveries > early.discoveries,
            "late {} vs early {}",
            late.discoveries,
            early.discoveries
        );
        assert!(late.route_hops >= early.route_hops);
    }

    #[test]
    fn iterative_queries_cost_more_per_query() {
        let result = run(&tiny());
        let rec = &result.query_modes[0];
        let ite = &result.query_modes[1];
        assert!(
            ite.cost_per_query > rec.cost_per_query,
            "iterative {} vs recursive {}",
            ite.cost_per_query,
            rec.cost_per_query
        );
        // Same greedy path → same message count.
        assert!((ite.msgs_per_query - rec.msgs_per_query).abs() < 1e-9);
    }

    #[test]
    fn tables_render() {
        let result = run(&tiny());
        assert_eq!(to_table_substrates(&result).len(), 5);
        assert_eq!(to_table_fanout(&result).len(), 2);
        assert_eq!(to_table_binding(&result).len(), 2);
        assert_eq!(to_table_query_modes(&result).len(), 2);
    }
}
