//! **Figure 7** — state discovery: application-level hops and relative
//! delay penalty (RDP), scrambled vs clustered naming.
//!
//! Paper setup (§4, §4.1): N − M = 2 000 stationary nodes, M = 0..8 000
//! mobile nodes (M/N = 0..80%), nodes placed on a GT-ITM transit-stub
//! topology; 10 000 sample routes between random stationary pairs; a
//! mobile node advertises its location to the stationary layer only, so
//! *every* hop through a mobile node needs a `_discovery`. Fig. 7(a)
//! plots the mean application-level hops for both naming schemes;
//! Fig. 7(b) the RDP — scrambled over clustered — for hops and for
//! Dijkstra path cost, with a knee at M/N = 50%.
//!
//! We reproduce the setup exactly: `BristleConfig::paper_*` presets give
//! zero-TTL leases (per-hop discovery) and all mobile nodes move once
//! before sampling so cached addresses are genuinely stale.

use bristle_core::config::BristleConfig;
use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_netsim::transit_stub::TransitStubConfig;

use crate::report::{f2, Table};
use crate::workload::{measure_routes, sample_stationary_pairs};

/// Parameters for the Figure 7 regeneration.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Stationary node count (N − M; the paper uses 2 000).
    pub n_stationary: usize,
    /// Mobile fractions M/N on the x-axis.
    pub fractions: Vec<f64>,
    /// Sample routes per point (the paper uses 10 000).
    pub routes: usize,
    /// Physical topology.
    pub topology: TransitStubConfig,
    /// RNG seed.
    pub seed: u64,
    /// Whether to run sweep points on parallel threads.
    pub parallel: bool,
}

impl Fig7Config {
    /// Reduced scale: 200 stationary nodes, 600 routes per point.
    pub fn quick() -> Self {
        Fig7Config {
            n_stationary: 200,
            fractions: (0..=8).map(|i| i as f64 / 10.0).collect(),
            routes: 600,
            topology: TransitStubConfig::small(),
            seed: 42,
            parallel: true,
        }
    }

    /// The paper's scale: 2 000 stationary nodes, 10 000 routes.
    pub fn paper() -> Self {
        Fig7Config {
            n_stationary: 2_000,
            routes: 10_000,
            topology: TransitStubConfig::medium(),
            ..Self::quick()
        }
    }

    /// Mobile count for a given fraction f: M = f/(1−f) · (N − M),
    /// since the paper fixes the stationary count.
    pub fn mobile_count(&self, fraction: f64) -> usize {
        if fraction <= 0.0 {
            return 0;
        }
        ((fraction / (1.0 - fraction)) * self.n_stationary as f64).round() as usize
    }
}

/// Metrics for one naming scheme at one sweep point.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchemeMetrics {
    /// Mean application-level hops per route.
    pub hops: f64,
    /// Mean Dijkstra path cost per route.
    pub path_cost: f64,
    /// Mean `_discovery` operations per route.
    pub discoveries: f64,
}

/// One sweep point of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Mobile fraction M/N.
    pub fraction: f64,
    /// Scrambled-naming metrics.
    pub scrambled: SchemeMetrics,
    /// Clustered-naming metrics.
    pub clustered: SchemeMetrics,
}

impl Fig7Row {
    /// RDP in application-level hops (Fig. 7b, solid series).
    pub fn rdp_hops(&self) -> f64 {
        if self.clustered.hops == 0.0 {
            1.0
        } else {
            self.scrambled.hops / self.clustered.hops
        }
    }

    /// RDP in actual path cost (Fig. 7b, dashed series).
    pub fn rdp_cost(&self) -> f64 {
        if self.clustered.path_cost == 0.0 {
            1.0
        } else {
            self.scrambled.path_cost / self.clustered.path_cost
        }
    }
}

/// The regenerated Figure 7 data set.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// One row per mobile fraction.
    pub rows: Vec<Fig7Row>,
}

fn measure_scheme(
    cfg: &Fig7Config,
    fraction: f64,
    base: BristleConfig,
    seed_tag: u64,
) -> SchemeMetrics {
    let m = cfg.mobile_count(fraction);
    let mut sys: BristleSystem = BristleBuilder::new(cfg.seed ^ seed_tag)
        .stationary_nodes(cfg.n_stationary)
        .mobile_nodes(m)
        .topology(cfg.topology.clone())
        .config(base)
        .build()
        .expect("system builds");
    // Every mobile node moves once, invalidating all cached addresses —
    // the paper's "mobile node only advertises ... to the stationary
    // layer" steady state.
    for key in sys.mobile_keys().to_vec() {
        sys.move_node(key, None).expect("mobile node moves");
    }
    let pairs = sample_stationary_pairs(&mut sys, cfg.routes);
    let agg = measure_routes(&mut sys, &pairs);
    SchemeMetrics {
        hops: agg.mean_hops(),
        path_cost: agg.mean_cost(),
        discoveries: agg.mean_discoveries(),
    }
}

fn run_point(cfg: &Fig7Config, fraction: f64) -> Fig7Row {
    let scrambled = measure_scheme(cfg, fraction, BristleConfig::paper_scrambled(), 0x5c5a);
    let clustered = measure_scheme(cfg, fraction, BristleConfig::paper_clustered(), 0xc1c1);
    Fig7Row { fraction, scrambled, clustered }
}

/// Runs the sweep (parallel across fractions when configured).
pub fn run(cfg: &Fig7Config) -> Fig7Result {
    let rows: Vec<Fig7Row> = if cfg.parallel && cfg.fractions.len() > 1 {
        let mut out: Vec<Option<Fig7Row>> = vec![None; cfg.fractions.len()];
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, &f) in cfg.fractions.iter().enumerate() {
                handles.push((i, s.spawn(move || run_point(cfg, f))));
            }
            for (i, h) in handles {
                out[i] = Some(h.join().expect("sweep point"));
            }
        });
        out.into_iter().map(|r| r.expect("filled")).collect()
    } else {
        cfg.fractions.iter().map(|&f| run_point(cfg, f)).collect()
    };
    Fig7Result { rows }
}

/// Renders Fig. 7(a): mean application-level hops per naming scheme.
pub fn to_table_hops(result: &Fig7Result) -> Table {
    let mut t = Table::new(
        "Figure 7(a) — application-level hops per route",
        &["M/N", "scrambled", "clustered", "disc/route (scr)", "disc/route (clu)"],
    );
    for r in &result.rows {
        t.row(vec![
            f2(r.fraction),
            f2(r.scrambled.hops),
            f2(r.clustered.hops),
            f2(r.scrambled.discoveries),
            f2(r.clustered.discoveries),
        ]);
    }
    t
}

/// Renders Fig. 7(b): relative delay penalty.
pub fn to_table_rdp(result: &Fig7Result) -> Table {
    let mut t = Table::new(
        "Figure 7(b) — relative delay penalty (scrambled / clustered)",
        &["M/N", "RDP hops", "RDP path cost"],
    );
    for r in &result.rows {
        t.row(vec![f2(r.fraction), f2(r.rdp_hops()), f2(r.rdp_cost())]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig7Config {
        Fig7Config {
            n_stationary: 60,
            fractions: vec![0.0, 0.4, 0.8],
            routes: 80,
            topology: TransitStubConfig::tiny(),
            seed: 11,
            parallel: false,
        }
    }

    #[test]
    fn mobile_count_fixes_stationary_population() {
        let cfg = Fig7Config::quick();
        assert_eq!(cfg.mobile_count(0.0), 0);
        // M/N = 0.5 → M = N − M.
        assert_eq!(cfg.mobile_count(0.5), cfg.n_stationary);
        // M/N = 0.8 → M = 4 (N − M), the paper's 8 000 at 2 000 stationary.
        assert_eq!(cfg.mobile_count(0.8), 4 * cfg.n_stationary);
    }

    #[test]
    fn clustered_never_worse_than_scrambled() {
        let result = run(&tiny());
        for r in &result.rows {
            assert!(
                r.clustered.hops <= r.scrambled.hops + 0.5,
                "at M/N {} clustered {} vs scrambled {}",
                r.fraction,
                r.clustered.hops,
                r.scrambled.hops
            );
        }
    }

    #[test]
    fn scrambled_hops_grow_with_mobility() {
        let result = run(&tiny());
        let first = result.rows.first().unwrap();
        let last = result.rows.last().unwrap();
        assert!(
            last.scrambled.hops > first.scrambled.hops * 1.5,
            "scrambled {} → {}",
            first.scrambled.hops,
            last.scrambled.hops
        );
    }

    #[test]
    fn rdp_starts_near_one() {
        let result = run(&tiny());
        let r0 = &result.rows[0];
        assert!((r0.rdp_hops() - 1.0).abs() < 0.25, "rdp at M=0 is {}", r0.rdp_hops());
    }

    #[test]
    fn zero_mobility_has_no_discoveries() {
        let result = run(&tiny());
        let r0 = &result.rows[0];
        assert_eq!(r0.scrambled.discoveries, 0.0);
        assert_eq!(r0.clustered.discoveries, 0.0);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut cfg = tiny();
        cfg.fractions = vec![0.0, 0.5];
        let serial = run(&cfg);
        cfg.parallel = true;
        let parallel = run(&cfg);
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.scrambled.hops, b.scrambled.hops);
            assert_eq!(a.clustered.path_cost, b.clustered.path_cost);
        }
    }

    #[test]
    fn tables_render() {
        let result = run(&tiny());
        assert_eq!(to_table_hops(&result).len(), 3);
        assert_eq!(to_table_rdp(&result).len(), 3);
    }
}
