//! Experiment drivers — one module per table/figure of the paper.
//!
//! Every driver follows the same shape: a `*Config` with `quick()` (CI- and
//! laptop-friendly) and `paper()` (the paper's scale) constructors, a
//! `run()` producing a typed result, and a `to_table()` rendering the rows
//! the paper's figure plots. The binaries in `src/bin/` are thin wrappers.

pub mod ablation;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;

/// Experiment scale selector shared by the binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced populations; finishes in seconds, preserves every shape.
    Quick,
    /// The paper's populations (minutes of runtime).
    Paper,
}

impl Scale {
    /// Parses `--paper` style CLI arguments (anything else → quick).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Scale {
        for a in args {
            if a == "--paper" {
                return Scale::Paper;
            }
        }
        Scale::Quick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_flag() {
        assert_eq!(Scale::from_args(vec!["--paper".to_string()]), Scale::Paper);
        assert_eq!(Scale::from_args(vec!["--quick".to_string()]), Scale::Quick);
        assert_eq!(Scale::from_args(Vec::<String>::new()), Scale::Quick);
    }
}
