//! **Figure 9** — LDT cost with and without network locality.
//!
//! Paper setup (§4.3): Bristle nodes are added to a 10 000-router
//! transit-stub network; capacities are uniform 1..=15. For every LDT in
//! the system the per-edge cost (minimal physical path weight between
//! the two members) is measured and averaged. Two modes are compared:
//! trees whose membership comes from proximity-aware state selection
//! ("with locality", Fig. 5's `distance(r, i)` check) and trees whose
//! membership is key-structured but location-blind ("without locality").
//!
//! Expected shape: with-locality trees are cheaper everywhere, and get
//! *cheaper* as the population grows (denser nodes → closer candidates),
//! while locality-blind trees stay expensive.

use std::collections::HashMap;
use std::sync::Arc;

use bristle_core::ldt::Ldt;
use bristle_core::registry::Registrant;
use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
use bristle_overlay::config::RingConfig;
use bristle_overlay::key::Key;
use bristle_overlay::ring::RingDht;

use crate::report::{f2, Table};

/// Parameters for the Figure 9 regeneration.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Maximum overlay population (reached at fraction 1.0).
    pub max_nodes: usize,
    /// Population fractions on the x-axis (the paper's M/N sweep as the
    /// node population is "dynamically increased").
    pub fractions: Vec<f64>,
    /// Capacity range (the paper uses 1..=15).
    pub capacity_range: (u32, u32),
    /// How many roots to build trees for (None = every node).
    pub tree_sample: Option<usize>,
    /// Physical topology.
    pub topology: TransitStubConfig,
    /// RNG seed.
    pub seed: u64,
    /// Run sweep points on parallel threads.
    pub parallel: bool,
}

impl Fig9Config {
    /// Reduced scale: 800 nodes max on a small topology.
    pub fn quick() -> Self {
        Fig9Config {
            max_nodes: 800,
            fractions: (1..=10).map(|i| i as f64 / 10.0).collect(),
            capacity_range: (1, 15),
            tree_sample: Some(400),
            topology: TransitStubConfig::small(),
            seed: 42,
            parallel: true,
        }
    }

    /// Paper scale: a ≈10 000-router network, up to 10 000 nodes.
    pub fn paper() -> Self {
        Fig9Config {
            max_nodes: 10_000,
            tree_sample: Some(1_500),
            topology: TransitStubConfig::paper(),
            ..Self::quick()
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Population fraction.
    pub fraction: f64,
    /// Node count at this point.
    pub nodes: usize,
    /// Average per-tree per-edge cost with locality-aware membership.
    pub cost_with_locality: f64,
    /// Average per-tree per-edge cost with locality-blind membership.
    pub cost_without_locality: f64,
}

/// The regenerated Figure 9 data set.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// One row per fraction.
    pub rows: Vec<Fig9Row>,
}

/// Builds an overlay of `n` nodes over the shared topology and returns
/// the average per-tree per-edge LDT cost.
fn measure_mode(
    n: usize,
    ring: RingConfig,
    stub_routers: &[bristle_netsim::graph::RouterId],
    dcache: &DistanceCache,
    cfg: &Fig9Config,
    seed_tag: u64,
) -> f64 {
    let mut rng = Pcg64::seed_from_u64(cfg.seed ^ seed_tag);
    let mut attachments = AttachmentMap::new();
    let mut dht: RingDht<()> = RingDht::new(ring);
    let (lo, hi) = cfg.capacity_range;
    for _ in 0..n {
        let host = attachments.attach_new(*rng.choose(stub_routers));
        let cap = rng.range_inclusive(lo as u64, hi as u64) as u32;
        loop {
            let k = Key::random(&mut rng);
            if dht.insert(k, host, cap).is_ok() {
                break;
            }
        }
    }
    dht.build_all_tables(&attachments, dcache, &mut rng);

    let rev = dht.reverse_index();
    let capacities: HashMap<Key, u32> = dht.iter().map(|node| (node.key, node.capacity)).collect();
    let routers: HashMap<Key, bristle_netsim::graph::RouterId> =
        dht.iter().map(|node| (node.key, attachments.router(node.host))).collect();

    let mut roots: Vec<Key> = dht.keys().collect();
    if let Some(s) = cfg.tree_sample {
        rng.shuffle(&mut roots);
        roots.truncate(s.min(roots.len()));
    }

    let mut total_cost = 0u64;
    let mut total_edges = 0usize;
    for &root in &roots {
        let registrants: Vec<Registrant> = rev
            .get(&root)
            .map(|hs| hs.iter().map(|&h| Registrant::new(h, capacities[&h])).collect())
            .unwrap_or_default();
        let tree = Ldt::build(Registrant::new(root, capacities[&root]), &registrants, |_| 0, 1);
        let (cost, edges) = tree.edge_cost_sum(|a, b| dcache.distance(routers[&a], routers[&b]));
        total_cost += cost;
        total_edges += edges;
    }
    if total_edges == 0 {
        0.0
    } else {
        total_cost as f64 / total_edges as f64
    }
}

/// Runs the sweep.
pub fn run(cfg: &Fig9Config) -> Fig9Result {
    // One shared physical network across all points (as in the paper).
    // The distance cache is sized to hold a row per router so repeated
    // sweep points never recompute a Dijkstra (≈ 80 B × routers² memory).
    let mut topo_rng = Pcg64::seed_from_u64(cfg.seed);
    let topo = TransitStubTopology::generate(&cfg.topology, &mut topo_rng);
    let stub_routers = topo.stub_routers().to_vec();
    let rows = topo.router_count() + 64;
    let dcache = DistanceCache::new(Arc::new(topo.into_graph()), rows);

    let point = |fraction: f64| -> Fig9Row {
        let n = ((cfg.max_nodes as f64) * fraction).round().max(8.0) as usize;
        let with = measure_mode(n, RingConfig::tornado(), &stub_routers, &dcache, cfg, 0x10c0);
        let without =
            measure_mode(n, RingConfig::tornado_no_locality(), &stub_routers, &dcache, cfg, 0xb11d);
        Fig9Row { fraction, nodes: n, cost_with_locality: with, cost_without_locality: without }
    };

    let rows: Vec<Fig9Row> = if cfg.parallel && cfg.fractions.len() > 1 {
        let mut out: Vec<Option<Fig9Row>> = vec![None; cfg.fractions.len()];
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, &f) in cfg.fractions.iter().enumerate() {
                let point = &point;
                handles.push((i, s.spawn(move || point(f))));
            }
            for (i, h) in handles {
                out[i] = Some(h.join().expect("sweep point"));
            }
        });
        out.into_iter().map(|r| r.expect("filled")).collect()
    } else {
        cfg.fractions.iter().map(|&f| point(f)).collect()
    };
    Fig9Result { rows }
}

/// Renders the figure data.
pub fn to_table(result: &Fig9Result) -> Table {
    let mut t = Table::new(
        "Figure 9 — average per-tree per-edge LDT cost",
        &["M/N", "nodes", "with locality", "without locality", "saving"],
    );
    for r in &result.rows {
        let saving = if r.cost_without_locality > 0.0 {
            1.0 - r.cost_with_locality / r.cost_without_locality
        } else {
            0.0
        };
        t.row(vec![
            f2(r.fraction),
            r.nodes.to_string(),
            f2(r.cost_with_locality),
            f2(r.cost_without_locality),
            format!("{:.1}%", saving * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig9Config {
        Fig9Config {
            max_nodes: 300,
            fractions: vec![0.2, 0.6, 1.0],
            capacity_range: (1, 15),
            tree_sample: Some(150),
            topology: TransitStubConfig::tiny(),
            seed: 5,
            parallel: false,
        }
    }

    #[test]
    fn locality_always_cheaper() {
        let result = run(&tiny());
        for r in &result.rows {
            assert!(
                r.cost_with_locality < r.cost_without_locality,
                "at {} with {} must beat without {}",
                r.fraction,
                r.cost_with_locality,
                r.cost_without_locality
            );
        }
    }

    #[test]
    fn locality_improves_with_density() {
        let result = run(&tiny());
        let first = result.rows.first().unwrap();
        let last = result.rows.last().unwrap();
        assert!(
            last.cost_with_locality <= first.cost_with_locality * 1.05,
            "density must not hurt locality: {} → {}",
            first.cost_with_locality,
            last.cost_with_locality
        );
    }

    #[test]
    fn node_counts_track_fractions() {
        let result = run(&tiny());
        assert_eq!(result.rows[0].nodes, 60);
        assert_eq!(result.rows[2].nodes, 300);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut cfg = tiny();
        cfg.fractions = vec![0.3, 0.9];
        let serial = run(&cfg);
        cfg.parallel = true;
        let parallel = run(&cfg);
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.cost_with_locality, b.cost_with_locality);
            assert_eq!(a.cost_without_locality, b.cost_without_locality);
        }
    }

    #[test]
    fn table_renders() {
        let result = run(&tiny());
        assert_eq!(to_table(&result).len(), 3);
    }
}
