//! **Figure 3** — per-stationary-node responsibility, member-only vs
//! non-member-only LDTs.
//!
//! The paper plots the analytic responsibility for N = 2^20 over a linear
//! M/N sweep. We regenerate that curve, and *additionally* measure the
//! same quantity on a live (smaller) overlay by materializing both tree
//! designs and counting how many trees each stationary node is drafted
//! into — confirming the analytic gap of ≈ log N on real trees.

use std::collections::HashMap;
use std::sync::Arc;

use bristle_core::analysis::{figure3_series, ResponsibilityPoint};
use bristle_core::ldt::Ldt;
use bristle_core::ldt_nonmember::NonMemberTree;
use bristle_core::registry::Registrant;
use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::{Graph, RouterId};
use bristle_netsim::rng::Pcg64;
use bristle_overlay::config::{NeighborSelection, RingConfig};
use bristle_overlay::key::Key;
use bristle_overlay::ring::RingDht;

use crate::report::{f2, f3, Table};

/// Parameters for the Figure 3 regeneration.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// N of the analytic curve (the paper uses 2^20).
    pub analytic_n: f64,
    /// Node count of the measured overlay.
    pub measured_n: usize,
    /// Mobile fractions sweeping the x-axis.
    pub fractions: Vec<f64>,
    /// Capacity range for measured registrants.
    pub capacity_range: (u32, u32),
    /// RNG seed.
    pub seed: u64,
}

impl Fig3Config {
    /// Reduced scale: 512-node measured overlay.
    pub fn quick() -> Self {
        Fig3Config {
            analytic_n: 1_048_576.0,
            measured_n: 512,
            fractions: (1..=8).map(|i| i as f64 / 10.0).collect(),
            capacity_range: (1, 15),
            seed: 42,
        }
    }

    /// Paper scale: analytic N = 2^20, measured overlay of 4096 nodes.
    pub fn paper() -> Self {
        Fig3Config { measured_n: 4096, ..Self::quick() }
    }
}

/// One row of the regenerated figure.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// The analytic point (paper curve).
    pub analytic: ResponsibilityPoint,
    /// Measured member-only responsibility (trees per stationary node).
    pub measured_member: f64,
    /// Measured non-member-only responsibility.
    pub measured_non_member: f64,
}

/// The regenerated Figure 3 data set.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// One row per mobile fraction.
    pub rows: Vec<Fig3Row>,
}

/// Builds a flat overlay (no physical locality needed here) of `n` nodes.
fn flat_overlay(n: usize, rng: &mut Pcg64) -> (RingDht<()>, AttachmentMap, DistanceCache) {
    let graph = {
        let mut g = Graph::with_vertices(2);
        g.add_edge(RouterId(0), RouterId(1), 1);
        g
    };
    let dcache = DistanceCache::new(Arc::new(graph), 4);
    let mut attachments = AttachmentMap::new();
    let cfg = RingConfig { selection: NeighborSelection::First, ..RingConfig::tornado() };
    let mut dht = RingDht::new(cfg);
    for _ in 0..n {
        let host = attachments.attach_new(RouterId(0));
        loop {
            let k = Key::random(rng);
            if dht.insert(k, host, 1).is_ok() {
                break;
            }
        }
    }
    dht.build_all_tables(&attachments, &dcache, rng);
    (dht, attachments, dcache)
}

/// Runs the experiment.
pub fn run(cfg: &Fig3Config) -> Fig3Result {
    let analytic = figure3_series(cfg.analytic_n, &cfg.fractions);
    let mut rng = Pcg64::seed_from_u64(cfg.seed);
    let (dht, attachments, dcache) = flat_overlay(cfg.measured_n, &mut rng);
    let keys: Vec<Key> = dht.keys().collect();
    let rev = dht.reverse_index();
    let capacities: HashMap<Key, u32> = keys
        .iter()
        .map(|&k| {
            (
                k,
                rng.range_inclusive(cfg.capacity_range.0 as u64, cfg.capacity_range.1 as u64)
                    as u32,
            )
        })
        .collect();

    let mut rows = Vec::with_capacity(cfg.fractions.len());
    for (i, &fraction) in cfg.fractions.iter().enumerate() {
        let m = ((cfg.measured_n as f64) * fraction) as usize;
        let m = m.clamp(1, cfg.measured_n - 1);
        // Deterministic mobile subset per fraction.
        let mut pick_rng = Pcg64::new(cfg.seed ^ (i as u64), 77);
        let mut shuffled = keys.clone();
        pick_rng.shuffle(&mut shuffled);
        let mobile: Vec<Key> = shuffled[..m].to_vec();
        let stationary: Vec<Key> = shuffled[m..].to_vec();
        let mobile_set: std::collections::HashSet<Key> = mobile.iter().copied().collect();
        let is_stationary: HashMap<Key, bool> =
            keys.iter().map(|&k| (k, !mobile_set.contains(&k))).collect();

        // Member-only: per mobile root, the LDT over its registrants.
        // Count, per stationary node, the trees it belongs to.
        let mut member_load: HashMap<Key, usize> = HashMap::new();
        for &root in &mobile {
            let registrants: Vec<Registrant> = rev
                .get(&root)
                .map(|holders| {
                    holders.iter().map(|&h| Registrant::new(h, capacities[&h])).collect()
                })
                .unwrap_or_default();
            let tree = Ldt::build(Registrant::new(root, capacities[&root]), &registrants, |_| 0, 1);
            for node in tree.nodes().iter().skip(1) {
                if is_stationary[&node.key] {
                    *member_load.entry(node.key).or_default() += 1;
                }
            }
        }

        // Non-member-only: Scribe-like trees whose helpers are "elected
        // from the other N − M nodes in the stationary layer" (§2.3) —
        // leaves reach the root via stationary-layer routes, drafting
        // every stationary node they traverse.
        let stationary_dht = {
            let mut s: RingDht<()> = RingDht::new(RingConfig {
                selection: NeighborSelection::First,
                ..RingConfig::tornado()
            });
            for &k in &stationary {
                let host = dht.node(k).expect("known").host;
                s.insert(k, host, 1).expect("distinct keys");
            }
            let mut wire_rng = Pcg64::new(cfg.seed ^ 0xf163 ^ (i as u64), 3);
            s.build_all_tables(&attachments, &dcache, &mut wire_rng);
            s
        };
        let mut non_member_load: HashMap<Key, usize> = HashMap::new();
        for &root in &mobile {
            let members: Vec<Key> = rev.get(&root).cloned().unwrap_or_default();
            // Each leaf injects at its stationary representative; the
            // root's location record lives at the root key's stationary
            // owner.
            let root_rep = stationary_dht.owner(root).expect("stationary layer non-empty");
            let entries: Vec<Key> =
                members.iter().map(|&m| stationary_dht.owner(m).expect("non-empty")).collect();
            let tree =
                NonMemberTree::build(&stationary_dht, root_rep, &entries, &attachments, &dcache)
                    .expect("overlay intact");
            for &p in &tree.participants {
                *non_member_load.entry(p).or_default() += 1;
            }
        }

        let per_stationary = |load: &HashMap<Key, usize>| {
            load.values().sum::<usize>() as f64 / stationary.len().max(1) as f64
        };
        rows.push(Fig3Row {
            analytic: analytic[i],
            measured_member: per_stationary(&member_load),
            measured_non_member: per_stationary(&non_member_load),
        });
    }
    Fig3Result { rows }
}

/// Renders the result as the paper's figure data.
pub fn to_table(result: &Fig3Result) -> Table {
    let mut t = Table::new(
        "Figure 3 — responsibility vs M/N (analytic N = 2^20; measured overlay)",
        &[
            "M/N",
            "member-only (analytic)",
            "non-member (analytic)",
            "member-only (measured)",
            "non-member (measured)",
        ],
    );
    for row in &result.rows {
        t.row(vec![
            f2(row.analytic.mobile_fraction),
            f2(row.analytic.member_only),
            f2(row.analytic.non_member),
            f3(row.measured_member),
            f3(row.measured_non_member),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig3Config {
        Fig3Config {
            analytic_n: 1_048_576.0,
            measured_n: 128,
            fractions: vec![0.2, 0.5, 0.8],
            capacity_range: (1, 15),
            seed: 7,
        }
    }

    #[test]
    fn measured_non_member_exceeds_member() {
        let result = run(&tiny_config());
        for row in &result.rows {
            assert!(
                row.measured_non_member > row.measured_member,
                "at M/N {} non-member {} must exceed member {}",
                row.analytic.mobile_fraction,
                row.measured_non_member,
                row.measured_member
            );
        }
    }

    #[test]
    fn responsibility_grows_with_mobile_fraction() {
        let result = run(&tiny_config());
        assert!(result.rows[2].measured_non_member > result.rows[0].measured_non_member);
        assert!(result.rows[2].analytic.non_member > result.rows[0].analytic.non_member);
    }

    #[test]
    fn table_has_one_row_per_fraction() {
        let cfg = tiny_config();
        let result = run(&cfg);
        let t = to_table(&result);
        assert_eq!(t.len(), cfg.fractions.len());
    }

    #[test]
    fn deterministic() {
        let a = run(&tiny_config());
        let b = run(&tiny_config());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.measured_member, y.measured_member);
            assert_eq!(x.measured_non_member, y.measured_non_member);
        }
    }
}
