//! **Table 1** — design choices for mobility in HS-P2P: Type A (plain
//! IP), Type B (mobile IP), and Bristle, compared quantitatively.
//!
//! The paper's table is qualitative ("Fair/Poor/Good"); we regenerate it
//! with measured numbers that justify each adjective:
//!
//! * **scalability** — average routing-state rows per node, and messages
//!   per movement event (state the infrastructure must churn);
//! * **reliability / end-to-end semantics** — the fraction of sessions
//!   that survive the peer moving (a correspondent holding the peer's
//!   overlay identity can still reach the same physical host), and the
//!   availability of data owned by movers;
//! * **performance** — physical path stretch of routes versus direct
//!   shortest paths (Type B pays the mobile-IP triangle, Bristle pays
//!   discovery, Type A pays nothing but breaks semantics).
//!
//! Movement and lookups are interleaved by the discrete-event engine for
//! the Bristle run, exercising the full update/discovery machinery under
//! concurrent-looking load.

use bristle_core::config::BristleConfig;
use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_core::time::SimTime;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::key::Key;

use crate::baseline_type_a::TypeASystem;
use crate::baseline_type_b::TypeBSystem;
use crate::engine::{run as run_events, EventQueue};
use crate::metrics::Samples;
use crate::mobility::MobilityModel;
use crate::report::{f2, pct, Table};

/// Parameters for the Table 1 regeneration.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Stationary node count.
    pub n_stationary: usize,
    /// Mobile node count.
    pub n_mobile: usize,
    /// Movement events injected.
    pub moves: usize,
    /// Lookups interleaved with the movement.
    pub lookups: usize,
    /// Probability that a Type B home agent is down at any lookup.
    pub agent_failure_prob: f64,
    /// Mean ticks between moves of one node.
    pub move_interval: u64,
    /// Physical topology.
    pub topology: TransitStubConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Table1Config {
    /// Reduced scale.
    pub fn quick() -> Self {
        Table1Config {
            n_stationary: 150,
            n_mobile: 60,
            moves: 120,
            lookups: 200,
            agent_failure_prob: 0.1,
            move_interval: 50,
            topology: TransitStubConfig::small(),
            seed: 42,
        }
    }

    /// Larger populations (a 1 024-node system, 30% mobile).
    pub fn paper() -> Self {
        Table1Config {
            n_stationary: 716,
            n_mobile: 308,
            moves: 600,
            lookups: 1_000,
            ..Self::quick()
        }
    }
}

/// Measured metrics for one architecture.
#[derive(Debug, Clone)]
pub struct SystemMetrics {
    /// Architecture name.
    pub name: &'static str,
    /// Required infrastructure.
    pub infrastructure: &'static str,
    /// Mean routing-state rows per node.
    pub state_per_node: f64,
    /// Mean protocol messages caused by one movement event.
    pub msgs_per_move: f64,
    /// Fraction of sessions that survive the peer's movement.
    pub session_survival: f64,
    /// Fraction of lookups for movers' data that succeed mid-churn.
    pub data_availability: f64,
    /// Mean mobility-induced delivery overhead (paid cost / forwarding
    /// cost; 1.0 = no indirection at all).
    pub path_stretch: f64,
}

/// The regenerated Table 1.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One row per architecture: Type A, Type B, Bristle.
    pub systems: Vec<SystemMetrics>,
}

/// A key owned by `node` (just below it on the ring — with 2^64 random
/// keys the gap is never occupied).
fn key_owned_by(node: Key) -> Key {
    Key(node.0.wrapping_sub(1))
}

fn measure_bristle(cfg: &Table1Config) -> SystemMetrics {
    let mut sys: BristleSystem = BristleBuilder::new(cfg.seed)
        .stationary_nodes(cfg.n_stationary)
        .mobile_nodes(cfg.n_mobile)
        .topology(cfg.topology.clone())
        .config(BristleConfig::recommended())
        .build()
        .expect("bristle builds");

    // Every mobile node self-publishes one data item it owns.
    let mobiles = sys.mobile_keys().to_vec();
    for &m in &mobiles {
        sys.store_data(m, key_owned_by(m), m.0.to_le_bytes().to_vec()).expect("store");
    }

    let msgs_before = sys.meter.total_messages();
    let mut lookups_ok = 0usize;
    let mut lookups_total = 0usize;
    let mut stretch = Samples::new();
    let mut sessions_ok = 0usize;
    let mut sessions_total = 0usize;

    // Interleave moves and lookups through the event engine.
    #[derive(Clone, Copy)]
    enum Ev {
        Move(usize),
        Lookup(usize),
    }
    let mobility = MobilityModel::new(cfg.move_interval);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    {
        let rng = sys.rng();
        for i in 0..cfg.moves {
            let delay = 1 + mobility.next_delay(rng) % (cfg.move_interval * 4);
            queue.schedule_at(SimTime(delay + i as u64), Ev::Move(i));
        }
        for i in 0..cfg.lookups {
            queue.schedule_at(
                SimTime(1 + (i as u64 * cfg.move_interval * 4) / cfg.lookups.max(1) as u64),
                Ev::Lookup(i),
            );
        }
    }
    let stationaries = sys.stationary_keys().to_vec();
    run_events(&mut queue, SimTime(u64::MAX), u64::MAX, |_q, t, ev| {
        if sys.clock.now() < t {
            let dt = t.since(sys.clock.now());
            sys.tick(dt);
        }
        match ev {
            Ev::Move(i) => {
                let m = mobiles[i % mobiles.len()];
                sys.move_node(m, None).expect("move");
                // Session check: a correspondent holding `m` routes to it
                // and must land on the same node.
                let src = stationaries[i % stationaries.len()];
                let rep = sys.route_mobile(src, m).expect("route");
                sessions_total += 1;
                if rep.terminus == m {
                    sessions_ok += 1;
                }
            }
            Ev::Lookup(i) => {
                let reader = stationaries[(i * 7) % stationaries.len()];
                let target = mobiles[i % mobiles.len()];
                let (payload, _) = sys.fetch_data(reader, key_owned_by(target)).expect("fetch");
                lookups_total += 1;
                if payload.is_some() {
                    lookups_ok += 1;
                }
            }
        }
    });

    let msgs_per_move = (sys.meter.total_messages() - msgs_before) as f64 / cfg.moves as f64;

    // Mobility overhead on the same footing as the other systems:
    // stationary→stationary messages (the traffic §3's clustered naming
    // optimizes) with the mobile population in place — paid cost over the
    // pure forwarding cost.
    for i in 0..cfg.lookups {
        let src = stationaries[i % stationaries.len()];
        let dst = stationaries[(i * 5 + 1) % stationaries.len()];
        if src == dst {
            continue;
        }
        let rep = sys.route_mobile(src, dst).expect("route");
        stretch.push(rep.mobility_overhead());
    }
    SystemMetrics {
        name: "Bristle",
        infrastructure: "IP",
        state_per_node: sys.mobile.total_state() as f64 / sys.mobile.len() as f64,
        msgs_per_move,
        session_survival: sessions_ok as f64 / sessions_total.max(1) as f64,
        data_availability: lookups_ok as f64 / lookups_total.max(1) as f64,
        path_stretch: stretch.mean().max(1.0),
    }
}

fn measure_type_a(cfg: &Table1Config) -> SystemMetrics {
    let mut sys = TypeASystem::build(cfg.seed, cfg.n_stationary, cfg.n_mobile, &cfg.topology, 1);
    let mobiles = sys.mobile_bodies();
    let readers = sys.stationary_bodies();

    // Each mobile body self-publishes one item it owns; stationary bodies
    // publish too (they anchor the stretch measurement, since mover data
    // does not survive Type A movement at all).
    for &b in &mobiles {
        let key = key_owned_by(sys.current_key(b));
        sys.publish(b, key, vec![1]).expect("publish");
    }
    for &b in &readers {
        let key = key_owned_by(sys.current_key(b));
        sys.publish(b, key, vec![2]).expect("publish");
    }

    let msgs_before = sys.meter.total_messages();
    let mut join_msgs = 0u64;
    let mut sessions_ok = 0usize;
    let mut sessions_total = 0usize;
    let mut lookups_ok = 0usize;
    let mut lookups_total = 0usize;
    let mut stretch = Samples::new();

    for i in 0..cfg.moves {
        let body = mobiles[i % mobiles.len()];
        let old_key = sys.current_key(body);
        let (_, _, msgs) = sys.move_body(body).expect("move");
        join_msgs += msgs;
        // Session: the correspondent still holds `old_key`.
        sessions_total += 1;
        if sys.dht.contains(old_key) {
            sessions_ok += 1;
        }
        // A lookup for the mover's (pre-move) data item.
        if i < cfg.lookups {
            let reader = readers[i % readers.len()];
            let (found, _) = sys.lookup(reader, key_owned_by(old_key)).expect("lookup");
            lookups_total += 1;
            if found {
                lookups_ok += 1;
            }
        }
    }
    // Fill remaining availability lookups against mover data (for parity
    // with the other systems' mover-targeted lookups).
    while lookups_total < cfg.lookups {
        let body = mobiles[lookups_total % mobiles.len()];
        let reader = readers[lookups_total % readers.len()];
        let (found, _) = sys.lookup(reader, key_owned_by(sys.current_key(body))).expect("lookup");
        lookups_total += 1;
        if found {
            lookups_ok += 1;
        }
    }
    // Mobility overhead: by construction zero. A Type A hop always goes
    // straight to the peer's one true address (the overlay simply forgets
    // movers), so the paid cost *is* the forwarding cost — overhead 1.0.
    // That is the "Good performance" cell of the paper's Table 1; the
    // price shows up in the session/data columns instead.
    stretch.push(1.0);

    let _ = join_msgs;
    SystemMetrics {
        name: "Type A (plain IP)",
        infrastructure: "IP",
        state_per_node: sys.avg_state_per_node(),
        msgs_per_move: (sys.meter.total_messages() - msgs_before) as f64 / cfg.moves as f64,
        session_survival: sessions_ok as f64 / sessions_total.max(1) as f64,
        data_availability: lookups_ok as f64 / lookups_total.max(1) as f64,
        path_stretch: stretch.mean().max(1.0),
    }
}

fn measure_type_b(cfg: &Table1Config) -> SystemMetrics {
    let mut sys = TypeBSystem::build(cfg.seed, cfg.n_stationary, cfg.n_mobile, &cfg.topology);
    let mobiles = sys.mobile_keys();
    let stationaries = sys.stationary_keys();
    let msgs_before = sys.meter.total_messages();

    let mut sessions_ok = 0usize;
    let mut sessions_total = 0usize;
    let mut rng = bristle_netsim::rng::Pcg64::seed_from_u64(cfg.seed ^ 0xb);
    for i in 0..cfg.moves {
        let m = mobiles[i % mobiles.len()];
        sys.move_node(m).expect("move");
        // Inject agent failures with the configured probability.
        let agent_up = !rng.chance(cfg.agent_failure_prob);
        sys.set_agent_alive(m, agent_up);
        let src = stationaries[i % stationaries.len()];
        let route = sys.route(src, m).expect("route");
        sessions_total += 1;
        if route.delivered && sys.dht.owner(m).expect("owner") == m {
            sessions_ok += 1;
        }
        sys.set_agent_alive(m, true);
    }
    let msgs_per_move = (sys.meter.total_messages() - msgs_before) as f64 / cfg.moves as f64;

    // Data availability == session survival here (the overlay is static;
    // reaching the owner is the only failure mode), sampled with agent
    // failures active.
    let mut lookups_ok = 0usize;
    for i in 0..cfg.lookups {
        let m = mobiles[i % mobiles.len()];
        let src = stationaries[(i * 3) % stationaries.len()];
        let agent_up = !rng.chance(cfg.agent_failure_prob);
        sys.set_agent_alive(m, agent_up);
        let route = sys.route(src, m).expect("route");
        if route.delivered {
            lookups_ok += 1;
        }
        sys.set_agent_alive(m, true);
    }
    // Mobility overhead on stationary→stationary traffic: the overlay's
    // scrambled keys put mobile nodes on the path, and each such hop pays
    // the mobile-IP triangle — paid cost over per-hop direct cost.
    let mut stretch = Samples::new();
    for i in 0..cfg.lookups {
        let src = stationaries[i % stationaries.len()];
        let dst = stationaries[(i * 5 + 1) % stationaries.len()];
        if src == dst {
            continue;
        }
        let route = sys.route(src, dst).expect("route");
        if route.delivered {
            stretch.push(route.stretch());
        }
    }
    SystemMetrics {
        name: "Type B (mobile IP)",
        infrastructure: "Mobile IP (home agents)",
        state_per_node: sys.dht.total_state() as f64 / sys.dht.len() as f64,
        msgs_per_move,
        session_survival: sessions_ok as f64 / sessions_total.max(1) as f64,
        data_availability: lookups_ok as f64 / cfg.lookups.max(1) as f64,
        path_stretch: stretch.mean().max(1.0),
    }
}

/// Runs all three architectures.
pub fn run(cfg: &Table1Config) -> Table1Result {
    Table1Result { systems: vec![measure_type_a(cfg), measure_type_b(cfg), measure_bristle(cfg)] }
}

/// Renders the quantitative Table 1.
pub fn to_table(result: &Table1Result) -> Table {
    let mut t = Table::new(
        "Table 1 — mobility design choices, measured",
        &[
            "architecture",
            "infrastructure",
            "state/node",
            "msgs/move",
            "session survival",
            "data availability",
            "mobility overhead",
        ],
    );
    for s in &result.systems {
        t.row(vec![
            s.name.to_string(),
            s.infrastructure.to_string(),
            f2(s.state_per_node),
            f2(s.msgs_per_move),
            pct(s.session_survival),
            pct(s.data_availability),
            f2(s.path_stretch),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Table1Config {
        Table1Config {
            n_stationary: 50,
            n_mobile: 20,
            moves: 30,
            lookups: 40,
            agent_failure_prob: 0.25,
            move_interval: 20,
            topology: TransitStubConfig::tiny(),
            seed: 9,
        }
    }

    #[test]
    fn bristle_preserves_sessions_type_a_does_not() {
        let result = run(&tiny());
        let type_a = &result.systems[0];
        let bristle = &result.systems[2];
        assert_eq!(type_a.session_survival, 0.0, "Type A identities die on move");
        assert!(
            bristle.session_survival > 0.95,
            "Bristle keeps sessions: {}",
            bristle.session_survival
        );
    }

    #[test]
    fn bristle_data_beats_type_a_under_movement() {
        let result = run(&tiny());
        let type_a = &result.systems[0];
        let bristle = &result.systems[2];
        assert!(
            bristle.data_availability > type_a.data_availability,
            "bristle {} vs type A {}",
            bristle.data_availability,
            type_a.data_availability
        );
        assert!(bristle.data_availability > 0.95);
    }

    #[test]
    fn type_b_reliability_suffers_agent_failures() {
        let result = run(&tiny());
        let type_b = &result.systems[1];
        assert!(
            type_b.data_availability < 0.95,
            "25% agent failures must show: {}",
            type_b.data_availability
        );
    }

    #[test]
    fn type_b_pays_triangular_stretch() {
        let result = run(&tiny());
        let type_a = &result.systems[0];
        let type_b = &result.systems[1];
        assert!(
            type_b.path_stretch > type_a.path_stretch,
            "triangles cost: {}",
            type_b.path_stretch
        );
    }

    #[test]
    fn type_a_moves_cost_most_messages() {
        let result = run(&tiny());
        let type_a = &result.systems[0];
        let type_b = &result.systems[1];
        assert!(
            type_a.msgs_per_move > type_b.msgs_per_move,
            "full rejoin {} must beat a binding update {}",
            type_a.msgs_per_move,
            type_b.msgs_per_move
        );
    }

    #[test]
    fn table_has_three_rows() {
        let result = run(&tiny());
        assert_eq!(to_table(&result).len(), 3);
    }
}
