//! **Figure 8** — LDT adaptation to workload and heterogeneity.
//!
//! Paper setup (§4.2): up to 25 000 nodes; each node's capacity (number
//! of available network connections) drawn uniformly from 1..=MAX with
//! MAX swept 1..15; the average registrant count per node is
//! ⌈log₂ 25 000⌉ = 15, so every LDT has ≈15 members.
//!
//! * Fig. 8(a): for each MAX, the distribution of tree nodes over tree
//!   levels (root = level 1) across all LDTs — low-capacity populations
//!   produce chains, capable populations produce shallow fans.
//! * Fig. 8(b): 15 sampled trees; per member (sorted by capacity,
//!   ID 1 = root) its capacity and the number of nodes assigned to it —
//!   showing that work lands on the super nodes and is split evenly
//!   among them.

use std::collections::HashMap;
use std::sync::Arc;

use bristle_core::ldt::Ldt;
use bristle_core::registry::Registrant;
use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::{Graph, RouterId};
use bristle_netsim::rng::Pcg64;
use bristle_overlay::config::{NeighborSelection, RingConfig};
use bristle_overlay::key::Key;
use bristle_overlay::ring::RingDht;

use crate::metrics::Histogram;
use crate::report::{f2, Table};

/// Parameters for the Figure 8 regeneration.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Overlay size (the paper uses 25 000).
    pub n_nodes: usize,
    /// The MAX capacity values swept on Fig. 8(a)'s x-axis.
    pub max_capacities: Vec<u32>,
    /// How many roots to materialize trees for (None = all nodes).
    pub tree_sample: Option<usize>,
    /// Cap on registrants per tree (None = the overlay's natural reverse
    /// pointers). The paper's setup has exactly ⌈log₂ N⌉ = 15 interested
    /// nodes per tree; capping reproduces that membership exactly.
    pub registrant_cap: Option<usize>,
    /// Trees shown in the Fig. 8(b) detail.
    pub detail_trees: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Fig8Config {
    /// Reduced scale: 2 000 nodes, all trees.
    pub fn quick() -> Self {
        Fig8Config {
            n_nodes: 2_000,
            max_capacities: (1..=15).collect(),
            tree_sample: Some(800),
            registrant_cap: None,
            detail_trees: 15,
            seed: 42,
        }
    }

    /// Paper scale: 25 000 nodes, all trees measured, membership capped
    /// at the paper's ⌈log₂ 25 000⌉ = 15 registrants per tree.
    pub fn paper() -> Self {
        Fig8Config { n_nodes: 25_000, tree_sample: None, registrant_cap: Some(15), ..Self::quick() }
    }
}

/// Per-MAX level distribution (Fig. 8a).
#[derive(Debug, Clone)]
pub struct LevelDistribution {
    /// The MAX capacity of this population.
    pub max_capacity: u32,
    /// `fractions[l]` = share of tree nodes at level `l + 1`.
    pub fractions: Vec<f64>,
    /// Mean tree depth.
    pub mean_depth: f64,
    /// Deepest tree seen.
    pub max_depth: u32,
}

/// One member row of a Fig. 8(b) detail tree.
#[derive(Debug, Clone, Copy)]
pub struct DetailMember {
    /// Reported capacity (gray bar).
    pub capacity: u32,
    /// Members assigned to it, partition size (dark bar).
    pub assigned: usize,
}

/// The regenerated Figure 8 data set.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Fig. 8(a): one distribution per MAX.
    pub distributions: Vec<LevelDistribution>,
    /// Fig. 8(b): sampled trees at MAX = 15, members sorted by capacity
    /// (index 0 = root).
    pub detail: Vec<Vec<DetailMember>>,
}

/// Builds the registrant structure once: a flat overlay's reverse index.
fn registrant_structure(n: usize, rng: &mut Pcg64) -> (Vec<Key>, HashMap<Key, Vec<Key>>) {
    let graph = {
        let mut g = Graph::with_vertices(2);
        g.add_edge(RouterId(0), RouterId(1), 1);
        g
    };
    let dcache = DistanceCache::new(Arc::new(graph), 4);
    let mut attachments = AttachmentMap::new();
    let cfg = RingConfig { selection: NeighborSelection::First, ..RingConfig::tornado() };
    let mut dht: RingDht<()> = RingDht::new(cfg);
    for _ in 0..n {
        let host = attachments.attach_new(RouterId(0));
        loop {
            let k = Key::random(rng);
            if dht.insert(k, host, 1).is_ok() {
                break;
            }
        }
    }
    dht.build_all_tables(&attachments, &dcache, rng);
    let keys = dht.keys().collect();
    (keys, dht.reverse_index())
}

/// Runs the experiment.
pub fn run(cfg: &Fig8Config) -> Fig8Result {
    let mut rng = Pcg64::seed_from_u64(cfg.seed);
    let (keys, rev) = registrant_structure(cfg.n_nodes, &mut rng);
    let roots: Vec<Key> = match cfg.tree_sample {
        None => keys.clone(),
        Some(s) => {
            let mut shuffled = keys.clone();
            rng.shuffle(&mut shuffled);
            shuffled.truncate(s.min(keys.len()));
            shuffled
        }
    };

    let mut distributions = Vec::with_capacity(cfg.max_capacities.len());
    let mut detail: Vec<Vec<DetailMember>> = Vec::new();

    for &max_cap in &cfg.max_capacities {
        // Fresh capacities per MAX: uniform 1..=MAX (paper §4.2).
        let mut cap_rng = Pcg64::new(cfg.seed ^ (max_cap as u64) << 8, 99);
        let capacities: HashMap<Key, u32> =
            keys.iter().map(|&k| (k, cap_rng.range_inclusive(1, max_cap as u64) as u32)).collect();

        let mut level_hist = Histogram::new();
        let mut depth_sum = 0u64;
        let mut max_depth = 0u32;
        let mut trees_at_max: Vec<Ldt> = Vec::new();
        for &root in &roots {
            let mut registrants: Vec<Registrant> = rev
                .get(&root)
                .map(|hs| hs.iter().map(|&h| Registrant::new(h, capacities[&h])).collect())
                .unwrap_or_default();
            if let Some(cap) = cfg.registrant_cap {
                registrants.truncate(cap);
            }
            let tree = Ldt::build(Registrant::new(root, capacities[&root]), &registrants, |_| 0, 1);
            for node in tree.nodes() {
                level_hist.record((node.level - 1) as usize);
            }
            depth_sum += tree.depth() as u64;
            max_depth = max_depth.max(tree.depth());
            if max_cap == *cfg.max_capacities.iter().max().unwrap()
                && trees_at_max.len() < cfg.detail_trees
            {
                trees_at_max.push(tree);
            }
        }
        let fractions: Vec<f64> =
            (0..level_hist.buckets()).map(|b| level_hist.fraction(b)).collect();
        distributions.push(LevelDistribution {
            max_capacity: max_cap,
            fractions,
            mean_depth: depth_sum as f64 / roots.len().max(1) as f64,
            max_depth,
        });

        // Fig. 8(b) detail from the highest-MAX population.
        if !trees_at_max.is_empty() {
            detail = trees_at_max
                .iter()
                .map(|tree| {
                    let mut members: Vec<DetailMember> = tree
                        .nodes()
                        .iter()
                        .map(|n| DetailMember { capacity: n.capacity, assigned: n.assigned })
                        .collect();
                    // Paper sorts by decreasing available capacity; the
                    // root keeps ID 1.
                    members[1..].sort_by_key(|m| std::cmp::Reverse(m.capacity));
                    members
                })
                .collect();
        }
    }

    Fig8Result { distributions, detail }
}

/// Levels shown individually in the Fig. 8(a) table (the paper's y-axis
/// range); anything deeper is folded into an overflow column.
const SHOWN_LEVELS: usize = 15;

/// Renders Fig. 8(a) as level-share percentages per MAX.
pub fn to_table_levels(result: &Fig8Result) -> Table {
    let deepest = result.distributions.iter().map(|d| d.fractions.len()).max().unwrap_or(0);
    let shown = deepest.min(SHOWN_LEVELS);
    let mut level_names: Vec<String> = (1..=shown).map(|l| format!("L{l}%")).collect();
    if deepest > shown {
        level_names.push(format!("L>{shown}%"));
    }
    let mut header: Vec<&str> = vec!["MAX", "mean depth", "max depth"];
    header.extend(level_names.iter().map(String::as_str));
    let mut t = Table::new("Figure 8(a) — tree-level distribution vs MAX capacity", &header);
    for d in &result.distributions {
        let mut row = vec![d.max_capacity.to_string(), f2(d.mean_depth), d.max_depth.to_string()];
        for l in 0..shown {
            let frac = d.fractions.get(l).copied().unwrap_or(0.0);
            row.push(format!("{:.1}", frac * 100.0));
        }
        if deepest > shown {
            let overflow: f64 = d.fractions.iter().skip(shown).sum();
            row.push(format!("{:.1}", overflow * 100.0));
        }
        t.row(row);
    }
    t
}

/// Renders Fig. 8(b): per-member capacity and assignment for each
/// sampled tree.
pub fn to_table_detail(result: &Fig8Result) -> Table {
    let mut t = Table::new(
        "Figure 8(b) — capacity (C) and nodes assigned (A) per member, 15 sampled trees",
        &["tree", "members (ID1=root): C/A ..."],
    );
    for (i, tree) in result.detail.iter().enumerate() {
        let cells: Vec<String> =
            tree.iter().map(|m| format!("{}/{}", m.capacity, m.assigned)).collect();
        t.row(vec![format!("{}", i + 1), cells.join(" ")]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig8Config {
        Fig8Config {
            n_nodes: 300,
            max_capacities: vec![1, 4, 15],
            tree_sample: Some(120),
            registrant_cap: None,
            detail_trees: 5,
            seed: 3,
        }
    }

    #[test]
    fn depth_shrinks_as_capacity_grows() {
        let result = run(&tiny());
        let d1 = &result.distributions[0];
        let d15 = &result.distributions[2];
        assert!(
            d1.mean_depth > d15.mean_depth * 2.0,
            "MAX=1 depth {} vs MAX=15 depth {}",
            d1.mean_depth,
            d15.mean_depth
        );
    }

    #[test]
    fn max_one_capacity_gives_chains() {
        let result = run(&tiny());
        let d1 = &result.distributions[0];
        // Chains: every level has the same share (1 node per level/tree).
        assert!(d1.max_depth >= 10, "chains should be deep, got {}", d1.max_depth);
    }

    #[test]
    fn level_fractions_sum_to_one() {
        let result = run(&tiny());
        for d in &result.distributions {
            let sum: f64 = d.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "MAX {} sums to {sum}", d.max_capacity);
        }
    }

    #[test]
    fn detail_trees_present_with_root_first() {
        let result = run(&tiny());
        assert_eq!(result.detail.len(), 5);
        for tree in &result.detail {
            assert!(!tree.is_empty());
            // Non-root members sorted by decreasing capacity.
            for w in tree[1..].windows(2) {
                assert!(w[0].capacity >= w[1].capacity);
            }
        }
    }

    #[test]
    fn assignments_land_on_capable_members() {
        // Across detail trees, the highest-capacity non-root member must
        // receive at least as many assignments as the weakest, on average.
        let result = run(&tiny());
        let (mut strong, mut weak) = (0usize, 0usize);
        for tree in &result.detail {
            if tree.len() >= 3 {
                strong += tree[1].assigned;
                weak += tree[tree.len() - 1].assigned;
            }
        }
        assert!(strong >= weak, "strong {strong} weak {weak}");
    }

    #[test]
    fn tables_render() {
        let result = run(&tiny());
        assert_eq!(to_table_levels(&result).len(), 3);
        assert!(!to_table_detail(&result).is_empty());
    }
}
