//! Population churn models: joins, graceful leaves, and abrupt failures.

use bristle_netsim::rng::Pcg64;

/// What a churn event does to the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnAction {
    /// A new node joins.
    Join,
    /// An existing node leaves gracefully.
    Leave,
    /// An existing node dies without notice.
    Fail,
}

/// A churn process: events arrive with a mean interval, split among
/// joins, graceful leaves, and failures by the given weights.
#[derive(Debug, Clone, Copy)]
pub struct ChurnModel {
    /// Mean ticks between churn events across the whole system (≥ 1).
    pub mean_interval: u64,
    /// Relative weight of joins.
    pub join_weight: u32,
    /// Relative weight of graceful leaves.
    pub leave_weight: u32,
    /// Relative weight of abrupt failures.
    pub fail_weight: u32,
}

impl ChurnModel {
    /// A balanced model: equal joins and leaves, occasional failures.
    pub fn balanced(mean_interval: u64) -> Self {
        ChurnModel {
            mean_interval: mean_interval.max(1),
            join_weight: 4,
            leave_weight: 3,
            fail_weight: 1,
        }
    }

    /// A model with no churn at all (useful as a control).
    pub fn none() -> Self {
        ChurnModel { mean_interval: u64::MAX, join_weight: 0, leave_weight: 0, fail_weight: 0 }
    }

    /// Whether this model ever produces events.
    pub fn is_active(&self) -> bool {
        self.join_weight + self.leave_weight + self.fail_weight > 0
            && self.mean_interval != u64::MAX
    }

    /// Draws the delay until the next churn event (exponential, ≥ 1).
    pub fn next_delay(&self, rng: &mut Pcg64) -> u64 {
        let u = rng.f64().max(1e-12);
        ((-u.ln()) * self.mean_interval as f64).round().max(1.0) as u64
    }

    /// Draws which action the next event performs.
    ///
    /// # Panics
    /// Panics when all weights are zero.
    pub fn next_action(&self, rng: &mut Pcg64) -> ChurnAction {
        let total = (self.join_weight + self.leave_weight + self.fail_weight) as u64;
        assert!(total > 0, "churn model has no actions");
        let pick = rng.below(total) as u32;
        if pick < self.join_weight {
            ChurnAction::Join
        } else if pick < self.join_weight + self.leave_weight {
            ChurnAction::Leave
        } else {
            ChurnAction::Fail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_mix_matches_weights() {
        let model =
            ChurnModel { mean_interval: 10, join_weight: 6, leave_weight: 3, fail_weight: 1 };
        let mut rng = Pcg64::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            match model.next_action(&mut rng) {
                ChurnAction::Join => counts[0] += 1,
                ChurnAction::Leave => counts[1] += 1,
                ChurnAction::Fail => counts[2] += 1,
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.6).abs() < 0.02);
        assert!((frac(counts[1]) - 0.3).abs() < 0.02);
        assert!((frac(counts[2]) - 0.1).abs() < 0.02);
    }

    #[test]
    fn balanced_has_all_actions() {
        let m = ChurnModel::balanced(100);
        assert!(m.is_active());
        let mut rng = Pcg64::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(m.next_action(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn none_is_inactive() {
        assert!(!ChurnModel::none().is_active());
    }

    #[test]
    #[should_panic(expected = "no actions")]
    fn none_cannot_draw_actions() {
        ChurnModel::none().next_action(&mut Pcg64::seed_from_u64(3));
    }

    #[test]
    fn delays_track_mean() {
        let m = ChurnModel::balanced(200);
        let mut rng = Pcg64::seed_from_u64(4);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.next_delay(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 200.0).abs() < 10.0, "mean {mean}");
    }
}
