//! Population churn models: joins, graceful leaves, and abrupt failures.

use bristle_netsim::rng::Pcg64;

/// What a churn event does to the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnAction {
    /// A new node joins.
    Join,
    /// An existing node leaves gracefully.
    Leave,
    /// An existing node dies without notice.
    Fail,
}

/// A churn process: events arrive with a mean interval, split among
/// joins, graceful leaves, and failures by the given weights.
#[derive(Debug, Clone, Copy)]
pub struct ChurnModel {
    /// Mean ticks between churn events across the whole system (≥ 1).
    pub mean_interval: u64,
    /// Relative weight of joins.
    pub join_weight: u32,
    /// Relative weight of graceful leaves.
    pub leave_weight: u32,
    /// Relative weight of abrupt failures.
    pub fail_weight: u32,
}

impl ChurnModel {
    /// A balanced model: equal joins and leaves, occasional failures.
    pub fn balanced(mean_interval: u64) -> Self {
        ChurnModel {
            mean_interval: mean_interval.max(1),
            join_weight: 4,
            leave_weight: 3,
            fail_weight: 1,
        }
    }

    /// A model with no churn at all (useful as a control).
    pub fn none() -> Self {
        ChurnModel { mean_interval: u64::MAX, join_weight: 0, leave_weight: 0, fail_weight: 0 }
    }

    /// Sum of the action weights, wide enough that no weight choice
    /// (each up to `u32::MAX`) can overflow.
    fn total_weight(&self) -> u64 {
        self.join_weight as u64 + self.leave_weight as u64 + self.fail_weight as u64
    }

    /// Whether this model ever produces events.
    pub fn is_active(&self) -> bool {
        self.total_weight() > 0 && self.mean_interval != u64::MAX
    }

    /// Draws the delay until the next churn event (exponential, ≥ 1).
    /// An inactive interval (`u64::MAX`) means "never": the draw is
    /// skipped entirely, since `u64::MAX as f64` would otherwise drag
    /// the exponential through infinity.
    pub fn next_delay(&self, rng: &mut Pcg64) -> u64 {
        if self.mean_interval == u64::MAX {
            return u64::MAX;
        }
        let u = rng.f64().max(1e-12);
        let d = ((-u.ln()) * self.mean_interval as f64).round().max(1.0);
        if d.is_finite() && d < u64::MAX as f64 {
            d as u64
        } else {
            u64::MAX
        }
    }

    /// Draws which action the next event performs.
    ///
    /// # Panics
    /// Panics when all weights are zero.
    pub fn next_action(&self, rng: &mut Pcg64) -> ChurnAction {
        let total = self.total_weight();
        assert!(total > 0, "churn model has no actions");
        let pick = rng.below(total);
        if pick < self.join_weight as u64 {
            ChurnAction::Join
        } else if pick < self.join_weight as u64 + self.leave_weight as u64 {
            ChurnAction::Leave
        } else {
            ChurnAction::Fail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_mix_matches_weights() {
        let model =
            ChurnModel { mean_interval: 10, join_weight: 6, leave_weight: 3, fail_weight: 1 };
        let mut rng = Pcg64::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            match model.next_action(&mut rng) {
                ChurnAction::Join => counts[0] += 1,
                ChurnAction::Leave => counts[1] += 1,
                ChurnAction::Fail => counts[2] += 1,
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.6).abs() < 0.02);
        assert!((frac(counts[1]) - 0.3).abs() < 0.02);
        assert!((frac(counts[2]) - 0.1).abs() < 0.02);
    }

    #[test]
    fn balanced_has_all_actions() {
        let m = ChurnModel::balanced(100);
        assert!(m.is_active());
        let mut rng = Pcg64::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(m.next_action(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn none_is_inactive() {
        assert!(!ChurnModel::none().is_active());
    }

    #[test]
    #[should_panic(expected = "no actions")]
    fn none_cannot_draw_actions() {
        ChurnModel::none().next_action(&mut Pcg64::seed_from_u64(3));
    }

    /// Regression: the weight sum used to be taken in `u32`, so models
    /// with large weights overflowed (panicking in debug builds) before
    /// `rng.below` ever saw the total. All arithmetic is now `u64`.
    #[test]
    fn extreme_weights_do_not_overflow() {
        let m = ChurnModel {
            mean_interval: 10,
            join_weight: u32::MAX,
            leave_weight: u32::MAX,
            fail_weight: u32::MAX,
        };
        assert!(m.is_active());
        let mut rng = Pcg64::seed_from_u64(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..9000 {
            seen.insert(m.next_action(&mut rng));
        }
        assert_eq!(seen.len(), 3, "every action class must still be drawable");
    }

    /// Regression: `next_delay` multiplied `mean_interval as f64` even
    /// for the inactive sentinel `u64::MAX`, producing an infinite (and
    /// then saturating) delay from a meaningless draw. The sentinel now
    /// short-circuits to "never" without consuming randomness.
    #[test]
    fn inactive_interval_means_never() {
        let m = ChurnModel::none();
        let mut rng = Pcg64::seed_from_u64(10);
        assert_eq!(m.next_delay(&mut rng), u64::MAX);
        let mut rng2 = Pcg64::seed_from_u64(10);
        assert_eq!(rng.below(1000), rng2.below(1000), "no randomness consumed");
    }

    #[test]
    fn delays_track_mean() {
        let m = ChurnModel::balanced(200);
        let mut rng = Pcg64::seed_from_u64(4);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| m.next_delay(&mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 200.0).abs() < 10.0, "mean {mean}");
    }
}
