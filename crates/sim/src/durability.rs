//! Crash-restart durability scenario: restart-from-WAL versus
//! republication (the `bristle-store` payoff, metered).
//!
//! The run grows a system, attaches a [`WalBackend`] to the busiest
//! record primary (the *victim*), and lets warm-up mobility traffic
//! accumulate in the log. The victim then crashes silently; the
//! heartbeat machinery detects and confirms the death, the overlay
//! heals around the corpse, and more mobility happens while the victim
//! is down. Recovery runs one of two ways on the same seed:
//!
//! * [`RestartMode::Republish`] — the blank-disk baseline. The node
//!   rejoins empty ([`MessagingBristleSystem::republish_restart`]) and
//!   anti-entropy refills its shard from the surviving replicas, one
//!   `Replicate` message per record.
//! * [`RestartMode::WalReplay`] — the node replays its snapshot + log
//!   off disk ([`MessagingBristleSystem::crash_restart`]) and comes
//!   back with its shard intact; the same anti-entropy pass ships only
//!   the records that changed during the downtime.
//!
//! The scenario meters the recovery traffic (the `Replicate` bill in
//! particular), checks convergence with a second anti-entropy pass
//! (which must find nothing), and re-measures delivery over fixed
//! endpoint pairs. Everything is seeded: two runs with the same
//! [`DurabilityConfig`] produce identical [`DurabilityOutcome`]s, WAL
//! round-trip included.

use std::path::PathBuf;

use bristle_core::config::BristleConfig;
use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_overlay::key::Key;
use bristle_overlay::meter::{MessageKind, ALL_KINDS};
use bristle_overlay::obs::Snapshot;
use bristle_proto::transport::FaultConfig;
use bristle_store::WalBackend;

use crate::messaging::MessagingBristleSystem;

/// How the crashed victim comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartMode {
    /// Blank disk: rejoin empty, let anti-entropy republish the shard.
    Republish,
    /// Durable disk: replay the WAL, restart with the shard intact.
    WalReplay,
}

impl RestartMode {
    /// Short label for tables and reports.
    pub fn name(self) -> &'static str {
        match self {
            RestartMode::Republish => "republish",
            RestartMode::WalReplay => "wal-replay",
        }
    }
}

/// Parameters of one durability run.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Seed for the system build, the transport, and the scenario draws.
    pub seed: u64,
    /// Stationary population at build time.
    pub stationary: usize,
    /// Mobile population at build time.
    pub mobile: usize,
    /// Transport drop probability.
    pub loss: f64,
    /// How the victim recovers.
    pub mode: RestartMode,
    /// WAL snapshot interval in log records (0 = never snapshot; only
    /// meaningful under [`RestartMode::WalReplay`]).
    pub snapshot_every: u64,
    /// Mobile moves before the crash (how much history the WAL holds —
    /// the *crash point*).
    pub crash_point: usize,
    /// Mobile moves while the victim is down (how stale its disk is at
    /// restart).
    pub downtime_moves: usize,
    /// Maximum heartbeat rounds allowed for the crash to be detected and
    /// confirmed; the scenario confirms directly if detection never
    /// hardens (counted in [`DurabilityOutcome::forced_confirm`]).
    pub detection_rounds: usize,
    /// Endpoint pairs measured before the crash and after recovery.
    pub route_pairs: usize,
    /// Scratch directory for the WAL; `None` picks a per-process temp
    /// path keyed by the sweep cell. Always wiped before and after.
    pub wal_dir: Option<PathBuf>,
}

impl DurabilityConfig {
    /// The standard acceptance-scale run at `seed`.
    pub fn standard(seed: u64, mode: RestartMode) -> Self {
        DurabilityConfig {
            seed,
            stationary: 40,
            mobile: 16,
            loss: 0.02,
            mode,
            snapshot_every: 8,
            crash_point: 12,
            downtime_moves: 3,
            detection_rounds: 8,
            route_pairs: 16,
            wal_dir: None,
        }
    }

    fn scratch_dir(&self) -> PathBuf {
        match &self.wal_dir {
            Some(d) => d.clone(),
            None => std::env::temp_dir()
                .join(format!("bristle-durability-{}", std::process::id()))
                .join(format!(
                    "s{}-c{}-e{}-{}",
                    self.seed,
                    self.crash_point,
                    self.snapshot_every,
                    self.mode.name()
                )),
        }
    }
}

/// What one durability run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityOutcome {
    /// The crashed record primary.
    pub victim: Key,
    /// Location records the victim held at crash time.
    pub victim_shard: usize,
    /// Heartbeat rounds until the crash was confirmed.
    pub detection_rounds_used: usize,
    /// Whether the scenario had to confirm the death directly because
    /// `detection_rounds` passed without a verdict.
    pub forced_confirm: bool,
    /// Records the WAL replay loaded from the snapshot (0 without one).
    pub wal_snapshot_records: u64,
    /// Records the WAL replay read from the log tail.
    pub wal_log_records: u64,
    /// Shard records reinstalled locally at restart (0 for republish —
    /// the baseline comes back empty).
    pub records_recovered: usize,
    /// Persisted records dropped at restart (subject gone or expired).
    pub records_skipped: usize,
    /// Registration edges re-established at recovery.
    pub registrations_restored: usize,
    /// Lease contracts restored from the durable store.
    pub leases_restored: usize,
    /// `Replicate` messages spent on recovery (restart + first
    /// anti-entropy pass) — the headline restart-vs-republish metric.
    pub recovery_replicates: u64,
    /// Total messages of every kind spent on recovery.
    pub recovery_messages: u64,
    /// Record copies the first anti-entropy pass shipped.
    pub anti_entropy_fixes: usize,
    /// Whether a second anti-entropy pass found nothing left to fix.
    pub converged: bool,
    /// Routes delivered / attempted before the crash.
    pub pre_delivered: usize,
    /// Routes attempted before the crash.
    pub pre_attempted: usize,
    /// Routes delivered over the same pairs after recovery.
    pub post_delivered: usize,
    /// Routes attempted after recovery.
    pub post_attempted: usize,
    /// Per-kind meter `(kind, count, cost)` at the end of the run.
    pub tallies: Vec<(MessageKind, u64, u64)>,
    /// Named latency-histogram snapshots from the driver's collector.
    pub latencies: Vec<(&'static str, Snapshot)>,
}

impl DurabilityOutcome {
    /// Fraction of pre-crash routes delivered.
    pub fn pre_rate(&self) -> f64 {
        if self.pre_attempted == 0 {
            1.0
        } else {
            self.pre_delivered as f64 / self.pre_attempted as f64
        }
    }

    /// Fraction of post-recovery routes delivered.
    pub fn post_rate(&self) -> f64 {
        if self.post_attempted == 0 {
            1.0
        } else {
            self.post_delivered as f64 / self.post_attempted as f64
        }
    }
}

/// The stationary node holding the most location records (ties break
/// toward the smaller key for determinism).
fn busiest_primary(sys: &BristleSystem) -> Key {
    let mut best = (0usize, Key(u64::MAX));
    for &s in sys.stationary_keys() {
        let n = sys.stationary.node(s).map(|node| node.store.len()).unwrap_or(0);
        if n > best.0 || (n == best.0 && s < best.1) {
            best = (n, s);
        }
    }
    best.1
}

/// Measures message-passing delivery over `pairs`, skipping pairs with a
/// missing endpoint. Returns `(delivered, attempted)`.
fn measure_pairs(msys: &mut MessagingBristleSystem, pairs: &[(Key, Key)]) -> (usize, usize) {
    let mut delivered = 0usize;
    let mut attempted = 0usize;
    for &(src, target) in pairs {
        if msys.is_failed(src)
            || msys.is_failed(target)
            || msys.sys.node_info(src).is_err()
            || msys.sys.node_info(target).is_err()
        {
            continue;
        }
        attempted += 1;
        if msys.route(src, target).is_ok() {
            delivered += 1;
        }
    }
    (delivered, attempted)
}

/// Moves `n` randomly drawn mobile nodes (new location records at the
/// replicas; for the victim's shard this is WAL traffic before the crash
/// and staleness after it).
fn churn_moves(msys: &mut MessagingBristleSystem, rng: &mut Pcg64, n: usize) {
    for _ in 0..n {
        let mut mobiles: Vec<Key> = msys.sys.mobile_keys().to_vec();
        mobiles.retain(|&m| !msys.is_failed(m));
        mobiles.sort_unstable();
        if mobiles.is_empty() {
            return;
        }
        let m = mobiles[rng.index(mobiles.len())];
        msys.sys.move_node(m, None).expect("mover is live");
    }
}

/// Runs one durability scenario: build, warm up, crash, detect, churn,
/// recover, reconcile, re-measure. Deterministic in `cfg`.
pub fn run_durability(cfg: &DurabilityConfig) -> DurabilityOutcome {
    let sys = BristleBuilder::new(cfg.seed)
        .stationary_nodes(cfg.stationary)
        .mobile_nodes(cfg.mobile)
        .topology(TransitStubConfig::tiny())
        .config(BristleConfig::recommended())
        .build()
        .expect("system builds");
    let mut msys = MessagingBristleSystem::new(sys, FaultConfig::lossy(cfg.loss), cfg.seed ^ 0xD0);
    let mut rng = Pcg64::new(cfg.seed, 0xD07A);

    let victim = busiest_primary(&msys.sys);
    let wal_dir = cfg.scratch_dir();
    if cfg.mode == RestartMode::WalReplay {
        let _ = std::fs::remove_dir_all(&wal_dir);
        let backend = WalBackend::open(&wal_dir, cfg.snapshot_every).expect("scratch WAL opens");
        msys.sys.stores.attach_wal(victim, backend);
    }

    let mut out = DurabilityOutcome {
        victim,
        victim_shard: 0,
        detection_rounds_used: 0,
        forced_confirm: false,
        wal_snapshot_records: 0,
        wal_log_records: 0,
        records_recovered: 0,
        records_skipped: 0,
        registrations_restored: 0,
        leases_restored: 0,
        recovery_replicates: 0,
        recovery_messages: 0,
        anti_entropy_fixes: 0,
        converged: false,
        pre_delivered: 0,
        pre_attempted: 0,
        post_delivered: 0,
        post_attempted: 0,
        tallies: Vec::new(),
        latencies: Vec::new(),
    };

    // Warm-up traffic grows the victim's WAL past the bare build state.
    churn_moves(&mut msys, &mut rng, cfg.crash_point);

    // Fixed endpoint pairs, measured identically before and after.
    let mut endpoints: Vec<Key> = msys.sys.mobile.keys().collect();
    endpoints.sort_unstable();
    let mut pairs: Vec<(Key, Key)> = Vec::with_capacity(cfg.route_pairs);
    while pairs.len() < cfg.route_pairs && endpoints.len() >= 2 {
        let src = endpoints[rng.index(endpoints.len())];
        let target = endpoints[rng.index(endpoints.len())];
        if src != target {
            pairs.push((src, target));
        }
    }
    (out.pre_delivered, out.pre_attempted) = measure_pairs(&mut msys, &pairs);

    out.victim_shard = msys.sys.stationary.node(victim).map(|n| n.store.len()).unwrap_or(0);

    // Crash; heartbeats harden suspicion into a verdict, then the
    // funeral heals the overlay around the corpse.
    msys.fail_silently(victim);
    let mut confirmed = false;
    for r in 0..cfg.detection_rounds {
        let newly = msys.heartbeat_round();
        out.detection_rounds_used = r + 1;
        msys.sys.tick(1);
        if newly.contains(&victim) {
            msys.confirm_and_heal(victim).expect("victim is known");
            confirmed = true;
            break;
        }
    }
    if !confirmed {
        out.forced_confirm = true;
        msys.confirm_and_heal(victim).expect("victim is known");
    }

    // Downtime: the world keeps moving while the victim's disk does not.
    churn_moves(&mut msys, &mut rng, cfg.downtime_moves);
    msys.sys.tick(1);

    // Recovery, metered: the restart itself plus the anti-entropy pass
    // that reconciles whatever the disk missed.
    let counts_before: Vec<u64> = ALL_KINDS.iter().map(|&k| msys.sys.meter.count(k)).collect();
    match cfg.mode {
        RestartMode::WalReplay => {
            let report = msys.crash_restart(victim).expect("victim restarts");
            assert!(report.restored, "a confirmed corpse must restart");
            if let Some(replay) = &report.replay {
                out.wal_snapshot_records = replay.snapshot_records as u64;
                out.wal_log_records = replay.log_records as u64;
            }
            out.records_recovered = report.records_recovered;
            out.records_skipped = report.records_skipped;
            out.registrations_restored = report.registrations_restored;
            out.leases_restored = report.leases_restored;
        }
        RestartMode::Republish => {
            let report = msys.republish_restart(victim).expect("victim rejoins");
            assert!(report.reversed, "a confirmed corpse must rejoin");
            out.registrations_restored = report.registrations_restored;
        }
    }
    out.anti_entropy_fixes = msys.sys.anti_entropy_locations().expect("reconciliation succeeds");
    let counts_after: Vec<u64> = ALL_KINDS.iter().map(|&k| msys.sys.meter.count(k)).collect();
    out.recovery_messages =
        counts_after.iter().zip(&counts_before).map(|(after, before)| after - before).sum();
    let replicate_idx =
        ALL_KINDS.iter().position(|&k| k == MessageKind::Replicate).expect("Replicate is metered");
    out.recovery_replicates = counts_after[replicate_idx] - counts_before[replicate_idx];

    // Convergence: a second pass must find nothing left to ship.
    out.converged = msys.sys.anti_entropy_locations().expect("second pass succeeds") == 0;

    (out.post_delivered, out.post_attempted) = measure_pairs(&mut msys, &pairs);

    out.tallies =
        ALL_KINDS.iter().map(|&k| (k, msys.sys.meter.count(k), msys.sys.meter.cost(k))).collect();
    out.latencies = msys.obs().latency_snapshots();
    if cfg.mode == RestartMode::WalReplay && cfg.wal_dir.is_none() {
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_replay_beats_republication_on_the_replicate_bill() {
        let republish = run_durability(&DurabilityConfig::standard(8, RestartMode::Republish));
        let replay = run_durability(&DurabilityConfig::standard(8, RestartMode::WalReplay));
        assert!(republish.victim_shard > 0, "victim must hold records: {republish:?}");
        assert_eq!(replay.victim, republish.victim, "same seed, same victim");
        assert_eq!(republish.records_recovered, 0, "the baseline comes back empty");
        assert!(replay.records_recovered > 0, "the WAL restart comes back full");
        assert!(
            replay.recovery_replicates < republish.recovery_replicates,
            "log replay ({} Replicates) must beat republication ({})",
            replay.recovery_replicates,
            republish.recovery_replicates
        );
        assert!(republish.converged, "baseline converges: {republish:?}");
        assert!(replay.converged, "WAL restart converges: {replay:?}");
    }

    #[test]
    fn replayed_state_comes_off_disk() {
        let out = run_durability(&DurabilityConfig::standard(31, RestartMode::WalReplay));
        assert!(
            out.wal_snapshot_records + out.wal_log_records > 0,
            "the replay must read something: {out:?}"
        );
        assert_eq!(
            out.records_recovered + out.records_skipped,
            out.victim_shard,
            "every crash-time record is accounted for: {out:?}"
        );
    }

    #[test]
    fn same_seed_twice_is_identical_including_the_disk_round_trip() {
        let cfg = DurabilityConfig::standard(9, RestartMode::WalReplay);
        assert_eq!(run_durability(&cfg), run_durability(&cfg));
    }

    #[test]
    fn snapshot_interval_does_not_change_what_recovers() {
        let mut never = DurabilityConfig::standard(12, RestartMode::WalReplay);
        never.snapshot_every = 0;
        let mut often = DurabilityConfig::standard(12, RestartMode::WalReplay);
        often.snapshot_every = 4;
        let a = run_durability(&never);
        let b = run_durability(&often);
        assert_eq!(a.records_recovered, b.records_recovered);
        assert_eq!(a.recovery_replicates, b.recovery_replicates);
        assert!(b.wal_snapshot_records > 0, "a tight interval actually snapshots: {b:?}");
        assert_eq!(a.wal_snapshot_records, 0, "interval 0 never snapshots: {a:?}");
    }
}
