//! The ring DHT: the HS-P2P substrate both Bristle layers run on.
//!
//! This is the in-tree stand-in for Tornado (the authors' own HS-P2P that
//! Bristle is built on — see DESIGN.md §2 for the substitution argument).
//! It is a ring-structured overlay:
//!
//! * Every node owns the arc of key space ending at its key; a key's
//!   *owner* is its clockwise successor node.
//! * Routing is **monotone clockwise**: each hop moves strictly closer to
//!   the target (never overshooting), which is exactly the property the
//!   paper's §3 clustered-naming analysis (eq. 1, the ∇ ≥ 1/2 bound)
//!   requires.
//! * Routing state per node: a *leaf set* (the `leaf_radius` nearest
//!   successors and predecessors) plus *digit fingers* — for every level
//!   `i` and digit value `j ∈ 1..2^b`, one neighbor in the key interval
//!   `[x + j·2^(b·i), x + (j+1)·2^(b·i))`. With base 4 this yields
//!   O(log₄ N) routes, matching the ≈5–6 hop magnitudes of the paper's
//!   Fig. 7 at N = 2 000.
//! * Finger slots choose among several key-wise-equivalent candidates by a
//!   [`NeighborSelection`] policy; `Proximity` picks the physically
//!   nearest, giving the locality properties the paper measures in Fig. 9.

use std::collections::BTreeMap;
use std::collections::HashMap;

use bristle_netsim::attach::{AttachmentMap, HostId};
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::rng::Pcg64;

use crate::addr::{NetAddr, StatePair};
use crate::config::{NeighborSelection, RingConfig};
use crate::key::Key;
use crate::node::NodeState;

/// Errors from structural DHT operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// A node with that key is already present.
    DuplicateKey(Key),
    /// The referenced node does not exist.
    UnknownNode(Key),
    /// The overlay has no nodes at all.
    Empty,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            RingError::UnknownNode(k) => write!(f, "unknown node {k}"),
            RingError::Empty => write!(f, "overlay is empty"),
        }
    }
}

impl std::error::Error for RingError {}

/// The ring DHT over record type `V`.
///
/// # Examples
///
/// ```
/// use bristle_netsim::attach::HostId;
/// use bristle_overlay::config::RingConfig;
/// use bristle_overlay::key::Key;
/// use bristle_overlay::ring::RingDht;
///
/// let mut dht: RingDht<String> = RingDht::new(RingConfig::tornado());
/// dht.insert(Key(100), HostId(0), 1).unwrap();
/// dht.insert(Key(200), HostId(1), 1).unwrap();
///
/// // Ownership is the clockwise successor (inclusive), wrapping.
/// assert_eq!(dht.owner(Key(150)).unwrap(), Key(200));
/// assert_eq!(dht.owner(Key(201)).unwrap(), Key(100));
/// assert_eq!(dht.replica_set(Key(150), 2).unwrap(), vec![Key(200), Key(100)]);
/// ```
#[derive(Debug, Clone)]
pub struct RingDht<V> {
    cfg: RingConfig,
    nodes: BTreeMap<u64, NodeState<V>>,
}

impl<V> RingDht<V> {
    /// Creates an empty overlay with the given configuration.
    pub fn new(cfg: RingConfig) -> Self {
        cfg.validate();
        RingDht { cfg, nodes: BTreeMap::new() }
    }

    /// The overlay's configuration.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Number of participating nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether a node with key `k` participates.
    pub fn contains(&self, k: Key) -> bool {
        self.nodes.contains_key(&k.0)
    }

    /// Adds a node. Routing state is built separately (see
    /// [`RingDht::rebuild_node`] / [`RingDht::build_all_tables`]).
    pub fn insert(&mut self, key: Key, host: HostId, capacity: u32) -> Result<(), RingError> {
        if self.nodes.contains_key(&key.0) {
            return Err(RingError::DuplicateKey(key));
        }
        self.nodes.insert(key.0, NodeState::new(key, host, capacity));
        Ok(())
    }

    /// Removes a node, returning its state (stores and all).
    pub fn remove(&mut self, key: Key) -> Option<NodeState<V>> {
        self.nodes.remove(&key.0)
    }

    /// Immutable access to a node's state.
    pub fn node(&self, key: Key) -> Result<&NodeState<V>, RingError> {
        self.nodes.get(&key.0).ok_or(RingError::UnknownNode(key))
    }

    /// Mutable access to a node's state.
    pub fn node_mut(&mut self, key: Key) -> Result<&mut NodeState<V>, RingError> {
        self.nodes.get_mut(&key.0).ok_or(RingError::UnknownNode(key))
    }

    /// Iterator over node keys in ring order starting at key 0.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.nodes.keys().map(|&k| Key(k))
    }

    /// Iterator over node states.
    pub fn iter(&self) -> impl Iterator<Item = &NodeState<V>> + '_ {
        self.nodes.values()
    }

    /// The first node at or clockwise-after `k` — the *owner* of key `k`.
    pub fn successor_of(&self, k: Key) -> Result<Key, RingError> {
        if self.nodes.is_empty() {
            return Err(RingError::Empty);
        }
        match self.nodes.range(k.0..).next() {
            Some((&key, _)) => Ok(Key(key)),
            None => Ok(Key(*self.nodes.keys().next().expect("non-empty"))),
        }
    }

    /// Alias for [`RingDht::successor_of`], in the paper's vocabulary: the
    /// peer "whose hash key is the closest to k" in routing order.
    pub fn owner(&self, k: Key) -> Result<Key, RingError> {
        self.successor_of(k)
    }

    /// The first node strictly clockwise-before `k`.
    pub fn predecessor_of(&self, k: Key) -> Result<Key, RingError> {
        if self.nodes.is_empty() {
            return Err(RingError::Empty);
        }
        match self.nodes.range(..k.0).next_back() {
            Some((&key, _)) => Ok(Key(key)),
            None => Ok(Key(*self.nodes.keys().next_back().expect("non-empty"))),
        }
    }

    /// The owner of `k` followed by the next `count − 1` distinct nodes
    /// clockwise — the natural replica set for key `k`.
    pub fn replica_set(&self, k: Key, count: usize) -> Result<Vec<Key>, RingError> {
        if self.nodes.is_empty() {
            return Err(RingError::Empty);
        }
        let take = count.min(self.nodes.len());
        let mut out = Vec::with_capacity(take);
        for (&key, _) in self.nodes.range(k.0..).chain(self.nodes.range(..k.0)) {
            out.push(Key(key));
            if out.len() == take {
                break;
            }
        }
        Ok(out)
    }

    /// Up to `count` nodes clockwise from `start` (inclusive) whose keys lie
    /// within `span` of `start`. Candidate enumeration for finger slots.
    fn slot_candidates(&self, start: Key, span: u64, exclude: Key, count: usize) -> Vec<Key> {
        let mut out = Vec::new();
        for (&key, _) in self.nodes.range(start.0..).chain(self.nodes.range(..start.0)) {
            let k = Key(key);
            if start.clockwise_to(k) >= span {
                break;
            }
            if k != exclude {
                out.push(k);
                if out.len() == count {
                    break;
                }
            }
        }
        out
    }

    /// Computes (does not install) the routing state for a node at `key`:
    /// the deduplicated entry list and the leaf-set keys.
    ///
    /// This is the omniscient steady-state build the simulation uses; the
    /// protocol-faithful incremental join (paper Fig. 5) lives in
    /// `bristle-core::join` and produces the same tables via messages.
    pub fn compute_tables(
        &self,
        key: Key,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
    ) -> Result<(Vec<StatePair>, Vec<Key>), RingError> {
        let me = self.node(key)?;
        let my_router = attachments.router(me.host);
        let mut chosen: Vec<Key> = Vec::new();

        // Digit fingers: for each level and non-zero digit value, one
        // neighbor in [key + j·span, key + (j+1)·span).
        let bits = self.cfg.bits_per_digit;
        let base = self.cfg.base();
        for level in 0..self.cfg.levels() {
            let shift = level * bits;
            if shift >= 64 {
                break;
            }
            let span = 1u64 << shift;
            for j in 1..base {
                let start = key.offset(j.wrapping_mul(span));
                let cands = self.slot_candidates(start, span, key, self.cfg.candidate_window);
                if cands.is_empty() {
                    continue;
                }
                let pick = match self.cfg.selection {
                    NeighborSelection::First => cands[0],
                    NeighborSelection::Random => *rng.choose(&cands),
                    NeighborSelection::Proximity => {
                        let mut best = cands[0];
                        let mut best_d = u64::MAX;
                        for &c in &cands {
                            let host = self.node(c)?.host;
                            let d = dcache.distance(my_router, attachments.router(host));
                            if d < best_d {
                                best_d = d;
                                best = c;
                            }
                        }
                        best
                    }
                };
                chosen.push(pick);
            }
        }

        // Leaf set: nearest successors and predecessors (key order, no
        // selection policy — leaves pin down ownership and must be exact).
        use std::ops::Bound;
        let after = (Bound::Excluded(key.0), Bound::Unbounded);
        let mut leaf_keys = Vec::with_capacity(self.cfg.leaf_radius * 2);
        let max_leaves = self.cfg.leaf_radius.min(self.nodes.len().saturating_sub(1));
        for (&k, _) in self.nodes.range(after).chain(self.nodes.range(..key.0)) {
            if leaf_keys.len() == max_leaves {
                break;
            }
            leaf_keys.push(Key(k));
        }
        let mut preds = Vec::with_capacity(max_leaves);
        for (&k, _) in self.nodes.range(..key.0).rev().chain(self.nodes.range(after).rev()) {
            if preds.len() == max_leaves {
                break;
            }
            if !leaf_keys.contains(&Key(k)) {
                preds.push(Key(k));
            }
        }
        leaf_keys.extend(preds);

        chosen.extend(leaf_keys.iter().copied());
        chosen.sort_unstable();
        chosen.dedup();

        let entries = chosen
            .into_iter()
            .map(|k| {
                let host = self.node(k)?.host;
                Ok(StatePair::resolved(k, NetAddr::current(host, attachments)))
            })
            .collect::<Result<Vec<_>, RingError>>()?;
        Ok((entries, leaf_keys))
    }

    /// Rebuilds one node's routing state in place.
    pub fn rebuild_node(
        &mut self,
        key: Key,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
    ) -> Result<usize, RingError> {
        let (entries, leaf_keys) = self.compute_tables(key, attachments, dcache, rng)?;
        let count = entries.len();
        let node = self.node_mut(key)?;
        node.entries = entries;
        node.leaf_keys = leaf_keys;
        Ok(count)
    }

    /// Rebuilds every node's routing state (steady-state snapshot).
    pub fn build_all_tables(
        &mut self,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
    ) {
        let keys: Vec<Key> = self.keys().collect();
        for k in keys {
            self.rebuild_node(k, attachments, dcache, rng).expect("known key");
        }
    }

    /// [`RingDht::build_all_tables`] sharded across `workers` scoped
    /// threads, with results guaranteed identical to the sequential
    /// build.
    ///
    /// The argument is simple: [`RingDht::compute_tables`] reads only
    /// ring *structure* (keys, hosts) — never another node's installed
    /// entries — so per-node builds are independent and installation
    /// order is irrelevant. Workers take stable contiguous key shards
    /// (ring order), compute read-only, and the results are installed
    /// after every worker joins. The one wrinkle is the RNG:
    /// [`NeighborSelection::Random`] draws once per finger slot, making
    /// results depend on build *order*, so that policy falls back to the
    /// sequential path (`First`/`Proximity` never touch the RNG, which
    /// is also why the per-worker throwaway RNG below is sound).
    pub fn build_all_tables_parallel(
        &mut self,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
        workers: usize,
    ) where
        V: Send + Sync,
    {
        let workers = workers.max(1).min(self.nodes.len().max(1));
        if workers == 1 || matches!(self.cfg.selection, NeighborSelection::Random) {
            self.build_all_tables(attachments, dcache, rng);
            return;
        }
        let keys: Vec<Key> = self.keys().collect();
        let chunk = keys.len().div_ceil(workers);
        type Built = Vec<(Key, Vec<StatePair>, Vec<Key>)>;
        let computed: Vec<Built> = std::thread::scope(|s| {
            let this = &*self;
            let handles: Vec<_> = keys
                .chunks(chunk)
                .map(|shard| {
                    s.spawn(move || {
                        // Never drawn from: selection is First/Proximity here.
                        let mut dead_rng = Pcg64::seed_from_u64(0);
                        shard
                            .iter()
                            .map(|&k| {
                                let (entries, leaves) = this
                                    .compute_tables(k, attachments, dcache, &mut dead_rng)
                                    .expect("known key");
                                (k, entries, leaves)
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("table worker panicked")).collect()
        });
        for shard in computed {
            for (k, entries, leaf_keys) in shard {
                let node = self.nodes.get_mut(&k.0).expect("known key");
                node.entries = entries;
                node.leaf_keys = leaf_keys;
            }
        }
    }

    /// The next hop from `cur` toward `target`, or `None` when `cur` is the
    /// owner of `target`.
    ///
    /// Monotone clockwise: the returned node always lies in `(cur, target]`
    /// unless the final fallback to the immediate successor fires (in which
    /// case the successor is the owner). Entries pointing at departed nodes
    /// are skipped, modelling failure detection by timeout.
    pub fn next_hop(&self, cur: Key, target: Key) -> Result<Option<Key>, RingError> {
        let owner = self.owner(target)?;
        if cur == owner {
            return Ok(None);
        }
        let node = self.node(cur)?;
        let d = cur.clockwise_to(target);
        let mut best: Option<(u64, Key)> = None;
        for e in &node.entries {
            if !self.contains(e.key) {
                continue; // departed neighbor
            }
            let adv = cur.clockwise_to(e.key);
            if adv == 0 || adv > d {
                continue; // self or overshoot
            }
            if best.map(|(b, _)| adv > b).unwrap_or(true) {
                best = Some((adv, e.key));
            }
        }
        match best {
            Some((_, k)) => Ok(Some(k)),
            None => {
                // target ∈ (cur, successor(cur)]: the successor owns it.
                let succ = self.successor_of(cur.offset(1))?;
                Ok(Some(succ))
            }
        }
    }

    /// Builds the reverse-pointer index: for each node, the set of nodes
    /// whose routing state contains it. These are exactly the peers that
    /// *register* to a node in Bristle (§2.3.1: "X registers itself to
    /// nodes whose state-pairs are replicated in X").
    pub fn reverse_index(&self) -> HashMap<Key, Vec<Key>> {
        let mut index: HashMap<Key, Vec<Key>> = HashMap::with_capacity(self.nodes.len());
        for node in self.nodes.values() {
            for e in &node.entries {
                index.entry(e.key).or_default().push(node.key);
            }
        }
        index
    }

    /// Total routing-state rows across all nodes (scalability metric).
    pub fn total_state(&self) -> usize {
        self.nodes.values().map(|n| n.entries.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_netsim::graph::RouterId;
    use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
    use std::sync::Arc;

    /// Builds a populated overlay over a tiny physical network.
    fn setup(n: usize, seed: u64, cfg: RingConfig) -> (RingDht<u32>, AttachmentMap, DistanceCache) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 256);
        let mut attachments = AttachmentMap::new();
        let mut dht = RingDht::new(cfg);
        for _ in 0..n {
            let host = attachments.attach_new(*rng.choose(&stubs));
            let mut key = Key::random(&mut rng);
            while dht.contains(key) {
                key = Key::random(&mut rng);
            }
            dht.insert(key, host, 1 + rng.below(15) as u32).unwrap();
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        (dht, attachments, dcache)
    }

    #[test]
    fn insert_remove_contains() {
        let mut dht: RingDht<()> = RingDht::new(RingConfig::tornado());
        assert!(dht.is_empty());
        dht.insert(Key(10), HostId(0), 1).unwrap();
        assert!(dht.contains(Key(10)));
        assert_eq!(dht.insert(Key(10), HostId(1), 1), Err(RingError::DuplicateKey(Key(10))));
        assert!(dht.remove(Key(10)).is_some());
        assert!(dht.remove(Key(10)).is_none());
        assert!(dht.is_empty());
    }

    #[test]
    fn successor_wraps_around() {
        let mut dht: RingDht<()> = RingDht::new(RingConfig::tornado());
        for k in [10u64, 20, 30] {
            dht.insert(Key(k), HostId(k as u32), 1).unwrap();
        }
        assert_eq!(dht.successor_of(Key(10)).unwrap(), Key(10), "inclusive");
        assert_eq!(dht.successor_of(Key(11)).unwrap(), Key(20));
        assert_eq!(dht.successor_of(Key(31)).unwrap(), Key(10), "wraps");
        assert_eq!(dht.predecessor_of(Key(10)).unwrap(), Key(30), "wraps back");
        assert_eq!(dht.predecessor_of(Key(25)).unwrap(), Key(20));
    }

    #[test]
    fn empty_overlay_errors() {
        let dht: RingDht<()> = RingDht::new(RingConfig::tornado());
        assert_eq!(dht.successor_of(Key(0)), Err(RingError::Empty));
        assert_eq!(dht.node(Key(0)).err(), Some(RingError::UnknownNode(Key(0))));
    }

    #[test]
    fn replica_set_distinct_and_ordered() {
        let mut dht: RingDht<()> = RingDht::new(RingConfig::tornado());
        for k in [10u64, 20, 30] {
            dht.insert(Key(k), HostId(k as u32), 1).unwrap();
        }
        assert_eq!(dht.replica_set(Key(15), 2).unwrap(), vec![Key(20), Key(30)]);
        // Requesting more replicas than nodes returns all nodes once.
        assert_eq!(dht.replica_set(Key(25), 9).unwrap(), vec![Key(30), Key(10), Key(20)]);
    }

    #[test]
    fn tables_have_logarithmic_size() {
        let (dht, _, _) = setup(256, 1, RingConfig::tornado());
        let avg = dht.total_state() as f64 / dht.len() as f64;
        // log4(256) = 4 levels × 3 slots + 8 leaves ≈ 20, allow a wide band.
        assert!(avg > 8.0 && avg < 64.0, "avg state size {avg}");
    }

    #[test]
    fn leaf_keys_present_and_exact() {
        let (dht, _, _) = setup(64, 2, RingConfig::tornado());
        for node in dht.iter() {
            // Every node's first leaf must be its exact successor.
            let succ = dht.successor_of(node.key.offset(1)).unwrap();
            assert!(node.leaf_keys.contains(&succ), "node {} missing successor {succ}", node.key);
            assert_eq!(node.leaf_keys.len(), 8, "radius 4 both ways");
            for &l in &node.leaf_keys {
                assert!(node.knows(l));
            }
        }
    }

    #[test]
    fn routes_terminate_at_owner_and_are_monotone() {
        let (dht, _, _) = setup(128, 3, RingConfig::tornado());
        let keys: Vec<Key> = dht.keys().collect();
        let mut rng = Pcg64::seed_from_u64(9);
        for _ in 0..200 {
            let src = *rng.choose(&keys);
            let target = Key::random(&mut rng);
            let owner = dht.owner(target).unwrap();
            let mut cur = src;
            let mut hops = 0;
            let mut last_d = cur.clockwise_to(target);
            while let Some(next) = dht.next_hop(cur, target).unwrap() {
                let nd = next.clockwise_to(target);
                // Monotone: strictly closer, except the final owner hop
                // which may sit just past the target.
                assert!(nd < last_d || next == owner, "overshoot at hop {hops}");
                cur = next;
                last_d = nd;
                hops += 1;
                assert!(hops <= 64, "route did not terminate");
            }
            assert_eq!(cur, owner);
        }
    }

    #[test]
    fn route_lengths_scale_logarithmically() {
        let mut totals = Vec::new();
        for n in [64usize, 512] {
            let (dht, _, _) = setup(n, 4, RingConfig::tornado());
            let keys: Vec<Key> = dht.keys().collect();
            let mut rng = Pcg64::seed_from_u64(5);
            let mut hops_sum = 0usize;
            let samples = 300;
            for _ in 0..samples {
                let src = *rng.choose(&keys);
                let target = *rng.choose(&keys);
                let mut cur = src;
                let mut hops = 0;
                while let Some(next) = dht.next_hop(cur, target).unwrap() {
                    cur = next;
                    hops += 1;
                }
                hops_sum += hops;
            }
            totals.push(hops_sum as f64 / samples as f64);
        }
        // 8× more nodes must cost far less than 8× more hops.
        assert!(totals[1] < totals[0] * 2.5, "hops {totals:?} not logarithmic");
        assert!(totals[1] >= totals[0] * 0.9, "more nodes cannot shorten routes much");
    }

    #[test]
    fn chord_config_routes_longer_than_tornado() {
        let (t, _, _) = setup(256, 6, RingConfig::tornado());
        let (c, _, _) = setup(256, 6, RingConfig::chord());
        let avg = |dht: &RingDht<u32>| {
            let keys: Vec<Key> = dht.keys().collect();
            let mut rng = Pcg64::seed_from_u64(7);
            let mut sum = 0usize;
            for _ in 0..200 {
                let (src, dst) = (*rng.choose(&keys), *rng.choose(&keys));
                let mut cur = src;
                while let Some(next) = dht.next_hop(cur, dst).unwrap() {
                    cur = next;
                    sum += 1;
                }
            }
            sum as f64 / 200.0
        };
        let (ta, ca) = (avg(&t), avg(&c));
        assert!(ta < ca, "tornado {ta} should beat chord {ca} (base 4 vs 2)");
    }

    #[test]
    fn next_hop_skips_departed_neighbors() {
        let (mut dht, _, _) = setup(64, 8, RingConfig::tornado());
        let keys: Vec<Key> = dht.keys().collect();
        // Remove a third of the nodes *without* rebuilding tables: entries
        // now dangle, and routing must still terminate.
        for k in keys.iter().step_by(3) {
            dht.remove(*k);
        }
        let alive: Vec<Key> = dht.keys().collect();
        let mut rng = Pcg64::seed_from_u64(11);
        for _ in 0..100 {
            let src = *rng.choose(&alive);
            let target = Key::random(&mut rng);
            let mut cur = src;
            let mut hops = 0;
            while let Some(next) = dht.next_hop(cur, target).unwrap() {
                assert!(dht.contains(next), "routed to a dead node");
                cur = next;
                hops += 1;
                assert!(hops <= 128, "no termination under staleness");
            }
            assert_eq!(cur, dht.owner(target).unwrap());
        }
    }

    #[test]
    fn reverse_index_matches_forward_tables() {
        let (dht, _, _) = setup(96, 12, RingConfig::tornado());
        let rev = dht.reverse_index();
        for node in dht.iter() {
            for e in &node.entries {
                assert!(rev[&e.key].contains(&node.key));
            }
        }
        let total: usize = rev.values().map(Vec::len).sum();
        assert_eq!(total, dht.total_state());
    }

    #[test]
    fn reverse_index_size_is_logarithmic() {
        let (dht, _, _) = setup(512, 13, RingConfig::tornado());
        let rev = dht.reverse_index();
        let avg = rev.values().map(Vec::len).sum::<usize>() as f64 / rev.len() as f64;
        assert!(avg > 8.0 && avg < 64.0, "avg registrant count {avg}");
    }

    #[test]
    fn proximity_selection_prefers_close_neighbors() {
        // Compare average physical distance of finger entries under
        // Proximity vs First selection on identical populations.
        let avg_dist = |cfg: RingConfig| {
            let (dht, attachments, dcache) = setup(200, 14, cfg);
            let mut sum = 0u64;
            let mut n = 0u64;
            for node in dht.iter() {
                let my_router = attachments.router(node.host);
                for e in &node.entries {
                    let other = dht.node(e.key).unwrap().host;
                    sum += dcache.distance(my_router, attachments.router(other));
                    n += 1;
                }
            }
            sum as f64 / n as f64
        };
        let prox = avg_dist(RingConfig::tornado());
        let first =
            avg_dist(RingConfig { selection: NeighborSelection::First, ..RingConfig::tornado() });
        assert!(prox < first, "proximity {prox} must beat first {first}");
    }

    #[test]
    fn parallel_build_matches_sequential_exactly() {
        // Proximity and First shard across workers; Random exercises the
        // sequential fallback (its per-slot RNG draws are order-dependent).
        for (cfg, label) in [
            (RingConfig::tornado(), "proximity"),
            (RingConfig::chord(), "first"),
            (RingConfig::tornado_no_locality(), "random"),
        ] {
            let (mut seq, attachments, dcache) = setup(96, 7, cfg.clone());
            let (mut par, attachments2, dcache2) = setup(96, 7, cfg);
            let mut rng_a = Pcg64::seed_from_u64(31);
            let mut rng_b = Pcg64::seed_from_u64(31);
            seq.build_all_tables(&attachments, &dcache, &mut rng_a);
            par.build_all_tables_parallel(&attachments2, &dcache2, &mut rng_b, 4);
            for key in seq.keys().collect::<Vec<_>>() {
                let a = seq.node(key).unwrap();
                let b = par.node(key).unwrap();
                assert_eq!(a.entries, b.entries, "{label}: entries diverged at {key}");
                assert_eq!(a.leaf_keys, b.leaf_keys, "{label}: leaves diverged at {key}");
            }
        }
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let mut dht: RingDht<()> = RingDht::new(RingConfig::tornado());
        dht.insert(Key(42), HostId(0), 1).unwrap();
        assert_eq!(dht.owner(Key(7)).unwrap(), Key(42));
        assert_eq!(dht.owner(Key(42)).unwrap(), Key(42));
        assert_eq!(dht.next_hop(Key(42), Key(7)).unwrap(), None);
        // Attachment-free table build on a singleton: no neighbors.
        let mut rng = Pcg64::seed_from_u64(0);
        let mut attachments = AttachmentMap::new();
        attachments.attach_new(RouterId(0));
        let mut g = bristle_netsim::graph::Graph::with_vertices(1);
        let _ = &mut g;
        let dc = DistanceCache::new(Arc::new(g), 1);
        let mut dht2: RingDht<()> = RingDht::new(RingConfig::tornado());
        dht2.insert(Key(42), HostId(0), 1).unwrap();
        dht2.rebuild_node(Key(42), &attachments, &dc, &mut rng).unwrap();
        assert_eq!(dht2.node(Key(42)).unwrap().state_size(), 0);
    }
}
