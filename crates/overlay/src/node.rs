//! Per-node overlay state.

use std::collections::BTreeMap;

use bristle_netsim::attach::HostId;

use crate::addr::StatePair;
use crate::key::Key;

/// The full state one overlay node maintains.
///
/// `V` is the type of records the node stores on behalf of the overlay
/// (Bristle instantiates it with location records).
#[derive(Debug, Clone)]
pub struct NodeState<V> {
    /// The node's hash key — its overlay identity.
    pub key: Key,
    /// The physical host embodying the node.
    pub host: HostId,
    /// Advertised capacity C_X (paper §2.3.1): max connections, bandwidth,
    /// ... — a unitless ability score used by LDT scheduling.
    pub capacity: u32,
    /// Present workload `Used_i` (paper Fig. 4): capacity units already
    /// consumed by other activity on the node.
    pub used: u32,
    /// Routing-state rows: finger-table and leaf-set neighbors, deduplicated.
    pub entries: Vec<StatePair>,
    /// Keys of the leaf-set subset of `entries` (cw successors then ccw
    /// predecessors), kept separately for owner checks and repair.
    pub leaf_keys: Vec<Key>,
    /// Records stored at this node (replica store).
    pub store: BTreeMap<Key, V>,
}

impl<V> NodeState<V> {
    /// Creates a node with empty routing state and store.
    pub fn new(key: Key, host: HostId, capacity: u32) -> Self {
        NodeState {
            key,
            host,
            capacity,
            used: 0,
            entries: Vec::new(),
            leaf_keys: Vec::new(),
            store: BTreeMap::new(),
        }
    }

    /// Remaining capacity `Avail_i = C_i − Used_i` (saturating).
    pub fn available_capacity(&self) -> u32 {
        self.capacity.saturating_sub(self.used)
    }

    /// Whether `other` appears in this node's routing state.
    pub fn knows(&self, other: Key) -> bool {
        self.entries.iter().any(|e| e.key == other)
    }

    /// Looks up the state-pair for `other`, if present.
    pub fn entry(&self, other: Key) -> Option<&StatePair> {
        self.entries.iter().find(|e| e.key == other)
    }

    /// Mutable access to the state-pair for `other`, if present.
    pub fn entry_mut(&mut self, other: Key) -> Option<&mut StatePair> {
        self.entries.iter_mut().find(|e| e.key == other)
    }

    /// Inserts or replaces a state-pair (keyed by `pair.key`).
    pub fn upsert_entry(&mut self, pair: StatePair) {
        match self.entry_mut(pair.key) {
            Some(slot) => *slot = pair,
            None => self.entries.push(pair),
        }
    }

    /// Number of routing-state rows.
    pub fn state_size(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_capacity_saturates() {
        let mut n: NodeState<()> = NodeState::new(Key(1), HostId(0), 5);
        assert_eq!(n.available_capacity(), 5);
        n.used = 3;
        assert_eq!(n.available_capacity(), 2);
        n.used = 9;
        assert_eq!(n.available_capacity(), 0);
    }

    #[test]
    fn upsert_replaces_by_key() {
        let mut n: NodeState<()> = NodeState::new(Key(1), HostId(0), 1);
        n.upsert_entry(StatePair::unresolved(Key(7)));
        assert!(n.knows(Key(7)));
        assert_eq!(n.state_size(), 1);
        assert!(n.entry(Key(7)).unwrap().addr.is_none());
        // Upsert with same key must replace, not duplicate.
        n.upsert_entry(StatePair::unresolved(Key(7)));
        assert_eq!(n.state_size(), 1);
        n.upsert_entry(StatePair::unresolved(Key(9)));
        assert_eq!(n.state_size(), 2);
    }

    #[test]
    fn entry_lookup_misses() {
        let n: NodeState<()> = NodeState::new(Key(1), HostId(0), 1);
        assert!(!n.knows(Key(2)));
        assert!(n.entry(Key(2)).is_none());
    }
}
