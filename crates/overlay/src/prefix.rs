//! A Pastry/Tapestry-style prefix-routing DHT.
//!
//! The ring DHT in [`crate::ring`] approaches keys clockwise — the
//! behavior Bristle's §3 clustered-naming analysis needs. Tornado itself
//! (and Pastry/Tapestry, which the paper also names as substrate
//! candidates) routes by **prefix correction** instead: each hop fixes
//! one more leading digit of the target key, and a key is owned by the
//! *numerically closest* node (either direction around the ring). This
//! module implements that family faithfully:
//!
//! * per-node state: a routing table with one entry per (prefix length,
//!   next digit) pair plus a leaf set of the numerically nearest
//!   neighbors on both sides;
//! * routing: prefer the table entry extending the shared prefix with
//!   the target; fall back to *any* known node strictly closer to the
//!   target (Pastry's "rare case"), which with exact leaf sets provably
//!   terminates at the owner;
//! * ownership: minimum ring distance, ties to the lower key.
//!
//! Having both families lets the ablation suite check that Bristle's
//! measured behavior is not an artifact of one routing geometry.

use std::collections::BTreeMap;
use std::ops::Bound;

use bristle_netsim::attach::{AttachmentMap, HostId};
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::rng::Pcg64;

use crate::addr::{NetAddr, StatePair};
use crate::config::{NeighborSelection, RingConfig};
use crate::key::Key;
use crate::node::NodeState;
use crate::ring::RingError;

/// A prefix-routing DHT over record type `V`.
#[derive(Debug, Clone)]
pub struct PrefixDht<V> {
    cfg: RingConfig,
    nodes: BTreeMap<u64, NodeState<V>>,
}

/// Length (in digits) of the longest common prefix of two keys, reading
/// from the most significant digit.
pub fn shared_prefix_digits(a: Key, b: Key, bits: u32) -> u32 {
    let diff = a.0 ^ b.0;
    if diff == 0 {
        return Key::levels(bits);
    }
    diff.leading_zeros() / bits
}

impl<V> PrefixDht<V> {
    /// Creates an empty overlay.
    pub fn new(cfg: RingConfig) -> Self {
        cfg.validate();
        assert_eq!(64 % cfg.bits_per_digit, 0, "prefix DHT needs digit-aligned keys");
        PrefixDht { cfg, nodes: BTreeMap::new() }
    }

    /// The configuration.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `k` names a node.
    pub fn contains(&self, k: Key) -> bool {
        self.nodes.contains_key(&k.0)
    }

    /// Adds a node (tables built separately).
    pub fn insert(&mut self, key: Key, host: HostId, capacity: u32) -> Result<(), RingError> {
        if self.nodes.contains_key(&key.0) {
            return Err(RingError::DuplicateKey(key));
        }
        self.nodes.insert(key.0, NodeState::new(key, host, capacity));
        Ok(())
    }

    /// Removes a node.
    pub fn remove(&mut self, key: Key) -> Option<NodeState<V>> {
        self.nodes.remove(&key.0)
    }

    /// Node state by key.
    pub fn node(&self, key: Key) -> Result<&NodeState<V>, RingError> {
        self.nodes.get(&key.0).ok_or(RingError::UnknownNode(key))
    }

    /// Iterator over node keys.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.nodes.keys().map(|&k| Key(k))
    }

    /// Total routing-state rows.
    pub fn total_state(&self) -> usize {
        self.nodes.values().map(|n| n.entries.len()).sum()
    }

    /// The **numerically closest** node to `k` (ties to the lower key) —
    /// prefix-family ownership.
    pub fn owner(&self, k: Key) -> Result<Key, RingError> {
        if self.nodes.is_empty() {
            return Err(RingError::Empty);
        }
        let above = self
            .nodes
            .range(k.0..)
            .next()
            .map(|(&key, _)| Key(key))
            .unwrap_or_else(|| Key(*self.nodes.keys().next().expect("non-empty")));
        let below = self
            .nodes
            .range(..=k.0)
            .next_back()
            .map(|(&key, _)| Key(key))
            .unwrap_or_else(|| Key(*self.nodes.keys().next_back().expect("non-empty")));
        let (da, db) = (k.ring_distance(above), k.ring_distance(below));
        Ok(if da < db || (da == db && above < below) { above } else { below })
    }

    /// Recomputes one node's routing table and leaf set.
    pub fn rebuild_node(
        &mut self,
        key: Key,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
    ) -> Result<usize, RingError> {
        let me = self.node(key)?;
        let my_router = attachments.router(me.host);
        let bits = self.cfg.bits_per_digit;
        let base = self.cfg.base();
        let levels = Key::levels(bits);
        let mut chosen: Vec<Key> = Vec::new();

        // Routing table: for each prefix length `l` and digit value `d`
        // differing from my own digit at position l, one node whose key
        // shares my first `l` digits and has digit `d` next.
        for level in 0..levels {
            let shift = 64 - (level + 1) * bits;
            let my_digit = (key.0 >> shift) & (base - 1);
            for d in 0..base {
                if d == my_digit {
                    continue;
                }
                // Candidate key range: my prefix, digit d, anything after.
                let prefix_mask = if level == 0 { 0 } else { u64::MAX << (64 - level * bits) };
                let start = (key.0 & prefix_mask) | (d << shift);
                let end = start | ((1u64 << shift) - 1);
                let mut cands = Vec::new();
                for (&k, _) in self.nodes.range((Bound::Included(start), Bound::Included(end))) {
                    if k != key.0 {
                        cands.push(Key(k));
                        if cands.len() == self.cfg.candidate_window {
                            break;
                        }
                    }
                }
                if cands.is_empty() {
                    continue;
                }
                let pick = match self.cfg.selection {
                    NeighborSelection::First => cands[0],
                    NeighborSelection::Random => *rng.choose(&cands),
                    NeighborSelection::Proximity => {
                        let mut best = cands[0];
                        let mut best_d = u64::MAX;
                        for &c in &cands {
                            let host = self.node(c)?.host;
                            let dist = dcache.distance(my_router, attachments.router(host));
                            if dist < best_d {
                                best_d = dist;
                                best = c;
                            }
                        }
                        best
                    }
                };
                chosen.push(pick);
            }
        }

        // Leaf set: nearest keys each side (numeric order, wrapping).
        let after = (Bound::Excluded(key.0), Bound::Unbounded);
        let max_leaves = self.cfg.leaf_radius.min(self.nodes.len().saturating_sub(1));
        let mut leaf_keys: Vec<Key> = Vec::with_capacity(max_leaves * 2);
        for (&k, _) in self.nodes.range(after).chain(self.nodes.range(..key.0)) {
            if leaf_keys.len() == max_leaves {
                break;
            }
            leaf_keys.push(Key(k));
        }
        let mut preds = Vec::with_capacity(max_leaves);
        for (&k, _) in self.nodes.range(..key.0).rev().chain(self.nodes.range(after).rev()) {
            if preds.len() == max_leaves {
                break;
            }
            if !leaf_keys.contains(&Key(k)) {
                preds.push(Key(k));
            }
        }
        leaf_keys.extend(preds);

        chosen.extend(leaf_keys.iter().copied());
        chosen.sort_unstable();
        chosen.dedup();
        let entries = chosen
            .into_iter()
            .map(|k| {
                let host = self.node(k)?.host;
                Ok(StatePair::resolved(k, NetAddr::current(host, attachments)))
            })
            .collect::<Result<Vec<_>, RingError>>()?;
        let count = entries.len();
        let node = self.nodes.get_mut(&key.0).expect("known");
        node.entries = entries;
        node.leaf_keys = leaf_keys;
        Ok(count)
    }

    /// Rebuilds every node's state.
    pub fn build_all_tables(
        &mut self,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
    ) {
        let keys: Vec<Key> = self.keys().collect();
        for k in keys {
            self.rebuild_node(k, attachments, dcache, rng).expect("known key");
        }
    }

    /// The next hop from `cur` toward `target`: the entry with the
    /// longest shared prefix among those strictly closer to the target,
    /// ties broken by numeric closeness. `None` when `cur` owns the key.
    pub fn next_hop(&self, cur: Key, target: Key) -> Result<Option<Key>, RingError> {
        if cur == self.owner(target)? {
            return Ok(None);
        }
        let node = self.node(cur)?;
        let bits = self.cfg.bits_per_digit;
        let my_dist = cur.ring_distance(target);
        let mut best: Option<(u32, u64, Key)> = None; // (prefix, dist, key)
        for e in &node.entries {
            if !self.contains(e.key) {
                continue;
            }
            let dist = e.key.ring_distance(target);
            if dist >= my_dist {
                continue; // must make strict numeric progress
            }
            let prefix = shared_prefix_digits(e.key, target, bits);
            let better = match best {
                None => true,
                Some((bp, bd, _)) => prefix > bp || (prefix == bp && dist < bd),
            };
            if better {
                best = Some((prefix, dist, e.key));
            }
        }
        match best {
            Some((_, _, k)) => Ok(Some(k)),
            None => {
                // With exact leaf sets this is unreachable: if cur is not
                // the owner, its immediate neighbor toward the target is
                // strictly closer. Guard anyway for damaged overlays.
                Ok(None)
            }
        }
    }

    /// Routes from `src` to the owner of `target`; returns the hop list.
    pub fn route(&self, src: Key, target: Key) -> Result<Vec<Key>, RingError> {
        let mut cur = src;
        let mut hops = Vec::new();
        while let Some(next) = self.next_hop(cur, target)? {
            hops.push(next);
            cur = next;
            assert!(hops.len() <= self.nodes.len(), "prefix route did not converge");
        }
        Ok(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_netsim::graph::{Graph, RouterId};
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (PrefixDht<()>, AttachmentMap, DistanceCache) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut g = Graph::with_vertices(2);
        g.add_edge(RouterId(0), RouterId(1), 1);
        let dcache = DistanceCache::new(Arc::new(g), 4);
        let mut attachments = AttachmentMap::new();
        let cfg = RingConfig { selection: NeighborSelection::First, ..RingConfig::tornado() };
        let mut dht = PrefixDht::new(cfg);
        for _ in 0..n {
            let host = attachments.attach_new(RouterId(0));
            loop {
                let k = Key::random(&mut rng);
                if dht.insert(k, host, 1).is_ok() {
                    break;
                }
            }
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        (dht, attachments, dcache)
    }

    #[test]
    fn shared_prefix_math() {
        assert_eq!(shared_prefix_digits(Key(0), Key(0), 2), 32);
        assert_eq!(shared_prefix_digits(Key(0), Key(1), 2), 31);
        assert_eq!(shared_prefix_digits(Key(0), Key(1 << 63), 2), 0);
        assert_eq!(shared_prefix_digits(Key(0b1100 << 60), Key(0b1101 << 60), 2), 1);
    }

    #[test]
    fn owner_is_numerically_closest() {
        let (dht, _, _) = setup(100, 1);
        let mut rng = Pcg64::seed_from_u64(2);
        for _ in 0..200 {
            let t = Key::random(&mut rng);
            let owner = dht.owner(t).unwrap();
            let best = dht.keys().map(|k| (t.ring_distance(k), k)).min().unwrap();
            assert_eq!(t.ring_distance(owner), best.0);
        }
    }

    #[test]
    fn routes_terminate_at_owner() {
        let (dht, _, _) = setup(150, 3);
        let keys: Vec<Key> = dht.keys().collect();
        let mut rng = Pcg64::seed_from_u64(4);
        for _ in 0..300 {
            let src = *rng.choose(&keys);
            let t = Key::random(&mut rng);
            let hops = dht.route(src, t).unwrap();
            let terminus = hops.last().copied().unwrap_or(src);
            assert_eq!(terminus, dht.owner(t).unwrap());
        }
    }

    #[test]
    fn hops_scale_logarithmically() {
        let avg = |n: usize, seed: u64| {
            let (dht, _, _) = setup(n, seed);
            let keys: Vec<Key> = dht.keys().collect();
            let mut rng = Pcg64::seed_from_u64(seed + 99);
            let mut total = 0usize;
            for _ in 0..300 {
                let src = *rng.choose(&keys);
                total += dht.route(src, Key::random(&mut rng)).unwrap().len();
            }
            total as f64 / 300.0
        };
        let (small, large) = (avg(64, 5), avg(512, 6));
        assert!(large < small * 2.5, "8x nodes, hops {small} -> {large}");
    }

    #[test]
    fn prefix_progress_dominates_routing() {
        // Along any route, the shared prefix with the target never
        // shrinks, and numeric distance strictly shrinks.
        let (dht, _, _) = setup(128, 7);
        let keys: Vec<Key> = dht.keys().collect();
        let mut rng = Pcg64::seed_from_u64(8);
        for _ in 0..100 {
            let src = *rng.choose(&keys);
            let t = Key::random(&mut rng);
            let mut dist = src.ring_distance(t);
            for hop in dht.route(src, t).unwrap() {
                let nd = hop.ring_distance(t);
                assert!(nd < dist, "numeric distance must strictly shrink");
                dist = nd;
            }
        }
    }

    #[test]
    fn state_size_is_logarithmic() {
        let (dht, _, _) = setup(256, 9);
        let avg = dht.total_state() as f64 / dht.len() as f64;
        // ~log4(256)=4 populated rows × 3 entries + 8 leaves ≈ 20.
        assert!(avg > 8.0 && avg < 64.0, "{avg}");
    }

    #[test]
    fn single_node_owns_all() {
        let mut dht: PrefixDht<()> = PrefixDht::new(RingConfig::tornado());
        dht.insert(Key(7), HostId(0), 1).unwrap();
        assert_eq!(dht.owner(Key(u64::MAX)).unwrap(), Key(7));
        assert!(dht.route(Key(7), Key(0)).unwrap().is_empty());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut dht: PrefixDht<()> = PrefixDht::new(RingConfig::tornado());
        dht.insert(Key(7), HostId(0), 1).unwrap();
        assert_eq!(dht.insert(Key(7), HostId(1), 1), Err(RingError::DuplicateKey(Key(7))));
    }

    #[test]
    #[should_panic(expected = "digit-aligned")]
    fn misaligned_digit_width_rejected() {
        let cfg = RingConfig { bits_per_digit: 3, ..RingConfig::tornado() };
        let _: PrefixDht<()> = PrefixDht::new(cfg);
    }
}
