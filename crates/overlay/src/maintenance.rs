//! Overlay maintenance: periodic refresh, failure handling, health checks.
//!
//! "As well as a typical HS-P2P, since a node may leave the system at any
//! time, it needs to periodically refresh its state to the associated nodes
//! to maintain the entire system's reliability" (paper §2.3.3). This module
//! provides the refresh cycle, abrupt-failure handling, and structural
//! health diagnostics used by the reliability experiments.

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::rng::Pcg64;

use crate::key::Key;
use crate::meter::{MessageKind, Meter};
use crate::ring::{RingDht, RingError};

/// Structural health report for the overlay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Total routing-state rows.
    pub total_entries: usize,
    /// Entries pointing at nodes that are no longer present.
    pub dangling_entries: usize,
    /// Nodes whose leaf set no longer contains their true successor.
    pub broken_successors: usize,
}

impl HealthReport {
    /// Fraction of entries that are dangling (0 when there are none).
    pub fn staleness(&self) -> f64 {
        if self.total_entries == 0 {
            0.0
        } else {
            self.dangling_entries as f64 / self.total_entries as f64
        }
    }

    /// Whether the overlay is fully converged.
    pub fn is_healthy(&self) -> bool {
        self.dangling_entries == 0 && self.broken_successors == 0
    }
}

impl<V> RingDht<V> {
    /// One full refresh cycle: every node rebuilds its routing state and
    /// re-advertises itself to its neighbors. Meters one `Refresh` message
    /// per refreshed entry (the paper's "periodical states refreshment").
    pub fn refresh_cycle(
        &mut self,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
        meter: &mut Meter,
    ) {
        let keys: Vec<Key> = self.keys().collect();
        for k in keys {
            let refreshed = self.rebuild_node(k, attachments, dcache, rng).expect("known key");
            meter.bump(MessageKind::Refresh, refreshed as u64);
        }
    }

    /// Abrupt failure: the node disappears without notifying anyone. Its
    /// stored records die with it; other nodes keep dangling entries until
    /// the next refresh. Returns how many records were lost at that node.
    pub fn fail_node(&mut self, key: Key) -> Result<usize, RingError> {
        let state = self.remove(key).ok_or(RingError::UnknownNode(key))?;
        Ok(state.store.len())
    }

    /// Graceful leave: the node hands its stored records to its successor
    /// before departing (metered as `Leave` traffic) and disappears.
    pub fn leave_gracefully(
        &mut self,
        key: Key,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        meter: &mut Meter,
    ) -> Result<usize, RingError> {
        let state = self.remove(key).ok_or(RingError::UnknownNode(key))?;
        if self.is_empty() {
            return Ok(0); // last node out: records are lost with the system
        }
        let heir = self.successor_of(key)?;
        let from = attachments.router(state.host);
        let to = attachments.router(self.node(heir)?.host);
        let handed = state.store.len();
        if handed > 0 {
            meter.record(MessageKind::Leave, dcache.distance(from, to));
        }
        let heir_store = &mut self.node_mut(heir)?.store;
        for (k, v) in state.store {
            heir_store.entry(k).or_insert(v);
        }
        Ok(handed)
    }

    /// Scans the overlay for structural damage.
    pub fn health(&self) -> HealthReport {
        let mut report = HealthReport::default();
        for node in self.iter() {
            report.total_entries += node.entries.len();
            for e in &node.entries {
                if !self.contains(e.key) {
                    report.dangling_entries += 1;
                }
            }
            if self.len() > 1 {
                let true_succ = self.successor_of(node.key.offset(1)).expect("non-empty");
                if !node.leaf_keys.contains(&true_succ) {
                    report.broken_successors += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (RingDht<u32>, AttachmentMap, DistanceCache, Pcg64) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 256);
        let mut attachments = AttachmentMap::new();
        let mut dht = RingDht::new(RingConfig::tornado());
        for _ in 0..n {
            let host = attachments.attach_new(*rng.choose(&stubs));
            dht.insert(Key::random(&mut rng), host, 1).unwrap();
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        (dht, attachments, dcache, rng)
    }

    #[test]
    fn fresh_overlay_is_healthy() {
        let (dht, _, _, _) = setup(64, 1);
        let h = dht.health();
        assert!(h.is_healthy(), "{h:?}");
        assert_eq!(h.staleness(), 0.0);
    }

    #[test]
    fn failures_create_damage_refresh_heals_it() {
        let (mut dht, attachments, dcache, mut rng) = setup(96, 2);
        let keys: Vec<Key> = dht.keys().collect();
        for k in keys.iter().take(20) {
            dht.fail_node(*k).unwrap();
        }
        let damaged = dht.health();
        assert!(damaged.dangling_entries > 0, "failures must leave dangling entries");
        let mut meter = Meter::new();
        dht.refresh_cycle(&attachments, &dcache, &mut rng, &mut meter);
        let healed = dht.health();
        assert!(healed.is_healthy(), "{healed:?}");
        assert!(meter.count(MessageKind::Refresh) > 0);
    }

    #[test]
    fn graceful_leave_hands_records_to_successor() {
        let (mut dht, attachments, dcache, mut rng) = setup(32, 3);
        let mut meter = Meter::new();
        let record_key = Key::random(&mut rng);
        let keys: Vec<Key> = dht.keys().collect();
        dht.publish(keys[0], record_key, 5u32, 1, &attachments, &dcache, &mut meter).unwrap();
        let owner = dht.owner(record_key).unwrap();
        let heir = dht.successor_of(owner.offset(1)).unwrap();
        let handed = dht.leave_gracefully(owner, &attachments, &dcache, &mut meter).unwrap();
        assert_eq!(handed, 1);
        assert_eq!(dht.node(heir).unwrap().store.get(&record_key), Some(&5));
        // And the heir is now the owner, so lookups keep working.
        let out = dht
            .lookup(
                *dht.keys().next().as_ref().unwrap(),
                record_key,
                1,
                &attachments,
                &dcache,
                &mut meter,
            )
            .unwrap();
        assert_eq!(out.value, Some(5));
    }

    #[test]
    fn abrupt_failure_loses_records() {
        let (mut dht, attachments, dcache, mut rng) = setup(32, 4);
        let mut meter = Meter::new();
        let record_key = Key::random(&mut rng);
        let keys: Vec<Key> = dht.keys().collect();
        dht.publish(keys[0], record_key, 5u32, 1, &attachments, &dcache, &mut meter).unwrap();
        let owner = dht.owner(record_key).unwrap();
        let lost = dht.fail_node(owner).unwrap();
        assert_eq!(lost, 1);
    }

    #[test]
    fn leave_last_node_is_safe() {
        let (mut dht, attachments, dcache, _) = setup(1, 5);
        let only = dht.keys().next().unwrap();
        let mut meter = Meter::new();
        assert_eq!(dht.leave_gracefully(only, &attachments, &dcache, &mut meter).unwrap(), 0);
        assert!(dht.is_empty());
    }

    #[test]
    fn health_counts_broken_successors() {
        let (mut dht, _, _, _) = setup(16, 6);
        // A run of failures longer than the leaf radius (4) leaves the
        // predecessor of the run with no live successor in its leaf set.
        let victims: Vec<Key> = dht.keys().skip(3).take(8).collect();
        for v in victims {
            dht.fail_node(v).unwrap();
        }
        let h = dht.health();
        assert!(h.broken_successors > 0);
        assert!(h.staleness() > 0.0);
    }
}
