//! Incremental repair and redundant routing.
//!
//! The paper's reliability story (§2.3.2) rests on two mechanisms beyond
//! periodic full refresh: *each node periodically monitors its
//! connectivity to other O(log N) nodes* (failure detection and local
//! repair), and *a route towards its destination can be adaptive by
//! maintaining multiple paths to the neighbors* (redundant routing).
//! This module implements both:
//!
//! * [`RingDht::probe_and_repair`] — one node pings its entries, drops
//!   the dead ones, and patches only the damaged slots (leaf repair via
//!   live ring neighbors) instead of rebuilding the whole table;
//! * [`RingDht::route_redundant`] — forwards along the best `width`
//!   distinct next-hops at every step, succeeding if *any* branch
//!   reaches the owner; used to quantify how much redundancy buys under
//!   massive simultaneous failure.

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::rng::Pcg64;

use crate::key::Key;
use crate::meter::{MessageKind, Meter};
use crate::ring::{RingDht, RingError};

/// Outcome of one node's probe-and-repair round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Entries probed (one ping each).
    pub probed: usize,
    /// Entries found dead and dropped.
    pub dropped: usize,
    /// Replacement entries installed.
    pub patched: usize,
}

/// Outcome of a redundant route.
#[derive(Debug, Clone)]
pub struct RedundantRoute {
    /// Whether any branch reached the owner of the target.
    pub delivered: bool,
    /// Total messages sent across all branches.
    pub messages: usize,
    /// Hops of the first (shortest) successful branch, if any.
    pub winning_hops: Option<usize>,
}

impl<V> RingDht<V> {
    /// One failure-detection round for `key`: probes every entry
    /// (metered as `Refresh`), drops entries pointing at departed nodes,
    /// and repairs the routing state by recomputing only if damage was
    /// found. Returns what happened.
    pub fn probe_and_repair(
        &mut self,
        key: Key,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
        meter: &mut Meter,
    ) -> Result<RepairReport, RingError> {
        let entries: Vec<Key> = self.node(key)?.entries.iter().map(|e| e.key).collect();
        let mut report = RepairReport { probed: entries.len(), ..Default::default() };
        let my_router = attachments.router(self.node(key)?.host);
        let mut dead = Vec::new();
        for e in entries {
            match self.node(e) {
                Ok(n) => {
                    // Live: the probe costs one round trip.
                    meter.record(
                        MessageKind::Refresh,
                        dcache.distance(my_router, attachments.router(n.host)),
                    );
                }
                Err(_) => {
                    // Dead: the probe times out (still costs the attempt,
                    // charged at zero physical distance — the packet dies
                    // in the network).
                    meter.bump(MessageKind::Refresh, 1);
                    dead.push(e);
                }
            }
        }
        if dead.is_empty() {
            return Ok(report);
        }
        report.dropped = dead.len();
        let node = self.node_mut(key)?;
        node.entries.retain(|e| !dead.contains(&e.key));
        node.leaf_keys.retain(|k| !dead.contains(k));
        // Patch: recompute the table against the live map (the local
        // equivalent of asking ring neighbors for replacements).
        let before = self.node(key)?.entries.len();
        self.rebuild_node(key, attachments, dcache, rng)?;
        let after = self.node(key)?.entries.len();
        report.patched = after.saturating_sub(before);
        Ok(report)
    }

    /// System-wide probe-and-repair sweep; returns aggregate damage found.
    pub fn repair_sweep(
        &mut self,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        rng: &mut Pcg64,
        meter: &mut Meter,
    ) -> RepairReport {
        let keys: Vec<Key> = self.keys().collect();
        let mut total = RepairReport::default();
        for k in keys {
            if let Ok(r) = self.probe_and_repair(k, attachments, dcache, rng, meter) {
                total.probed += r.probed;
                total.dropped += r.dropped;
                total.patched += r.patched;
            }
        }
        total
    }

    /// The best `width` distinct next hops from `cur` toward `target`,
    /// by clockwise progress (never overshooting the target).
    pub fn next_hops(&self, cur: Key, target: Key, width: usize) -> Result<Vec<Key>, RingError> {
        let owner = self.owner(target)?;
        if cur == owner {
            return Ok(Vec::new());
        }
        let node = self.node(cur)?;
        let d = cur.clockwise_to(target);
        let mut candidates: Vec<(u64, Key)> = node
            .entries
            .iter()
            .filter(|e| self.contains(e.key))
            .filter_map(|e| {
                let adv = cur.clockwise_to(e.key);
                (adv > 0 && adv <= d).then_some((adv, e.key))
            })
            .collect();
        candidates.sort_unstable_by_key(|c| std::cmp::Reverse(c.0));
        candidates.dedup_by_key(|c| c.1);
        let mut out: Vec<Key> = candidates.into_iter().take(width).map(|(_, k)| k).collect();
        if out.is_empty() {
            // target ∈ (cur, successor]: the successor owns it.
            out.push(self.successor_of(cur.offset(1))?);
        }
        Ok(out)
    }

    /// Routes from `src` toward `target` along up to `width` parallel
    /// branches per hop (iterative deepening over a frontier). Entries
    /// pointing at nodes in `failed_filter` (e.g. a partition the caller
    /// simulates) are treated as unusable mid-flight.
    pub fn route_redundant(
        &self,
        src: Key,
        target: Key,
        width: usize,
        is_usable: impl Fn(Key) -> bool,
        meter: &mut Meter,
    ) -> Result<RedundantRoute, RingError> {
        assert!(width >= 1);
        let owner = self.owner(target)?;
        let mut frontier = vec![src];
        let mut visited = std::collections::HashSet::new();
        visited.insert(src);
        let mut messages = 0usize;
        let mut depth = 0usize;
        let limit = 4 * (64 + width);
        while !frontier.is_empty() {
            if frontier.contains(&owner) {
                return Ok(RedundantRoute { delivered: true, messages, winning_hops: Some(depth) });
            }
            let mut next_frontier = Vec::new();
            for &cur in &frontier {
                for hop in self.next_hops(cur, target, width)? {
                    if !is_usable(hop) && hop != owner {
                        continue;
                    }
                    messages += 1;
                    meter.bump(MessageKind::RouteHop, 1);
                    if visited.insert(hop) {
                        next_frontier.push(hop);
                    }
                }
            }
            frontier = next_frontier;
            depth += 1;
            if depth > limit {
                break;
            }
        }
        Ok(RedundantRoute { delivered: false, messages, winning_hops: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (RingDht<()>, AttachmentMap, DistanceCache, Pcg64) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 256);
        let mut attachments = AttachmentMap::new();
        let mut dht = RingDht::new(RingConfig::tornado());
        for _ in 0..n {
            let host = attachments.attach_new(*rng.choose(&stubs));
            dht.insert(Key::random(&mut rng), host, 1).unwrap();
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        (dht, attachments, dcache, rng)
    }

    #[test]
    fn repair_noop_on_healthy_overlay() {
        let (mut dht, attachments, dcache, mut rng) = setup(64, 1);
        let mut meter = Meter::new();
        let k = dht.keys().next().unwrap();
        let r = dht.probe_and_repair(k, &attachments, &dcache, &mut rng, &mut meter).unwrap();
        assert_eq!(r.dropped, 0);
        assert_eq!(r.patched, 0);
        assert!(r.probed > 0);
        assert_eq!(meter.count(MessageKind::Refresh) as usize, r.probed);
    }

    #[test]
    fn repair_detects_and_heals_damage() {
        let (mut dht, attachments, dcache, mut rng) = setup(96, 2);
        let victims: Vec<Key> = dht.keys().step_by(4).collect();
        for v in &victims {
            dht.fail_node(*v).unwrap();
        }
        let mut meter = Meter::new();
        let sweep = dht.repair_sweep(&attachments, &dcache, &mut rng, &mut meter);
        assert!(sweep.dropped > 0, "damage must be found");
        assert!(dht.health().is_healthy(), "sweep must fully heal");
    }

    #[test]
    fn repair_sweep_cheaper_than_it_looks() {
        // Probes are one message per entry; a healthy sweep sends exactly
        // total_state() probes and changes nothing.
        let (mut dht, attachments, dcache, mut rng) = setup(48, 3);
        let expected = dht.total_state();
        let mut meter = Meter::new();
        let sweep = dht.repair_sweep(&attachments, &dcache, &mut rng, &mut meter);
        assert_eq!(sweep.probed, expected);
        assert_eq!(sweep.dropped, 0);
    }

    #[test]
    fn next_hops_distinct_monotone_and_bounded() {
        let (dht, _, _, mut rng) = setup(128, 4);
        let keys: Vec<Key> = dht.keys().collect();
        for _ in 0..100 {
            let src = *rng.choose(&keys);
            let target = Key::random(&mut rng);
            let hops = dht.next_hops(src, target, 3).unwrap();
            assert!(hops.len() <= 3);
            let mut seen = std::collections::HashSet::new();
            for h in &hops {
                assert!(seen.insert(*h), "duplicate next hop");
            }
            let d = src.clockwise_to(target);
            let owner = dht.owner(target).unwrap();
            for h in hops {
                let adv = src.clockwise_to(h);
                assert!(adv > 0 && (adv <= d || h == owner), "overshoot");
            }
        }
    }

    #[test]
    fn redundant_route_survives_failures_single_path_cannot() {
        let (dht, _, _, mut rng) = setup(160, 5);
        let keys: Vec<Key> = dht.keys().collect();
        // Declare 35% of nodes unusable (a simulated partition), without
        // touching the overlay structure.
        let down: std::collections::HashSet<Key> =
            keys.iter().copied().filter(|k| k.0 % 20 < 7).collect();
        let usable = |k: Key| !down.contains(&k);
        let mut meter = Meter::new();
        let (mut single_ok, mut wide_ok, mut total) = (0, 0, 0);
        for _ in 0..60 {
            let src = *rng.choose(&keys);
            let target = Key::random(&mut rng);
            let owner = dht.owner(target).unwrap();
            if down.contains(&src) || down.contains(&owner) {
                continue; // endpoints must be up for a fair comparison
            }
            total += 1;
            let narrow = dht.route_redundant(src, target, 1, usable, &mut meter).unwrap();
            let wide = dht.route_redundant(src, target, 3, usable, &mut meter).unwrap();
            single_ok += narrow.delivered as usize;
            wide_ok += wide.delivered as usize;
            if narrow.delivered {
                assert!(wide.delivered, "width cannot hurt reachability");
            }
        }
        assert!(total > 20, "enough comparable samples");
        assert!(wide_ok > single_ok, "redundancy must help: {wide_ok} vs {single_ok}");
    }

    #[test]
    fn redundant_route_trivial_when_source_owns() {
        let (dht, _, _, _) = setup(16, 6);
        let k = dht.keys().next().unwrap();
        let mut meter = Meter::new();
        let r = dht.route_redundant(k, k, 3, |_| true, &mut meter).unwrap();
        assert!(r.delivered);
        assert_eq!(r.winning_hops, Some(0));
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn redundant_route_cost_scales_with_width() {
        let (dht, _, _, mut rng) = setup(128, 7);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let (mut w1, mut w3) = (0usize, 0usize);
        for _ in 0..40 {
            let src = *rng.choose(&keys);
            let t = Key::random(&mut rng);
            w1 += dht.route_redundant(src, t, 1, |_| true, &mut meter).unwrap().messages;
            w3 += dht.route_redundant(src, t, 3, |_| true, &mut meter).unwrap().messages;
        }
        assert!(w3 > w1, "wider routes send more traffic ({w3} vs {w1})");
    }
}
