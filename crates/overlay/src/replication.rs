//! Record publication with k-replication.
//!
//! The paper (§2.3.2, availability): "a data item published to a HS-P2P
//! can simply be replicated to k nodes clustered with the hash keys closest
//! to the one represented the data item. Once one of these nodes fails, the
//! requested data item can be rapidly accessed in the remaining k − 1
//! nodes." This module implements exactly that scheme over [`RingDht`];
//! Bristle uses it to keep mobile-node location records available through
//! stationary-node churn.

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;

use crate::key::Key;
use crate::meter::{MessageKind, Meter};
use crate::ring::{RingDht, RingError};

/// Result of a replicated lookup.
#[derive(Debug, Clone)]
pub struct LookupOutcome<V> {
    /// The record, if any live replica held it.
    pub value: Option<V>,
    /// Node that answered (the owner, or a surviving replica).
    pub served_by: Option<Key>,
    /// Application-level hops spent (route + replica probes).
    pub hops: usize,
    /// Physical path cost spent.
    pub path_cost: u64,
}

impl<V: Clone> RingDht<V> {
    /// Publishes `value` under `key`: routes from `src` to the owner, then
    /// replicates to the `replicas − 1` following nodes.
    ///
    /// Returns the replica set actually written.
    #[allow(clippy::too_many_arguments)] // mirrors the protocol message's fields
    pub fn publish(
        &mut self,
        src: Key,
        key: Key,
        value: V,
        replicas: usize,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        meter: &mut Meter,
    ) -> Result<Vec<Key>, RingError> {
        assert!(replicas >= 1, "need at least one replica");
        let route = self.route_as(src, key, MessageKind::Publish, attachments, dcache, meter)?;
        let set = self.replica_set(key, replicas)?;
        let owner = route.terminus();
        debug_assert_eq!(set.first(), Some(&owner));
        let owner_router = attachments.router(self.node(owner)?.host);
        for (i, &replica) in set.iter().enumerate() {
            if i > 0 {
                // Owner pushes copies directly to the other replicas.
                let r = attachments.router(self.node(replica)?.host);
                meter.record(MessageKind::Replicate, dcache.distance(owner_router, r));
            }
            self.node_mut(replica)?.store.insert(key, value.clone());
        }
        Ok(set)
    }

    /// Looks `key` up starting from `src`. If the owner lacks the record
    /// (e.g. it just joined, or the original owner failed), up to
    /// `probe_replicas − 1` subsequent replicas are probed.
    pub fn lookup(
        &self,
        src: Key,
        key: Key,
        probe_replicas: usize,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        meter: &mut Meter,
    ) -> Result<LookupOutcome<V>, RingError> {
        let route = self.route(src, key, attachments, dcache, meter)?;
        let mut hops = route.hop_count();
        let mut path_cost = route.path_cost;
        let set = self.replica_set(key, probe_replicas.max(1))?;
        let mut prev_router = attachments.router(self.node(route.terminus())?.host);
        for &candidate in &set {
            let router = attachments.router(self.node(candidate)?.host);
            if candidate != route.terminus() {
                // Probe hop from the previous replica to the next.
                let cost = dcache.distance(prev_router, router);
                meter.record(MessageKind::RouteHop, cost);
                hops += 1;
                path_cost += cost;
            }
            prev_router = router;
            if let Some(v) = self.node(candidate)?.store.get(&key) {
                return Ok(LookupOutcome {
                    value: Some(v.clone()),
                    served_by: Some(candidate),
                    hops,
                    path_cost,
                });
            }
        }
        Ok(LookupOutcome { value: None, served_by: None, hops, path_cost })
    }

    /// Removes the record for `key` from its replica set (e.g. when the
    /// record's subject leaves the system).
    pub fn unpublish(&mut self, key: Key, replicas: usize) -> Result<usize, RingError> {
        let set = self.replica_set(key, replicas)?;
        let mut removed = 0;
        for replica in set {
            if self.node_mut(replica)?.store.remove(&key).is_some() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Re-replicates every record whose replica set changed after
    /// membership churn. Walks all stored records and re-inserts them at
    /// the current replica set; returns the number of copies moved.
    ///
    /// This is the steady-state equivalent of the periodic "states
    /// refreshment" the paper assumes keeps replicas converged.
    pub fn rebalance_replicas(
        &mut self,
        replicas: usize,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        meter: &mut Meter,
    ) -> Result<usize, RingError> {
        // Collect all (record key, value, holder) triples first.
        let mut records: Vec<(Key, V, Key)> = Vec::new();
        for node in self.iter() {
            for (&k, v) in &node.store {
                records.push((k, v.clone(), node.key));
            }
        }
        let mut moved = 0;
        for (k, v, holder) in records {
            let set = self.replica_set(k, replicas)?;
            if !set.contains(&holder) {
                self.node_mut(holder)?.store.remove(&k);
            }
            let holder_router = attachments.router(self.node(holder)?.host);
            for &replica in &set {
                if self.node(replica)?.store.contains_key(&k) {
                    continue;
                }
                let r = attachments.router(self.node(replica)?.host);
                meter.record(MessageKind::Replicate, dcache.distance(holder_router, r));
                self.node_mut(replica)?.store.insert(k, v.clone());
                moved += 1;
            }
        }
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use bristle_netsim::rng::Pcg64;
    use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (RingDht<u64>, AttachmentMap, DistanceCache, Pcg64) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 256);
        let mut attachments = AttachmentMap::new();
        let mut dht = RingDht::new(RingConfig::tornado());
        for _ in 0..n {
            let host = attachments.attach_new(*rng.choose(&stubs));
            dht.insert(Key::random(&mut rng), host, 1).unwrap();
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        (dht, attachments, dcache, rng)
    }

    #[test]
    fn publish_then_lookup_roundtrip() {
        let (mut dht, attachments, dcache, mut rng) = setup(64, 1);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let record_key = Key::random(&mut rng);
        let set =
            dht.publish(keys[0], record_key, 99, 3, &attachments, &dcache, &mut meter).unwrap();
        assert_eq!(set.len(), 3);
        let out = dht.lookup(keys[5], record_key, 3, &attachments, &dcache, &mut meter).unwrap();
        assert_eq!(out.value, Some(99));
        assert_eq!(out.served_by, Some(set[0]), "owner serves when alive");
        assert_eq!(meter.count(MessageKind::Replicate), 2);
    }

    #[test]
    fn lookup_missing_record_returns_none() {
        let (dht, attachments, dcache, mut rng) = setup(32, 2);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let out = dht
            .lookup(keys[0], Key::random(&mut rng), 3, &attachments, &dcache, &mut meter)
            .unwrap();
        assert!(out.value.is_none());
        assert!(out.served_by.is_none());
    }

    #[test]
    fn replica_survives_owner_failure() {
        let (mut dht, attachments, dcache, mut rng) = setup(64, 3);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let record_key = Key::random(&mut rng);
        let set =
            dht.publish(keys[0], record_key, 7, 3, &attachments, &dcache, &mut meter).unwrap();
        // Kill the owner without repairing anything.
        dht.remove(set[0]);
        let src = *keys.iter().find(|k| !set.contains(k)).unwrap();
        let out = dht.lookup(src, record_key, 3, &attachments, &dcache, &mut meter).unwrap();
        assert_eq!(out.value, Some(7), "replica must serve after owner death");
        assert_eq!(out.served_by, Some(set[1]));
    }

    #[test]
    fn record_lost_without_replication() {
        let (mut dht, attachments, dcache, mut rng) = setup(64, 4);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let record_key = Key::random(&mut rng);
        let set =
            dht.publish(keys[0], record_key, 7, 1, &attachments, &dcache, &mut meter).unwrap();
        dht.remove(set[0]);
        let src = *keys.iter().find(|k| !set.contains(k)).unwrap();
        let out = dht.lookup(src, record_key, 1, &attachments, &dcache, &mut meter).unwrap();
        assert!(out.value.is_none(), "k = 1 gives no fault tolerance");
    }

    #[test]
    fn unpublish_removes_all_copies() {
        let (mut dht, attachments, dcache, mut rng) = setup(48, 5);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let record_key = Key::random(&mut rng);
        dht.publish(keys[0], record_key, 1, 3, &attachments, &dcache, &mut meter).unwrap();
        assert_eq!(dht.unpublish(record_key, 3).unwrap(), 3);
        let out = dht.lookup(keys[1], record_key, 3, &attachments, &dcache, &mut meter).unwrap();
        assert!(out.value.is_none());
    }

    #[test]
    fn rebalance_restores_replica_count_after_churn() {
        let (mut dht, attachments, dcache, mut rng) = setup(64, 6);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let record_key = Key::random(&mut rng);
        let set =
            dht.publish(keys[0], record_key, 1, 3, &attachments, &dcache, &mut meter).unwrap();
        dht.remove(set[0]);
        dht.remove(set[1]);
        let moved = dht.rebalance_replicas(3, &attachments, &dcache, &mut meter).unwrap();
        assert!(moved >= 2, "two lost copies must be recreated, moved {moved}");
        let live_set = dht.replica_set(record_key, 3).unwrap();
        for r in live_set {
            assert!(dht.node(r).unwrap().store.contains_key(&record_key));
        }
    }

    #[test]
    fn rebalance_drops_out_of_set_copies() {
        let (mut dht, attachments, dcache, mut rng) = setup(64, 7);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let record_key = Key::random(&mut rng);
        dht.publish(keys[0], record_key, 1, 2, &attachments, &dcache, &mut meter).unwrap();
        // A new node joins right in front of the record key: the replica
        // set shifts, and the far copy must eventually be dropped.
        let host = attachments.current(bristle_netsim::attach::HostId(0)); // reuse any host body
        let _ = host;
        let new_key = record_key; // owner-of-key position (successor includes equal key)
        if !dht.contains(new_key) {
            dht.insert(new_key, bristle_netsim::attach::HostId(0), 1).unwrap();
        }
        dht.rebalance_replicas(2, &attachments, &dcache, &mut meter).unwrap();
        let set = dht.replica_set(record_key, 2).unwrap();
        let holders: Vec<Key> =
            dht.iter().filter(|n| n.store.contains_key(&record_key)).map(|n| n.key).collect();
        let mut sorted_set = set.clone();
        sorted_set.sort_unstable();
        let mut sorted_holders = holders.clone();
        sorted_holders.sort_unstable();
        assert_eq!(sorted_holders, sorted_set, "holders must equal the current replica set");
    }
}
