//! Route execution and cost accounting.
//!
//! A [`Route`] records what the paper measures per sampled route: the
//! *application-level hops* (overlay forwardings) and the *path cost* — the
//! sum over hops of the physical shortest-path weight between the two
//! attachment routers (computed with Dijkstra, paper §4.1).

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;

use crate::key::Key;
use crate::meter::{MessageKind, Meter};
use crate::ring::{RingDht, RingError};

/// The outcome of routing a message through the overlay.
#[derive(Debug, Clone)]
pub struct Route {
    /// Originating node.
    pub source: Key,
    /// The key the message was addressed to.
    pub target: Key,
    /// Nodes visited after the source; the last one is the owner of
    /// `target`. Empty when the source already owns the target.
    pub hops: Vec<Key>,
    /// Sum of per-hop physical shortest-path weights.
    pub path_cost: u64,
}

impl Route {
    /// Number of application-level hops.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// The node that owns the target key (the route's endpoint).
    pub fn terminus(&self) -> Key {
        *self.hops.last().unwrap_or(&self.source)
    }
}

/// Hard bound on route length; hitting it indicates a broken overlay and
/// is reported as [`RingError::UnknownNode`]-free panic in debug builds.
const MAX_HOPS: usize = 4096;

impl<V> RingDht<V> {
    /// Routes from `src` toward `target`, charging hops and physical costs
    /// to `meter` under the given message kind.
    pub fn route_as(
        &self,
        src: Key,
        target: Key,
        kind: MessageKind,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        meter: &mut Meter,
    ) -> Result<Route, RingError> {
        let mut hops = Vec::new();
        let mut path_cost = 0u64;
        let mut cur = src;
        let mut cur_router = attachments.router(self.node(src)?.host);
        while let Some(next) = self.next_hop(cur, target)? {
            let next_router = attachments.router(self.node(next)?.host);
            let cost = dcache.distance(cur_router, next_router);
            meter.record(kind, cost);
            path_cost += cost;
            hops.push(next);
            cur = next;
            cur_router = next_router;
            assert!(hops.len() <= MAX_HOPS, "route exceeded {MAX_HOPS} hops: overlay corrupt");
        }
        Ok(Route { source: src, target, hops, path_cost })
    }

    /// Routes an ordinary application message (kind [`MessageKind::RouteHop`]).
    pub fn route(
        &self,
        src: Key,
        target: Key,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        meter: &mut Meter,
    ) -> Result<Route, RingError> {
        self.route_as(src, target, MessageKind::RouteHop, attachments, dcache, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use bristle_netsim::rng::Pcg64;
    use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (RingDht<()>, AttachmentMap, DistanceCache) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 256);
        let mut attachments = AttachmentMap::new();
        let mut dht = RingDht::new(RingConfig::tornado());
        for _ in 0..n {
            let host = attachments.attach_new(*rng.choose(&stubs));
            let key = Key::random(&mut rng);
            dht.insert(key, host, 1).unwrap();
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        (dht, attachments, dcache)
    }

    #[test]
    fn route_reaches_owner_and_meters_hops() {
        let (dht, attachments, dcache) = setup(100, 1);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let target = Key::random(&mut Pcg64::seed_from_u64(2));
        let route = dht.route(keys[0], target, &attachments, &dcache, &mut meter).unwrap();
        assert_eq!(route.terminus(), dht.owner(target).unwrap());
        assert_eq!(meter.count(MessageKind::RouteHop) as usize, route.hop_count());
        assert_eq!(meter.cost(MessageKind::RouteHop), route.path_cost);
    }

    #[test]
    fn route_to_self_owned_key_is_free() {
        let (dht, attachments, dcache) = setup(50, 3);
        let some = dht.keys().next().unwrap();
        let mut meter = Meter::new();
        // A node's own key is owned by itself.
        let route = dht.route(some, some, &attachments, &dcache, &mut meter).unwrap();
        assert_eq!(route.hop_count(), 0);
        assert_eq!(route.path_cost, 0);
        assert_eq!(route.terminus(), some);
    }

    #[test]
    fn discovery_kind_is_metered_separately() {
        let (dht, attachments, dcache) = setup(80, 4);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        dht.route_as(
            keys[0],
            keys[keys.len() / 2],
            MessageKind::DiscoveryHop,
            &attachments,
            &dcache,
            &mut meter,
        )
        .unwrap();
        assert_eq!(meter.count(MessageKind::RouteHop), 0);
        assert!(meter.count(MessageKind::DiscoveryHop) > 0);
    }

    #[test]
    fn path_cost_respects_triangle_via_direct_distance() {
        // Route cost can exceed the direct src→owner distance (overlay
        // stretch) but each hop is itself a shortest path, so the total is
        // at least the direct distance.
        let (dht, attachments, dcache) = setup(100, 5);
        let keys: Vec<Key> = dht.keys().collect();
        let mut rng = Pcg64::seed_from_u64(6);
        let mut meter = Meter::new();
        for _ in 0..50 {
            let src = *rng.choose(&keys);
            let dst = *rng.choose(&keys);
            let route = dht.route(src, dst, &attachments, &dcache, &mut meter).unwrap();
            let direct = dcache.distance(
                attachments.router(dht.node(src).unwrap().host),
                attachments.router(dht.node(route.terminus()).unwrap().host),
            );
            assert!(route.path_cost >= direct, "route cheaper than direct path");
        }
    }
}
