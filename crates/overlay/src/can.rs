//! A CAN-style d-dimensional overlay (Ratnasamy et al., SIGCOMM 2001).
//!
//! The paper lists CAN as a candidate stationary layer and repeatedly
//! calls out how its costs differ from the ring-structured designs
//! (§2.3.2): per-node state is O(d) ("each node needs to maintain 2D
//! neighbors") instead of O(log N), and routes take O(d·N^(1/d)) hops
//! instead of O(log N). This module implements CAN faithfully enough to
//! measure exactly those trade-offs next to the ring substrate (see the
//! `substrates` experiment):
//!
//! * the key space is a d-dimensional torus, each coordinate a `u64`;
//! * every node owns one or more axis-aligned *zones* (more than one
//!   after takeovers); a join splits the zone containing the joiner's
//!   point along its longest side;
//! * neighbors are zone-adjacency: overlap in d−1 dimensions, abutting
//!   in the remaining one;
//! * routing greedily forwards to the neighbor whose closest zone is
//!   nearest (torus L1 distance) to the target point;
//! * a departing node's zones are taken over by the neighbor with the
//!   smallest total volume (the standard CAN takeover rule).

use std::collections::HashMap;

use bristle_netsim::attach::HostId;
use bristle_netsim::rng::Pcg64;

use crate::key::Key;

/// Maximum supported dimensionality.
pub const MAX_DIMS: usize = 8;

/// A point of the d-dimensional torus (only the first `d` coordinates
/// are meaningful).
pub type Point = [u64; MAX_DIMS];

/// Derives a torus point from a ring key by splitmix-style expansion, so
/// the same `Key` type names data in both substrate families.
pub fn point_of_key(key: Key, dims: usize) -> Point {
    assert!((1..=MAX_DIMS).contains(&dims));
    let mut p = [0u64; MAX_DIMS];
    let mut z = key.0;
    for coord in p.iter_mut().take(dims) {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut v = z;
        v = (v ^ (v >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        v = (v ^ (v >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        *coord = v ^ (v >> 31);
    }
    p
}

/// Torus distance along one axis.
#[inline]
fn axis_distance(a: u64, b: u64) -> u64 {
    let d = a.wrapping_sub(b);
    d.min(d.wrapping_neg())
}

/// An axis-aligned zone `[lo, hi)` per dimension. Zones never wrap: the
/// initial zone covers `[0, 2^64)` via `hi = 0` meaning "wrapped to the
/// origin", i.e. an exclusive bound of 2^64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Zone {
    lo: Point,
    hi: Point, // exclusive; 0 in a dimension means 2^64 when lo == 0
    dims: usize,
}

impl Zone {
    /// The whole torus.
    pub fn whole(dims: usize) -> Zone {
        assert!((1..=MAX_DIMS).contains(&dims));
        Zone { lo: [0; MAX_DIMS], hi: [0; MAX_DIMS], dims }
    }

    #[inline]
    fn side_len(&self, d: usize) -> u64 {
        // hi == lo means the full 2^64 extent (only for the whole torus
        // slice in that dimension); otherwise ordinary subtraction.
        self.hi[d].wrapping_sub(self.lo[d])
    }

    /// Whether `p` lies inside the zone.
    pub fn contains(&self, p: &Point) -> bool {
        (0..self.dims).all(|d| {
            let len = self.side_len(d);
            // len == 0 encodes the full 2^64 extent.
            len == 0 || p[d].wrapping_sub(self.lo[d]) < len
        })
    }

    /// Splits the zone in half along its longest side; returns the two
    /// halves (lower, upper).
    pub fn split(&self) -> (Zone, Zone) {
        let axis = (0..self.dims)
            .max_by_key(|&d| {
                let len = self.side_len(d);
                if len == 0 {
                    u128::from(u64::MAX) + 1
                } else {
                    u128::from(len)
                }
            })
            .expect("at least one dimension");
        let len = self.side_len(axis);
        let half = if len == 0 { 1u64 << 63 } else { len / 2 };
        assert!(half > 0, "zone too small to split");
        let mid = self.lo[axis].wrapping_add(half);
        let mut lower = *self;
        let mut upper = *self;
        lower.hi[axis] = mid;
        upper.lo[axis] = mid;
        (lower, upper)
    }

    /// L1 torus distance from `p` to the closest point of the zone.
    pub fn distance_to(&self, p: &Point) -> u128 {
        let mut total: u128 = 0;
        for (d, &coord) in p.iter().enumerate().take(self.dims) {
            let len = self.side_len(d);
            if len == 0 {
                continue; // full extent: distance 0 along this axis
            }
            let off = coord.wrapping_sub(self.lo[d]);
            if off < len {
                continue; // inside along this axis
            }
            // Outside: distance to lo or to hi−1, torus-wise.
            let to_lo = axis_distance(coord, self.lo[d]);
            let to_hi = axis_distance(coord, self.hi[d].wrapping_sub(1));
            total += u128::from(to_lo.min(to_hi));
        }
        total
    }

    /// Whether two zones are neighbors: abutting in exactly one
    /// dimension (torus-wise) and overlapping in all others.
    pub fn is_neighbor(&self, other: &Zone) -> bool {
        let mut abut = 0;
        for d in 0..self.dims {
            let (a_lo, a_len) = (self.lo[d], self.side_len(d));
            let (b_lo, b_len) = (other.lo[d], other.side_len(d));
            let full_a = a_len == 0;
            let full_b = b_len == 0;
            let overlaps = full_a || full_b || ranges_overlap(a_lo, a_len, b_lo, b_len);
            // Torus abutment: one range's exclusive end equals the
            // other's start, wrapping at 2^64 (wrapping_add handles it).
            let abuts = !full_a
                && !full_b
                && (a_lo.wrapping_add(a_len) == b_lo || b_lo.wrapping_add(b_len) == a_lo);
            if overlaps {
                continue;
            }
            if abuts {
                abut += 1;
            } else {
                return false; // disjoint and not touching along this axis
            }
        }
        abut == 1
    }

    /// Zone volume as a fraction of the torus (for takeover decisions).
    pub fn volume_log2(&self) -> i64 {
        // Every zone side is a power of two by construction; sum of the
        // side exponents, with 64 meaning full extent.
        (0..self.dims)
            .map(|d| {
                let len = self.side_len(d);
                if len == 0 {
                    64
                } else {
                    len.trailing_zeros() as i64
                }
            })
            .sum()
    }
}

fn ranges_overlap(a_lo: u64, a_len: u64, b_lo: u64, b_len: u64) -> bool {
    // Zones never wrap (splits only shrink the origin-anchored torus), so
    // widening to u128 gives exact exclusive ends even at the 2^64 edge.
    let a_hi = a_lo as u128 + a_len as u128;
    let b_hi = b_lo as u128 + b_len as u128;
    (a_lo as u128) < b_hi && (b_lo as u128) < a_hi
}

/// One CAN node: identity, host, and the zones it currently owns.
#[derive(Debug, Clone)]
pub struct CanNode {
    /// The node's identity key (also seeds its join point).
    pub key: Key,
    /// The physical host.
    pub host: HostId,
    /// Zones owned (one normally, several after takeovers).
    pub zones: Vec<Zone>,
    /// Keys of neighboring nodes.
    pub neighbors: Vec<Key>,
}

/// A CAN overlay over record type `V`.
#[derive(Debug, Clone)]
pub struct CanOverlay<V> {
    dims: usize,
    nodes: HashMap<Key, CanNode>,
    store: HashMap<Key, (Key, V)>, // record key -> (owner at publish, value)
}

impl<V> CanOverlay<V> {
    /// An empty overlay of the given dimensionality.
    pub fn new(dims: usize) -> Self {
        assert!((1..=MAX_DIMS).contains(&dims), "dims out of range");
        CanOverlay { dims, nodes: HashMap::new(), store: HashMap::new() }
    }

    /// Dimensionality d.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the overlay is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node state by key.
    pub fn node(&self, key: Key) -> Option<&CanNode> {
        self.nodes.get(&key)
    }

    /// Iterator over all nodes.
    pub fn iter(&self) -> impl Iterator<Item = &CanNode> + '_ {
        self.nodes.values()
    }

    /// The node whose zone contains `p`.
    pub fn owner_of_point(&self, p: &Point) -> Option<Key> {
        self.nodes.values().find(|n| n.zones.iter().any(|z| z.contains(p))).map(|n| n.key)
    }

    /// The owner of record key `k` (its derived point).
    pub fn owner(&self, k: Key) -> Option<Key> {
        self.owner_of_point(&point_of_key(k, self.dims))
    }

    /// Joins a node: splits the zone containing the joiner's point.
    /// The first node takes the whole torus.
    pub fn join(
        &mut self,
        key: Key,
        host: HostId,
        rng: &mut Pcg64,
    ) -> Result<(), crate::ring::RingError> {
        if self.nodes.contains_key(&key) {
            return Err(crate::ring::RingError::DuplicateKey(key));
        }
        if self.nodes.is_empty() {
            self.nodes.insert(
                key,
                CanNode { key, host, zones: vec![Zone::whole(self.dims)], neighbors: Vec::new() },
            );
            return Ok(());
        }
        // Split at a random point (the classic protocol); the joiner's
        // key point would also do, but random points balance better.
        let mut p = [0u64; MAX_DIMS];
        for coord in p.iter_mut().take(self.dims) {
            *coord = rng.next_u64();
        }
        let victim = self.owner_of_point(&p).expect("torus fully covered");
        let victim_node = self.nodes.get_mut(&victim).expect("known");
        let zone_idx =
            victim_node.zones.iter().position(|z| z.contains(&p)).expect("owner contains point");
        let (lower, upper) = victim_node.zones[zone_idx].split();
        // The half containing p goes to whoever keeps splitting balanced:
        // give the joiner the half containing p.
        let (keep, give) = if upper.contains(&p) { (lower, upper) } else { (upper, lower) };
        victim_node.zones[zone_idx] = keep;
        self.nodes.insert(key, CanNode { key, host, zones: vec![give], neighbors: Vec::new() });
        self.rewire_neighbors();
        Ok(())
    }

    /// A departing node's zones are taken over by its smallest neighbor.
    pub fn leave(&mut self, key: Key) -> Result<(), crate::ring::RingError> {
        let node = self.nodes.remove(&key).ok_or(crate::ring::RingError::UnknownNode(key))?;
        if self.nodes.is_empty() {
            return Ok(());
        }
        // Takeover: the neighbor with the smallest owned volume inherits.
        let heir = node
            .neighbors
            .iter()
            .filter(|k| self.nodes.contains_key(k))
            .min_by_key(|k| {
                let n = &self.nodes[k];
                n.zones.iter().map(Zone::volume_log2).max().unwrap_or(0)
            })
            .copied()
            .or_else(|| self.nodes.keys().next().copied())
            .expect("non-empty");
        self.nodes.get_mut(&heir).expect("known").zones.extend(node.zones);
        // Re-home the departed node's stored records.
        let orphans: Vec<Key> =
            self.store.iter().filter(|(_, (o, _))| *o == key).map(|(k, _)| *k).collect();
        for k in orphans {
            if let Some(entry) = self.store.get_mut(&k) {
                entry.0 = heir;
            }
        }
        self.rewire_neighbors();
        Ok(())
    }

    /// Recomputes the neighbor lists from zone adjacency (the simulator's
    /// omniscient equivalent of CAN's neighbor exchange on split/merge).
    pub fn rewire_neighbors(&mut self) {
        let keys: Vec<Key> = self.nodes.keys().copied().collect();
        let zones: Vec<(Key, Vec<Zone>)> =
            keys.iter().map(|&k| (k, self.nodes[&k].zones.clone())).collect();
        for &k in &keys {
            let mine = &self.nodes[&k].zones.clone();
            let mut neighbors = Vec::new();
            for (other, other_zones) in &zones {
                if *other == k {
                    continue;
                }
                let adjacent = mine
                    .iter()
                    .any(|a| other_zones.iter().any(|b| a.is_neighbor(b) || b.is_neighbor(a)));
                if adjacent {
                    neighbors.push(*other);
                }
            }
            self.nodes.get_mut(&k).expect("known").neighbors = neighbors;
        }
    }

    /// Average neighbors per node — CAN's O(d) state metric.
    pub fn avg_state(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.values().map(|n| n.neighbors.len()).sum::<usize>() as f64
            / self.nodes.len() as f64
    }

    /// Greedy-routes from `src` toward the point of `target`, returning
    /// the node sequence visited after `src`.
    pub fn route(&self, src: Key, target: Key) -> Result<Vec<Key>, crate::ring::RingError> {
        let p = point_of_key(target, self.dims);
        let mut cur = self.nodes.get(&src).ok_or(crate::ring::RingError::UnknownNode(src))?.key;
        let mut hops = Vec::new();
        let mut cur_dist = self.node_distance(cur, &p);
        let limit = 16 * (self.nodes.len() + 4);
        while cur_dist > 0 {
            let cur_node = &self.nodes[&cur];
            let next = cur_node
                .neighbors
                .iter()
                .filter(|k| self.nodes.contains_key(k))
                .map(|&k| (self.node_distance(k, &p), k))
                .min();
            match next {
                Some((d, k)) if d < cur_dist => {
                    hops.push(k);
                    cur = k;
                    cur_dist = d;
                }
                _ => break, // local minimum (can only happen mid-repair)
            }
            assert!(hops.len() <= limit, "CAN route did not converge");
        }
        Ok(hops)
    }

    fn node_distance(&self, key: Key, p: &Point) -> u128 {
        self.nodes[&key].zones.iter().map(|z| z.distance_to(p)).min().unwrap_or(u128::MAX)
    }

    /// Stores a record at the owner of `k`.
    pub fn put(&mut self, k: Key, value: V) -> Option<Key> {
        let owner = self.owner(k)?;
        self.store.insert(k, (owner, value));
        Some(owner)
    }

    /// Fetches a record (with the node currently answering for it).
    pub fn get(&self, k: Key) -> Option<(&Key, &V)> {
        self.store.get(&k).map(|(o, v)| (o, v))
    }

    /// Total torus coverage sanity check: sums zone volumes in log space
    /// and confirms they tile the whole torus exactly.
    pub fn covers_torus(&self) -> bool {
        // Volumes are dyadic: count each zone as 2^(volume_log2 - base).
        let full = 64 * self.dims as i64;
        let mut acc: f64 = 0.0;
        for n in self.nodes.values() {
            for z in &n.zones {
                acc += ((z.volume_log2() - full) as f64).exp2();
            }
        }
        (acc - 1.0).abs() < 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, dims: usize, seed: u64) -> CanOverlay<u32> {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut can = CanOverlay::new(dims);
        for i in 0..n {
            can.join(Key::random(&mut rng), HostId(i as u32), &mut rng).unwrap();
        }
        can
    }

    #[test]
    fn zones_tile_the_torus() {
        for dims in [1, 2, 3] {
            let can = build(50, dims, dims as u64);
            assert!(can.covers_torus(), "dims {dims}");
        }
    }

    #[test]
    fn every_point_has_exactly_one_owner() {
        let can = build(40, 2, 7);
        let mut rng = Pcg64::seed_from_u64(8);
        for _ in 0..200 {
            let mut p = [0u64; MAX_DIMS];
            p[0] = rng.next_u64();
            p[1] = rng.next_u64();
            let owners: Vec<Key> = can
                .iter()
                .filter(|n| n.zones.iter().any(|z| z.contains(&p)))
                .map(|n| n.key)
                .collect();
            assert_eq!(owners.len(), 1, "point owned by {owners:?}");
        }
    }

    #[test]
    fn neighbor_lists_are_symmetric() {
        let can = build(40, 2, 9);
        for n in can.iter() {
            for other in &n.neighbors {
                assert!(
                    can.node(*other).unwrap().neighbors.contains(&n.key),
                    "asymmetric neighborhood"
                );
            }
        }
    }

    #[test]
    fn routing_reaches_owner() {
        let can = build(60, 2, 10);
        let keys: Vec<Key> = can.iter().map(|n| n.key).collect();
        let mut rng = Pcg64::seed_from_u64(11);
        for _ in 0..100 {
            let src = *rng.choose(&keys);
            let target = Key::random(&mut rng);
            let hops = can.route(src, target).unwrap();
            let terminus = hops.last().copied().unwrap_or(src);
            assert_eq!(Some(terminus), can.owner(target), "route must end at the owner");
        }
    }

    #[test]
    fn state_is_constant_in_n_route_grows_polynomially() {
        // CAN's signature trade-off (paper §2.3.2): O(d) state but
        // O(d·N^(1/d)) routes.
        let small = build(32, 2, 12);
        let large = build(256, 2, 13);
        // State: grows far slower than 8× (it is ~O(d)).
        assert!(large.avg_state() < small.avg_state() * 3.0);
        // Routes: 8× nodes in 2-d → ~2.8× hops; must grow at least somewhat.
        let avg_hops = |can: &CanOverlay<u32>, seed: u64| {
            let keys: Vec<Key> = can.iter().map(|n| n.key).collect();
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut total = 0usize;
            for _ in 0..200 {
                let src = *rng.choose(&keys);
                let dst = Key::random(&mut rng);
                total += can.route(src, dst).unwrap().len();
            }
            total as f64 / 200.0
        };
        let (hs, hl) = (avg_hops(&small, 1), avg_hops(&large, 2));
        assert!(hl > hs * 1.5, "small {hs} large {hl}");
    }

    #[test]
    fn leave_transfers_zones_and_records() {
        let mut can = build(30, 2, 14);
        let mut rng = Pcg64::seed_from_u64(15);
        let record = Key::random(&mut rng);
        let owner = can.owner(record).unwrap();
        can.put(record, 42);
        can.leave(owner).unwrap();
        assert!(can.covers_torus(), "takeover must keep the torus tiled");
        let (answering, v) = can.get(record).unwrap();
        assert_eq!(*v, 42);
        assert!(can.node(*answering).is_some(), "record re-homed to a live node");
    }

    #[test]
    fn mass_departure_keeps_coverage() {
        let mut can = build(50, 2, 16);
        let keys: Vec<Key> = can.iter().map(|n| n.key).collect();
        for k in keys.iter().take(35) {
            can.leave(*k).unwrap();
        }
        assert_eq!(can.len(), 15);
        assert!(can.covers_torus());
        // Routing still works.
        let alive: Vec<Key> = can.iter().map(|n| n.key).collect();
        let mut rng = Pcg64::seed_from_u64(17);
        for _ in 0..50 {
            let src = *rng.choose(&alive);
            let t = Key::random(&mut rng);
            let hops = can.route(src, t).unwrap();
            assert_eq!(Some(hops.last().copied().unwrap_or(src)), can.owner(t));
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let mut rng = Pcg64::seed_from_u64(18);
        let mut can: CanOverlay<()> = CanOverlay::new(3);
        let k = Key(5);
        can.join(k, HostId(0), &mut rng).unwrap();
        assert_eq!(can.owner(Key::random(&mut rng)), Some(k));
        assert!(can.route(k, Key::random(&mut rng)).unwrap().is_empty());
        assert!(can.covers_torus());
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut rng = Pcg64::seed_from_u64(19);
        let mut can: CanOverlay<()> = CanOverlay::new(2);
        can.join(Key(1), HostId(0), &mut rng).unwrap();
        assert!(can.join(Key(1), HostId(1), &mut rng).is_err());
    }
}
