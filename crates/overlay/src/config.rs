//! Overlay protocol parameters.

/// How a node picks one neighbor out of several key-wise-equivalent
/// candidates for a routing-table slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborSelection {
    /// First node clockwise in the slot interval (no locality awareness).
    First,
    /// Uniformly random node from the candidate window.
    Random,
    /// Network-proximity neighbor selection: the candidate with the lowest
    /// physical shortest-path distance (Tornado/Pastry-style; the paper's
    /// Fig. 5 `distance(r, i)` check and the Fig. 9 "with locality" mode).
    Proximity,
}

/// Parameters of the ring DHT ([`crate::ring::RingDht`]).
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Digit width in bits; the routing base is `2^bits_per_digit`.
    pub bits_per_digit: u32,
    /// Leaf-set radius: this many immediate successors *and* predecessors.
    pub leaf_radius: usize,
    /// How many clockwise-first candidates per finger interval are examined
    /// by the neighbor-selection policy.
    pub candidate_window: usize,
    /// Neighbor-selection policy for finger slots.
    pub selection: NeighborSelection,
}

impl RingConfig {
    /// Tornado-like configuration: base-4 digits, proximity neighbor
    /// selection. Matches the route-length magnitudes in the paper
    /// (≈ 5–6 application hops at N = 2 000).
    pub fn tornado() -> Self {
        RingConfig {
            bits_per_digit: 2,
            leaf_radius: 4,
            candidate_window: 6,
            selection: NeighborSelection::Proximity,
        }
    }

    /// Tornado-like structure but locality-blind (paper Fig. 9's "without
    /// locality" mode).
    pub fn tornado_no_locality() -> Self {
        RingConfig { selection: NeighborSelection::Random, ..Self::tornado() }
    }

    /// Chord-like baseline: base-2 fingers, successor-only selection,
    /// no proximity awareness.
    pub fn chord() -> Self {
        RingConfig {
            bits_per_digit: 1,
            leaf_radius: 4,
            candidate_window: 1,
            selection: NeighborSelection::First,
        }
    }

    /// Number of digit levels implied by the digit width.
    pub fn levels(&self) -> u32 {
        crate::key::Key::levels(self.bits_per_digit)
    }

    /// The routing base `2^bits_per_digit`.
    pub fn base(&self) -> u64 {
        1u64 << self.bits_per_digit
    }

    /// Validates parameter sanity.
    pub fn validate(&self) {
        assert!((1..=16).contains(&self.bits_per_digit), "bits_per_digit out of range");
        assert!(self.leaf_radius >= 1, "leaf_radius must be >= 1");
        assert!(self.candidate_window >= 1, "candidate_window must be >= 1");
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        Self::tornado()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [RingConfig::tornado(), RingConfig::tornado_no_locality(), RingConfig::chord()] {
            cfg.validate();
        }
    }

    #[test]
    fn tornado_base_is_four() {
        let cfg = RingConfig::tornado();
        assert_eq!(cfg.base(), 4);
        assert_eq!(cfg.levels(), 32);
    }

    #[test]
    fn chord_base_is_two() {
        let cfg = RingConfig::chord();
        assert_eq!(cfg.base(), 2);
        assert_eq!(cfg.levels(), 64);
        assert_eq!(cfg.selection, NeighborSelection::First);
    }

    #[test]
    #[should_panic(expected = "bits_per_digit")]
    fn zero_bits_rejected() {
        RingConfig { bits_per_digit: 0, ..RingConfig::tornado() }.validate();
    }
}
