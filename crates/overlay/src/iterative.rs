//! Iterative (source-driven) routing.
//!
//! Recursive routing — each hop forwards the message onward — is what
//! the mobile layer uses for data traffic. For *queries* like
//! `_discovery`, many HS-P2P deployments prefer the **iterative** mode:
//! the querier contacts each hop itself and learns the next hop from the
//! reply. The trade-offs are classic:
//!
//! * the querier keeps control (timeouts, retries, parallelism) and
//!   needs no trust in intermediaries — but
//! * every step costs a full round trip to the querier instead of one
//!   overlay-edge traversal, so the physical cost is higher unless the
//!   querier is central.
//!
//! [`RingDht::route_iterative`] implements the mode so the ablation
//! suite can price it against recursive discovery.

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;

use crate::key::Key;
use crate::meter::{MessageKind, Meter};
use crate::ring::{RingDht, RingError};
use crate::route::Route;

impl<V> RingDht<V> {
    /// Routes from `src` toward `target` iteratively: `src` asks each
    /// successive hop for its best next hop, paying a round trip per
    /// step. Returns the same [`Route`] shape as recursive routing, with
    /// `path_cost` covering all round trips.
    pub fn route_iterative(
        &self,
        src: Key,
        target: Key,
        kind: MessageKind,
        attachments: &AttachmentMap,
        dcache: &DistanceCache,
        meter: &mut Meter,
    ) -> Result<Route, RingError> {
        let src_router = attachments.router(self.node(src)?.host);
        let mut hops = Vec::new();
        let mut path_cost = 0u64;
        let mut cur = src;
        while let Some(next) = self.next_hop(cur, target)? {
            // Round trip: query to `next`, reply with its next hop.
            let next_router = attachments.router(self.node(next)?.host);
            let rtt = 2 * dcache.distance(src_router, next_router);
            meter.record(kind, rtt);
            path_cost += rtt;
            hops.push(next);
            cur = next;
            assert!(hops.len() <= self.len() + 1, "iterative route did not converge");
        }
        Ok(Route { source: src, target, hops, path_cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;
    use bristle_netsim::rng::Pcg64;
    use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
    use std::sync::Arc;

    fn setup(n: usize, seed: u64) -> (RingDht<()>, AttachmentMap, DistanceCache, Pcg64) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 256);
        let mut attachments = AttachmentMap::new();
        let mut dht = RingDht::new(RingConfig::tornado());
        for _ in 0..n {
            let host = attachments.attach_new(*rng.choose(&stubs));
            dht.insert(Key::random(&mut rng), host, 1).unwrap();
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        (dht, attachments, dcache, rng)
    }

    #[test]
    fn iterative_visits_same_nodes_as_recursive() {
        let (dht, attachments, dcache, mut rng) = setup(100, 1);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        for _ in 0..50 {
            let src = *rng.choose(&keys);
            let target = Key::random(&mut rng);
            let recursive = dht.route(src, target, &attachments, &dcache, &mut meter).unwrap();
            let iterative = dht
                .route_iterative(
                    src,
                    target,
                    MessageKind::DiscoveryHop,
                    &attachments,
                    &dcache,
                    &mut meter,
                )
                .unwrap();
            assert_eq!(recursive.hops, iterative.hops, "same greedy decisions");
        }
    }

    #[test]
    fn iterative_costs_more_on_average() {
        let (dht, attachments, dcache, mut rng) = setup(120, 2);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        let (mut rec, mut ite) = (0u64, 0u64);
        for _ in 0..100 {
            let src = *rng.choose(&keys);
            let target = Key::random(&mut rng);
            rec += dht.route(src, target, &attachments, &dcache, &mut meter).unwrap().path_cost;
            ite += dht
                .route_iterative(
                    src,
                    target,
                    MessageKind::DiscoveryHop,
                    &attachments,
                    &dcache,
                    &mut meter,
                )
                .unwrap()
                .path_cost;
        }
        assert!(ite > rec, "round trips {ite} must exceed forwarding {rec}");
    }

    #[test]
    fn iterative_meters_under_requested_kind() {
        let (dht, attachments, dcache, _) = setup(60, 3);
        let keys: Vec<Key> = dht.keys().collect();
        let mut meter = Meter::new();
        dht.route_iterative(
            keys[0],
            keys[keys.len() / 2],
            MessageKind::DiscoveryHop,
            &attachments,
            &dcache,
            &mut meter,
        )
        .unwrap();
        assert_eq!(meter.count(MessageKind::RouteHop), 0);
        assert!(meter.count(MessageKind::DiscoveryHop) > 0);
    }

    #[test]
    fn self_owned_target_is_free() {
        let (dht, attachments, dcache, _) = setup(30, 4);
        let k = dht.keys().next().unwrap();
        let mut meter = Meter::new();
        let r = dht
            .route_iterative(k, k, MessageKind::RouteHop, &attachments, &dcache, &mut meter)
            .unwrap();
        assert_eq!(r.hop_count(), 0);
        assert_eq!(r.path_cost, 0);
    }
}
