//! # bristle-overlay
//!
//! The HS-P2P (hash-based structured peer-to-peer) substrate both Bristle
//! layers run on — the in-tree stand-in for Tornado, the overlay the paper
//! builds Bristle upon (see `DESIGN.md` for the substitution rationale).
//!
//! Contents:
//!
//! * [`key`] — the 2^64 identifier ring and digit arithmetic.
//! * [`addr`] — network addresses and the paper's `<key, addr>` state-pairs.
//! * [`config`] — protocol parameters ([`RingConfig::tornado`],
//!   [`RingConfig::chord`], locality on/off).
//! * [`node`] — per-node routing state, capacity and record store.
//! * [`ring`] — the DHT itself: ownership, monotone clockwise routing with
//!   base-`2^b` digit fingers, leaf sets, proximity neighbor selection,
//!   reverse-pointer index.
//! * [`route`] — route execution with hop/path-cost accounting.
//! * [`replication`] — k-replica publication and fault-tolerant lookup.
//! * [`maintenance`] — refresh cycles, failures, graceful leave, health.
//! * [`meter`] — message/cost accounting shared by the whole stack.
//! * [`obs`] — latency histograms, structured events and a flight
//!   recorder for virtual-time observability.

#![warn(missing_docs)]

pub mod addr;
pub mod can;
pub mod config;
pub mod iterative;
pub mod key;
pub mod maintenance;
pub mod meter;
pub mod node;
pub mod obs;
pub mod prefix;
pub mod repair;
pub mod replication;
pub mod ring;
pub mod route;

pub use addr::{NetAddr, StatePair};
pub use can::{CanNode, CanOverlay, Zone};
pub use config::{NeighborSelection, RingConfig};
pub use key::Key;
pub use maintenance::HealthReport;
pub use meter::{MessageKind, Meter};
pub use node::NodeState;
pub use obs::{
    EventSink, FlightRecorder, Histogram as LatencyHistogram, ObsEvent, ObsEventKind, Snapshot,
};
pub use prefix::PrefixDht;
pub use repair::{RedundantRoute, RepairReport};
pub use replication::LookupOutcome;
pub use ring::{RingDht, RingError};
pub use route::Route;
