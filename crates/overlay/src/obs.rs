//! Observability primitives: latency histograms, structured protocol
//! events, and a bounded flight recorder.
//!
//! Everything here measures *virtual* time — the `u64` tick counts the
//! simulation clocks hand out — so identical seeds produce identical
//! histograms and identical event sequences on any machine. The pieces:
//!
//! * [`Histogram`] — fixed-size log₂-bucketed latency histogram with
//!   [`Snapshot`] (count / p50 / p99 / max) summaries.
//! * [`ObsEvent`] / [`ObsEventKind`] — structured protocol events (send,
//!   ack, timeout, suspect, refute, route and discovery milestones), each
//!   stamped with a causal `trace` id so one logical operation and all the
//!   traffic it triggers correlate.
//! * [`EventSink`] — how protocol code hands events to whoever is
//!   listening, without knowing who that is.
//! * [`FlightRecorder`] — a bounded ring buffer of the most recent events,
//!   for post-mortem inspection of failed operations.

use crate::key::Key;

/// Number of histogram buckets: one for value 0, one per power of two up
/// to and including the bucket that holds `u64::MAX`.
const BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram over virtual-time tick values.
///
/// Bucket 0 holds exactly the value 0; bucket *i* ≥ 1 holds the values in
/// `[2^(i−1), 2^i)`, so every `u64` lands in one of 65 buckets. Quantiles
/// are answered as the *upper bound* of the bucket where the cumulative
/// count crosses the requested rank (the exact maximum is tracked
/// separately and returned whenever the rank falls in the top non-empty
/// bucket), which bounds the relative error by 2× — plenty for the
/// order-of-magnitude latency claims the experiments make.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, max: 0 }
    }
}

/// Index of the bucket holding `value` (0 → 0, else 64 − leading zeros).
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` (`2^i − 1`, saturating at the top).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value` ticks.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum observed value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at the `num/den` quantile (e.g. 1/2 for p50, 99/100 for
    /// p99): the upper bound of the bucket where the cumulative count
    /// reaches the rank, or the exact maximum if that is the last
    /// non-empty bucket. Returns 0 for an empty histogram.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        // Rank of the requested quantile, 1-based, rounded up.
        let rank = (self.count * num).div_ceil(den);
        let rank = rank.max(1);
        let top = (0..BUCKETS).rfind(|&i| self.buckets[i] > 0).unwrap_or(0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == top { self.max } else { bucket_upper(i) };
            }
        }
        self.max
    }

    /// Summarizes the histogram as count / p50 / p99 / max.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            count: self.count,
            p50: self.quantile(1, 2),
            p99: self.quantile(99, 100),
            max: self.max,
        }
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for i in 0..BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

/// Point-in-time summary of a [`Histogram`]: count / p50 / p99 / max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Number of observations.
    pub count: u64,
    /// Median latency (bucket upper bound, exact max in the top bucket).
    pub p50: u64,
    /// 99th-percentile latency (same bucket semantics).
    pub p99: u64,
    /// Exact maximum observed latency.
    pub max: u64,
}

/// A structured protocol event, stamped with virtual time and a causal
/// trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Virtual time (ticks) when the event happened.
    pub at: u64,
    /// Causal trace id linking this event to the operation that caused it
    /// (0 = background traffic with no originating operation).
    pub trace: u64,
    /// The node the event happened on.
    pub node: Key,
    /// What happened.
    pub kind: ObsEventKind,
}

/// The kinds of structured events protocol machines emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEventKind {
    /// A wire frame was handed to the transport.
    Send {
        /// Destination key.
        to: Key,
        /// Wire-message tag name (static, from the codec).
        tag: &'static str,
        /// The frame's message id.
        msg_id: u64,
    },
    /// An expected acknowledgement arrived.
    Ack {
        /// The acknowledging peer.
        from: Key,
        /// The message id being acknowledged.
        msg_id: u64,
    },
    /// A retry/acknowledgement timer expired without the awaited reply.
    Timeout {
        /// What timed out (static timer kind name).
        what: &'static str,
        /// Retry attempt number that just failed (1-based).
        attempt: u32,
    },
    /// The local failure detector moved a peer into suspicion.
    Suspect {
        /// The suspected peer.
        peer: Key,
        /// The incarnation the suspicion is against.
        incarnation: u64,
    },
    /// A node refuted its own rumored death with a fresher incarnation.
    Refute {
        /// The refuting (fresher) incarnation.
        incarnation: u64,
    },
    /// A route reached its target.
    RouteDelivered {
        /// The route id (origin's message id for the route).
        route_id: u64,
    },
    /// A route was abandoned after exhausting retries.
    RouteFailed {
        /// The route id.
        route_id: u64,
    },
    /// An address-resolution (`_discovery`) session started.
    DiscoveryStart {
        /// The subject whose address is being resolved.
        subject: Key,
    },
    /// A `_discovery` session resolved the subject's address.
    DiscoveryResolved {
        /// The resolved subject.
        subject: Key,
        /// Virtual-time ticks from session start to resolution.
        elapsed: u64,
    },
    /// A `_discovery` session gave up without an address.
    DiscoveryFailed {
        /// The unresolved subject.
        subject: Key,
        /// Virtual-time ticks from session start to abandonment.
        elapsed: u64,
    },
    /// A received frame failed authentication (forged, replayed, or
    /// unsigned where a signature was required).
    AuthReject {
        /// The envelope's claimed sender.
        from: Key,
        /// Wire-message tag name of the rejected frame.
        tag: &'static str,
        /// Why verification failed (static reason name).
        reason: &'static str,
        /// Whether the frame was dropped (enforce) or merely logged.
        dropped: bool,
    },
}

impl ObsEventKind {
    /// Short static name of the event kind, for traces and reports.
    pub const fn name(&self) -> &'static str {
        match self {
            ObsEventKind::Send { .. } => "send",
            ObsEventKind::Ack { .. } => "ack",
            ObsEventKind::Timeout { .. } => "timeout",
            ObsEventKind::Suspect { .. } => "suspect",
            ObsEventKind::Refute { .. } => "refute",
            ObsEventKind::RouteDelivered { .. } => "route_delivered",
            ObsEventKind::RouteFailed { .. } => "route_failed",
            ObsEventKind::DiscoveryStart { .. } => "discovery_start",
            ObsEventKind::DiscoveryResolved { .. } => "discovery_resolved",
            ObsEventKind::DiscoveryFailed { .. } => "discovery_failed",
            ObsEventKind::AuthReject { .. } => "auth_reject",
        }
    }
}

/// Anything that accepts structured protocol events.
///
/// Protocol code emits through this trait so it never knows (or cares)
/// whether events land in a flight recorder, a test assertion, or nowhere.
pub trait EventSink {
    /// Accepts one event.
    fn record(&mut self, event: ObsEvent);
}

/// A bounded ring buffer of the most recent [`ObsEvent`]s.
///
/// When full, the oldest event is overwritten and `dropped` counts how
/// many were lost — post-mortems see the *end* of the story, which is the
/// part that explains a failure.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<ObsEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (capacity ≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs capacity >= 1");
        FlightRecorder {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// The retained events that carry the given trace id, oldest first.
    pub fn trace(&self, trace: u64) -> Vec<ObsEvent> {
        self.events().into_iter().filter(|e| e.trace == trace).collect()
    }
}

impl EventSink for FlightRecorder {
    fn record(&mut self, event: ObsEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // 0 is its own bucket; 1 starts bucket 1; each power of two opens
        // a new bucket; u64::MAX lands in the last one.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for i in 1..64 {
            let p = 1u64 << i;
            assert_eq!(bucket_of(p - 1), i, "below 2^{i}");
            assert_eq!(bucket_of(p), i + 1, "at 2^{i}");
        }
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), Snapshot { count: 0, p50: 0, p99: 0, max: 0 });
    }

    #[test]
    fn single_value_snapshot_is_exact() {
        let mut h = Histogram::new();
        h.record(37);
        let s = h.snapshot();
        // 37 is alone in the top non-empty bucket, so quantiles are exact.
        assert_eq!(s, Snapshot { count: 1, p50: 37, p99: 37, max: 37 });
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, u64::MAX);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn quantiles_use_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in [3, 3, 3, 3, 3, 3, 3, 3, 3, 200] {
            h.record(v);
        }
        // p50 rank 5 falls in bucket [2,4) → upper bound 3 (exact here).
        assert_eq!(h.quantile(1, 2), 3);
        // p99 rank 10 falls in the top bucket → exact max.
        assert_eq!(h.quantile(99, 100), 200);
        assert_eq!(h.max(), 200);
    }

    #[test]
    fn powers_of_two_separate() {
        let mut h = Histogram::new();
        h.record(4); // bucket [4,8)
        h.record(7); // same bucket
        h.record(8); // next bucket
        assert_eq!(h.count(), 3);
        // Median (rank 2) in bucket [4,8) → upper bound 7.
        assert_eq!(h.quantile(1, 2), 7);
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn flight_recorder_keeps_latest_and_counts_dropped() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(ObsEvent {
                at: i,
                trace: 7,
                node: Key(1),
                kind: ObsEventKind::RouteDelivered { route_id: i },
            });
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let at: Vec<u64> = fr.events().iter().map(|e| e.at).collect();
        assert_eq!(at, vec![2, 3, 4]);
    }

    #[test]
    fn trace_filter_selects_by_id() {
        let mut fr = FlightRecorder::new(8);
        for (i, tr) in [(0u64, 1u64), (1, 2), (2, 1)] {
            fr.record(ObsEvent {
                at: i,
                trace: tr,
                node: Key(9),
                kind: ObsEventKind::DiscoveryStart { subject: Key(4) },
            });
        }
        let t1 = fr.trace(1);
        assert_eq!(t1.len(), 2);
        assert!(t1.iter().all(|e| e.trace == 1));
    }
}
