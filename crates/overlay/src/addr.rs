//! Network addresses and state-pairs.
//!
//! The paper's central data structure is the *state-pair* `<hash key,
//! network address>`: one row of a peer's routing state. The network
//! address "allows the local node to communicate with that node directly";
//! when a node moves, every remembered copy of its address becomes invalid.
//!
//! In the simulator a network address is the host's identity plus the
//! attachment it had when the address was learned. The address is *valid*
//! iff the host's attachment epoch still matches — the moral equivalent of
//! an IP address that still routes to the host.

use bristle_netsim::attach::{Attachment, AttachmentMap, HostId};
use bristle_netsim::graph::RouterId;

use crate::key::Key;

/// A concrete network address: which host, attached where, as of when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetAddr {
    /// The host this address names.
    pub host: HostId,
    /// Attachment point and epoch at the time the address was learned.
    pub attachment: Attachment,
}

impl NetAddr {
    /// Builds an address from a host's *current* attachment.
    pub fn current(host: HostId, attachments: &AttachmentMap) -> NetAddr {
        NetAddr { host, attachment: attachments.current(host) }
    }

    /// The router this address points at.
    pub fn router(&self) -> RouterId {
        self.attachment.router
    }

    /// Whether the address still reaches the host (the host has not moved
    /// since the address was learned).
    pub fn is_valid(&self, attachments: &AttachmentMap) -> bool {
        attachments.is_current(self.host, self.attachment)
    }
}

/// One routing-state row: `<key, addr>` as in the paper (§1).
///
/// `addr == None` is the paper's "null" address — the key of a known peer
/// whose network address has not been resolved (or has been invalidated
/// and cleared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatePair {
    /// The peer's hash key.
    pub key: Key,
    /// The peer's network address, if resolved.
    pub addr: Option<NetAddr>,
}

impl StatePair {
    /// A state-pair with a resolved address.
    pub fn resolved(key: Key, addr: NetAddr) -> StatePair {
        StatePair { key, addr: Some(addr) }
    }

    /// A state-pair whose address is not (yet) known.
    pub fn unresolved(key: Key) -> StatePair {
        StatePair { key, addr: None }
    }

    /// Whether the pair currently lets us *reach* the peer: the address is
    /// present and still valid.
    pub fn is_reachable(&self, attachments: &AttachmentMap) -> bool {
        self.addr.is_some_and(|a| a.is_valid(attachments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_netsim::graph::RouterId;

    #[test]
    fn address_validity_tracks_movement() {
        let mut map = AttachmentMap::new();
        let h = map.attach_new(RouterId(3));
        let addr = NetAddr::current(h, &map);
        assert!(addr.is_valid(&map));
        assert_eq!(addr.router(), RouterId(3));
        map.move_host(h, RouterId(4));
        assert!(!addr.is_valid(&map), "moving invalidates old addresses");
        let fresh = NetAddr::current(h, &map);
        assert!(fresh.is_valid(&map));
        assert_eq!(fresh.router(), RouterId(4));
    }

    #[test]
    fn state_pair_reachability() {
        let mut map = AttachmentMap::new();
        let h = map.attach_new(RouterId(0));
        let pair = StatePair::resolved(Key(1), NetAddr::current(h, &map));
        assert!(pair.is_reachable(&map));
        let null = StatePair::unresolved(Key(1));
        assert!(!null.is_reachable(&map), "null address is unreachable");
        map.move_host(h, RouterId(1));
        assert!(!pair.is_reachable(&map));
    }
}
