//! The hash key space: a ring of 2^64 positions.
//!
//! Every peer and data item in an HS-P2P is named by a hash key drawn from
//! a circular identifier space of size ρ (here ρ = 2^64, arithmetic is
//! plain `u64` wrapping). Routing approaches a target key *clockwise*
//! (increasing key order, wrapping at ρ), which is the property the paper's
//! §3 clustered-naming analysis relies on.
//!
//! Keys are also viewed as strings of base-2^b digits (default b = 2, base
//! 4) for digit-correcting finger tables, giving O(log_b N) route lengths
//! that match the magnitudes reported in the paper's Fig. 7.

use bristle_netsim::rng::Pcg64;

/// A position on the 2^64 identifier ring.
///
/// # Examples
///
/// ```
/// use bristle_overlay::key::Key;
///
/// let a = Key(10);
/// let b = Key(4);
/// // Clockwise distance wraps; ring distance takes the shorter way.
/// assert_eq!(a.clockwise_to(b), u64::MAX - 5);
/// assert_eq!(a.ring_distance(b), 6);
/// // Keys can be derived from names.
/// assert_eq!(Key::hash_of(b"item"), Key::hash_of(b"item"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Key(pub u64);

/// Size of the key space as a floating-point value (for ∇-style ratios).
pub const RING_SIZE_F64: f64 = 18_446_744_073_709_551_616.0; // 2^64

impl Key {
    /// The zero key.
    pub const ZERO: Key = Key(0);
    /// The maximum key (ρ − 1).
    pub const MAX: Key = Key(u64::MAX);

    /// Draws a uniformly random key.
    #[inline]
    pub fn random(rng: &mut Pcg64) -> Key {
        Key(rng.next_u64())
    }

    /// Hashes an arbitrary byte string onto the ring (FNV-1a — the sim
    /// stand-in for the paper's SHA-1; uniformity is all that matters).
    pub fn hash_of(bytes: &[u8]) -> Key {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Final avalanche (splitmix64) to decorrelate short inputs.
        let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Key(z ^ (z >> 31))
    }

    /// Clockwise (increasing, wrapping) distance from `self` to `other`.
    ///
    /// `a.clockwise_to(a) == 0`.
    #[inline]
    pub fn clockwise_to(self, other: Key) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Ring distance: the shorter way around.
    #[inline]
    pub fn ring_distance(self, other: Key) -> u64 {
        let cw = self.clockwise_to(other);
        cw.min(cw.wrapping_neg())
    }

    /// The key at clockwise offset `delta` from `self`.
    #[inline]
    pub fn offset(self, delta: u64) -> Key {
        Key(self.0.wrapping_add(delta))
    }

    /// Whether `x` lies in the clockwise-open interval `(self, end]`.
    ///
    /// Degenerate case: when `self == end` the interval is the whole ring
    /// minus nothing — we treat it as containing every `x != self` plus
    /// `end` itself (full ring), matching successor semantics on a
    /// single-node ring.
    #[inline]
    pub fn in_cw_range(self, x: Key, end: Key) -> bool {
        if self == end {
            return true;
        }
        let to_x = self.clockwise_to(x);
        let to_end = self.clockwise_to(end);
        to_x != 0 && to_x <= to_end
    }

    /// Digit `level` of the key in base `2^bits`, counting level 0 as the
    /// *least significant* digit.
    #[inline]
    pub fn digit(self, level: u32, bits: u32) -> u64 {
        debug_assert!((1..=32).contains(&bits));
        let shift = level * bits;
        if shift >= 64 {
            return 0;
        }
        (self.0 >> shift) & ((1u64 << bits) - 1)
    }

    /// Number of digit levels in the key space for the given digit width.
    #[inline]
    pub fn levels(bits: u32) -> u32 {
        64u32.div_ceil(bits)
    }

    /// Fraction of the ring covered walking clockwise from `self` to
    /// `other`, in `[0, 1)`.
    pub fn clockwise_fraction(self, other: Key) -> f64 {
        self.clockwise_to(other) as f64 / RING_SIZE_F64
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clockwise_distance_basics() {
        assert_eq!(Key(5).clockwise_to(Key(9)), 4);
        assert_eq!(Key(9).clockwise_to(Key(5)), u64::MAX - 3); // wraps
        assert_eq!(Key(7).clockwise_to(Key(7)), 0);
    }

    #[test]
    fn ring_distance_symmetric_and_short() {
        assert_eq!(Key(0).ring_distance(Key(10)), 10);
        assert_eq!(Key(10).ring_distance(Key(0)), 10);
        assert_eq!(Key(u64::MAX).ring_distance(Key(0)), 1);
        assert_eq!(Key(0).ring_distance(Key(u64::MAX)), 1);
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(Key(u64::MAX).offset(1), Key(0));
        assert_eq!(Key(3).offset(0), Key(3));
    }

    #[test]
    fn cw_range_membership() {
        // (2, 8] on a small stretch.
        assert!(Key(2).in_cw_range(Key(3), Key(8)));
        assert!(Key(2).in_cw_range(Key(8), Key(8)));
        assert!(!Key(2).in_cw_range(Key(2), Key(8)), "open at start");
        assert!(!Key(2).in_cw_range(Key(9), Key(8)));
        // Wrapping interval (max-1, 1].
        let a = Key(u64::MAX - 1);
        assert!(a.in_cw_range(Key(u64::MAX), Key(1)));
        assert!(a.in_cw_range(Key(0), Key(1)));
        assert!(!a.in_cw_range(Key(2), Key(1)));
    }

    #[test]
    fn cw_range_full_ring_degenerate() {
        assert!(Key(4).in_cw_range(Key(9), Key(4)));
        assert!(Key(4).in_cw_range(Key(4), Key(4)));
    }

    #[test]
    fn digits_roundtrip() {
        let k = Key(0b11_10_01_00);
        assert_eq!(k.digit(0, 2), 0b00);
        assert_eq!(k.digit(1, 2), 0b01);
        assert_eq!(k.digit(2, 2), 0b10);
        assert_eq!(k.digit(3, 2), 0b11);
        assert_eq!(k.digit(31, 2), 0);
        assert_eq!(k.digit(99, 2), 0, "beyond the top is zero");
    }

    #[test]
    fn digit_reconstruction() {
        let k = Key(0xdead_beef_cafe_f00d);
        for bits in [1u32, 2, 4, 8, 16] {
            let mut v: u64 = 0;
            for level in (0..Key::levels(bits)).rev() {
                v = (v << bits) | k.digit(level, bits);
            }
            assert_eq!(v, k.0, "bits {bits}");
        }
    }

    #[test]
    fn levels_rounding() {
        assert_eq!(Key::levels(1), 64);
        assert_eq!(Key::levels(2), 32);
        assert_eq!(Key::levels(3), 22); // ceil(64/3)
        assert_eq!(Key::levels(4), 16);
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        let a = Key::hash_of(b"node-1");
        let b = Key::hash_of(b"node-1");
        let c = Key::hash_of(b"node-2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Short sequential inputs should land far apart after avalanche.
        assert!(a.ring_distance(c) > 1 << 32);
    }

    #[test]
    fn random_keys_cover_both_halves() {
        let mut rng = Pcg64::seed_from_u64(1);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            if Key::random(&mut rng).0 < u64::MAX / 2 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 400 && hi > 400, "lo {lo} hi {hi}");
    }

    #[test]
    fn clockwise_fraction_sane() {
        let half = Key(0).clockwise_fraction(Key(u64::MAX / 2 + 1));
        assert!((half - 0.5).abs() < 1e-9, "{half}");
        assert_eq!(Key(7).clockwise_fraction(Key(7)), 0.0);
    }
}
