//! Message and cost accounting.
//!
//! Every protocol operation in the stack reports what it sent through a
//! [`Meter`], so experiments can answer the paper's overhead questions
//! (registrations issued, update messages, discovery traffic, ...) without
//! the protocols knowing which experiment is running.

/// Declares [`MessageKind`] together with everything derived from the
/// variant list ([`KIND_COUNT`], [`ALL_KINDS`], [`MessageKind::name`]), so
/// the variant list is the single source of truth: adding a kind here is
/// the whole change, and a forgotten spot is a compile error rather than a
/// silent miscount.
macro_rules! message_kinds {
    ($( $(#[$doc:meta])* $name:ident, )+) => {
        /// Category of a protocol message, following the paper's vocabulary.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum MessageKind {
            $( $(#[$doc])* $name, )+
        }

        /// Number of [`MessageKind`] variants (derived from the list).
        pub const KIND_COUNT: usize = ALL_KINDS.len();

        /// All message kinds in declaration order, for iteration in reports.
        pub const ALL_KINDS: [MessageKind; [$(MessageKind::$name),+].len()] =
            [$(MessageKind::$name),+];

        impl MessageKind {
            /// The variant's name, for machine-readable reports.
            pub const fn name(self) -> &'static str {
                match self {
                    $( MessageKind::$name => stringify!($name), )+
                }
            }
        }
    };
}

message_kinds! {
    /// One application-level forwarding hop of a route.
    RouteHop,
    /// A `_discovery` query hop in the stationary layer (address resolution).
    DiscoveryHop,
    /// A registration (`register`) from an interested node to a target.
    Register,
    /// A location update pushed along an LDT edge (`update`).
    Update,
    /// A state publication to the location-management layer.
    Publish,
    /// Join-protocol traffic (Fig. 5).
    Join,
    /// Leave notifications.
    Leave,
    /// Periodic state refresh.
    Refresh,
    /// Data replication between replicas.
    Replicate,
    /// A `_discovery` re-issued after the previous attempt timed out
    /// (message-passing mode only; the function-call path never retries).
    DiscoveryRetry,
    /// A protocol timer expiring without the awaited acknowledgement
    /// (counts timeouts, not messages; cost is always zero).
    Timeout,
    /// A failure-detector heartbeat probe (including retransmissions).
    HeartbeatSent,
    /// A monitored peer transitioned into suspicion after missing
    /// heartbeats (counts transitions, not messages; cost is zero).
    SuspectRaised,
    /// A location dissemination tree re-grafted after a member was
    /// confirmed dead (counts repairs, not messages; cost is zero).
    LdtRepair,
    /// A `_discovery` answered by a surviving replica instead of the
    /// record's primary owner (counts failovers, not messages).
    ReplicaFailover,
    /// An `Alive` refutation broadcast by (or on behalf of) a node that
    /// learned it was wrongfully declared dead.
    Refutation,
    /// Rejoin-protocol traffic: a resurrected node asking a live sponsor
    /// to reverse its funeral.
    Rejoin,
    /// A death verdict reversed by a fresher incarnation (counts
    /// wrongful deaths, not messages; cost is always zero).
    WrongfulDeath,
    /// A frame that failed authentication (missing, mismatched or stale
    /// tag) under any `VerifyPolicy` other than off (counts failures,
    /// not messages; cost is always zero).
    ForgedFrame,
    /// A frame *dropped* for failing authentication under the enforcing
    /// policy — the subset of `ForgedFrame` that never touched state.
    AuthReject,
    /// A retransmission of a frame the destination had already
    /// processed — wasted work caused by a too-short retry timeout
    /// (counts retransmits, not messages; cost is always zero).
    SpuriousRetry,
    /// A lookup-class frame shed at a full ingress queue under
    /// overload (counts sheds, not messages; cost is always zero).
    LoadShed,
    /// A datagram dropped at the socket boundary before reaching any
    /// machine: oversized, truncated, or otherwise undecodable bytes
    /// (counts drops, not messages; cost is always zero). Only the real
    /// network driver can produce these — `SimTransport` deliveries are
    /// typed envelopes that never hit the codec.
    MalformedFrame,
}

/// The meter index of a kind is its discriminant; `ALL_KINDS` is in
/// declaration order, so this holds by construction and the compile-time
/// check below pins it.
#[inline]
fn kind_index(k: MessageKind) -> usize {
    k as usize
}

// Compile-time exhaustiveness check: every kind's index is its position in
// ALL_KINDS, i.e. the discriminant-based index covers [0, KIND_COUNT).
const _: () = {
    let mut i = 0;
    while i < KIND_COUNT {
        assert!(ALL_KINDS[i] as usize == i);
        i += 1;
    }
};

/// Tallies message counts and physical path cost by message kind.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    counts: [u64; KIND_COUNT],
    costs: [u64; KIND_COUNT],
}

impl Meter {
    /// A fresh, zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message of the given kind with a physical path cost.
    #[inline]
    pub fn record(&mut self, kind: MessageKind, cost: u64) {
        let i = kind_index(kind);
        self.counts[i] += 1;
        self.costs[i] += cost;
    }

    /// Records `n` messages of a kind with zero path cost (pure counting).
    #[inline]
    pub fn bump(&mut self, kind: MessageKind, n: u64) {
        self.counts[kind_index(kind)] += n;
    }

    /// Message count for a kind.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.counts[kind_index(kind)]
    }

    /// Accumulated physical cost for a kind.
    pub fn cost(&self, kind: MessageKind) -> u64 {
        self.costs[kind_index(kind)]
    }

    /// Total messages across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total physical cost across all kinds.
    pub fn total_cost(&self) -> u64 {
        self.costs.iter().sum()
    }

    /// Adds another meter into this one.
    pub fn merge(&mut self, other: &Meter) {
        for i in 0..KIND_COUNT {
            self.counts[i] += other.counts[i];
            self.costs[i] += other.costs[i];
        }
    }

    /// Resets all tallies to zero.
    pub fn reset(&mut self) {
        *self = Meter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut m = Meter::new();
        m.record(MessageKind::RouteHop, 10);
        m.record(MessageKind::RouteHop, 5);
        m.record(MessageKind::Register, 1);
        assert_eq!(m.count(MessageKind::RouteHop), 2);
        assert_eq!(m.cost(MessageKind::RouteHop), 15);
        assert_eq!(m.count(MessageKind::Register), 1);
        assert_eq!(m.count(MessageKind::Update), 0);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_cost(), 16);
    }

    #[test]
    fn bump_counts_without_cost() {
        let mut m = Meter::new();
        m.bump(MessageKind::Publish, 7);
        assert_eq!(m.count(MessageKind::Publish), 7);
        assert_eq!(m.cost(MessageKind::Publish), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Meter::new();
        let mut b = Meter::new();
        a.record(MessageKind::Join, 3);
        b.record(MessageKind::Join, 4);
        b.record(MessageKind::Leave, 1);
        a.merge(&b);
        assert_eq!(a.count(MessageKind::Join), 2);
        assert_eq!(a.cost(MessageKind::Join), 7);
        assert_eq!(a.count(MessageKind::Leave), 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut m = Meter::new();
        m.record(MessageKind::Refresh, 9);
        m.reset();
        assert_eq!(m.total_messages(), 0);
        assert_eq!(m.total_cost(), 0);
    }

    #[test]
    fn all_kinds_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for k in ALL_KINDS {
            assert!(seen.insert(kind_index(k)));
        }
        assert_eq!(seen.len(), KIND_COUNT);
    }

    #[test]
    fn names_match_variants_and_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for k in ALL_KINDS {
            assert_eq!(k.name(), format!("{k:?}"));
            assert!(seen.insert(k.name()));
        }
        assert_eq!(seen.len(), KIND_COUNT);
    }
}
