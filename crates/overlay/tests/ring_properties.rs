//! Property-style tests of the ring DHT over arbitrary populations.
//!
//! The always-on tests drive each invariant with seeded [`Pcg64`]
//! sampling (offline-safe). The original `proptest` versions live in the
//! gated module at the bottom; enabling the `proptest` feature requires
//! restoring the proptest dev-dependency.

use std::sync::Arc;

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::graph::{Graph, RouterId};
use bristle_netsim::rng::Pcg64;
use bristle_overlay::config::{NeighborSelection, RingConfig};
use bristle_overlay::key::Key;
use bristle_overlay::meter::Meter;
use bristle_overlay::ring::RingDht;

/// Builds an overlay from an arbitrary key set (flat physical network).
fn overlay_of(keys: &[u64], bits: u32) -> (RingDht<u32>, AttachmentMap, DistanceCache) {
    let mut g = Graph::with_vertices(2);
    g.add_edge(RouterId(0), RouterId(1), 1);
    let dcache = DistanceCache::new(Arc::new(g), 4);
    let mut attachments = AttachmentMap::new();
    let cfg = RingConfig {
        bits_per_digit: bits,
        leaf_radius: 3,
        candidate_window: 2,
        selection: NeighborSelection::First,
    };
    let mut dht = RingDht::new(cfg);
    for &k in keys {
        let host = attachments.attach_new(RouterId(0));
        let _ = dht.insert(Key(k), host, 1); // duplicates silently dropped
    }
    let mut rng = Pcg64::seed_from_u64(1);
    dht.build_all_tables(&attachments, &dcache, &mut rng);
    (dht, attachments, dcache)
}

fn random_keys(rng: &mut Pcg64) -> Vec<u64> {
    let n = 1 + rng.index(79);
    (0..n).map(|_| rng.next_u64()).collect()
}

#[test]
fn owner_is_clockwise_closest_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xB1);
    for _ in 0..48 {
        let keys = random_keys(&mut rng);
        let probe = rng.next_u64();
        let (dht, _, _) = overlay_of(&keys, 2);
        let owner = dht.owner(Key(probe)).unwrap();
        // No other node lies strictly between the probe and its owner.
        let gap = Key(probe).clockwise_to(owner);
        for k in dht.keys() {
            if k != owner {
                assert!(Key(probe).clockwise_to(k) > gap, "{k} closer than owner {owner}");
            }
        }
    }
}

#[test]
fn routes_terminate_at_owner_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xB2);
    for _ in 0..48 {
        let keys = random_keys(&mut rng);
        let probe = rng.next_u64();
        let bits = rng.range_inclusive(1, 4) as u32;
        let (dht, attachments, dcache) = overlay_of(&keys, bits);
        let all: Vec<Key> = dht.keys().collect();
        let src = all[rng.index(all.len())];
        let mut meter = Meter::new();
        let route = dht.route(src, Key(probe), &attachments, &dcache, &mut meter).unwrap();
        assert_eq!(route.terminus(), dht.owner(Key(probe)).unwrap());
        // Route length bounded by population (monotone ⇒ no revisits).
        assert!(route.hop_count() <= all.len());
        // No node visited twice.
        let mut seen = std::collections::HashSet::new();
        seen.insert(src);
        for h in &route.hops {
            assert!(seen.insert(*h), "revisit of {h}");
        }
    }
}

#[test]
fn replica_sets_are_prefix_closed_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xB3);
    for _ in 0..48 {
        let keys = random_keys(&mut rng);
        let probe = rng.next_u64();
        let k1 = 1 + rng.index(4);
        let k2 = 1 + rng.index(4);
        let (dht, _, _) = overlay_of(&keys, 2);
        let (small, large) = (k1.min(k2), k1.max(k2));
        let a = dht.replica_set(Key(probe), small).unwrap();
        let b = dht.replica_set(Key(probe), large).unwrap();
        assert_eq!(&b[..a.len()], &a[..], "smaller set is a prefix of the larger");
        let mut dedup = b.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), b.len(), "replica set has no duplicates");
    }
}

#[test]
fn leaf_sets_contain_true_neighbors_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xB4);
    for _ in 0..48 {
        let keys = random_keys(&mut rng);
        let (dht, _, _) = overlay_of(&keys, 2);
        if dht.len() < 2 {
            continue;
        }
        for node in dht.iter() {
            let succ = dht.successor_of(node.key.offset(1)).unwrap();
            let pred = dht.predecessor_of(node.key).unwrap();
            assert!(node.leaf_keys.contains(&succ), "{} missing successor", node.key);
            assert!(node.leaf_keys.contains(&pred), "{} missing predecessor", node.key);
        }
    }
}

#[test]
fn reverse_index_total_matches_forward_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xB5);
    for _ in 0..48 {
        let keys = random_keys(&mut rng);
        let (dht, _, _) = overlay_of(&keys, 2);
        let rev = dht.reverse_index();
        let total: usize = rev.values().map(Vec::len).sum();
        assert_eq!(total, dht.total_state());
    }
}

#[test]
fn redundant_route_dominates_single_path_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xB6);
    for _ in 0..48 {
        let keys = random_keys(&mut rng);
        let probe = rng.next_u64();
        let (dht, _, _) = overlay_of(&keys, 2);
        let all: Vec<Key> = dht.keys().collect();
        let src = all[rng.index(all.len())];
        let mut meter = Meter::new();
        let narrow = dht.route_redundant(src, Key(probe), 1, |_| true, &mut meter).unwrap();
        let wide = dht.route_redundant(src, Key(probe), 3, |_| true, &mut meter).unwrap();
        assert!(narrow.delivered, "healthy overlay always delivers");
        assert!(wide.delivered);
        // Wider never takes more hops to first success.
        assert!(wide.winning_hops.unwrap() <= narrow.winning_hops.unwrap());
    }
}

#[cfg(feature = "proptest")]
mod proptest_based {
    use super::*;
    use proptest::prelude::*;

    fn key_set() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(any::<u64>(), 1..80)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn owner_is_clockwise_closest(keys in key_set(), probe: u64) {
            let (dht, _, _) = overlay_of(&keys, 2);
            let owner = dht.owner(Key(probe)).unwrap();
            // No other node lies strictly between the probe and its owner.
            let gap = Key(probe).clockwise_to(owner);
            for k in dht.keys() {
                if k != owner {
                    prop_assert!(Key(probe).clockwise_to(k) > gap, "{} closer than owner {}", k, owner);
                }
            }
        }

        #[test]
        fn routes_terminate_at_owner(keys in key_set(), probe: u64, src_idx: usize, bits in 1u32..=4) {
            let (dht, attachments, dcache) = overlay_of(&keys, bits);
            let all: Vec<Key> = dht.keys().collect();
            let src = all[src_idx % all.len()];
            let mut meter = Meter::new();
            let route = dht.route(src, Key(probe), &attachments, &dcache, &mut meter).unwrap();
            prop_assert_eq!(route.terminus(), dht.owner(Key(probe)).unwrap());
            // Route length bounded by population (monotone ⇒ no revisits).
            prop_assert!(route.hop_count() <= all.len());
            // No node visited twice.
            let mut seen = std::collections::HashSet::new();
            seen.insert(src);
            for h in &route.hops {
                prop_assert!(seen.insert(*h), "revisit of {}", h);
            }
        }

        #[test]
        fn replica_sets_are_prefix_closed(keys in key_set(), probe: u64, k1 in 1usize..5, k2 in 1usize..5) {
            let (dht, _, _) = overlay_of(&keys, 2);
            let (small, large) = (k1.min(k2), k1.max(k2));
            let a = dht.replica_set(Key(probe), small).unwrap();
            let b = dht.replica_set(Key(probe), large).unwrap();
            prop_assert_eq!(&b[..a.len()], &a[..], "smaller set is a prefix of the larger");
            let mut dedup = b.clone();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), b.len(), "replica set has no duplicates");
        }

        #[test]
        fn leaf_sets_contain_true_neighbors(keys in key_set()) {
            let (dht, _, _) = overlay_of(&keys, 2);
            if dht.len() < 2 {
                return Ok(());
            }
            for node in dht.iter() {
                let succ = dht.successor_of(node.key.offset(1)).unwrap();
                let pred = dht.predecessor_of(node.key).unwrap();
                prop_assert!(node.leaf_keys.contains(&succ), "{} missing successor", node.key);
                prop_assert!(node.leaf_keys.contains(&pred), "{} missing predecessor", node.key);
            }
        }

        #[test]
        fn reverse_index_total_matches_forward(keys in key_set()) {
            let (dht, _, _) = overlay_of(&keys, 2);
            let rev = dht.reverse_index();
            let total: usize = rev.values().map(Vec::len).sum();
            prop_assert_eq!(total, dht.total_state());
        }

        #[test]
        fn redundant_route_dominates_single_path(keys in key_set(), probe: u64, src_idx: usize) {
            let (dht, _, _) = overlay_of(&keys, 2);
            let all: Vec<Key> = dht.keys().collect();
            let src = all[src_idx % all.len()];
            let mut meter = Meter::new();
            let narrow = dht.route_redundant(src, Key(probe), 1, |_| true, &mut meter).unwrap();
            let wide = dht.route_redundant(src, Key(probe), 3, |_| true, &mut meter).unwrap();
            prop_assert!(narrow.delivered, "healthy overlay always delivers");
            prop_assert!(wide.delivered);
            // Wider never takes more hops to first success.
            prop_assert!(wide.winning_hops.unwrap() <= narrow.winning_hops.unwrap());
        }
    }
}
