//! Property-style tests of the CAN overlay: zone tiling, ownership
//! uniqueness, routing convergence, and takeover correctness under
//! arbitrary join/leave interleavings.
//!
//! The always-on tests drive each invariant with seeded [`Pcg64`]
//! sampling (offline-safe). The original `proptest` versions live in the
//! gated module at the bottom; enabling the `proptest` feature requires
//! restoring the proptest dev-dependency.

use bristle_netsim::attach::HostId;
use bristle_netsim::rng::Pcg64;
use bristle_overlay::can::{point_of_key, CanOverlay, MAX_DIMS};
use bristle_overlay::key::Key;

/// A random interleaving of joins (true, ~70%) and leaves (false).
fn random_ops(rng: &mut Pcg64) -> Vec<bool> {
    let n = 1 + rng.index(59);
    (0..n).map(|_| rng.chance(0.7)).collect()
}

fn apply_ops(dims: usize, seed: u64, ops: &[bool]) -> CanOverlay<u32> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let mut can: CanOverlay<u32> = CanOverlay::new(dims);
    let mut members: Vec<Key> = Vec::new();
    let mut next_host = 0u32;
    for &join in ops {
        if join || members.len() <= 1 {
            let k = loop {
                let k = Key::random(&mut rng);
                if can.node(k).is_none() {
                    break k;
                }
            };
            can.join(k, HostId(next_host), &mut rng).expect("join");
            next_host += 1;
            members.push(k);
        } else {
            let idx = rng.index(members.len());
            let victim = members.swap_remove(idx);
            can.leave(victim).expect("leave");
        }
    }
    can
}

#[test]
fn torus_always_fully_tiled_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xC1);
    for _ in 0..32 {
        let dims = 1 + rng.index(3);
        let seed = rng.next_u64();
        let ops = random_ops(&mut rng);
        let can = apply_ops(dims, seed, &ops);
        assert!(can.covers_torus(), "coverage broken after {} ops", ops.len());
    }
}

#[test]
fn ownership_is_unique_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xC2);
    for _ in 0..32 {
        let dims = 1 + rng.index(3);
        let seed = rng.next_u64();
        let ops = random_ops(&mut rng);
        let can = apply_ops(dims, seed, &ops);
        let probes = 1 + rng.index(7);
        for _ in 0..probes {
            let p = point_of_key(Key(rng.next_u64()), dims);
            let owners = can.iter().filter(|n| n.zones.iter().any(|z| z.contains(&p))).count();
            assert_eq!(owners, 1, "point must have exactly one owner");
        }
    }
}

#[test]
fn routes_always_reach_the_owner_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xC3);
    for _ in 0..32 {
        let dims = 2 + rng.index(2);
        let seed = rng.next_u64();
        let ops = random_ops(&mut rng);
        let probe = rng.next_u64();
        let can = apply_ops(dims, seed, &ops);
        let members: Vec<Key> = can.iter().map(|n| n.key).collect();
        if members.is_empty() {
            continue;
        }
        let src = members[probe as usize % members.len()];
        let hops = can.route(src, Key(probe)).expect("route");
        let terminus = hops.last().copied().unwrap_or(src);
        assert_eq!(Some(terminus), can.owner(Key(probe)));
        assert!(hops.len() <= members.len(), "greedy routes never revisit");
    }
}

#[test]
fn neighbor_symmetry_holds_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xC4);
    for _ in 0..32 {
        let dims = 1 + rng.index(3);
        let seed = rng.next_u64();
        let ops = random_ops(&mut rng);
        let can = apply_ops(dims, seed, &ops);
        for n in can.iter() {
            for other in &n.neighbors {
                let back = can.node(*other).expect("neighbor exists");
                assert!(back.neighbors.contains(&n.key));
            }
        }
    }
}

#[test]
fn point_derivation_is_deterministic_and_spread_seeded() {
    let mut rng = Pcg64::seed_from_u64(0xC5);
    for _ in 0..256 {
        let key = rng.next_u64();
        let dims = 1 + rng.index(MAX_DIMS);
        let a = point_of_key(Key(key), dims);
        let b = point_of_key(Key(key), dims);
        assert_eq!(a, b);
        if dims >= 2 {
            // Coordinates decorrelate: equal coordinates are astronomically
            // unlikely for the avalanche expansion.
            assert_ne!(a[0], a[1]);
        }
    }
}

#[cfg(feature = "proptest")]
mod proptest_based {
    use super::*;
    use proptest::prelude::*;

    /// An interleaving of joins (true) and leaves (false).
    fn op_sequence() -> impl Strategy<Value = Vec<bool>> {
        prop::collection::vec(prop::bool::weighted(0.7), 1..60)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn torus_always_fully_tiled(dims in 1usize..=3, seed: u64, ops in op_sequence()) {
            let can = apply_ops(dims, seed, &ops);
            prop_assert!(can.covers_torus(), "coverage broken after {} ops", ops.len());
        }

        #[test]
        fn ownership_is_unique(dims in 1usize..=3, seed: u64, ops in op_sequence(), probes in prop::collection::vec(any::<u64>(), 1..8)) {
            let can = apply_ops(dims, seed, &ops);
            for probe in probes {
                let p = point_of_key(Key(probe), dims);
                let owners = can.iter().filter(|n| n.zones.iter().any(|z| z.contains(&p))).count();
                prop_assert_eq!(owners, 1, "point must have exactly one owner");
            }
        }

        #[test]
        fn routes_always_reach_the_owner(dims in 2usize..=3, seed: u64, ops in op_sequence(), probe: u64) {
            let can = apply_ops(dims, seed, &ops);
            let members: Vec<Key> = can.iter().map(|n| n.key).collect();
            prop_assume!(!members.is_empty());
            let src = members[probe as usize % members.len()];
            let hops = can.route(src, Key(probe)).expect("route");
            let terminus = hops.last().copied().unwrap_or(src);
            prop_assert_eq!(Some(terminus), can.owner(Key(probe)));
            prop_assert!(hops.len() <= members.len(), "greedy routes never revisit");
        }

        #[test]
        fn neighbor_symmetry_holds(dims in 1usize..=3, seed: u64, ops in op_sequence()) {
            let can = apply_ops(dims, seed, &ops);
            for n in can.iter() {
                for other in &n.neighbors {
                    let back = can.node(*other).expect("neighbor exists");
                    prop_assert!(back.neighbors.contains(&n.key));
                }
            }
        }

        #[test]
        fn point_derivation_is_deterministic_and_spread(key: u64, dims in 1usize..=MAX_DIMS) {
            let a = point_of_key(Key(key), dims);
            let b = point_of_key(Key(key), dims);
            prop_assert_eq!(a, b);
            if dims >= 2 {
                // Coordinates decorrelate: equal coordinates are astronomically
                // unlikely for the avalanche expansion.
                prop_assert_ne!(a[0], a[1]);
            }
        }
    }
}
