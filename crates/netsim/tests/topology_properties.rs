//! Property-style tests of the topology generator and shortest paths.
//!
//! The always-on tests drive each invariant with seeded [`Pcg64`]
//! sampling (offline-safe). The original `proptest` versions live in the
//! gated module at the bottom; enabling the `proptest` feature requires
//! restoring the proptest dev-dependency.

use std::sync::Arc;

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::{single_source, DistanceCache, UNREACHABLE};
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::{RouterKind, TransitStubConfig, TransitStubTopology};

fn random_config(rng: &mut Pcg64) -> TransitStubConfig {
    TransitStubConfig {
        transit_domains: rng.range_inclusive(1, 3) as usize,
        routers_per_transit: rng.range_inclusive(1, 3) as usize,
        stubs_per_transit_router: rng.range_inclusive(1, 3) as usize,
        routers_per_stub: rng.range_inclusive(1, 6) as usize,
        ..TransitStubConfig::tiny()
    }
}

#[test]
fn generated_topologies_always_connected_seeded() {
    let mut outer = Pcg64::seed_from_u64(0xA1);
    for _ in 0..40 {
        let cfg = random_config(&mut outer);
        let mut rng = Pcg64::seed_from_u64(outer.next_u64());
        let topo = TransitStubTopology::generate(&cfg, &mut rng);
        assert_eq!(topo.router_count(), cfg.total_routers());
        assert!(topo.graph().is_connected());
        let d = single_source(topo.graph(), bristle_netsim::graph::RouterId(0));
        assert!(d.iter().all(|&x| x != UNREACHABLE));
    }
}

#[test]
fn stub_transit_partition_is_exact_seeded() {
    let mut outer = Pcg64::seed_from_u64(0xA2);
    for _ in 0..40 {
        let cfg = random_config(&mut outer);
        let mut rng = Pcg64::seed_from_u64(outer.next_u64());
        let topo = TransitStubTopology::generate(&cfg, &mut rng);
        let transit_expected = cfg.transit_domains * cfg.routers_per_transit;
        let stub_expected = transit_expected * cfg.stubs_per_transit_router * cfg.routers_per_stub;
        let (mut transit, mut stub) = (0, 0);
        for r in topo.graph().vertices() {
            match topo.kind(r) {
                RouterKind::Transit { .. } => transit += 1,
                RouterKind::Stub { .. } => stub += 1,
            }
        }
        assert_eq!(transit, transit_expected);
        assert_eq!(stub, stub_expected);
        assert_eq!(topo.stub_routers().len(), stub_expected);
    }
}

#[test]
fn distance_cache_always_agrees_with_dijkstra_seeded() {
    let mut outer = Pcg64::seed_from_u64(0xA3);
    for _ in 0..40 {
        let cfg = random_config(&mut outer);
        let mut rng = Pcg64::seed_from_u64(outer.next_u64());
        let topo = TransitStubTopology::generate(&cfg, &mut rng);
        let n = topo.router_count() as u32;
        let graph = Arc::new(topo.into_graph());
        let cache = DistanceCache::new(Arc::clone(&graph), 3); // tiny: force eviction
        let probes = 1 + outer.index(11);
        for _ in 0..probes {
            let a = bristle_netsim::graph::RouterId(outer.next_u64() as u32 % n);
            let b = bristle_netsim::graph::RouterId(outer.next_u64() as u32 % n);
            let expect = single_source(&graph, a)[b.index()];
            assert_eq!(cache.distance(a, b), expect);
        }
    }
}

#[test]
fn movement_epochs_strictly_increase_seeded() {
    let mut outer = Pcg64::seed_from_u64(0xA4);
    for _ in 0..40 {
        let mut rng = Pcg64::seed_from_u64(outer.next_u64());
        let moves = 1 + outer.index(19);
        let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let mut map = AttachmentMap::new();
        let h = map.attach_new(stubs[0]);
        let mut last_epoch = map.current(h).epoch;
        for _ in 0..moves {
            let a = map.move_host_random(h, &stubs, &mut rng);
            assert!(a.epoch > last_epoch);
            last_epoch = a.epoch;
        }
        assert_eq!(map.total_moves(), moves as u64);
    }
}

#[cfg(feature = "proptest")]
mod proptest_based {
    use super::*;
    use proptest::prelude::*;

    fn config_strategy() -> impl Strategy<Value = TransitStubConfig> {
        (1usize..=3, 1usize..=3, 1usize..=3, 1usize..=6).prop_map(|(td, rpt, spt, rps)| {
            TransitStubConfig {
                transit_domains: td,
                routers_per_transit: rpt,
                stubs_per_transit_router: spt,
                routers_per_stub: rps,
                ..TransitStubConfig::tiny()
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn generated_topologies_always_connected(cfg in config_strategy(), seed: u64) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let topo = TransitStubTopology::generate(&cfg, &mut rng);
            prop_assert_eq!(topo.router_count(), cfg.total_routers());
            prop_assert!(topo.graph().is_connected());
            // Every stub router is reachable from router 0 with finite cost.
            let d = single_source(topo.graph(), bristle_netsim::graph::RouterId(0));
            prop_assert!(d.iter().all(|&x| x != UNREACHABLE));
        }

        #[test]
        fn stub_transit_partition_is_exact(cfg in config_strategy(), seed: u64) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let topo = TransitStubTopology::generate(&cfg, &mut rng);
            let transit_expected = cfg.transit_domains * cfg.routers_per_transit;
            let stub_expected = transit_expected * cfg.stubs_per_transit_router * cfg.routers_per_stub;
            let (mut transit, mut stub) = (0, 0);
            for r in topo.graph().vertices() {
                match topo.kind(r) {
                    RouterKind::Transit { .. } => transit += 1,
                    RouterKind::Stub { .. } => stub += 1,
                }
            }
            prop_assert_eq!(transit, transit_expected);
            prop_assert_eq!(stub, stub_expected);
            prop_assert_eq!(topo.stub_routers().len(), stub_expected);
        }

        #[test]
        fn distance_cache_always_agrees_with_dijkstra(cfg in config_strategy(), seed: u64, probes in prop::collection::vec((any::<u32>(), any::<u32>()), 1..12)) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let topo = TransitStubTopology::generate(&cfg, &mut rng);
            let n = topo.router_count() as u32;
            let graph = Arc::new(topo.into_graph());
            let cache = DistanceCache::new(Arc::clone(&graph), 3); // tiny: force eviction
            for (a, b) in probes {
                let (a, b) = (bristle_netsim::graph::RouterId(a % n), bristle_netsim::graph::RouterId(b % n));
                let expect = single_source(&graph, a)[b.index()];
                prop_assert_eq!(cache.distance(a, b), expect);
            }
        }

        #[test]
        fn movement_epochs_strictly_increase(seed: u64, moves in 1usize..20) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let topo = TransitStubTopology::generate(&TransitStubConfig::tiny(), &mut rng);
            let stubs = topo.stub_routers().to_vec();
            let mut map = AttachmentMap::new();
            let h = map.attach_new(stubs[0]);
            let mut last_epoch = map.current(h).epoch;
            for _ in 0..moves {
                let a = map.move_host_random(h, &stubs, &mut rng);
                prop_assert!(a.epoch > last_epoch);
                last_epoch = a.epoch;
            }
            prop_assert_eq!(map.total_moves(), moves as u64);
        }
    }
}
