//! Waxman random topologies (Waxman, JSAC 1988).
//!
//! GT-ITM builds each of its domains from Waxman-style random graphs; the
//! flat Waxman model is also the classic "second opinion" topology in
//! overlay evaluations. Routers are placed uniformly in a unit square and
//! each pair is connected with probability
//!
//! ```text
//! P(u, v) = alpha * exp(-d(u, v) / (beta * L))
//! ```
//!
//! where `d` is Euclidean distance and `L` the maximum possible distance.
//! Link weights are proportional to the Euclidean distance, so physical
//! proximity is meaningful — which is what the locality experiments need
//! when re-run on this family (see `tests/` for the robustness check).

use crate::graph::{Graph, RouterId, Weight};
use crate::rng::Pcg64;

/// Parameters of the Waxman generator.
#[derive(Debug, Clone)]
pub struct WaxmanConfig {
    /// Number of routers.
    pub routers: usize,
    /// Edge-probability scale α ∈ (0, 1].
    pub alpha: f64,
    /// Distance decay β ∈ (0, 1]; larger → more long links.
    pub beta: f64,
    /// Weight assigned to a link of maximal length; shorter links scale
    /// down proportionally (minimum 1).
    pub max_link_weight: Weight,
}

impl WaxmanConfig {
    /// A 400-router topology with the customary α = 0.15, β = 0.2.
    pub fn small() -> Self {
        WaxmanConfig { routers: 400, alpha: 0.15, beta: 0.2, max_link_weight: 100 }
    }

    /// A tiny topology for unit tests.
    pub fn tiny() -> Self {
        WaxmanConfig { routers: 60, ..Self::small() }
    }

    fn validate(&self) {
        assert!(self.routers >= 2, "need at least two routers");
        assert!(self.alpha > 0.0 && self.alpha <= 1.0, "alpha out of (0, 1]");
        assert!(self.beta > 0.0 && self.beta <= 1.0, "beta out of (0, 1]");
        assert!(self.max_link_weight >= 1, "weights must be positive");
    }
}

/// A generated Waxman topology: the graph plus router coordinates.
#[derive(Debug, Clone)]
pub struct WaxmanTopology {
    graph: Graph,
    positions: Vec<(f64, f64)>,
}

impl WaxmanTopology {
    /// Generates a connected Waxman topology. Connectivity is guaranteed
    /// by adding a nearest-unconnected-component link wherever the random
    /// process leaves islands (standard practice; the correction edges
    /// also get distance-proportional weights).
    pub fn generate(config: &WaxmanConfig, rng: &mut Pcg64) -> Self {
        config.validate();
        let n = config.routers;
        let positions: Vec<(f64, f64)> = (0..n).map(|_| (rng.f64(), rng.f64())).collect();
        let dist = |a: usize, b: usize| -> f64 {
            let (ax, ay) = positions[a];
            let (bx, by) = positions[b];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        };
        let l = 2f64.sqrt(); // max distance in the unit square
        let weight_of = |d: f64| -> Weight {
            ((d / l) * config.max_link_weight as f64).round().max(1.0) as Weight
        };

        let mut graph = Graph::with_vertices(n);
        for a in 0..n {
            for b in a + 1..n {
                let d = dist(a, b);
                let p = config.alpha * (-d / (config.beta * l)).exp();
                if rng.chance(p) {
                    graph.add_edge(RouterId(a as u32), RouterId(b as u32), weight_of(d));
                }
            }
        }

        // Connectivity correction: union-find over components, linking
        // each component to its nearest outside router.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for v in graph.vertices() {
            for e in graph.neighbors(v) {
                let (a, b) = (find(&mut parent, v.index()), find(&mut parent, e.to.index()));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        loop {
            let root0 = find(&mut parent, 0);
            let mut best: Option<(f64, usize, usize)> = None;
            for b in 0..n {
                if find(&mut parent, b) != root0 {
                    for a in 0..n {
                        if find(&mut parent, a) == root0 {
                            let d = dist(a, b);
                            if best.map(|(bd, _, _)| d < bd).unwrap_or(true) {
                                best = Some((d, a, b));
                            }
                        }
                    }
                }
            }
            match best {
                None => break, // single component
                Some((d, a, b)) => {
                    graph.add_edge(RouterId(a as u32), RouterId(b as u32), weight_of(d));
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    parent[ra] = rb;
                }
            }
        }
        WaxmanTopology { graph, positions }
    }

    /// The physical graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the topology, returning the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Unit-square coordinates of a router.
    pub fn position(&self, r: RouterId) -> (f64, f64) {
        self.positions[r.index()]
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// All routers (hosts may attach anywhere in a flat topology).
    pub fn routers(&self) -> Vec<RouterId> {
        self.graph.vertices().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::single_source;

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..5 {
            let mut rng = Pcg64::seed_from_u64(seed);
            let topo = WaxmanTopology::generate(&WaxmanConfig::tiny(), &mut rng);
            assert!(topo.graph().is_connected(), "seed {seed}");
            assert_eq!(topo.router_count(), 60);
        }
    }

    #[test]
    fn short_links_dominate() {
        // The Waxman decay must make short links far more common.
        let mut rng = Pcg64::seed_from_u64(1);
        let topo = WaxmanTopology::generate(&WaxmanConfig::small(), &mut rng);
        let (mut short, mut long) = (0usize, 0usize);
        for v in topo.graph().vertices() {
            for e in topo.graph().neighbors(v) {
                if e.weight < 30 {
                    short += 1;
                } else {
                    long += 1;
                }
            }
        }
        assert!(short > long * 2, "short {short} long {long}");
    }

    #[test]
    fn weights_track_euclidean_distance() {
        let mut rng = Pcg64::seed_from_u64(2);
        let topo = WaxmanTopology::generate(&WaxmanConfig::tiny(), &mut rng);
        let l = 2f64.sqrt();
        for v in topo.graph().vertices() {
            let (vx, vy) = topo.position(v);
            for e in topo.graph().neighbors(v) {
                let (ux, uy) = topo.position(e.to);
                let d = ((vx - ux).powi(2) + (vy - uy).powi(2)).sqrt();
                let expect = ((d / l) * 100.0).round().max(1.0) as u32;
                assert_eq!(e.weight, expect);
            }
        }
    }

    #[test]
    fn distances_reflect_geometry() {
        // Physically close routers must be cheaper to reach on average
        // than far ones — the property locality experiments need.
        let mut rng = Pcg64::seed_from_u64(3);
        let topo = WaxmanTopology::generate(&WaxmanConfig::small(), &mut rng);
        let src = RouterId(0);
        let d = single_source(topo.graph(), src);
        let (sx, sy) = topo.position(src);
        let (mut near_sum, mut near_n, mut far_sum, mut far_n) = (0u64, 0u64, 0u64, 0u64);
        for r in topo.graph().vertices() {
            if r == src {
                continue;
            }
            let (rx, ry) = topo.position(r);
            let geo = ((sx - rx).powi(2) + (sy - ry).powi(2)).sqrt();
            if geo < 0.25 {
                near_sum += d[r.index()];
                near_n += 1;
            } else if geo > 0.75 {
                far_sum += d[r.index()];
                far_n += 1;
            }
        }
        if near_n > 0 && far_n > 0 {
            assert!(near_sum as f64 / near_n as f64 * 1.5 < far_sum as f64 / far_n as f64);
        }
    }

    #[test]
    fn deterministic_generation() {
        let g1 = WaxmanTopology::generate(&WaxmanConfig::tiny(), &mut Pcg64::seed_from_u64(7));
        let g2 = WaxmanTopology::generate(&WaxmanConfig::tiny(), &mut Pcg64::seed_from_u64(7));
        assert_eq!(g1.graph().edge_count(), g2.graph().edge_count());
        assert_eq!(g1.graph().total_weight(), g2.graph().total_weight());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let cfg = WaxmanConfig { alpha: 0.0, ..WaxmanConfig::tiny() };
        WaxmanTopology::generate(&cfg, &mut Pcg64::seed_from_u64(0));
    }
}
