//! Single-source shortest paths and a memoizing distance oracle.
//!
//! The paper charges every application-level hop the *shortest-path weight*
//! between the two routers involved (computed with Dijkstra's algorithm),
//! and sums those weights into a route's "path cost". Experiments issue
//! millions of pairwise distance queries over a handful of sources, so we
//! memoize whole single-source distance vectors in a [`DistanceCache`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, RwLock};

use crate::graph::{Graph, RouterId};

/// Distance value: `u64` to avoid overflow when summing `u32` weights.
pub type Dist = u64;

/// Sentinel for "unreachable".
pub const UNREACHABLE: Dist = Dist::MAX;

/// Computes shortest-path distances from `src` to every vertex.
///
/// Returns a vector indexed by router id; unreachable vertices hold
/// [`UNREACHABLE`].
pub fn single_source(graph: &Graph, src: RouterId) -> Vec<Dist> {
    let n = graph.vertex_count();
    assert!(src.index() < n, "source out of range");
    let mut dist = vec![UNREACHABLE; n];
    let mut heap: BinaryHeap<Reverse<(Dist, u32)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src.0)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for e in graph.neighbors(RouterId(v)) {
            let nd = d + e.weight as Dist;
            if nd < dist[e.to.index()] {
                dist[e.to.index()] = nd;
                heap.push(Reverse((nd, e.to.0)));
            }
        }
    }
    dist
}

/// Computes the shortest path from `src` to `dst` and returns
/// `(total weight, vertex sequence src..=dst)`, or `None` if unreachable.
pub fn shortest_path(graph: &Graph, src: RouterId, dst: RouterId) -> Option<(Dist, Vec<RouterId>)> {
    let n = graph.vertex_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut prev: Vec<u32> = vec![u32::MAX; n];
    let mut heap: BinaryHeap<Reverse<(Dist, u32)>> = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src.0)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        if v == dst.0 {
            break;
        }
        for e in graph.neighbors(RouterId(v)) {
            let nd = d + e.weight as Dist;
            if nd < dist[e.to.index()] {
                dist[e.to.index()] = nd;
                prev[e.to.index()] = v;
                heap.push(Reverse((nd, e.to.0)));
            }
        }
    }
    if dist[dst.index()] == UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = RouterId(prev[cur.index()]);
        path.push(cur);
    }
    path.reverse();
    Some((dist[dst.index()], path))
}

/// A thread-safe memoizing shortest-path-distance oracle.
///
/// Caches full single-source distance vectors keyed by source router. The
/// cache is bounded: past [`DistanceCache::capacity`] sources it evicts an
/// arbitrary entry (experiments exhibit heavy source reuse, so eviction is
/// rare in practice).
pub struct DistanceCache {
    graph: Arc<Graph>,
    capacity: usize,
    // Simple bounded map: Vec of (source, distances). Linear scan is fine:
    // experiments use at most a few thousand distinct sources, and hits are
    // resolved through the index vector below.
    slots: RwLock<CacheSlots>,
}

struct CacheSlots {
    /// `index[s]` = slot holding distances from source `s`, or `u32::MAX`.
    index: Vec<u32>,
    entries: Vec<(RouterId, Arc<Vec<Dist>>)>,
    /// Round-robin eviction cursor.
    cursor: usize,
}

impl DistanceCache {
    /// Creates a cache over `graph` holding at most `capacity` source rows.
    pub fn new(graph: Arc<Graph>, capacity: usize) -> Self {
        let n = graph.vertex_count();
        DistanceCache {
            graph,
            capacity: capacity.max(1),
            slots: RwLock::new(CacheSlots {
                index: vec![u32::MAX; n],
                entries: Vec::new(),
                cursor: 0,
            }),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Maximum number of cached source rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of source rows currently cached.
    pub fn len(&self) -> usize {
        self.slots.read().expect("cache lock poisoned").entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the distance row for `src`, computing it on first use.
    pub fn row(&self, src: RouterId) -> Arc<Vec<Dist>> {
        {
            let slots = self.slots.read().expect("cache lock poisoned");
            let slot = slots.index[src.index()];
            if slot != u32::MAX {
                return Arc::clone(&slots.entries[slot as usize].1);
            }
        }
        let row = Arc::new(single_source(&self.graph, src));
        let mut slots = self.slots.write().expect("cache lock poisoned");
        // Another thread may have inserted while we computed.
        let slot = slots.index[src.index()];
        if slot != u32::MAX {
            return Arc::clone(&slots.entries[slot as usize].1);
        }
        if slots.entries.len() < self.capacity {
            slots.entries.push((src, Arc::clone(&row)));
            let pos = (slots.entries.len() - 1) as u32;
            slots.index[src.index()] = pos;
        } else {
            let cursor = slots.cursor;
            slots.cursor = (cursor + 1) % self.capacity;
            let (old_src, _) = slots.entries[cursor];
            slots.index[old_src.index()] = u32::MAX;
            slots.entries[cursor] = (src, Arc::clone(&row));
            slots.index[src.index()] = cursor as u32;
        }
        row
    }

    /// Shortest-path distance between two routers.
    pub fn distance(&self, a: RouterId, b: RouterId) -> Dist {
        if a == b {
            return 0;
        }
        self.row(a)[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Weight;
    use crate::rng::Pcg64;

    fn line(n: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        for i in 0..n - 1 {
            g.add_edge(RouterId(i as u32), RouterId(i as u32 + 1), (i + 1) as Weight);
        }
        g
    }

    /// O(V^3) Floyd–Warshall oracle for cross-checking Dijkstra.
    fn floyd_warshall(g: &Graph) -> Vec<Vec<Dist>> {
        let n = g.vertex_count();
        let mut d = vec![vec![UNREACHABLE; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0;
        }
        for v in g.vertices() {
            for e in g.neighbors(v) {
                let w = e.weight as Dist;
                if w < d[v.index()][e.to.index()] {
                    d[v.index()][e.to.index()] = w;
                }
            }
        }
        for k in 0..n {
            for i in 0..n {
                if d[i][k] == UNREACHABLE {
                    continue;
                }
                for j in 0..n {
                    if d[k][j] == UNREACHABLE {
                        continue;
                    }
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                    }
                }
            }
        }
        d
    }

    fn random_connected(rng: &mut Pcg64, n: usize, extra: usize) -> Graph {
        let mut g = Graph::with_vertices(n);
        // Random spanning tree, then extra chords.
        for i in 1..n {
            let j = rng.index(i);
            g.add_edge(
                RouterId(i as u32),
                RouterId(j as u32),
                rng.range_inclusive(1, 20) as Weight,
            );
        }
        let mut added = 0;
        while added < extra {
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b && !g.has_edge(RouterId(a as u32), RouterId(b as u32)) {
                g.add_edge(
                    RouterId(a as u32),
                    RouterId(b as u32),
                    rng.range_inclusive(1, 20) as Weight,
                );
                added += 1;
            }
        }
        g
    }

    #[test]
    fn line_distances() {
        let g = line(5);
        let d = single_source(&g, RouterId(0));
        // Weights 1,2,3,4 → prefix sums.
        assert_eq!(d, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn matches_floyd_warshall_on_random_graphs() {
        let mut rng = Pcg64::seed_from_u64(99);
        for trial in 0..5 {
            let g = random_connected(&mut rng, 30 + trial * 10, 25);
            let fw = floyd_warshall(&g);
            for v in g.vertices() {
                assert_eq!(single_source(&g, v), fw[v.index()], "source {v}");
            }
        }
    }

    #[test]
    fn unreachable_marked() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(RouterId(0), RouterId(1), 5);
        let d = single_source(&g, RouterId(0));
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn shortest_path_reconstruction() {
        let g = line(6);
        let (w, path) = shortest_path(&g, RouterId(0), RouterId(5)).unwrap();
        assert_eq!(w, 1 + 2 + 3 + 4 + 5);
        assert_eq!(path, (0..6).map(RouterId).collect::<Vec<_>>());
    }

    #[test]
    fn shortest_path_prefers_cheap_detour() {
        let mut g = Graph::with_vertices(3);
        g.add_edge(RouterId(0), RouterId(2), 10);
        g.add_edge(RouterId(0), RouterId(1), 2);
        g.add_edge(RouterId(1), RouterId(2), 3);
        let (w, path) = shortest_path(&g, RouterId(0), RouterId(2)).unwrap();
        assert_eq!(w, 5);
        assert_eq!(path, vec![RouterId(0), RouterId(1), RouterId(2)]);
    }

    #[test]
    fn shortest_path_none_when_disconnected() {
        let g = Graph::with_vertices(2);
        assert!(shortest_path(&g, RouterId(0), RouterId(1)).is_none());
    }

    #[test]
    fn cache_agrees_with_direct_computation() {
        let mut rng = Pcg64::seed_from_u64(17);
        let g = Arc::new(random_connected(&mut rng, 60, 40));
        let cache = DistanceCache::new(Arc::clone(&g), 8);
        for _ in 0..200 {
            let a = RouterId(rng.index(60) as u32);
            let b = RouterId(rng.index(60) as u32);
            assert_eq!(cache.distance(a, b), single_source(&g, a)[b.index()]);
        }
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn cache_self_distance_zero_without_population() {
        let g = Arc::new(line(4));
        let cache = DistanceCache::new(g, 2);
        assert_eq!(cache.distance(RouterId(2), RouterId(2)), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_eviction_keeps_correctness() {
        let g = Arc::new(line(10));
        let cache = DistanceCache::new(Arc::clone(&g), 2);
        for round in 0..3 {
            for s in 0..10u32 {
                let d = cache.distance(RouterId(s), RouterId(9));
                let expect = single_source(&g, RouterId(s))[9];
                assert_eq!(d, expect, "round {round} source {s}");
            }
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn triangle_inequality_holds() {
        let mut rng = Pcg64::seed_from_u64(23);
        let g = Arc::new(random_connected(&mut rng, 40, 30));
        let cache = DistanceCache::new(g, 64);
        for _ in 0..500 {
            let a = RouterId(rng.index(40) as u32);
            let b = RouterId(rng.index(40) as u32);
            let c = RouterId(rng.index(40) as u32);
            assert!(cache.distance(a, c) <= cache.distance(a, b) + cache.distance(b, c));
        }
    }
}
