//! Deterministic pseudo-random number generation.
//!
//! All simulation code paths use this PCG-64 implementation (O'Neill's
//! PCG XSL RR 128/64) rather than the `rand` crate, so that every figure in
//! EXPERIMENTS.md is reproducible bit-for-bit from a single `u64` seed,
//! independent of external crate versions.

/// A PCG XSL RR 128/64 generator: 128-bit LCG state, 64-bit output.
///
/// Statistically strong for simulation purposes, tiny, and `Copy`-cheap to
/// fork into independent streams via [`Pcg64::split`].
///
/// # Examples
///
/// ```
/// use bristle_netsim::rng::Pcg64;
///
/// let mut a = Pcg64::seed_from_u64(7);
/// let mut b = Pcg64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// assert!(a.below(10) < 10);
/// let sample = a.sample_indices(100, 3);
/// assert_eq!(sample.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

impl Pcg64 {
    /// Creates a generator from a seed and a stream selector.
    ///
    /// Distinct `stream` values yield statistically independent sequences
    /// even under the same `seed`.
    pub fn new(seed: u64, stream: u64) -> Self {
        // Standard PCG initialization: set increment from the stream id
        // (must be odd), advance once, add seed, advance again.
        let inc = ((stream as u128) << 1) | 1;
        let mut rng = Pcg64 { state: 0, inc };
        rng.step();
        rng.state = rng.state.wrapping_add(seed as u128);
        rng.step();
        rng
    }

    /// Creates a generator from a seed on the default stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.step();
        // XSL-RR output function: xor-fold the 128-bit state, then rotate
        // by the top 6 bits.
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `u64` in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (order unspecified).
    ///
    /// Uses Floyd's algorithm: O(k) expected work regardless of `n`.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Forks an independent generator keyed by `tag`.
    ///
    /// Useful for giving each experiment component (topology, workload,
    /// mobility, ...) its own stream derived from one master seed.
    pub fn split(&mut self, tag: u64) -> Pcg64 {
        let seed = self.next_u64() ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Pcg64::new(seed, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg64::new(7, 1);
        let mut b = Pcg64::new(7, 2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Pcg64::seed_from_u64(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Pcg64::seed_from_u64(4);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10 000 per bucket; allow a generous 10% band.
            assert!((9_000..=11_000).contains(&c), "bucket count {c} out of band");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = Pcg64::seed_from_u64(5);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..10_000 {
            let v = rng.range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn range_inclusive_singleton() {
        let mut rng = Pcg64::seed_from_u64(6);
        for _ in 0..10 {
            assert_eq!(rng.range_inclusive(9, 9), 9);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Pcg64::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg64::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Pcg64::seed_from_u64(10);
        for (n, k) in [(10, 3), (100, 100), (50, 0), (1, 1), (1000, 17)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in sample");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Pcg64::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    fn split_streams_are_independent_of_parent_continuation() {
        let mut parent = Pcg64::seed_from_u64(12);
        let mut child = parent.split(1);
        let parent_next = parent.next_u64();
        let child_next = child.next_u64();
        assert_ne!(parent_next, child_next);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Pcg64::seed_from_u64(13).below(0);
    }
}
