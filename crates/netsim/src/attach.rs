//! Host attachment points and movement.
//!
//! An overlay node ("host") lives at some stub router of the physical
//! topology — its *network attachment point*. Mobility is modelled exactly
//! as in the paper: a mobile host re-attaches to a different router, which
//! invalidates every copy of its old network address held elsewhere in the
//! system.
//!
//! Each attachment carries an *epoch* counter that increments on every
//! move. A remembered address `(router, epoch)` is valid iff the epoch
//! still matches — the simulator's cheap stand-in for "the IP address no
//! longer routes to this host".

use crate::graph::RouterId;
use crate::rng::Pcg64;

/// Identifier of a host (an overlay-node body living in the network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl HostId {
    /// The host id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// One host's current physical location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attachment {
    /// The router the host currently attaches to.
    pub router: RouterId,
    /// Incremented on every move; stale epochs mean stale addresses.
    pub epoch: u64,
}

/// Tracks where every host is attached and how often it has moved.
#[derive(Debug, Clone, Default)]
pub struct AttachmentMap {
    slots: Vec<Attachment>,
    moves: u64,
}

impl AttachmentMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new host at `router`; returns its id.
    pub fn attach_new(&mut self, router: RouterId) -> HostId {
        self.slots.push(Attachment { router, epoch: 0 });
        HostId((self.slots.len() - 1) as u32)
    }

    /// Registers `n` new hosts at random routers drawn from `candidates`.
    pub fn attach_many(
        &mut self,
        n: usize,
        candidates: &[RouterId],
        rng: &mut Pcg64,
    ) -> Vec<HostId> {
        assert!(!candidates.is_empty(), "no attachment candidates");
        (0..n).map(|_| self.attach_new(*rng.choose(candidates))).collect()
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no hosts are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The host's current attachment.
    pub fn current(&self, host: HostId) -> Attachment {
        self.slots[host.index()]
    }

    /// The host's current router.
    pub fn router(&self, host: HostId) -> RouterId {
        self.slots[host.index()].router
    }

    /// Moves `host` to `router`, bumping its epoch. Returns the new
    /// attachment. Moving to the current router still counts as a move
    /// (e.g. DHCP renumbering at the same point of attachment).
    pub fn move_host(&mut self, host: HostId, router: RouterId) -> Attachment {
        let slot = &mut self.slots[host.index()];
        slot.router = router;
        slot.epoch += 1;
        self.moves += 1;
        *slot
    }

    /// Moves `host` to a random router from `candidates` distinct from its
    /// current one when possible.
    pub fn move_host_random(
        &mut self,
        host: HostId,
        candidates: &[RouterId],
        rng: &mut Pcg64,
    ) -> Attachment {
        assert!(!candidates.is_empty(), "no attachment candidates");
        let cur = self.router(host);
        let mut target = *rng.choose(candidates);
        if candidates.len() > 1 {
            while target == cur {
                target = *rng.choose(candidates);
            }
        }
        self.move_host(host, target)
    }

    /// Whether a remembered attachment is still the host's current one.
    pub fn is_current(&self, host: HostId, remembered: Attachment) -> bool {
        self.slots[host.index()] == remembered
    }

    /// Total number of moves performed across all hosts.
    pub fn total_moves(&self) -> u64 {
        self.moves
    }

    /// Iterator over `(host, attachment)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (HostId, Attachment)> + '_ {
        self.slots.iter().enumerate().map(|(i, &a)| (HostId(i as u32), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_assigns_sequential_ids() {
        let mut m = AttachmentMap::new();
        assert_eq!(m.attach_new(RouterId(5)), HostId(0));
        assert_eq!(m.attach_new(RouterId(6)), HostId(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.router(HostId(1)), RouterId(6));
    }

    #[test]
    fn move_bumps_epoch_and_invalidates() {
        let mut m = AttachmentMap::new();
        let h = m.attach_new(RouterId(1));
        let before = m.current(h);
        assert!(m.is_current(h, before));
        let after = m.move_host(h, RouterId(2));
        assert_eq!(after.router, RouterId(2));
        assert_eq!(after.epoch, 1);
        assert!(!m.is_current(h, before), "old address must be stale");
        assert!(m.is_current(h, after));
        assert_eq!(m.total_moves(), 1);
    }

    #[test]
    fn move_to_same_router_still_invalidates() {
        let mut m = AttachmentMap::new();
        let h = m.attach_new(RouterId(1));
        let before = m.current(h);
        let after = m.move_host(h, RouterId(1));
        assert_eq!(after.router, RouterId(1));
        assert!(!m.is_current(h, before));
    }

    #[test]
    fn random_move_avoids_current_router_when_possible() {
        let mut m = AttachmentMap::new();
        let mut rng = Pcg64::seed_from_u64(1);
        let candidates: Vec<RouterId> = (0..10).map(RouterId).collect();
        let h = m.attach_new(RouterId(3));
        for _ in 0..50 {
            let prev = m.router(h);
            let a = m.move_host_random(h, &candidates, &mut rng);
            assert_ne!(a.router, prev);
        }
    }

    #[test]
    fn random_move_single_candidate_allowed() {
        let mut m = AttachmentMap::new();
        let mut rng = Pcg64::seed_from_u64(2);
        let h = m.attach_new(RouterId(0));
        let a = m.move_host_random(h, &[RouterId(0)], &mut rng);
        assert_eq!(a.router, RouterId(0));
        assert_eq!(a.epoch, 1);
    }

    #[test]
    fn attach_many_uses_candidates() {
        let mut m = AttachmentMap::new();
        let mut rng = Pcg64::seed_from_u64(3);
        let candidates = vec![RouterId(7), RouterId(8)];
        let hosts = m.attach_many(100, &candidates, &mut rng);
        assert_eq!(hosts.len(), 100);
        for (_, a) in m.iter() {
            assert!(candidates.contains(&a.router));
        }
    }
}
