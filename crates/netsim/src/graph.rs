//! Compact undirected weighted graph over router vertices.

use std::fmt;

/// Identifier of a router (a vertex of the physical topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouterId(pub u32);

impl RouterId {
    /// The router id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Link weight. The paper's "path weight"; dimensionless cost units.
pub type Weight = u32;

/// An edge incident to some vertex: the neighbor and the link weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// The far endpoint.
    pub to: RouterId,
    /// The link cost.
    pub weight: Weight,
}

/// An undirected weighted graph in adjacency-list form.
///
/// Vertices are dense `RouterId`s `0..n`. Parallel edges are permitted but
/// never produced by the in-tree generators; self-loops are rejected.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<Edge>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Appends a new isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> RouterId {
        self.adj.push(Vec::new());
        RouterId((self.adj.len() - 1) as u32)
    }

    /// Adds an undirected edge `a — b` with the given weight.
    ///
    /// # Panics
    /// Panics on self-loops, zero weights, or out-of-range endpoints.
    pub fn add_edge(&mut self, a: RouterId, b: RouterId, weight: Weight) {
        assert_ne!(a, b, "self-loop {a}");
        assert!(weight > 0, "zero-weight link {a}–{b}");
        assert!(a.index() < self.adj.len() && b.index() < self.adj.len(), "vertex out of range");
        self.adj[a.index()].push(Edge { to: b, weight });
        self.adj[b.index()].push(Edge { to: a, weight });
        self.edge_count += 1;
    }

    /// Returns whether an edge `a — b` exists (any weight).
    pub fn has_edge(&self, a: RouterId, b: RouterId) -> bool {
        self.adj.get(a.index()).is_some_and(|edges| edges.iter().any(|e| e.to == b))
    }

    /// The neighbors (with weights) of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: RouterId) -> &[Edge] {
        &self.adj[v.index()]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: RouterId) -> usize {
        self.adj[v.index()].len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.adj.len() as u32).map(RouterId)
    }

    /// Returns whether the graph is connected (trivially true when empty).
    pub fn is_connected(&self) -> bool {
        let n = self.vertex_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![RouterId(0)];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(v) = stack.pop() {
            for e in self.neighbors(v) {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    visited += 1;
                    stack.push(e.to);
                }
            }
        }
        visited == n
    }

    /// Sum of all link weights (each undirected edge counted once).
    pub fn total_weight(&self) -> u64 {
        self.adj.iter().flat_map(|edges| edges.iter().map(|e| e.weight as u64)).sum::<u64>() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_vertices(3);
        g.add_edge(RouterId(0), RouterId(1), 1);
        g.add_edge(RouterId(1), RouterId(2), 2);
        g.add_edge(RouterId(2), RouterId(0), 3);
        g
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.total_weight(), 6);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for v in g.vertices() {
            for e in g.neighbors(v) {
                assert!(g
                    .neighbors(e.to)
                    .iter()
                    .any(|back| back.to == v && back.weight == e.weight));
            }
        }
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle();
        assert!(g.has_edge(RouterId(0), RouterId(1)));
        assert!(g.has_edge(RouterId(1), RouterId(0)));
        assert!(!g.has_edge(RouterId(0), RouterId(0)));
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let mut g = Graph::with_vertices(4);
        g.add_edge(RouterId(0), RouterId(1), 1);
        g.add_edge(RouterId(2), RouterId(3), 1);
        assert!(!g.is_connected());
        assert!(Graph::with_vertices(0).is_connected());
        assert!(Graph::with_vertices(1).is_connected());
    }

    #[test]
    fn add_vertex_grows() {
        let mut g = triangle();
        let v = g.add_vertex();
        assert_eq!(v, RouterId(3));
        assert_eq!(g.degree(v), 0);
        assert!(!g.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = Graph::with_vertices(1);
        g.add_edge(RouterId(0), RouterId(0), 1);
    }

    #[test]
    #[should_panic(expected = "zero-weight")]
    fn zero_weight_rejected() {
        let mut g = Graph::with_vertices(2);
        g.add_edge(RouterId(0), RouterId(1), 0);
    }
}
