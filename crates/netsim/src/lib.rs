//! # bristle-netsim
//!
//! Physical-network substrate for the Bristle simulation stack.
//!
//! The Bristle paper (Hsiao & King, IPDPS 2003) evaluates the protocol over
//! a simulated Internet: a GT-ITM *transit-stub* topology in which
//! application-level (overlay) hops are charged the shortest-path weight
//! between the routers the two overlay nodes are attached to. This crate
//! provides exactly that substrate:
//!
//! * [`rng::Pcg64`] — a deterministic, seedable PRNG so every experiment is
//!   bit-for-bit reproducible (no dependency on the `rand` crate in
//!   simulation code paths).
//! * [`graph::Graph`] — a compact undirected weighted graph.
//! * [`dijkstra`] — single-source shortest paths plus a concurrent
//!   memoizing [`dijkstra::DistanceCache`].
//! * [`transit_stub`] — a GT-ITM-style 2-level transit/stub topology
//!   generator.
//! * [`attach`] — host (overlay node) attachment points and movement, the
//!   physical face of node mobility.
//!
//! The crate is intentionally independent of everything overlay-related:
//! it knows about routers, links, weights and hosts, nothing else.

#![warn(missing_docs)]

pub mod attach;
pub mod dijkstra;
pub mod graph;
pub mod rng;
pub mod transit_stub;
pub mod waxman;

pub use attach::{AttachmentMap, HostId};
pub use dijkstra::DistanceCache;
pub use graph::{Graph, RouterId, Weight};
pub use rng::Pcg64;
pub use transit_stub::{TransitStubConfig, TransitStubTopology};
pub use waxman::{WaxmanConfig, WaxmanTopology};
