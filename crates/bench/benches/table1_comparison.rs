//! **Table 1 bench** — the per-movement cost of each architecture: a
//! Bristle `update` (publish + LDT dissemination), a Type A leave+rejoin,
//! and a Type B mobile-IP binding update.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bristle_bench::{bench_system, BENCH_MOBILE, BENCH_STATIONARY};
use bristle_core::config::BristleConfig;
use bristle_netsim::transit_stub::TransitStubConfig;
use bristle_sim::baseline_type_a::TypeASystem;
use bristle_sim::baseline_type_b::TypeBSystem;

fn move_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/one_move");
    group.sample_size(30);

    let mut bristle = bench_system(21, BristleConfig::recommended());
    let mobiles = bristle.mobile_keys().to_vec();
    let mut i = 0usize;
    group.bench_function("bristle_update", |b| {
        b.iter(|| {
            let m = mobiles[i % mobiles.len()];
            i += 1;
            black_box(bristle.move_node(m, None).expect("move"))
        })
    });

    let mut type_a =
        TypeASystem::build(21, BENCH_STATIONARY, BENCH_MOBILE, &TransitStubConfig::small(), 1);
    let bodies = type_a.mobile_bodies();
    let mut j = 0usize;
    group.bench_function("type_a_leave_rejoin", |b| {
        b.iter(|| {
            let body = bodies[j % bodies.len()];
            j += 1;
            black_box(type_a.move_body(body).expect("move"))
        })
    });

    let mut type_b = TypeBSystem::build(21, BENCH_STATIONARY, BENCH_MOBILE, &TransitStubConfig::small());
    let keys = type_b.mobile_keys();
    let mut k = 0usize;
    group.bench_function("type_b_binding_update", |b| {
        b.iter(|| {
            let key = keys[k % keys.len()];
            k += 1;
            black_box(type_b.move_node(key).expect("move"))
        })
    });

    group.finish();
}

fn lookup_under_mobility(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/lookup_to_mover");
    group.sample_size(30);

    let mut bristle = bench_system(22, BristleConfig::recommended());
    for m in bristle.mobile_keys().to_vec() {
        bristle.move_node(m, None).expect("move");
    }
    let reader = bristle.stationary_keys()[0];
    let targets = bristle.mobile_keys().to_vec();
    let mut i = 0usize;
    group.bench_function("bristle_route_to_mover", |b| {
        b.iter(|| {
            let t = targets[i % targets.len()];
            i += 1;
            black_box(bristle.route_mobile(reader, t).expect("route"))
        })
    });

    let mut type_b = TypeBSystem::build(22, BENCH_STATIONARY, BENCH_MOBILE, &TransitStubConfig::small());
    for m in type_b.mobile_keys() {
        type_b.move_node(m).expect("move");
    }
    let src = type_b.stationary_keys()[0];
    let keys = type_b.mobile_keys();
    let mut j = 0usize;
    group.bench_function("type_b_route_to_mover", |b| {
        b.iter(|| {
            let t = keys[j % keys.len()];
            j += 1;
            black_box(type_b.route(src, t).expect("route"))
        })
    });

    group.finish();
}

criterion_group!(benches, move_cost, lookup_under_mobility);
criterion_main!(benches);
