//! **Figure 7 bench** — per-route cost of mobile-layer routing under the
//! scrambled vs the clustered naming scheme, on identical populations
//! with stale mobile addresses.
//!
//! Criterion's time ratio between the two functions is the figure's RDP:
//! scrambled routes perform O(log N) `_discovery` operations, clustered
//! routes almost none.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bristle_bench::bench_system_after_moves;
use bristle_core::config::BristleConfig;
use bristle_overlay::key::Key;

fn route_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/route_stationary_pair");
    group.sample_size(40);
    for (name, cfg) in [
        ("scrambled", BristleConfig::paper_scrambled()),
        ("clustered", BristleConfig::paper_clustered()),
    ] {
        let mut sys = bench_system_after_moves(11, cfg);
        let sources: Vec<Key> = sys.stationary_keys().to_vec();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                let src = sources[i % sources.len()];
                let dst = sources[(i * 7 + 1) % sources.len()];
                i += 1;
                black_box(sys.route_mobile(src, dst).expect("route"))
            })
        });
    }
    group.finish();
}

fn discovery_bench(c: &mut Criterion) {
    let mut sys = bench_system_after_moves(12, BristleConfig::paper_scrambled());
    let asker = sys.stationary_keys()[0];
    let subjects: Vec<Key> = sys.mobile_keys().to_vec();
    let mut i = 0usize;
    c.bench_function("fig7/single_discovery", |b| {
        b.iter(|| {
            let subject = subjects[i % subjects.len()];
            i += 1;
            black_box(sys.discover(asker, subject).expect("discover"))
        })
    });
}

criterion_group!(benches, route_benches, discovery_bench);
criterion_main!(benches);
