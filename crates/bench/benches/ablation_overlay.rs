//! **Ablation bench** — the substrate design choices DESIGN.md calls
//! out, isolated:
//!
//! * routing base: base-4 digit fingers (Tornado-like) vs base-2
//!   (Chord-like) — hop count and per-route time;
//! * proximity neighbor selection on vs off — per-hop physical cost;
//! * distance-oracle memoization — cold vs warm Dijkstra queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::{single_source, DistanceCache};
use bristle_netsim::graph::RouterId;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
use bristle_overlay::config::RingConfig;
use bristle_overlay::key::Key;
use bristle_overlay::meter::Meter;
use bristle_overlay::ring::RingDht;

fn fixture(cfg: RingConfig, seed: u64) -> (RingDht<()>, AttachmentMap, DistanceCache, Vec<Key>) {
    let mut rng = Pcg64::seed_from_u64(seed);
    let topo = TransitStubTopology::generate(&TransitStubConfig::small(), &mut rng);
    let stubs = topo.stub_routers().to_vec();
    let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 1024);
    let mut attachments = AttachmentMap::new();
    let mut dht = RingDht::new(cfg);
    for _ in 0..256 {
        let host = attachments.attach_new(*rng.choose(&stubs));
        loop {
            let k = Key::random(&mut rng);
            if dht.insert(k, host, 1).is_ok() {
                break;
            }
        }
    }
    dht.build_all_tables(&attachments, &dcache, &mut rng);
    let keys = dht.keys().collect();
    (dht, attachments, dcache, keys)
}

fn routing_base(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/route_256_nodes");
    group.sample_size(50);
    for (name, cfg) in [("tornado_base4", RingConfig::tornado()), ("chord_base2", RingConfig::chord())] {
        let (dht, attachments, dcache, keys) = fixture(cfg, 31);
        let mut meter = Meter::new();
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                let src = keys[i % keys.len()];
                let dst = keys[(i * 13 + 1) % keys.len()];
                i += 1;
                black_box(dht.route(src, dst, &attachments, &dcache, &mut meter).expect("route"))
            })
        });
    }
    // The other substrate families on the same population size.
    {
        use bristle_overlay::prefix::PrefixDht;
        let mut rng = Pcg64::seed_from_u64(31);
        let topo = TransitStubTopology::generate(&TransitStubConfig::small(), &mut rng);
        let stubs = topo.stub_routers().to_vec();
        let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 1024);
        let mut attachments = AttachmentMap::new();
        let mut dht: PrefixDht<()> = PrefixDht::new(RingConfig::tornado());
        for _ in 0..256 {
            let host = attachments.attach_new(*rng.choose(&stubs));
            loop {
                let k = Key::random(&mut rng);
                if dht.insert(k, host, 1).is_ok() {
                    break;
                }
            }
        }
        dht.build_all_tables(&attachments, &dcache, &mut rng);
        let keys: Vec<Key> = dht.keys().collect();
        let mut i = 0usize;
        group.bench_function("prefix_base4", |b| {
            b.iter(|| {
                let src = keys[i % keys.len()];
                let dst = keys[(i * 13 + 1) % keys.len()];
                i += 1;
                black_box(dht.route(src, dst).expect("route"))
            })
        });
    }
    {
        use bristle_overlay::can::CanOverlay;
        let mut rng = Pcg64::seed_from_u64(31);
        let mut can: CanOverlay<()> = CanOverlay::new(2);
        for i in 0..256 {
            loop {
                let k = Key::random(&mut rng);
                if can.join(k, bristle_netsim::attach::HostId(i as u32), &mut rng).is_ok() {
                    break;
                }
            }
        }
        let keys: Vec<Key> = can.iter().map(|n| n.key).collect();
        let mut i = 0usize;
        group.bench_function("can_d2", |b| {
            b.iter(|| {
                let src = keys[i % keys.len()];
                let dst = keys[(i * 13 + 1) % keys.len()];
                i += 1;
                black_box(can.route(src, dst).expect("route"))
            })
        });
    }
    group.finish();
}

fn proximity_selection(c: &mut Criterion) {
    // Report the mean per-entry physical distance as the measured value;
    // bench the table-build cost of obtaining it.
    let mut group = c.benchmark_group("ablation/neighbor_selection_rebuild");
    group.sample_size(20);
    for (name, cfg) in [
        ("proximity", RingConfig::tornado()),
        ("first", RingConfig { selection: bristle_overlay::config::NeighborSelection::First, ..RingConfig::tornado() }),
    ] {
        let (mut dht, attachments, dcache, keys) = fixture(cfg, 32);
        let mut rng = Pcg64::seed_from_u64(33);
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                let k = keys[i % keys.len()];
                i += 1;
                black_box(dht.rebuild_node(k, &attachments, &dcache, &mut rng).expect("rebuild"))
            })
        });
    }
    group.finish();
}

fn distance_oracle(c: &mut Criterion) {
    let mut rng = Pcg64::seed_from_u64(34);
    let topo = TransitStubTopology::generate(&TransitStubConfig::small(), &mut rng);
    let graph = Arc::new(topo.into_graph());
    let n = graph.vertex_count() as u32;

    c.bench_function("ablation/dijkstra_cold_single_source", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let src = RouterId(i % n);
            i += 1;
            black_box(single_source(&graph, src))
        })
    });

    let cache = DistanceCache::new(Arc::clone(&graph), 2048);
    // Warm the cache.
    for s in 0..n {
        cache.row(RouterId(s));
    }
    c.bench_function("ablation/dijkstra_warm_cached_query", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let a = RouterId(i % n);
            let bb = RouterId((i * 7 + 1) % n);
            i += 1;
            black_box(cache.distance(a, bb))
        })
    });
}

criterion_group!(benches, routing_base, proximity_selection, distance_oracle);
criterion_main!(benches);
