//! **Figure 9 bench** — cost of building proximity-aware vs
//! locality-blind overlay tables (the work behind the figure's two
//! curves), plus the small-scale figure regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use bristle_netsim::attach::AttachmentMap;
use bristle_netsim::dijkstra::DistanceCache;
use bristle_netsim::rng::Pcg64;
use bristle_netsim::transit_stub::{TransitStubConfig, TransitStubTopology};
use bristle_overlay::config::RingConfig;
use bristle_overlay::key::Key;
use bristle_overlay::ring::RingDht;
use bristle_sim::experiments::fig9;

fn table_build(c: &mut Criterion) {
    let mut rng = Pcg64::seed_from_u64(3);
    let topo = TransitStubTopology::generate(&TransitStubConfig::small(), &mut rng);
    let stubs = topo.stub_routers().to_vec();
    let dcache = DistanceCache::new(Arc::new(topo.into_graph()), 1024);
    let mut attachments = AttachmentMap::new();
    let keys: Vec<Key> = (0..200)
        .map(|_| {
            let _host = attachments.attach_new(*rng.choose(&stubs));
            Key::random(&mut rng)
        })
        .collect();

    let mut group = c.benchmark_group("fig9/build_all_tables_200_nodes");
    group.sample_size(20);
    for (name, cfg) in [
        ("with_locality", RingConfig::tornado()),
        ("without_locality", RingConfig::tornado_no_locality()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut dht: RingDht<()> = RingDht::new(cfg.clone());
                for (i, &k) in keys.iter().enumerate() {
                    dht.insert(k, bristle_netsim::attach::HostId(i as u32), 1).expect("insert");
                }
                let mut build_rng = Pcg64::seed_from_u64(5);
                dht.build_all_tables(&attachments, &dcache, &mut build_rng);
                black_box(dht.total_state())
            })
        });
    }
    group.finish();
}

fn full_figure(c: &mut Criterion) {
    let cfg = fig9::Fig9Config {
        max_nodes: 200,
        fractions: vec![0.5, 1.0],
        capacity_range: (1, 15),
        tree_sample: Some(80),
        topology: TransitStubConfig::tiny(),
        seed: 6,
        parallel: false,
    };
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("full_run_200_nodes", |b| b.iter(|| black_box(fig9::run(&cfg))));
    g.finish();
}

criterion_group!(benches, table_build, full_figure);
criterion_main!(benches);
