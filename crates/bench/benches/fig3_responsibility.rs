//! **Figure 3 bench** — cost of computing LDT responsibility, analytic
//! and measured, member-only vs non-member-only.
//!
//! The interesting comparison is the measured pass: materializing all
//! member-only LDTs is dramatically cheaper than materializing the
//! Scribe-like non-member trees (which route once per leaf), mirroring
//! the responsibility gap the figure plots.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bristle_core::analysis::figure3_series;
use bristle_sim::experiments::fig3;

fn analytic(c: &mut Criterion) {
    let fractions: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    c.bench_function("fig3/analytic_series_n_2^20", |b| {
        b.iter(|| black_box(figure3_series(black_box(1_048_576.0), &fractions)))
    });
}

fn measured(c: &mut Criterion) {
    let cfg = fig3::Fig3Config {
        analytic_n: 1_048_576.0,
        measured_n: 160,
        fractions: vec![0.3, 0.6],
        capacity_range: (1, 15),
        seed: 7,
    };
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("measured_overlay_160_nodes", |b| b.iter(|| black_box(fig3::run(&cfg))));
    g.finish();
}

criterion_group!(benches, analytic, measured);
criterion_main!(benches);
