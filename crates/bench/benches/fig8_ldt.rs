//! **Figure 8 bench** — LDT construction cost across the capacity
//! spectrum (MAX = 1 chains vs MAX = 15 fans) and the full small-scale
//! figure regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bristle_core::ldt::Ldt;
use bristle_core::registry::Registrant;
use bristle_netsim::rng::Pcg64;
use bristle_overlay::key::Key;
use bristle_sim::experiments::fig8;

fn registrants(n: usize, max_cap: u32, seed: u64) -> Vec<Registrant> {
    let mut rng = Pcg64::seed_from_u64(seed);
    (0..n)
        .map(|i| Registrant::new(Key(i as u64 + 1), rng.range_inclusive(1, max_cap as u64) as u32))
        .collect()
}

fn tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/ldt_build_15_members");
    for max_cap in [1u32, 4, 15] {
        let regs = registrants(15, max_cap, max_cap as u64);
        let root = Registrant::new(Key(0), max_cap);
        group.bench_function(format!("max_cap_{max_cap}"), |b| {
            b.iter(|| black_box(Ldt::build(root, &regs, |_| 0, 1)))
        });
    }
    group.finish();
}

fn tree_build_large_membership(c: &mut Criterion) {
    // Registrant counts grow with log N; stress a 64-member tree.
    let regs = registrants(64, 15, 9);
    let root = Registrant::new(Key(0), 15);
    c.bench_function("fig8/ldt_build_64_members", |b| {
        b.iter(|| black_box(Ldt::build(root, &regs, |_| 0, 1)))
    });
}

fn full_figure(c: &mut Criterion) {
    let cfg = fig8::Fig8Config {
        n_nodes: 300,
        max_capacities: vec![1, 8, 15],
        tree_sample: Some(100),
        registrant_cap: None,
        detail_trees: 5,
        seed: 4,
    };
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("full_run_300_nodes", |b| b.iter(|| black_box(fig8::run(&cfg))));
    g.finish();
}

criterion_group!(benches, tree_build, tree_build_large_membership, full_figure);
criterion_main!(benches);
