//! Shared fixtures for the Bristle benchmark suite.
//!
//! Each bench target in `benches/` regenerates (at benchmark scale) one
//! table or figure of the paper; see DESIGN.md §4 for the index. The
//! helpers here build the common fixtures so the individual bench files
//! stay focused on what they measure.

use bristle_core::config::BristleConfig;
use bristle_core::system::{BristleBuilder, BristleSystem};
use bristle_netsim::transit_stub::TransitStubConfig;

/// Default bench population: enough nodes for realistic route lengths,
/// small enough that a fixture builds in tens of milliseconds.
pub const BENCH_STATIONARY: usize = 120;
/// Mobile population paired with [`BENCH_STATIONARY`] (M/N = 40%).
pub const BENCH_MOBILE: usize = 80;

/// Builds the standard bench system with the given protocol config.
pub fn bench_system(seed: u64, cfg: BristleConfig) -> BristleSystem {
    BristleBuilder::new(seed)
        .stationary_nodes(BENCH_STATIONARY)
        .mobile_nodes(BENCH_MOBILE)
        .topology(TransitStubConfig::small())
        .config(cfg)
        .build()
        .expect("bench system builds")
}

/// Builds the standard bench system and moves every mobile node once so
/// cached addresses are stale (the Fig. 7 measurement precondition).
pub fn bench_system_after_moves(seed: u64, cfg: BristleConfig) -> BristleSystem {
    let mut sys = bench_system(seed, cfg);
    for m in sys.mobile_keys().to_vec() {
        sys.move_node(m, None).expect("move");
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let sys = bench_system(1, BristleConfig::recommended());
        assert_eq!(sys.len(), BENCH_STATIONARY + BENCH_MOBILE);
        let moved = bench_system_after_moves(1, BristleConfig::paper_clustered());
        assert_eq!(moved.attachments.total_moves(), BENCH_MOBILE as u64);
    }
}
