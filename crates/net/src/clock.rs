//! Wall-clock → [`SimTime`] adapter.
//!
//! The machines in `bristle-proto` never read a clock; every `poll`
//! takes `now` as an argument. The simulator hands them its micro-clock
//! directly. This adapter gives the socket driver the same currency:
//! real elapsed time quantized into ticks, plus a forward-only skew so
//! the driver can *fast-forward* to the next timer deadline instead of
//! sleeping through it — stale timers are ignored by the machines on
//! expiry (timers are never cancelled, by contract), so jumping a quiet
//! network ahead to the next deadline is observationally equivalent to
//! waiting it out.

use std::time::{Duration, Instant};

use bristle_core::time::SimTime;

/// A monotone [`SimTime`] source backed by [`Instant`].
///
/// `now()` returns `origin + elapsed/tick + skew`: wall time quantized
/// to the tick length, displaced by every [`WallClock::advance_to`]
/// fast-forward so far. The result never moves backwards — quantized
/// elapsed time is monotone and skew only grows.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
    tick: Duration,
    /// Ticks added by fast-forwards (plus the starting offset).
    skew: u64,
}

impl WallClock {
    /// A clock reading `origin` now, counting one tick per `tick` of
    /// real time. A zero tick is rejected (it would divide by zero).
    pub fn new(origin: SimTime, tick: Duration) -> Self {
        assert!(!tick.is_zero(), "tick length must be positive");
        WallClock { start: Instant::now(), tick, skew: origin.0 }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        let elapsed = self.start.elapsed().as_nanos() / self.tick.as_nanos().max(1);
        SimTime(self.skew.saturating_add(elapsed as u64))
    }

    /// Fast-forwards so that `now()` reads at least `target`. A target
    /// already in the past is a no-op — the clock never runs backwards.
    pub fn advance_to(&mut self, target: SimTime) {
        let now = self.now();
        if target > now {
            self.skew += target.0 - now.0;
        }
    }

    /// The tick length (real time per virtual tick).
    pub fn tick(&self) -> Duration {
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_origin_and_moves_forward() {
        let c = WallClock::new(SimTime(100), Duration::from_secs(3600));
        // With an hour-long tick, no wall time passes in a test.
        assert_eq!(c.now(), SimTime(100));
        let a = c.now();
        let b = c.now();
        assert!(b >= a, "monotone");
    }

    #[test]
    fn advance_to_fast_forwards() {
        let mut c = WallClock::new(SimTime::ZERO, Duration::from_secs(3600));
        c.advance_to(SimTime(20_000));
        assert!(c.now() >= SimTime(20_000));
    }

    #[test]
    fn advance_to_the_past_is_a_no_op() {
        let mut c = WallClock::new(SimTime(50), Duration::from_secs(3600));
        c.advance_to(SimTime(10));
        assert_eq!(c.now(), SimTime(50));
    }

    #[test]
    fn real_time_becomes_ticks() {
        let c = WallClock::new(SimTime::ZERO, Duration::from_micros(50));
        std::thread::sleep(Duration::from_millis(2));
        // 2 ms at 50 µs/tick is 40 ticks; scheduling slop only adds.
        assert!(c.now() >= SimTime(40), "elapsed wall time must register");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tick_rejected() {
        let _ = WallClock::new(SimTime::ZERO, Duration::ZERO);
    }
}
