//! `bristle-net`: the Bristle sans-I/O machines over real UDP sockets.
//!
//! Everything protocol lives in `bristle-proto`'s [`ProtoMachine`] —
//! a pure state machine polled with `(now, event, env)`. The simulator
//! drives it with a virtual clock and an in-memory transport; this
//! crate drives the *same* machine with [`std::net::UdpSocket`]s and a
//! wall clock, std-only and tokio-free: a nonblocking poll loop, not an
//! async runtime.
//!
//! Three pieces:
//!
//! - [`clock::WallClock`] — quantizes real elapsed time into
//!   [`SimTime`] ticks and supports forward-only fast-forward, so a
//!   quiet network can skip to the next retry deadline instead of
//!   sleeping 20 seconds through it.
//! - [`book::AddressBook`] — maps the machines' `WireAddr`s (host,
//!   router, epoch) to real `SocketAddr` endpoints, mirroring the
//!   `Transport` trait's addressing.
//! - [`driver::SocketDriver`] — one socket per node, pump-then-fire
//!   poll loop, hardened datagram boundary (oversized or undecodable
//!   frames are dropped and metered, never parsed, never panic).
//!
//! The conformance claim — that a scripted scenario produces identical
//! per-kind meter tallies and causal event sequences over sockets and
//! over `SimTransport` — is exercised by `bristle-sim`'s conformance
//! module and the `net_conformance` integration test.
//!
//! [`ProtoMachine`]: bristle_proto::machine::ProtoMachine
//! [`SimTime`]: bristle_core::time::SimTime

pub mod book;
pub mod clock;
pub mod driver;

pub use book::AddressBook;
pub use clock::WallClock;
pub use driver::{NetStats, SocketDriver, MAX_FRAME};
