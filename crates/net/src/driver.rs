//! The poll loop: sans-I/O machines over nonblocking UDP sockets.
//!
//! One [`UdpSocket`] per node, bound to loopback; datagram payloads are
//! exactly [`Envelope::encode`] bytes, nothing more. The driver owns
//! the machines and the timer wheel but *not* the world model — every
//! call takes a `&mut dyn NodeEnv`, the same window the simulator's
//! driver hands its machines, which is what makes the two backends
//! meter-identical: the machines cannot tell which one is driving them.
//!
//! Time is the [`WallClock`] adapter's virtual ticks. The loop pumps
//! sockets first and fires due timers second (an ack sitting in a
//! kernel buffer always clears its session before the retry timer can
//! fire), sleeps at most until the next timer deadline, and — after a
//! real-time grace window confirms the network is quiet — fast-forwards
//! the clock to that deadline instead of waiting it out. Stale timers
//! fired after a fast-forward are ignored by the machines (their
//! sessions are gone), exactly as in the simulator.
//!
//! The datagram boundary is hardened: a frame longer than [`MAX_FRAME`]
//! or one that fails [`Envelope::decode`] is dropped and metered
//! ([`MessageKind::MalformedFrame`]), never parsed further, never
//! panicking the loop.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{Error, ErrorKind, Result};
use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use bristle_core::time::SimTime;
use bristle_overlay::key::Key;
use bristle_overlay::meter::MessageKind;
use bristle_proto::machine::{Completion, Event, NodeEnv, Output, ProtoMachine, TimerKind};
use bristle_proto::wire::Envelope;

use crate::book::AddressBook;
use crate::clock::WallClock;

/// Largest datagram payload the driver accepts or emits. Well-formed
/// envelopes top out under 100 bytes; the cap keeps a hostile jumbo
/// datagram from ever reaching the codec.
pub const MAX_FRAME: usize = 256;

/// Counters for everything the socket boundary did that the protocol
/// never saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams put on the wire.
    pub datagrams_sent: u64,
    /// Datagrams read off the wire (including dropped ones).
    pub datagrams_received: u64,
    /// Received datagrams dropped for exceeding [`MAX_FRAME`].
    pub dropped_oversized: u64,
    /// Received datagrams dropped for failing to decode, or decoding to
    /// an envelope for a node this socket does not host.
    pub dropped_garbage: u64,
    /// Sends suppressed because the destination address was stale (the
    /// simulator's arrival-time black-hole, applied at send time).
    pub stale_blackholed: u64,
    /// Times the clock fast-forwarded a quiet network to the next
    /// timer deadline.
    pub fast_forwards: u64,
}

/// One node: its identity, its socket, its machine.
struct NetNode {
    key: Key,
    socket: UdpSocket,
    machine: ProtoMachine,
}

/// Runs a set of [`ProtoMachine`]s over nonblocking UDP sockets.
pub struct SocketDriver {
    clock: WallClock,
    book: AddressBook,
    nodes: Vec<NetNode>,
    by_key: HashMap<Key, usize>,
    /// Armed timers, ordered by deadline; the `u64` sequence breaks
    /// ties FIFO, mirroring the simulator's event queue.
    timers: BTreeMap<(SimTime, u64), (Key, TimerKind)>,
    timer_seq: u64,
    /// `(src, msg_id)` of every frame a machine here has processed; a
    /// later transmission of the same frame is a spurious retry, bumped
    /// exactly as the simulator's driver bumps it.
    delivered: HashSet<(Key, u64)>,
    /// Completions surfaced by the machines, for the caller to drain.
    pub completions: Vec<Completion>,
    /// Real-time window the loop waits for in-flight datagrams before
    /// declaring the network quiet and fast-forwarding.
    grace: Duration,
    stats: NetStats,
}

impl SocketDriver {
    /// A driver with no nodes, reading time from `clock`.
    pub fn new(clock: WallClock) -> Self {
        SocketDriver {
            clock,
            book: AddressBook::new(),
            nodes: Vec::new(),
            by_key: HashMap::new(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            delivered: HashSet::new(),
            completions: Vec::new(),
            grace: Duration::from_millis(5),
            stats: NetStats::default(),
        }
    }

    /// Overrides the quiet-network grace window (default 5 ms — orders
    /// of magnitude above a loopback round trip).
    pub fn set_grace(&mut self, grace: Duration) {
        self.grace = grace;
    }

    /// Binds a loopback socket for `key`, whose overlay address is
    /// `addr`, and installs `machine` behind it. Returns the endpoint.
    pub fn bind_node(
        &mut self,
        key: Key,
        addr: bristle_proto::wire::WireAddr,
        machine: ProtoMachine,
    ) -> Result<SocketAddr> {
        if self.by_key.contains_key(&key) {
            return Err(Error::new(ErrorKind::AddrInUse, format!("{key} already bound")));
        }
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_nonblocking(true)?;
        let endpoint = socket.local_addr()?;
        self.book.register(addr, endpoint);
        self.by_key.insert(key, self.nodes.len());
        self.nodes.push(NetNode { key, socket, machine });
        Ok(endpoint)
    }

    /// The address book (moves re-seat hosts through it).
    pub fn book_mut(&mut self) -> &mut AddressBook {
        &mut self.book
    }

    /// Boundary counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The machine bound for `key`, for starting operations on it. The
    /// returned [`Output`] of any `start_*` call must be handed back
    /// through [`Self::dispatch`].
    pub fn machine_mut(&mut self, key: Key) -> Option<&mut ProtoMachine> {
        self.by_key.get(&key).map(|&i| &mut self.nodes[i].machine)
    }

    /// Earliest armed timer deadline, if any.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.timers.keys().next().map(|&(at, _)| at)
    }

    /// Turns one machine's [`Output`] into datagrams and armed timers,
    /// mirroring the simulator driver's dispatch step: spurious-retry
    /// accounting, the stale-address black-hole (applied here at send
    /// time; the simulator applies it at arrival), then one encoded
    /// envelope per surviving send.
    pub fn dispatch(&mut self, from: Key, out: Output, env: &mut dyn NodeEnv) -> Result<()> {
        let Some(&from_idx) = self.by_key.get(&from) else {
            return Err(Error::new(ErrorKind::NotFound, format!("{from} is not bound")));
        };
        for o in out.outgoing {
            if self.delivered.contains(&(o.env.src, o.env.msg_id)) {
                env.bump(MessageKind::SpuriousRetry);
            }
            // The simulator delivers to the addressed router and drops
            // at arrival if the destination moved away; with a real
            // socket the equivalent check runs before the send.
            if !env.addr_current(o.to_addr) {
                self.stats.stale_blackholed += 1;
                continue;
            }
            let Some(endpoint) = self.book.resolve(o.to_addr) else {
                self.stats.stale_blackholed += 1;
                continue;
            };
            let bytes = o.env.encode();
            if bytes.len() > MAX_FRAME {
                self.stats.dropped_oversized += 1;
                env.bump(MessageKind::MalformedFrame);
                continue;
            }
            self.nodes[from_idx].socket.send_to(&bytes, endpoint)?;
            self.stats.datagrams_sent += 1;
        }
        for t in out.timers {
            self.timers.insert((t.at, self.timer_seq), (from, t.kind));
            self.timer_seq += 1;
        }
        self.completions.extend(out.completions);
        Ok(())
    }

    /// Drains every readable socket once: decodes, delivers to the
    /// hosting machine, dispatches the reactions. Oversized or
    /// undecodable datagrams are dropped and metered; they never reach
    /// a machine. Returns how many datagrams were read.
    pub fn pump(&mut self, env: &mut dyn NodeEnv) -> Result<usize> {
        let mut buf = [0u8; MAX_FRAME + 1];
        let mut handled = 0usize;
        for idx in 0..self.nodes.len() {
            loop {
                let n = match self.nodes[idx].socket.recv_from(&mut buf) {
                    Ok((n, _)) => n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => return Err(e),
                };
                handled += 1;
                self.stats.datagrams_received += 1;
                if n > MAX_FRAME {
                    self.stats.dropped_oversized += 1;
                    env.bump(MessageKind::MalformedFrame);
                    continue;
                }
                let envelope = match Envelope::decode(&buf[..n]) {
                    Ok(envelope) => envelope,
                    Err(_) => {
                        self.stats.dropped_garbage += 1;
                        env.bump(MessageKind::MalformedFrame);
                        continue;
                    }
                };
                if envelope.dst != self.nodes[idx].key {
                    // Decodes, but claims a destination this socket
                    // does not host: misdirected or spoofed.
                    self.stats.dropped_garbage += 1;
                    env.bump(MessageKind::MalformedFrame);
                    continue;
                }
                self.delivered.insert((envelope.src, envelope.msg_id));
                let now = self.clock.now();
                let out = self.nodes[idx].machine.poll(now, Event::Deliver(envelope), env);
                let key = self.nodes[idx].key;
                self.dispatch(key, out, env)?;
            }
        }
        Ok(handled)
    }

    /// Fires every timer whose deadline has passed. Returns how many
    /// fired (stale ones included — their machines ignore them).
    pub fn fire_due(&mut self, env: &mut dyn NodeEnv) -> Result<usize> {
        let mut fired = 0usize;
        loop {
            let now = self.clock.now();
            let Some((&(at, seq), _)) = self.timers.iter().next() else { break };
            if at > now {
                break;
            }
            let (key, kind) = self.timers.remove(&(at, seq)).expect("just observed");
            if let Some(&idx) = self.by_key.get(&key) {
                let out = self.nodes[idx].machine.poll(now, Event::Timer(kind), env);
                self.dispatch(key, out, env)?;
            }
            fired += 1;
        }
        Ok(fired)
    }

    /// Pumps and fires until the network is quiet *and* no timers
    /// remain, fast-forwarding the clock over dead air: when a full
    /// grace window of real time passes with no datagram arriving and
    /// nothing due, the clock jumps to the next timer deadline (the
    /// machines cannot observe the skip — they only ever see `now` as
    /// an argument). Returns the number of datagrams plus timer firings
    /// processed, or `TimedOut` once `max_events` is exceeded — the
    /// same runaway-retry backstop the simulator's event budget gives.
    pub fn run_until_quiet(&mut self, env: &mut dyn NodeEnv, max_events: u64) -> Result<u64> {
        self.run_until(env, max_events, |_| false)
    }

    /// Like [`Self::run_until_quiet`], but also stops — leaving the
    /// remaining state intact — as soon as a surfaced completion
    /// matches `found` (the completion stays in
    /// [`Self::completions`] for the caller to consume).
    pub fn run_until(
        &mut self,
        env: &mut dyn NodeEnv,
        max_events: u64,
        mut found: impl FnMut(&Completion) -> bool,
    ) -> Result<u64> {
        let mut events = 0u64;
        loop {
            if self.completions.iter().any(&mut found) {
                return Ok(events);
            }
            let n = self.pump(env)? + self.fire_due(env)?;
            if n > 0 {
                events += n as u64;
                if events > max_events {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        "event budget exhausted: retry loop not converging",
                    ));
                }
                continue;
            }
            // Quiet right now; in-flight bytes get a real-time grace
            // window before the clock is allowed to skip ahead.
            if self.pump_for(env, self.grace)? > 0 {
                events += 1;
                continue;
            }
            match self.next_timer() {
                Some(at) => {
                    self.clock.advance_to(at);
                    self.stats.fast_forwards += 1;
                }
                None => return Ok(events),
            }
        }
    }

    /// Polls the sockets for up to `window` of real time, returning at
    /// the first datagram (handled, with its reactions dispatched).
    fn pump_for(&mut self, env: &mut dyn NodeEnv, window: Duration) -> Result<usize> {
        let deadline = Instant::now() + window;
        loop {
            let n = self.pump(env)?;
            if n > 0 || Instant::now() >= deadline {
                return Ok(n);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bristle_netsim::graph::RouterId;
    use bristle_overlay::meter::Meter;
    use bristle_proto::machine::RetryPolicy;
    use bristle_proto::wire::{WireAddr, WireMessage};

    /// A fixed little world, modeled on the machine tests' MockEnv.
    #[derive(Default)]
    struct MiniEnv {
        mobile_hops: HashMap<(Key, Key), Key>,
        stat_hops: HashMap<(Key, Key), Key>,
        mobile: HashSet<Key>,
        addrs: HashMap<Key, WireAddr>,
        valid: HashSet<(u32, u64)>,
        believed: HashMap<(Key, Key), WireAddr>,
        records: HashMap<(Key, Key), WireAddr>,
        replica_sets: HashMap<Key, Vec<Key>>,
        entries: HashMap<Key, Key>,
        meter: Meter,
    }

    impl MiniEnv {
        fn with_node(mut self, key: Key, host: u32, router: u32) -> Self {
            self.addrs.insert(key, WireAddr { host, router, epoch: 0 });
            self.valid.insert((host, 0));
            self.entries.insert(key, key);
            self
        }
    }

    impl NodeEnv for MiniEnv {
        fn next_hop_mobile(&self, cur: Key, target: Key) -> Option<Key> {
            self.mobile_hops.get(&(cur, target)).copied()
        }
        fn next_hop_stationary(&self, cur: Key, target: Key) -> Option<Key> {
            self.stat_hops.get(&(cur, target)).copied()
        }
        fn is_mobile(&self, key: Key) -> bool {
            self.mobile.contains(&key)
        }
        fn entry_stationary(&self, from: Key) -> Key {
            self.entries[&from]
        }
        fn replicas(&self, subject: Key) -> Vec<Key> {
            self.replica_sets.get(&subject).cloned().unwrap_or_default()
        }
        fn current_addr(&self, key: Key) -> WireAddr {
            self.addrs[&key]
        }
        fn addr_current(&self, addr: WireAddr) -> bool {
            self.valid.contains(&(addr.host, addr.epoch))
        }
        fn believed_addr(&self, holder: Key, subject: Key) -> Option<WireAddr> {
            self.believed.get(&(holder, subject)).copied()
        }
        fn location_record(&self, holder: Key, subject: Key) -> Option<WireAddr> {
            self.records.get(&(holder, subject)).copied()
        }
        fn distance(&self, a: RouterId, b: RouterId) -> u64 {
            (a.0 as i64 - b.0 as i64).unsigned_abs()
        }
        fn meter(&mut self, kind: MessageKind, cost: u64) {
            self.meter.record(kind, cost);
        }
        fn bump(&mut self, kind: MessageKind) {
            self.meter.bump(kind, 1);
        }
        fn commit_resolution(&mut self, asker: Key, subject: Key, addr: WireAddr) {
            self.believed.insert((asker, subject), addr);
        }
        fn apply_update(&mut self, _receiver: Key, _subject: Key, _addr: WireAddr, _seq: u64) {}
        fn apply_register(&mut self, _target: Key, _who: Key, _capacity: u32) {}
        fn commit_register(&mut self, _who: Key, _target: Key) {}
    }

    const A: Key = Key(10);
    const B: Key = Key(20);

    fn policy() -> RetryPolicy {
        RetryPolicy { ack_timeout: 100, discovery_timeout: 1000, max_attempts: 3 }
    }

    /// A driver whose grace window keeps tests quick: 1 ms virtual
    /// ticks and a 2 ms quiet window (still ≫ a loopback round trip).
    fn fast_driver() -> SocketDriver {
        let mut d = SocketDriver::new(WallClock::new(SimTime::ZERO, Duration::from_millis(1)));
        d.set_grace(Duration::from_millis(2));
        d
    }

    #[test]
    fn route_over_loopback_sockets_delivers() {
        let mut env = MiniEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        env.mobile_hops.insert((A, B), B);
        let mut d = fast_driver();
        d.bind_node(A, env.addrs[&A], ProtoMachine::new(A, policy())).unwrap();
        d.bind_node(B, env.addrs[&B], ProtoMachine::new(B, policy())).unwrap();
        let now = d.now();
        let (route_id, out) = d.machine_mut(A).unwrap().start_route(now, &mut env, B);
        d.dispatch(A, out, &mut env).unwrap();
        d.run_until(&mut env, 10_000, |c| {
            matches!(c, Completion::Delivered { origin, route_id: r } if *origin == A && *r == route_id)
        })
        .unwrap();
        assert!(d
            .completions
            .iter()
            .any(|c| matches!(c, Completion::Delivered { origin, .. } if *origin == A)));
        // One metered hop, acked before its retry timer could fire.
        assert_eq!(env.meter.count(MessageKind::RouteHop), 1);
        assert_eq!(env.meter.count(MessageKind::SpuriousRetry), 0);
        let s = d.stats();
        assert!(s.datagrams_sent >= 2, "hop plus ack, got {}", s.datagrams_sent);
        assert_eq!(s.dropped_oversized + s.dropped_garbage, 0);
    }

    #[test]
    fn hostile_datagrams_are_dropped_and_metered() {
        let mut env = MiniEnv::default().with_node(A, 1, 1);
        let mut d = fast_driver();
        let ep = d.bind_node(A, env.addrs[&A], ProtoMachine::new(A, policy())).unwrap();
        let attacker = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        // Undecodable bytes, an oversized frame, and a well-formed
        // envelope addressed to a node this socket does not host.
        attacker.send_to(&[0xFF; 40], ep).unwrap();
        attacker.send_to(&[0u8; 300], ep).unwrap();
        let misdirected = Envelope {
            src: B,
            dst: B,
            msg_id: 7,
            trace_id: 0,
            msg: WireMessage::HopAck { acked: 1 },
            auth: None,
        };
        attacker.send_to(&misdirected.encode(), ep).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while d.stats().datagrams_received < 3 && Instant::now() < deadline {
            d.pump(&mut env).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let s = d.stats();
        assert_eq!(s.datagrams_received, 3);
        assert_eq!(s.dropped_oversized, 1);
        assert_eq!(s.dropped_garbage, 2);
        assert_eq!(env.meter.count(MessageKind::MalformedFrame), 3);
        // The machine never saw any of it: nothing sent, nothing done.
        assert_eq!(s.datagrams_sent, 0);
        assert!(d.completions.is_empty());
    }

    #[test]
    fn stale_addresses_are_blackholed_at_send() {
        let mut env = MiniEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        env.mobile_hops.insert((A, B), B);
        let mut d = fast_driver();
        d.bind_node(A, env.addrs[&A], ProtoMachine::new(A, policy())).unwrap();
        d.bind_node(B, env.addrs[&B], ProtoMachine::new(B, policy())).unwrap();
        // B's epoch-0 address is retired before A's hop goes out: the
        // send-time check mirrors the simulator's arrival-time drop.
        env.valid.remove(&(2, 0));
        let now = d.now();
        let (_, out) = d.machine_mut(A).unwrap().start_route(now, &mut env, B);
        d.dispatch(A, out, &mut env).unwrap();
        let s = d.stats();
        assert_eq!(s.stale_blackholed, 1);
        assert_eq!(s.datagrams_sent, 0);
    }

    #[test]
    fn retry_ladder_runs_on_fast_forward_not_wall_time() {
        let mut env = MiniEnv::default().with_node(A, 1, 1).with_node(B, 2, 5);
        // A non-mobile next hop: exhaustion fails the route outright
        // (no stationary-layer rediscovery to fall back to).
        env.mobile_hops.insert((A, B), B);
        let mut d = fast_driver();
        d.bind_node(A, env.addrs[&A], ProtoMachine::new(A, policy())).unwrap();
        // B's endpoint is a deaf socket: bound, never polled, never acks.
        let deaf = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        d.book_mut().register(env.addrs[&B], deaf.local_addr().unwrap());
        let now = d.now();
        let (route_id, out) = d.machine_mut(A).unwrap().start_route(now, &mut env, B);
        d.dispatch(A, out, &mut env).unwrap();
        let started = Instant::now();
        d.run_until_quiet(&mut env, 10_000).unwrap();
        // Three 100-tick timeouts with backoff would be minutes of real
        // time at 1 ms/tick without fast-forward.
        assert!(started.elapsed() < Duration::from_secs(30), "must not sleep out the timers");
        assert!(d
            .completions
            .iter()
            .any(|c| matches!(c, Completion::RouteFailed { origin, route_id: r, .. } if *origin == A && *r == route_id)));
        assert_eq!(env.meter.count(MessageKind::Timeout), 3);
        // Initial send plus two retransmissions, all metered.
        assert_eq!(env.meter.count(MessageKind::RouteHop), 3);
        assert!(d.stats().fast_forwards >= 3, "quiet waits must fast-forward");
    }
}
