//! The address book: where protocol addresses meet the real network.
//!
//! On the wire the machines speak [`WireAddr`]s — `(host, router,
//! epoch)` triples from the simulated topology. A real deployment needs
//! one more indirection: which UDP endpoint is that host listening on?
//! The book records it, mirroring the [`Transport`] trait's shape —
//! sends are keyed by the destination's router/address exactly as
//! [`SimTransport`] sends are — so the same driver code path serves
//! both backends.
//!
//! Staleness is *not* the book's business: an address whose epoch the
//! overlay has retired is rejected by `NodeEnv::addr_current` before
//! the book is ever consulted (the socket driver checks at send time;
//! the simulator drops at arrival — indistinguishable unless a node
//! moves within one datagram flight, which scripted scenarios avoid).
//!
//! [`Transport`]: bristle_proto::transport::Transport
//! [`SimTransport`]: bristle_proto::transport::SimTransport

use std::collections::HashMap;
use std::net::SocketAddr;

use bristle_netsim::graph::RouterId;
use bristle_proto::wire::WireAddr;

/// Maps overlay addresses to real socket endpoints.
#[derive(Debug, Default)]
pub struct AddressBook {
    /// Host id → the UDP endpoint its node listens on. Hosts are
    /// one-per-node in the topology, so this is the identity mapping.
    by_host: HashMap<u32, SocketAddr>,
    /// Router id → hosts currently seated there (insertion order).
    /// Serves the [`Transport`]-shaped lookups that address a router.
    ///
    /// [`Transport`]: bristle_proto::transport::Transport
    by_router: HashMap<RouterId, Vec<u32>>,
}

impl AddressBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the node addressed by `addr` listens on `endpoint`,
    /// replacing any previous endpoint for the same host.
    pub fn register(&mut self, addr: WireAddr, endpoint: SocketAddr) {
        if self.by_host.insert(addr.host, endpoint).is_some() {
            for hosts in self.by_router.values_mut() {
                hosts.retain(|&h| h != addr.host);
            }
        }
        self.by_router.entry(addr.router_id()).or_default().push(addr.host);
    }

    /// Re-seats a host on a new router (a mobile node moved). The
    /// endpoint is unchanged — the *overlay* address moved, not the
    /// socket.
    pub fn reseat(&mut self, host: u32, router: RouterId) {
        for hosts in self.by_router.values_mut() {
            hosts.retain(|&h| h != host);
        }
        self.by_router.entry(router).or_default().push(host);
    }

    /// The endpoint the node addressed by `addr` listens on. Epoch is
    /// deliberately ignored (see the module docs: staleness is the
    /// env's check, reachability is the book's).
    pub fn resolve(&self, addr: WireAddr) -> Option<SocketAddr> {
        self.by_host.get(&addr.host).copied()
    }

    /// The endpoints of every host currently seated on `router`, in
    /// registration order — the router-keyed lookup mirroring
    /// `Transport::send`'s addressing.
    pub fn resolve_router(&self, router: RouterId) -> Vec<SocketAddr> {
        self.by_router
            .get(&router)
            .map(|hosts| hosts.iter().filter_map(|h| self.by_host.get(h).copied()).collect())
            .unwrap_or_default()
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.by_host.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.by_host.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(host: u32, router: u32) -> WireAddr {
        WireAddr { host, router, epoch: 0 }
    }

    fn ep(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn register_and_resolve() {
        let mut book = AddressBook::new();
        book.register(addr(1, 10), ep(4001));
        book.register(addr(2, 10), ep(4002));
        assert_eq!(book.resolve(addr(1, 10)), Some(ep(4001)));
        // A stale epoch still resolves — staleness is the env's check.
        assert_eq!(book.resolve(WireAddr { host: 1, router: 10, epoch: 9 }), Some(ep(4001)));
        assert_eq!(book.resolve(addr(3, 10)), None);
        assert_eq!(book.resolve_router(RouterId(10)), vec![ep(4001), ep(4002)]);
        assert_eq!(book.len(), 2);
    }

    #[test]
    fn reseat_follows_a_move() {
        let mut book = AddressBook::new();
        book.register(addr(1, 10), ep(4001));
        book.reseat(1, RouterId(20));
        assert_eq!(book.resolve_router(RouterId(10)), vec![]);
        assert_eq!(book.resolve_router(RouterId(20)), vec![ep(4001)]);
        // The endpoint itself never moved.
        assert_eq!(book.resolve(addr(1, 20)), Some(ep(4001)));
    }

    #[test]
    fn reregistering_a_host_replaces_its_endpoint() {
        let mut book = AddressBook::new();
        book.register(addr(1, 10), ep(4001));
        book.register(addr(1, 20), ep(5001));
        assert_eq!(book.resolve(addr(1, 20)), Some(ep(5001)));
        assert_eq!(book.resolve_router(RouterId(10)), vec![]);
        assert_eq!(book.resolve_router(RouterId(20)), vec![ep(5001)]);
        assert_eq!(book.len(), 1);
    }
}
