//! # bristle-store
//!
//! Pluggable durable-state backends for Bristle's stationary layer.
//!
//! The paper treats the stationary layer as a *location-information
//! repository*, which makes each stationary node a tiny database: it
//! owns a shard of location records, the registrations binding it into
//! LDTs, the leases it holds, and its own identity + incarnation. This
//! crate gives that database a storage abstraction:
//!
//! * [`WalRecord`] — one typed mutation; the durable state is defined
//!   as a fold over the record sequence ([`DurableState::apply`]).
//! * [`StateStore`] — the backend trait: feed it records, read back the
//!   folded state.
//! * [`MemBackend`] — the default; folds in memory, survives nothing.
//!   Behavior-identical (and cost-identical) to the pre-store code.
//! * [`WalBackend`] — append-only log + periodic snapshot + replay on
//!   open, torn-write tolerant. A crashed node reopens its store and
//!   recovers its shard from disk instead of re-learning it from the
//!   overlay.
//!
//! The crate is dependency-free and deliberately sits *below* every
//! other workspace crate: identifiers are raw integers, time is a raw
//! tick count, and nothing here touches the simulator's RNG, meter, or
//! clock — attaching or swapping a backend cannot perturb a seeded run.

#![warn(missing_docs)]

pub mod mem;
pub mod record;
pub mod state;
pub mod wal;

pub use mem::MemBackend;
pub use record::{CodecError, WalRecord};
pub use state::{DurableState, StoredRecord};
pub use wal::{ReplayReport, WalBackend};

/// A storage backend for one stationary node's durable state.
///
/// The trait is infallible by design: the in-memory fold must advance
/// even when a disk is unhappy, because the overlay's correctness never
/// depends on persistence (durability only changes how much a node can
/// recover after a crash). Fallible backends latch their first error
/// for later inspection (see [`WalBackend::io_error`]).
pub trait StateStore {
    /// A short name for the backend family (`"mem"`, `"wal"`).
    fn kind(&self) -> &'static str;

    /// Applies one mutation record.
    fn apply(&mut self, rec: &WalRecord);

    /// The current folded state.
    fn state(&self) -> &DurableState;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_and_wal_fold_identically() {
        let dir = std::env::temp_dir()
            .join(format!("bristle-store-test-{}", std::process::id()))
            .join("equivalence");
        let _ = std::fs::remove_dir_all(&dir);
        let mut mem = MemBackend::new();
        let mut wal = WalBackend::open(&dir, 4).unwrap();
        let recs = [
            WalRecord::Identity { key: 10, incarnation: 1 },
            WalRecord::RecordPut {
                subject: 1,
                host: 2,
                router: 3,
                epoch: 13,
                incarnation: 4,
                seq: 5,
                published_at: 6,
                ttl: 7,
            },
            WalRecord::Register { target: 20, capacity: 2 },
            WalRecord::LeaseGrant { subject: 1, expires: 99 },
            WalRecord::RecordRemove { subject: 1 },
            WalRecord::Identity { key: 10, incarnation: 2 },
        ];
        for r in &recs {
            mem.apply(r);
            wal.apply(r);
        }
        assert_eq!(mem.state(), wal.state());
        // And the WAL's disk image reproduces the same state.
        drop(wal);
        let reopened = WalBackend::open(&dir, 4).unwrap();
        assert_eq!(mem.state(), reopened.state());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
