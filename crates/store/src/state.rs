//! The durable state a stationary node owns, as a fold over
//! [`WalRecord`]s.

use std::collections::BTreeMap;

use crate::record::WalRecord;

/// A stored location record, in the store's raw representation (see the
/// [`record`](crate::record) module docs for why ids are raw integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredRecord {
    /// Raw host id of the subject's address.
    pub host: u32,
    /// Raw router id the subject was attached to.
    pub router: u32,
    /// Attachment epoch at publish time.
    pub epoch: u64,
    /// The subject's incarnation at publish time.
    pub incarnation: u64,
    /// The subject's per-move sequence number.
    pub seq: u64,
    /// Virtual publish time.
    pub published_at: u64,
    /// Time-to-live in ticks.
    pub ttl: u64,
}

/// Everything a stationary node must not lose across a crash: its own
/// identity and incarnation, its shard of the location repository, the
/// registrations it holds, and the leases granted to it.
///
/// All maps are `BTreeMap` so iteration — and therefore snapshot
/// encoding — is in sorted key order, byte-stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableState {
    /// `(key, incarnation)` of the owning node, once recorded.
    pub identity: Option<(u64, u64)>,
    /// Location records stored at this node, by subject key.
    pub records: BTreeMap<u64, StoredRecord>,
    /// Targets this node is registered to, with the advertised capacity.
    pub registrations: BTreeMap<u64, u32>,
    /// Leases held by this node, by subject, with absolute expiry.
    pub leases: BTreeMap<u64, u64>,
}

impl DurableState {
    /// An empty state.
    pub fn new() -> DurableState {
        DurableState::default()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.identity.is_none()
            && self.records.is_empty()
            && self.registrations.is_empty()
            && self.leases.is_empty()
    }

    /// Applies one mutation record. Returns `true` when the state
    /// changed — backends use this to skip appending no-op records, so
    /// idempotent re-application (replay, registration re-sync) does not
    /// grow the log.
    pub fn apply(&mut self, rec: &WalRecord) -> bool {
        match *rec {
            WalRecord::Identity { key, incarnation } => {
                let next = Some((key, incarnation));
                if self.identity == next {
                    return false;
                }
                self.identity = next;
                true
            }
            WalRecord::RecordPut {
                subject,
                host,
                router,
                epoch,
                incarnation,
                seq,
                published_at,
                ttl,
            } => {
                let next =
                    StoredRecord { host, router, epoch, incarnation, seq, published_at, ttl };
                if self.records.get(&subject) == Some(&next) {
                    return false;
                }
                self.records.insert(subject, next);
                true
            }
            WalRecord::RecordRemove { subject } => self.records.remove(&subject).is_some(),
            WalRecord::Register { target, capacity } => {
                if self.registrations.get(&target) == Some(&capacity) {
                    return false;
                }
                self.registrations.insert(target, capacity);
                true
            }
            WalRecord::Deregister { target } => self.registrations.remove(&target).is_some(),
            WalRecord::LeaseGrant { subject, expires } => {
                if self.leases.get(&subject) == Some(&expires) {
                    return false;
                }
                self.leases.insert(subject, expires);
                true
            }
            WalRecord::LeaseRevoke { subject } => self.leases.remove(&subject).is_some(),
        }
    }

    /// The state as a canonical record sequence: identity first, then
    /// records, registrations, and leases in sorted key order. Folding
    /// the result into an empty state reproduces `self` exactly —
    /// this is both the snapshot encoding and the rebase path when a
    /// node switches backends mid-run.
    pub fn to_records(&self) -> Vec<WalRecord> {
        let mut out = Vec::with_capacity(
            usize::from(self.identity.is_some())
                + self.records.len()
                + self.registrations.len()
                + self.leases.len(),
        );
        if let Some((key, incarnation)) = self.identity {
            out.push(WalRecord::Identity { key, incarnation });
        }
        for (&subject, r) in &self.records {
            out.push(WalRecord::RecordPut {
                subject,
                host: r.host,
                router: r.router,
                epoch: r.epoch,
                incarnation: r.incarnation,
                seq: r.seq,
                published_at: r.published_at,
                ttl: r.ttl,
            });
        }
        for (&target, &capacity) in &self.registrations {
            out.push(WalRecord::Register { target, capacity });
        }
        for (&subject, &expires) in &self.leases {
            out.push(WalRecord::LeaseGrant { subject, expires });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_reports_change_and_noop() {
        let mut s = DurableState::new();
        let put = WalRecord::Register { target: 9, capacity: 3 };
        assert!(s.apply(&put), "first application changes state");
        assert!(!s.apply(&put), "identical re-application is a no-op");
        assert!(s.apply(&WalRecord::Register { target: 9, capacity: 4 }), "capacity update");
        assert!(s.apply(&WalRecord::Deregister { target: 9 }));
        assert!(!s.apply(&WalRecord::Deregister { target: 9 }), "double remove is a no-op");
        assert!(s.is_empty());
    }

    #[test]
    fn to_records_round_trips_the_state() {
        let mut s = DurableState::new();
        for rec in crate::record::tests::every_record() {
            s.apply(&rec);
        }
        let mut rebuilt = DurableState::new();
        for rec in s.to_records() {
            assert!(rebuilt.apply(&rec), "canonical sequence has no no-ops");
        }
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn to_records_is_sorted() {
        let mut s = DurableState::new();
        for subject in [44u64, 2, 99, 7] {
            s.apply(&WalRecord::LeaseGrant { subject, expires: subject + 1 });
        }
        let subjects: Vec<u64> = s
            .to_records()
            .iter()
            .map(|r| match r {
                WalRecord::LeaseGrant { subject, .. } => *subject,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(subjects, vec![2, 7, 44, 99]);
    }
}
