//! The in-memory backend: today's behavior, zero cost, nothing durable.

use crate::record::WalRecord;
use crate::state::DurableState;
use crate::StateStore;

/// A [`StateStore`] that folds records straight into memory. This is
/// the default backend every node gets; it adds no I/O and survives
/// nothing — exactly the pre-store behavior.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    state: DurableState,
}

impl MemBackend {
    /// An empty in-memory store.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }

    /// A store pre-seeded with `state` (used when rebasing a node onto
    /// a different backend).
    pub fn with_state(state: DurableState) -> MemBackend {
        MemBackend { state }
    }
}

impl StateStore for MemBackend {
    fn kind(&self) -> &'static str {
        "mem"
    }

    fn apply(&mut self, rec: &WalRecord) {
        self.state.apply(rec);
    }

    fn state(&self) -> &DurableState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_folds_records() {
        let mut b = MemBackend::new();
        b.apply(&WalRecord::Identity { key: 1, incarnation: 2 });
        b.apply(&WalRecord::Register { target: 3, capacity: 4 });
        assert_eq!(b.state().identity, Some((1, 2)));
        assert_eq!(b.state().registrations.get(&3), Some(&4));
        assert_eq!(b.kind(), "mem");
    }
}
